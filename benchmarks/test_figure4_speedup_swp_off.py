"""Figure 4 — realized SPEC 2000 speedups with software pipelining disabled.

The paper compiles the 24 SPEC CPU2000 benchmarks with each learned
heuristic (trained leave-one-benchmark-out) and reports whole-program
improvement over ORC's hand heuristic, next to an oracle that picks each
loop's best measured factor.  Headline shape: the SVM wins on ~19 of 24
benchmarks, ~5% average speedup overall and ~9% on SPECfp; the oracle
averages ~7.2%; floating-point codes gain far more than integer codes.
"""

from repro.pipeline import EvaluationConfig, evaluate_speedups

from conftest import emit


def test_figure4_speedups(benchmark, artifacts_noswp, feature_indices):
    artifacts = artifacts_noswp
    config = EvaluationConfig(swp=False, feature_indices=feature_indices)
    report = benchmark.pedantic(
        evaluate_speedups,
        args=(artifacts.suite, artifacts.table, artifacts.dataset, config),
        iterations=1,
        rounds=1,
    )

    lines = [
        "Figure 4: SPEC 2000 improvement over ORC's heuristic (SWP disabled)",
        "",
        f"{'benchmark':16s} {'NN':>8s} {'SVM':>8s} {'Oracle':>8s}",
    ]
    for result in report.results:
        tag = "  (fp)" if result.is_fp else ""
        lines.append(
            f"{result.benchmark:16s}"
            f" {result.improvements['nn']:8.2%}"
            f" {result.improvements['svm']:8.2%}"
            f" {result.improvements['oracle']:8.2%}{tag}"
        )
    lines.append("")
    for name in ("nn", "svm", "oracle"):
        lines.append(
            f"{name:7s} mean {report.mean_improvement(name):+6.2%} overall, "
            f"{report.mean_improvement(name, fp_only=True):+6.2%} SPECfp, "
            f"beats ORC on {report.wins(name)}/{len(report.results)}"
        )
    lines.append("Paper: SVM +5% overall / +9% SPECfp, wins 19/24; oracle +7.2%")
    emit("figure4_speedup_swp_off", "\n".join(lines))

    # Shape assertions.
    svm_overall = report.mean_improvement("svm")
    svm_fp = report.mean_improvement("svm", fp_only=True)
    oracle_overall = report.mean_improvement("oracle")
    assert len(report.results) == 24
    assert svm_overall >= 0.02  # substantial overall win
    assert svm_fp > svm_overall  # fp gains exceed the overall mean
    assert oracle_overall >= svm_overall - 1e-9  # oracle bounds the learners
    assert report.wins("svm") >= 17
    assert report.wins("nn") >= 15
