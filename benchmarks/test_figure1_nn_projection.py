"""Figure 1 — near-neighbor classification on LDA-projected loop data.

The paper visualises its dataset by projecting feature vectors onto a
2-D discriminant plane (Fisher LDA), keeping four classes (unroll factors
1, 2, 4, 8) and only loops whose best factor beats the alternatives by at
least 30%.  The figure then illustrates the NN radius vote around a query.

This bench regenerates the figure's *data*: the projection, the per-class
2-D clouds, a sample radius query, and a quantitative check that the
projected plane actually separates classes (same-class points are closer
than cross-class points on average).
"""

import numpy as np

from repro.ml import NearNeighborClassifier, fit_lda

from conftest import emit

FIGURE_CLASSES = (1, 2, 4, 8)
MARGIN = 1.30  # the paper's ">= 30% better than the other three"


def _figure_subset(dataset):
    """Rows labelled 1/2/4/8 whose best factor wins by >= 30%."""
    keep = []
    for row in range(len(dataset)):
        label = int(dataset.labels[row])
        if label not in FIGURE_CLASSES:
            continue
        cycles = dataset.cycles[row]
        best = cycles[label - 1]
        others = [cycles[c - 1] for c in FIGURE_CLASSES if c != label]
        if min(others) / best >= MARGIN:
            keep.append(row)
    return np.array(keep, dtype=int)


def test_figure1_projection(benchmark, artifacts_noswp, feature_indices):
    dataset = artifacts_noswp.dataset
    rows = _figure_subset(dataset)
    X = dataset.X[rows][:, feature_indices]
    y = dataset.labels[rows]

    projection = benchmark.pedantic(fit_lda, args=(X, y, 2), iterations=1, rounds=1)
    points = projection.transform(X)

    lines = [
        f"Figure 1: LDA projection of {len(rows)} high-margin loops "
        f"(classes {FIGURE_CLASSES}, margin >= 30%)",
        "",
        f"{'class':>5s} {'n':>5s} {'mean_x':>8s} {'mean_y':>8s} {'std_x':>7s} {'std_y':>7s}",
    ]
    centroids = {}
    for cls in FIGURE_CLASSES:
        cloud = points[y == cls]
        if len(cloud) == 0:
            continue
        centroids[cls] = cloud.mean(axis=0)
        lines.append(
            f"{cls:5d} {len(cloud):5d} {cloud[:, 0].mean():8.2f} "
            f"{cloud[:, 1].mean():8.2f} {cloud[:, 0].std():7.2f} {cloud[:, 1].std():7.2f}"
        )

    # The illustrated radius query: classify one projected point by voting.
    nn = NearNeighborClassifier().fit(X, y)
    query = nn.predict_one(X[0])
    lines.append("")
    lines.append(
        f"sample radius query: label u{y[0]}, predicted u{query.label}, "
        f"{query.n_neighbors} neighbors in radius {nn.radius}"
    )
    emit("figure1_nn_projection", "\n".join(lines))

    # Shape assertions: enough qualifying loops, classes present, and the
    # plane separates: average same-class distance < cross-class distance.
    assert len(rows) >= 50
    assert len(centroids) >= 3
    d_same, d_cross = [], []
    rng = np.random.default_rng(0)
    sample = rng.choice(len(points), size=min(400, len(points)), replace=False)
    for i in sample:
        for j in sample[:50]:
            if i == j:
                continue
            d = float(np.linalg.norm(points[i] - points[j]))
            (d_same if y[i] == y[j] else d_cross).append(d)
    assert np.mean(d_same) < np.mean(d_cross)
