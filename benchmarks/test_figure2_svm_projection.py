"""Figure 2 — SVM classification of projected loop data.

The paper's Figure 2 casts the feature space to a 2-D plane, keeps a
*binary* problem ("don't unroll" vs "unroll") restricted to loops with a
>= 30% performance gap, and shows the RBF SVM's decision regions.  This
bench regenerates the underlying data: the 2-D binary problem, an RBF
LS-SVM trained on it, its decision field over a grid (the "regions"), and
accuracy checks showing the non-linear boundary fits the data.
"""

import numpy as np

from repro.ml import LSSVM, fit_lda

from conftest import emit

MARGIN = 1.30


def _binary_subset(dataset):
    """High-contrast binary problem: +1 where unrolling wins big, -1 where
    leaving the loop rolled is measured best.

    On this substrate the "don't unroll" side rarely wins by 30% (rolled-
    optimal loops are penalty-driven, with single-digit margins), so the
    class is defined by the measured label rather than by the paper's
    symmetric margin — the unroll side keeps the >= 30% contrast.
    """
    rows, targets = [], []
    for row in range(len(dataset)):
        cycles = dataset.cycles[row]
        rolled = cycles[0]
        best_unrolled = cycles[1:].min()
        if rolled / best_unrolled >= MARGIN:
            rows.append(row)
            targets.append(+1.0)  # unroll
        elif int(dataset.labels[row]) == 1:
            rows.append(row)
            targets.append(-1.0)  # don't unroll
    return np.array(rows, dtype=int), np.array(targets)


def test_figure2_svm_regions(benchmark, artifacts_noswp, feature_indices):
    dataset = artifacts_noswp.dataset
    rows, targets = _binary_subset(dataset)
    X = dataset.X[rows][:, feature_indices]
    labels_for_lda = (targets > 0).astype(int)

    projection = fit_lda(X, labels_for_lda, n_components=1)
    # 2-D plane: the discriminant direction plus a spread axis.
    axis1 = projection.transform(X)[:, 0]
    axis2 = (X - X.mean(axis=0))[:, 0]
    points = np.stack([axis1, axis2 / (np.abs(axis2).max() + 1e-12)], axis=1)

    model = LSSVM(C=10.0, sigma=0.4)
    benchmark.pedantic(model.fit, args=(points, targets), iterations=1, rounds=1)
    training_accuracy = float(np.mean(model.predict(points) == targets))

    # The decision field over a grid = the figure's shaded regions.
    grid_x = np.linspace(points[:, 0].min(), points[:, 0].max(), 24)
    grid_y = np.linspace(points[:, 1].min(), points[:, 1].max(), 12)
    field = np.empty((len(grid_y), len(grid_x)))
    for gy, yv in enumerate(grid_y):
        queries = np.stack([grid_x, np.full_like(grid_x, yv)], axis=1)
        field[gy] = np.asarray(model.decision_values(queries)).ravel()

    lines = [
        f"Figure 2: binary unroll/don't-unroll SVM over {len(rows)} "
        f"high-margin loops (margin >= 30%)",
        "",
        f"unroll: {int((targets > 0).sum())}   don't unroll: {int((targets < 0).sum())}",
        f"training accuracy on the projected plane: {training_accuracy:.2f}",
        "",
        "decision regions ('+' = unroll, '-' = don't):",
    ]
    for gy in range(len(grid_y) - 1, -1, -1):
        lines.append("  " + "".join("+" if v >= 0 else "-" for v in field[gy]))
    emit("figure2_svm_projection", "\n".join(lines))

    # Shape assertions: both classes occur, the boundary fits well, and
    # both decision regions actually appear in the field.
    assert (targets > 0).sum() >= 20
    assert (targets < 0).sum() >= 5
    assert training_accuracy >= 0.8
    assert (field >= 0).any() and (field < 0).any()
