"""Extensions the paper calls out as future work or scaling arguments.

* **Regression** (Section 8): kernel ridge regression on the measured best
  factors.  The paper expects regression to escape the label-range
  confinement of classification; this bench checks the LOOCV quality of the
  rounded regressor against the classifiers.
* **Approximate NN lookup** (Section 5.1): the paper argues NN scales to
  huge databases via hashing-based approximate lookup.  This bench measures
  the LSH classifier's agreement with the exact scan and the fraction of
  the database it inspects per query.
"""

import numpy as np

from repro.ml import (
    LSHNearNeighbor,
    NearNeighborClassifier,
    accuracy,
    loocv_nn,
    loocv_regression_predictions,
    mean_cost_ratio,
)
from repro.ml.regression import KernelRidgeRegressor

from conftest import emit


def test_extension_regression(benchmark, artifacts_noswp, feature_indices):
    dataset = artifacts_noswp.dataset
    X = dataset.X[:, feature_indices]

    regression_predictions = benchmark.pedantic(
        loocv_regression_predictions,
        args=(X, dataset.labels),
        kwargs={"regressor": KernelRidgeRegressor(ridge=3e-3, sigma=0.08)},
        iterations=1,
        rounds=1,
    )
    nn_predictions = loocv_nn(dataset, feature_indices)

    reg_acc = accuracy(dataset, regression_predictions)
    nn_acc = accuracy(dataset, nn_predictions)
    reg_cost = mean_cost_ratio(dataset, regression_predictions)
    nn_cost = mean_cost_ratio(dataset, nn_predictions)

    lines = [
        "Extension: kernel ridge regression on unroll factors (Section 8 future work)",
        "",
        f"{'predictor':24s} {'exact-factor acc':>17s} {'mean cost':>10s}",
        f"{'regression (rounded)':24s} {reg_acc:17.3f} {reg_cost:9.3f}x",
        f"{'near neighbor':24s} {nn_acc:17.3f} {nn_cost:9.3f}x",
        "",
        "Regression's rounded accuracy trails classification (squared loss"
        " favours *close* factors over *exact* ones), but its cost ratio"
        " stays competitive — and its raw output is not confined to the"
        " trained label range, which is the paper's motivation.",
    ]
    emit("extension_regression", "\n".join(lines))

    assert reg_acc > 0.25  # far above the 12.5% chance level
    assert reg_cost < 1.35  # close factors -> small realized penalty
    assert nn_acc >= reg_acc - 0.05  # classification wins on exactness


def test_extension_lsh_scaling(benchmark, artifacts_noswp, feature_indices):
    dataset = artifacts_noswp.dataset
    X = dataset.X[:, feature_indices]
    y = dataset.labels

    exact = NearNeighborClassifier().fit(X, y)
    approx = LSHNearNeighbor(n_tables=10, n_bits=5).fit(X, y)
    benchmark.pedantic(approx.predict, args=(X[:100],), iterations=1, rounds=1)

    sample = X[:: max(1, len(X) // 300)]
    exact_labels = exact.predict(sample)
    approx_labels = approx.predict(sample)
    agreement = float(np.mean(exact_labels == approx_labels))
    candidate_fraction = approx.mean_candidate_fraction(sample)

    lines = [
        "Extension: LSH approximate near-neighbor lookup (Section 5.1 scaling)",
        "",
        f"queries sampled:                  {len(sample)}",
        f"agreement with the exact scan:    {agreement:.3f}",
        f"database fraction inspected/query: {candidate_fraction:.3f}",
        "",
        "Paper: 'advances in the area of approximate near neighbor lookup "
        "permit fast access (sublinear in the size of the database)'.",
    ]
    emit("extension_lsh", "\n".join(lines))

    assert agreement >= 0.8
    assert candidate_fraction < 0.7
