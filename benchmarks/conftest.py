"""Shared fixtures for the reproduction benches.

Each bench module regenerates one of the paper's tables or figures at full
scale (72 benchmarks, 2,000+ labelled loops).  The expensive measurement
tables are built once and cached on disk by the pipeline, so only the first
ever run pays the simulation cost.

Every bench both *prints* its table (visible with ``pytest -s``) and writes
it under ``benchmarks/results/`` so the artefacts survive output capture.

Cold-cache runs are the expensive case: the measurement fan-out honours
``REPRO_JOBS`` (e.g. ``REPRO_JOBS=8 pytest benchmarks/``), and results are
bit-identical to a serial build, so parallelism is purely a wall-clock
lever.  The per-worker timing rollup is printed after a cold build.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.heuristics import ORCHeuristic
from repro.instrument import MeasurementRollup
from repro.ml import selected_feature_union
from repro.pipeline import build_artifacts, resolve_jobs

RESULTS_DIR = Path(__file__).parent / "results"

#: Full-scale configuration shared by every bench.
SCALE = 1.0
SEED = 20050320


def _build(swp: bool):
    rollup = MeasurementRollup()
    artifacts = build_artifacts(
        suite_seed=SEED,
        loops_scale=SCALE,
        swp=swp,
        jobs=resolve_jobs(),  # honours REPRO_JOBS; serial by default
        rollup=rollup,
    )
    if rollup.n_units:  # cold build: show where the time went
        print(f"\n[measure swp={swp}] {rollup.summary()}")
    return artifacts


@pytest.fixture(scope="session")
def artifacts_noswp():
    """Suite + measurements + dataset with software pipelining disabled."""
    return _build(swp=False)


@pytest.fixture(scope="session")
def artifacts_swp():
    """Suite + measurements + dataset with software pipelining enabled."""
    return _build(swp=True)


@pytest.fixture(scope="session")
def feature_indices(artifacts_noswp):
    """The Section 6 feature subset (MIS union greedy), fitted once."""
    dataset = artifacts_noswp.dataset
    return selected_feature_union(dataset.X, dataset.labels, subsample=500)


@pytest.fixture(scope="session")
def orc_predictions_noswp(artifacts_noswp):
    """ORC's picks for every labelled loop (SWP off)."""
    dataset = artifacts_noswp.dataset
    loops = {l.name: l for b in artifacts_noswp.suite.benchmarks for l in b.loops}
    orc = ORCHeuristic(swp=False)
    return np.array([orc.predict_loop(loops[str(n)]) for n in dataset.loop_names])


def emit(name: str, text: str) -> None:
    """Print a bench's table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}")
