"""Ablation — how much of unrolling's benefit flows through the memory
optimizations?

Section 3 argues unrolling is "primarily used to enable other
optimizations": scalar replacement eliminates redundant references across
the now-adjacent copies, and adjacent references merge into wide loads.
This bench turns those passes off one at a time in the cost model and
measures how much of the unrolling win disappears on the kernels that
embody each mechanism.
"""

from repro.simulate import CostModel
from repro.transforms import OptimizationPlan
from repro.workloads import kernels

from conftest import emit

PLANS = {
    "full pipeline": OptimizationPlan(),
    "no scalar replacement": OptimizationPlan(scalar_replacement=False),
    "no coalescing": OptimizationPlan(coalescing=False),
    "neither": OptimizationPlan(scalar_replacement=False, coalescing=False),
}

PROBES = {
    "stencil3 (reuse-heavy)": lambda: kernels.stencil3(trip=2048, entries=8),
    "cmul (pair-heavy)": lambda: kernels.complex_multiply(trip=2048, entries=8),
    "daxpy (streaming)": lambda: kernels.daxpy(trip=2048, entries=8),
    "fir (both)": lambda: kernels.fir_filter(taps=6, trip=2048, entries=8),
}


def _best_speedup(loop, plan) -> float:
    """Best unrolled speedup over rolled under a given pass plan."""
    model = CostModel(plan=plan)
    sweep = model.sweep(loop)
    rolled = sweep[1].total_cycles
    best = min(cost.total_cycles for cost in sweep.values())
    return rolled / best


def test_ablation_memory_optimizations(benchmark):
    table = {}
    for probe_name, make in PROBES.items():
        loop = make()
        row = {}
        for plan_name, plan in PLANS.items():
            if probe_name == "stencil3 (reuse-heavy)" and plan_name == "full pipeline":
                row[plan_name] = benchmark.pedantic(
                    _best_speedup, args=(loop, plan), iterations=1, rounds=1
                )
            else:
                row[plan_name] = _best_speedup(loop, plan)
        table[probe_name] = row

    lines = [
        "Ablation: unrolling speedup (best factor vs rolled) with cleanup "
        "passes disabled",
        "",
        f"{'kernel':26s}" + "".join(f" {name:>22s}" for name in PLANS),
    ]
    for probe_name, row in table.items():
        lines.append(
            f"{probe_name:26s}"
            + "".join(f" {row[name]:21.2f}x" for name in PLANS)
        )
    lines.append("")
    lines.append("Section 3: scalar replacement and wide-reference merging are "
                 "key channels of unrolling's benefit.")
    emit("ablation_memory_opts", "\n".join(lines))

    # Mechanism assertions.
    # Coalescing is what makes wide unrolling pay on streaming loops.
    daxpy = table["daxpy (streaming)"]
    assert daxpy["full pipeline"] > daxpy["no coalescing"]
    # Scalar replacement eliminates cross-copy loads on the stencil — the
    # Section 3 mechanism — measured directly on the transformed body.
    from repro.ir.types import Opcode
    from repro.transforms import optimize_for_factor

    loop = kernels.stencil3(trip=2048, entries=8)
    with_sr = optimize_for_factor(loop, 8, OptimizationPlan()).main
    without_sr = optimize_for_factor(
        loop, 8, OptimizationPlan(scalar_replacement=False)
    ).main

    def loaded_elements(part):
        return sum(
            i.mem.width for i in part.body if i.op.is_load and i.mem is not None
        )

    # Coalescing repackages accesses into pairs; only scalar replacement
    # reduces the number of elements actually read from memory.
    assert loaded_elements(with_sr) <= loaded_elements(without_sr) - 8
    # Unrolling itself pays off on every probe.
    for row in table.values():
        assert row["full pipeline"] >= 1.0
    # Note: the speedup *ratio* can tick up without scalar replacement —
    # forwarding extends live ranges (a register-pressure cost the paper
    # itself lists); the load-elimination mechanism is what we assert.
