"""Ablation — the near-neighbor radius.

The paper uses radius 0.3, "the value of which was determined
experimentally" by "inspecting the distances to training examples for
several queries".  This bench runs that experiment properly: LOOCV accuracy
across a radius sweep, confirming 0.3 sits on the sweep's plateau (and
showing the failure modes at the extremes: a tiny radius degenerates to
1-NN, a huge radius to majority-class voting).
"""

import numpy as np

from repro.ml import accuracy, loocv_nn
from repro.ml.near_neighbor import DEFAULT_RADIUS

from conftest import emit

RADII = (0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.2, 2.0)


def test_ablation_nn_radius(benchmark, artifacts_noswp, feature_indices):
    dataset = artifacts_noswp.dataset

    def sweep():
        return {
            radius: accuracy(dataset, loocv_nn(dataset, feature_indices, radius=radius))
            for radius in RADII
        }

    accuracies = benchmark.pedantic(sweep, iterations=1, rounds=1)

    lines = [
        f"Ablation: NN radius sweep (LOOCV over {len(dataset)} loops)",
        "",
        f"{'radius':>7s} {'accuracy':>9s}",
    ]
    for radius in RADII:
        marker = "  <- paper's choice" if radius == DEFAULT_RADIUS else ""
        lines.append(f"{radius:7.2f} {accuracies[radius]:9.3f}{marker}")
    emit("ablation_nn_radius", "\n".join(lines))

    best_radius = max(accuracies, key=accuracies.get)
    best = accuracies[best_radius]
    at_default = accuracies[DEFAULT_RADIUS]
    majority = float(np.bincount(dataset.labels, minlength=9)[1:].max()) / len(dataset)

    # The paper's 0.3 sits near the sweep's plateau.
    assert at_default >= best - 0.05
    # A huge radius collapses toward majority voting.
    assert accuracies[2.0] <= at_default
    assert accuracies[2.0] <= majority + 0.25
    # Everything beats the majority-class baseline.
    assert at_default > majority
