"""Ablation — output-code design for the multi-class SVM.

The paper describes one-per-class output codes decoded by Hamming distance
and notes that "error correcting codewords can provide better results by
using more bits than necessary ... but for simplicity we do not use such
encodings".  This bench measures what that simplicity cost: identity codes
vs exhaustive error-correcting codes vs random codes vs pairwise coupling
(the configuration our headline results use), all at matched
hyperparameters, by LOOCV on a fixed subsample.
"""

import numpy as np

from repro.ml import OutputCodeClassifier, exhaustive_code, random_code
from repro.ml.pairwise import PairwiseLSSVM

from conftest import emit

SUBSAMPLE = 900
C, SIGMA = 1000.0, 0.012


def _loocv_accuracy(model, X, y) -> float:
    model.fit(X, y)
    return float(np.mean(model.loocv_predictions() == y))


def test_ablation_output_codes(benchmark, artifacts_noswp, feature_indices):
    dataset = artifacts_noswp.dataset
    rng = np.random.default_rng(42)
    rows = rng.choice(len(dataset), size=min(SUBSAMPLE, len(dataset)), replace=False)
    X = dataset.X[rows][:, feature_indices]
    y = dataset.labels[rows]

    shared = dict(C=C, sigma=SIGMA, kernel="multiscale")
    variants = {
        "identity+hamming (paper)": OutputCodeClassifier(decode="hamming", **shared),
        "identity+margin": OutputCodeClassifier(decode="margin", **shared),
        "exhaustive ECOC": OutputCodeClassifier(code=exhaustive_code(8), **shared),
        "random 15-bit": OutputCodeClassifier(code=random_code(8, 15, seed=1), **shared),
        "pairwise coupling (ours)": PairwiseLSSVM(**shared),
    }

    accuracies = {}
    for name, model in variants.items():
        if name == "identity+hamming (paper)":
            accuracies[name] = benchmark.pedantic(
                _loocv_accuracy, args=(model, X, y), iterations=1, rounds=1
            )
        else:
            accuracies[name] = _loocv_accuracy(model, X, y)

    lines = [
        f"Ablation: multi-class coding schemes (LOOCV over {len(rows)} loops)",
        "",
    ]
    for name, acc in sorted(accuracies.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:28s} {acc:.3f}")
    lines.append("")
    lines.append("Paper's choice is identity+hamming; it forgoes ECOC 'for simplicity'.")
    emit("ablation_output_codes", "\n".join(lines))

    # Shape assertions: everything beats chance by a wide margin; richer
    # codings are at least competitive with the paper's simple scheme.
    prior = max(np.bincount(y, minlength=9)[1:]) / len(y)
    for name, acc in accuracies.items():
        assert acc > prior + 0.05, name
    assert accuracies["pairwise coupling (ours)"] >= accuracies["identity+hamming (paper)"] - 0.05
