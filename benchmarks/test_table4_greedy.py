"""Table 4 — greedy forward feature selection per classifier.

The paper greedily grows a feature set that minimises each classifier's
training error, five features deep, and observes that (a) the chosen lists
*differ by classifier*, and (b) training error falls steeply as features
are added (their NN column drops from 0.48 after one feature to 0.02 after
five).  The NN scorer is the modified single-nearest-neighbor variant and
the reported numbers are training errors — both reproduced here.
"""

from repro.ml import greedy_forward_selection

from conftest import emit


def test_table4_greedy_selection(benchmark, artifacts_noswp):
    dataset = artifacts_noswp.dataset

    # include_self reproduces the paper's Table 4 convention: the "error"
    # is the raw training error, so it collapses as the chosen features
    # make training examples unique.
    nn_chosen = benchmark.pedantic(
        greedy_forward_selection,
        args=(dataset.X, dataset.labels, "nn"),
        kwargs={"n_features": 5, "subsample": 600, "include_self": True},
        iterations=1,
        rounds=1,
    )
    svm_chosen = greedy_forward_selection(
        dataset.X, dataset.labels, "svm", n_features=5, subsample=400
    )

    lines = [
        "Table 4: greedy forward selection (training error after each pick)",
        "",
        f"{'rank':>4s}  {'NN':30s} {'err':>5s}   {'SVM':30s} {'err':>5s}",
    ]
    for position in range(5):
        nn_s, svm_s = nn_chosen[position], svm_chosen[position]
        lines.append(
            f"{position + 1:4d}  {nn_s.name:30s} {nn_s.score:5.2f}   "
            f"{svm_s.name:30s} {svm_s.score:5.2f}"
        )
    lines.append("")
    lines.append(
        "Paper NN:  # operands, live range size, critical path length, "
        "# operations, known tripcount (errors 0.48 -> 0.02)"
    )
    lines.append(
        "Paper SVM: # fp ops, loop nest level, # operands, # branches, "
        "# memory ops (errors 0.59 -> 0.13)"
    )
    emit("table4_greedy", "\n".join(lines))

    # Shape assertions.
    nn_errors = [s.score for s in nn_chosen]
    svm_errors = [s.score for s in svm_chosen]
    # Errors are non-increasing as features are added.
    assert all(b <= a + 1e-9 for a, b in zip(nn_errors, nn_errors[1:]))
    assert all(b <= a + 1e-9 for a, b in zip(svm_errors, svm_errors[1:]))
    # Adding features helps a lot (the paper's steep drop).
    assert nn_errors[-1] < nn_errors[0]
    # Training errors end low — the paper's point about reporting training
    # rather than generalisation error.
    assert nn_errors[-1] <= 0.25
    # The two classifiers pick at least partly different features.
    assert {s.name for s in nn_chosen} != {s.name for s in svm_chosen}
    # No feature picked twice within a list.
    assert len({s.index for s in nn_chosen}) == 5
    assert len({s.index for s in svm_chosen}) == 5
