"""Figure 3 — histogram of optimal unroll factors (SWP disabled).

The paper's histogram over 2,500+ labelled loops shows: no factor dominates
outright, powers of two (1, 2, 4, 8) carry almost all the mass, the mode is
4 at roughly 30%, and non-power-of-two factors are "rarely optimal".  The
paper also notes the contrast with binary unroll-or-not classification:
simply always unrolling would be "right" ~77% of the time as a yes/no
answer while being badly suboptimal as a factor choice.
"""

import numpy as np

from conftest import emit


def test_figure3_optimal_factor_histogram(benchmark, artifacts_noswp):
    dataset = artifacts_noswp.dataset
    histogram = benchmark(dataset.label_histogram)

    lines = [
        f"Figure 3: optimal unroll factor histogram ({len(dataset)} loops, SWP off)",
        "",
    ]
    for factor, fraction in enumerate(histogram, start=1):
        bar = "#" * int(round(fraction * 100))
        lines.append(f"  u={factor}  {fraction:6.1%}  {bar}")
    unroll_share = float(histogram[1:].sum())
    pow2_share = float(histogram[0] + histogram[1] + histogram[3] + histogram[7])
    lines.append("")
    lines.append(f"loops preferring to unroll at all: {unroll_share:.0%} (paper: ~77%)")
    lines.append(f"mass on powers of two:             {pow2_share:.0%}")
    lines.append("Paper shape: mode at 4 (~30%), 8 ~23%, 2 ~22%, 1 ~17%, others rare")
    emit("figure3_histogram", "\n".join(lines))

    # Shape assertions.
    assert abs(histogram.sum() - 1.0) < 1e-9
    assert np.argmax(histogram) + 1 == 4  # the mode is 4
    assert pow2_share >= 0.85  # non-powers of two are rarely optimal
    assert 0.60 <= unroll_share <= 0.99  # unrolling usually wins, not always
    assert histogram[7] >= 0.10  # 8 keeps a large share
    assert histogram[1] >= 0.10  # so does 2
