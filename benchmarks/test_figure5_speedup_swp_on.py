"""Figure 5 — realized SPEC 2000 speedups with software pipelining enabled.

With SWP on, "software pipelining exposes many of the benefits of loop
unrolling", so the headroom collapses: the paper's learned heuristics beat
ORC's (much-tuned, ~200-line) SWP-era heuristic on 16 of 24 benchmarks for
a ~1% overall improvement, with a 4.4% oracle.  The qualitative claims to
reproduce: gains exist but are much smaller than Figure 4's, and the oracle
ceiling itself is far lower.
"""

from repro.pipeline import EvaluationConfig, evaluate_speedups

from conftest import emit


def test_figure5_speedups(benchmark, artifacts_swp, artifacts_noswp, feature_indices):
    from repro.ml import selected_feature_union

    artifacts = artifacts_swp
    # Feature selection is regime-specific: the SWP-era labels reward
    # different characteristics (ResMII fractionality, rotating pressure),
    # so the subset is re-derived from the SWP dataset, exactly as the
    # paper retrains everything per configuration.
    swp_indices = selected_feature_union(
        artifacts.dataset.X, artifacts.dataset.labels, subsample=500
    )
    config = EvaluationConfig(swp=True, feature_indices=swp_indices)
    report = benchmark.pedantic(
        evaluate_speedups,
        args=(artifacts.suite, artifacts.table, artifacts.dataset, config),
        iterations=1,
        rounds=1,
    )

    lines = [
        "Figure 5: SPEC 2000 improvement over ORC's heuristic (SWP enabled)",
        "",
        f"{'benchmark':16s} {'NN':>8s} {'SVM':>8s} {'Oracle':>8s}",
    ]
    for result in report.results:
        tag = "  (fp)" if result.is_fp else ""
        lines.append(
            f"{result.benchmark:16s}"
            f" {result.improvements['nn']:8.2%}"
            f" {result.improvements['svm']:8.2%}"
            f" {result.improvements['oracle']:8.2%}{tag}"
        )
    lines.append("")
    for name in ("nn", "svm", "oracle"):
        lines.append(
            f"{name:7s} mean {report.mean_improvement(name):+6.2%} overall, "
            f"beats ORC on {report.wins(name)}/{len(report.results)}"
        )
    lines.append("Paper: ~+1% overall, wins 16/24; oracle +4.4%")
    emit("figure5_speedup_swp_on", "\n".join(lines))

    # Shape assertions: gains shrink dramatically once SWP is on.
    svm_swp = report.mean_improvement("svm")
    oracle_swp = report.mean_improvement("oracle")
    assert len(report.results) == 24
    assert -0.01 <= svm_swp <= 0.06  # small but non-catastrophic
    assert oracle_swp >= max(svm_swp - 1e-9, 0.0)
    assert report.wins("svm") >= 12

    # Cross-regime comparison: the no-SWP oracle headroom must dwarf the
    # SWP one (the paper's central contrast between Figures 4 and 5).
    noswp_config = EvaluationConfig(swp=False, feature_indices=feature_indices)
    noswp_report = evaluate_speedups(
        artifacts_noswp.suite, artifacts_noswp.table, artifacts_noswp.dataset, noswp_config
    )
    assert noswp_report.mean_improvement("oracle") > oracle_swp
