"""Table 1 — the loop feature catalog.

The paper's Table 1 lists a subset of the 38 features extracted per loop.
This bench regenerates that table (name + description per feature, flagged
when it appears in the paper's subset) alongside a concrete extraction for
one library kernel, and times the extractor — which matters, because it is
the part a deployed compiler would run per loop at compile time.
"""

from repro.features import FEATURES, extract_features, table1_subset
from repro.workloads.kernels import daxpy

from conftest import emit


def test_table1_feature_catalog(benchmark):
    loop = daxpy(trip=512, entries=8)
    vector = benchmark(extract_features, loop)

    lines = ["Table 1: loop features (* = shown in the paper's Table 1)", ""]
    lines.append(f"{'feature':28s} {'daxpy':>10s}  description")
    for spec in FEATURES:
        star = "*" if spec.table1 else " "
        lines.append(
            f"{star}{spec.name:27s} {vector[spec.index]:10.2f}  {spec.description}"
        )
    emit("table1_features", "\n".join(lines))

    assert len(FEATURES) == 38
    assert len(table1_subset()) >= 20
    assert vector[1] == loop.size  # num_ops agrees with the body
