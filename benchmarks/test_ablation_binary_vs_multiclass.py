"""Ablation — binary unroll-or-not versus multi-class factor prediction.

The paper's Section 9 argument against the Monsifrot et al. baseline:
binary classification looks great on paper ("simply unrolling all the time
will achieve 77% accuracy" on their histogram) but "choosing the wrong
unroll factor can severely limit performance".  This bench makes the
argument quantitative on our data:

* a boosted-decision-tree *binary* classifier reaches high unroll-or-not
  accuracy — comparable to the 86% their paper reports;
* converted into a factor choice (the compiler's default factor when it
  says "unroll"), its realized cost is far worse than the multi-class
  SVM's, despite the impressive-looking binary accuracy.
"""

import numpy as np

from repro.ml import (
    accuracy,
    binary_unroll_labels,
    loocv_tuned_svm,
    mean_cost_ratio,
    BoostedTrees,
)

from conftest import emit

#: Factor the compiler's own heuristic would apply when the binary
#: classifier says "unroll" (a common fixed default).
BINARY_UNROLL_FACTOR = 4


def test_ablation_binary_vs_multiclass(benchmark, artifacts_noswp, feature_indices):
    dataset = artifacts_noswp.dataset
    X = dataset.X[:, feature_indices]
    y_binary = binary_unroll_labels(dataset.labels)

    # Train/validation split for the binary baseline (boosted trees have no
    # cheap LOO identity, so use a held-out half instead).
    rng = np.random.default_rng(0)
    order = rng.permutation(len(dataset))
    half = len(dataset) // 2
    train_rows, test_rows = order[:half], order[half:]

    model = BoostedTrees(n_rounds=30, max_depth=3)
    benchmark.pedantic(
        model.fit, args=(X[train_rows], y_binary[train_rows]), iterations=1, rounds=1
    )
    binary_predictions = model.predict(X[test_rows])
    binary_accuracy = float(np.mean(binary_predictions == y_binary[test_rows]))
    always_unroll_accuracy = float(np.mean(y_binary == 2))

    # Realized cost: binary "unroll" becomes the fixed default factor.
    test_dataset = dataset.subset(test_rows)
    binary_factors = np.where(binary_predictions == 1, 1, BINARY_UNROLL_FACTOR)
    binary_cost = mean_cost_ratio(test_dataset, binary_factors)

    svm_predictions = loocv_tuned_svm(dataset, feature_indices)[test_rows]
    svm_cost = mean_cost_ratio(test_dataset, svm_predictions)
    svm_factor_accuracy = accuracy(test_dataset, svm_predictions)

    lines = [
        "Ablation: binary unroll-or-not vs multi-class factor prediction",
        "",
        f"binary boosted-tree accuracy (unroll or not): {binary_accuracy:.2f}",
        f"  ('always unroll' baseline:                  {always_unroll_accuracy:.2f})",
        f"multi-class SVM factor accuracy:              {svm_factor_accuracy:.2f}",
        "",
        f"realized mean cost vs optimal (binary + fixed u={BINARY_UNROLL_FACTOR}): "
        f"{binary_cost:.3f}x",
        f"realized mean cost vs optimal (multi-class SVM):       {svm_cost:.3f}x",
        "",
        "Paper: Monsifrot et al. report 86% binary accuracy; the paper "
        "argues the binary question hides most of the decision's value.",
    ]
    emit("ablation_binary_vs_multiclass", "\n".join(lines))

    # Shape assertions: impressive binary accuracy, yet materially worse
    # realized cost than the multi-class classifier.
    assert binary_accuracy >= always_unroll_accuracy - 0.02
    assert binary_accuracy >= 0.75
    assert svm_cost < binary_cost
    assert binary_cost - svm_cost >= 0.01
