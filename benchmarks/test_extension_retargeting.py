"""Extension — automatic retargeting (the paper's Section 4.5 pitch).

"Now that our infrastructure is in place, quickly retuning the unrolling
heuristic to match architectural changes will be trivial. We will simply
have to collect a new labeled dataset, which is a fully automated process,
and then we can apply the learning algorithm of our choice."

This bench performs the retune for two alternative machines — a narrow
3-issue core with small register files and a wide 8-issue core with huge
ones — and verifies the learned advice moves the right way: the narrow
machine's optimal factors (and hence the trained SVM's predictions) skew
low, the wide machine's skew high, with zero heuristic code changed.
"""

import numpy as np

from repro.heuristics import train_svm_heuristic
from repro.machine import ITANIUM2, NARROW, WIDE
from repro.ml import accuracy, loocv_nn, selected_feature_union
from repro.pipeline import LabelingConfig, build_artifacts
from repro.workloads.kernels import KERNELS

from conftest import SEED, emit

RETARGET_SCALE = 0.2
PROBES = ("daxpy", "stencil3", "triad", "dot", "int_hash", "cmul", "l2norm", "fir")


def _retune(machine):
    config = LabelingConfig(seed=SEED, swp=False, machine=machine)
    artifacts = build_artifacts(
        suite_seed=SEED, loops_scale=RETARGET_SCALE, config=config
    )
    dataset = artifacts.dataset
    indices = selected_feature_union(dataset.X, dataset.labels, subsample=400)
    heuristic = train_svm_heuristic(dataset, feature_indices=indices, machine=machine)
    nn_acc = accuracy(dataset, loocv_nn(dataset, indices))
    return dataset, heuristic, nn_acc


def test_extension_retargeting(benchmark):
    machines = (NARROW, ITANIUM2, WIDE)
    retuned = {}
    for machine in machines:
        if machine is NARROW:
            retuned[machine.name] = benchmark.pedantic(
                _retune, args=(machine,), iterations=1, rounds=1
            )
        else:
            retuned[machine.name] = _retune(machine)

    lines = ["Extension: retargeting by relabelling (Section 4.5)", ""]
    lines.append(f"{'machine':18s} {'loops':>6s} {'mean label':>11s} {'NN acc':>7s}"
                 + "".join(f" u={u}" for u in range(1, 9)))
    mean_labels = {}
    for machine in machines:
        dataset, _, nn_acc = retuned[machine.name]
        histogram = dataset.label_histogram()
        mean_labels[machine.name] = float(np.mean(dataset.labels))
        row = "".join(f" {v:3.0%}" for v in histogram)
        lines.append(
            f"{machine.name:18s} {len(dataset):6d} {mean_labels[machine.name]:11.2f} "
            f"{nn_acc:7.2f}{row}"
        )

    lines.append("")
    lines.append(f"{'kernel':12s}" + "".join(f" {m.name:>16s}" for m in machines))
    probe_means = {m.name: [] for m in machines}
    for name in PROBES:
        loop = KERNELS[name]()
        picks = []
        for machine in machines:
            factor = retuned[machine.name][1].predict_loop(loop)
            probe_means[machine.name].append(factor)
            picks.append(factor)
        lines.append(f"{name:12s}" + "".join(f" {p:16d}" for p in picks))
    lines.append("")
    lines.append("No heuristic code was modified; only the labels changed.")
    emit("extension_retargeting", "\n".join(lines))

    # Shape assertions: labels and advice scale with machine width.
    assert mean_labels[NARROW.name] < mean_labels[ITANIUM2.name]
    assert mean_labels[ITANIUM2.name] <= mean_labels[WIDE.name] + 0.3
    narrow_probe = float(np.mean(probe_means[NARROW.name]))
    wide_probe = float(np.mean(probe_means[WIDE.name]))
    assert narrow_probe < wide_probe
    # The retuned classifiers still learn on every machine.
    for machine in machines:
        assert retuned[machine.name][2] > 0.35
