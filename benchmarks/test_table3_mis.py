"""Table 3 — the most informative features by mutual information score.

The paper bins each feature's values, estimates the joint pmf with the
optimal unroll factor, and ranks features by the mutual information
``I(f; u)``.  Its top five: # floating point operations, # operands,
instruction fan-in in DAG, live range size, # memory operations — all
resource-pressure proxies, while the de facto standard signal (# ops in the
body) ranks much lower.
"""

from repro.features import feature_index
from repro.ml import rank_by_mutual_information

from conftest import emit

#: Feature families the paper's Table 3 draws from: operand/op counts and
#: pressure proxies.  The reproduction's top five should be dominated by
#: these (exact order is substrate-dependent).
PAPER_FAMILY = {
    "num_fp_ops",
    "num_operands",
    "instruction_fan_in",
    "live_range_size",
    "num_mem_ops",
    "num_loads",
    "num_stores",
    "num_uses",
    "num_defs",
    "num_ops",
    "body_bytes",
    "res_mii",
    "est_body_cycles",
    "num_int_ops",
}


def test_table3_mutual_information(benchmark, artifacts_noswp):
    dataset = artifacts_noswp.dataset
    ranked = benchmark.pedantic(
        rank_by_mutual_information,
        args=(dataset.X, dataset.labels),
        iterations=1,
        rounds=1,
    )

    lines = [
        f"Table 3: top features by mutual information ({len(dataset)} loops)",
        "",
        f"{'rank':>4s}  {'feature':28s} {'MIS':>6s}",
    ]
    for position, scored in enumerate(ranked[:10], start=1):
        lines.append(f"{position:4d}  {scored.name:28s} {scored.score:6.3f}")
    ops_rank = next(i for i, s in enumerate(ranked, start=1) if s.name == "num_ops")
    lines.append("")
    lines.append(f"'num_ops' (the de facto unrolling signal) ranks #{ops_rank}")
    lines.append(
        "Paper top 5: # fp ops (0.190), # operands (0.186), DAG fan-in "
        "(0.175), live range size (0.160), # memory ops (0.148)"
    )
    emit("table3_mis", "\n".join(lines))

    # Shape assertions.
    assert len(ranked) == dataset.n_features
    scores = [s.score for s in ranked]
    assert scores == sorted(scores, reverse=True)
    assert all(s.score >= 0.0 for s in ranked)
    top5 = {s.name for s in ranked[:5]}
    assert len(top5 & PAPER_FAMILY) >= 3, top5
    # Informative features carry real signal; the tail carries little.
    assert ranked[0].score > 0.05
    assert ranked[0].score > 3 * ranked[-1].score


def test_mis_of_label_itself_is_entropy(artifacts_noswp):
    """Sanity: a feature equal to the label has MIS == H(label)."""
    import numpy as np

    from repro.ml import mutual_information_score

    labels = artifacts_noswp.dataset.labels
    mis = mutual_information_score(labels.astype(float), labels)
    probs = np.bincount(labels)[1:] / len(labels)
    probs = probs[probs > 0]
    entropy = float(-(probs * np.log2(probs)).sum())
    assert mis == __import__("pytest").approx(entropy, rel=1e-9)
