"""Ablation — the selected feature subset versus all 38 features.

Section 7's claim: "using a well chosen subset of features improves
classification accuracy", because "uninformative features can 'confuse' a
learning algorithm or lead to overfitting", and "learning algorithms are
generally more efficient when shorter feature vectors are used".  This
bench measures both halves — accuracy with the subset vs the full catalog
vs deliberately bad subsets, and the NN lookup speedup from the shorter
vectors.
"""

import time

import numpy as np

from repro.ml import NearNeighborClassifier, accuracy, loocv_nn, loocv_tuned_svm

from conftest import emit


def test_ablation_feature_subset(benchmark, artifacts_noswp, feature_indices):
    dataset = artifacts_noswp.dataset
    rng = np.random.default_rng(11)
    n_sel = len(feature_indices)
    random_subset = np.sort(rng.choice(dataset.n_features, size=n_sel, replace=False))
    worst_guess = np.array([0, 10, 14, 31, 37])  # weak/categorical features

    results = {}
    results["NN  selected"] = accuracy(dataset, loocv_nn(dataset, feature_indices))
    results["NN  all 38"] = accuracy(dataset, loocv_nn(dataset))
    results["NN  random subset"] = accuracy(dataset, loocv_nn(dataset, random_subset))
    results["NN  weak features"] = accuracy(dataset, loocv_nn(dataset, worst_guess))
    results["SVM selected"] = accuracy(
        dataset, benchmark.pedantic(loocv_tuned_svm, args=(dataset, feature_indices),
                                    iterations=1, rounds=1)
    )
    results["SVM all 38"] = accuracy(dataset, loocv_tuned_svm(dataset))

    # Lookup-time half of the claim: shorter vectors scan faster.
    def lookup_time(indices):
        X = dataset.X if indices is None else dataset.X[:, indices]
        model = NearNeighborClassifier().fit(X, dataset.labels)
        start = time.perf_counter()
        for row in range(0, len(X), 37):
            model.predict_one(X[row])
        return time.perf_counter() - start

    t_subset = lookup_time(feature_indices)
    t_full = lookup_time(None)

    lines = [
        f"Ablation: feature subset vs the full catalog ({len(dataset)} loops, LOOCV)",
        "",
    ]
    for name, acc in results.items():
        lines.append(f"  {name:20s} {acc:.3f}")
    lines.append("")
    lines.append(
        f"NN lookup time, {n_sel} selected features: {t_subset * 1e3:.1f} ms "
        f"vs all 38: {t_full * 1e3:.1f} ms"
    )
    lines.append("Paper: the selected subset improves accuracy and lookup speed.")
    emit("ablation_feature_subset", "\n".join(lines))

    # Shape assertions: selection beats the full set for both classifiers
    # (Section 7's headline), and crushes a weak-feature strawman.
    assert results["NN  selected"] >= results["NN  all 38"]
    assert results["SVM selected"] >= results["SVM all 38"]
    assert results["NN  selected"] > results["NN  weak features"] + 0.1
