"""Table 2 — prediction accuracy of NN, SVM, and ORC's heuristic.

Regenerates the paper's central table: for each predictor, the fraction of
loops on which it picked the optimal factor, the second-best factor, ...,
the worst, plus the average runtime cost of landing on each rank.  Uses
leave-one-out cross-validation over the full labelled dataset (SWP off),
exactly as Section 4.2 prescribes.

Paper shape to reproduce: SVM ~0.65 optimal and ~0.79 optimal-or-second,
NN slightly behind, ORC's hand heuristic far behind both; a gentle cost
ladder (second-best only ~7% slower than optimal in the paper).
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.heuristics import (
    train_ensemble_heuristic,
    train_forest_heuristic,
    train_mlp_heuristic,
    train_nn_heuristic,
    train_svm_heuristic,
)
from repro.ml import (
    accuracy,
    loocv_nn,
    loocv_tuned_svm,
    near_optimal_accuracy,
    rank_distribution,
)
from repro.ml.tuning import kfold_indices
from repro.registry import load_artifact, train_model_artifact

from conftest import emit

ROW_NAMES = [
    "Optimal unroll factor",
    "Second-best unroll factor",
    "Third-best unroll factor",
    "Fourth-best unroll factor",
    "Fifth-best unroll factor",
    "Sixth-best unroll factor",
    "Seventh-best unroll factor",
    "Worst unroll factor",
]


def test_table2_rank_distribution(
    benchmark, artifacts_noswp, feature_indices, orc_predictions_noswp
):
    dataset = artifacts_noswp.dataset

    nn_predictions = loocv_nn(dataset, feature_indices)
    svm_predictions = benchmark(loocv_tuned_svm, dataset, feature_indices)

    distributions = {
        "NN": rank_distribution(dataset, nn_predictions),
        "SVM": rank_distribution(dataset, svm_predictions),
        "ORC": rank_distribution(dataset, orc_predictions_noswp),
    }

    lines = [
        f"Table 2: prediction ranks over {len(dataset)} loops (LOOCV, SWP off)",
        "",
        f"{'Prediction Correctness':28s} {'NN':>6s} {'SVM':>6s} {'ORC':>6s} {'Cost':>7s}",
    ]
    for rank, row_name in enumerate(ROW_NAMES, start=1):
        nn_f, cost = distributions["NN"].row(rank)
        svm_f, _ = distributions["SVM"].row(rank)
        orc_f, _ = distributions["ORC"].row(rank)
        lines.append(
            f"{row_name:28s} {nn_f:6.2f} {svm_f:6.2f} {orc_f:6.2f} {cost:6.2f}x"
        )
    lines.append("")
    lines.append(
        "Optimal-or-second-best: "
        f"NN {distributions['NN'].near_optimal:.2f}, "
        f"SVM {distributions['SVM'].near_optimal:.2f}, "
        f"ORC {distributions['ORC'].near_optimal:.2f}"
    )
    lines.append(
        "Paper: SVM 0.65 optimal / 0.79 near-optimal; NN 0.62; ORC 0.16; "
        "cost ladder 1.00-1.77x"
    )
    emit("table2_accuracy", "\n".join(lines))

    # Shape assertions: learned classifiers far ahead of the hand heuristic,
    # SVM at least on par with NN, most predictions near-optimal, gentle
    # cost ladder.
    svm_acc = accuracy(dataset, svm_predictions)
    nn_acc = accuracy(dataset, nn_predictions)
    orc_acc = accuracy(dataset, orc_predictions_noswp)
    assert svm_acc >= 0.5
    assert nn_acc >= 0.5
    assert orc_acc <= 0.4
    assert svm_acc > orc_acc + 0.15
    assert near_optimal_accuracy(dataset, svm_predictions) >= 0.7
    costs = distributions["SVM"].costs
    assert costs[0] == 1.0
    assert costs[1] <= 1.25
    assert np.all(np.diff(costs) >= -1e-9)


FAMILY_NAMES = ("nn", "svm", "mlp", "forest")
N_FOLDS = 3
SEED = 0


def _family_fold_accuracies(dataset, feature_indices):
    """Out-of-fold accuracy for every family and the calibrated ensemble,
    on the *same* seeded folds — the apples-to-apples comparison the
    single-family table can't give."""
    trainers = {
        "nn": lambda train: train_nn_heuristic(train, feature_indices),
        "svm": lambda train: train_svm_heuristic(train, feature_indices),
        "mlp": lambda train: train_mlp_heuristic(train, feature_indices, seed=SEED),
        "forest": lambda train: train_forest_heuristic(
            train, feature_indices, seed=SEED
        ),
    }
    n = len(dataset)
    predictions = {
        name: np.zeros(n, dtype=np.int64) for name in (*FAMILY_NAMES, "ensemble")
    }
    for fold in kfold_indices(n, N_FOLDS, seed=SEED):
        mask = np.ones(n, dtype=bool)
        mask[fold] = False
        train = dataset.subset(mask)
        members = {name: trainer(train) for name, trainer in trainers.items()}
        ensemble = train_ensemble_heuristic(
            train, members, feature_indices, seed=SEED, n_folds=N_FOLDS
        )
        rows = dataset.X[fold]
        for name, heuristic in members.items():
            predictions[name][fold] = heuristic.predict_features(rows)
        predictions["ensemble"][fold] = ensemble.predict_features(rows)
    return {
        name: float(np.mean(preds == dataset.labels))
        for name, preds in predictions.items()
    }


def _registry_roundtrip_identical(dataset, feature_indices) -> bool:
    """Train the full artifact, save, load, and check that every family —
    ensemble included — answers bit-identically to the in-memory copy."""
    artifact = train_model_artifact(dataset, feature_indices, seed=SEED)
    with tempfile.TemporaryDirectory() as tmp:
        reloaded = load_artifact(artifact.save(Path(tmp) / "table2.rma"))
    return all(
        np.array_equal(
            artifact.heuristic(name).predict_features(dataset.X),
            reloaded.heuristic(name).predict_features(dataset.X),
        )
        for name in artifact.families
    )


@pytest.mark.parametrize("regime", ["noswp", "swp"])
def test_table2_family_comparison(
    regime, artifacts_noswp, artifacts_swp, feature_indices, request
):
    """Every predictor family plus the calibrated ensemble on the same
    cross-val folds, per SWP regime: the ensemble must not trail the best
    single family by more than a point, and the whole bundle must
    round-trip the registry bit-identically."""
    artifacts = artifacts_noswp if regime == "noswp" else artifacts_swp
    dataset = artifacts.dataset

    accuracies = _family_fold_accuracies(dataset, feature_indices)
    roundtrip_ok = _registry_roundtrip_identical(dataset, feature_indices)

    lines = [
        f"Table 2 (families): {N_FOLDS}-fold accuracy over {len(dataset)} "
        f"loops (SWP {'on' if regime == 'swp' else 'off'})",
        "",
        f"{'Family':10s} {'Accuracy':>9s}",
    ]
    for name in (*FAMILY_NAMES, "ensemble"):
        lines.append(f"{name:10s} {accuracies[name]:9.3f}")
    lines.append("")
    lines.append("Paper single-family reference: SVM 0.65, NN 0.62 (LOOCV)")
    lines.append(f"Registry round-trip bit-identical: {roundtrip_ok}")
    emit(f"table2_families_{regime}", "\n".join(lines))

    best_family = max(accuracies[name] for name in FAMILY_NAMES)
    assert accuracies["ensemble"] >= best_family - 0.01
    for name in FAMILY_NAMES:
        assert accuracies[name] >= 0.3
    assert roundtrip_ok
