"""Table 2 — prediction accuracy of NN, SVM, and ORC's heuristic.

Regenerates the paper's central table: for each predictor, the fraction of
loops on which it picked the optimal factor, the second-best factor, ...,
the worst, plus the average runtime cost of landing on each rank.  Uses
leave-one-out cross-validation over the full labelled dataset (SWP off),
exactly as Section 4.2 prescribes.

Paper shape to reproduce: SVM ~0.65 optimal and ~0.79 optimal-or-second,
NN slightly behind, ORC's hand heuristic far behind both; a gentle cost
ladder (second-best only ~7% slower than optimal in the paper).
"""

import numpy as np

from repro.ml import (
    accuracy,
    loocv_nn,
    loocv_tuned_svm,
    near_optimal_accuracy,
    rank_distribution,
)

from conftest import emit

ROW_NAMES = [
    "Optimal unroll factor",
    "Second-best unroll factor",
    "Third-best unroll factor",
    "Fourth-best unroll factor",
    "Fifth-best unroll factor",
    "Sixth-best unroll factor",
    "Seventh-best unroll factor",
    "Worst unroll factor",
]


def test_table2_rank_distribution(
    benchmark, artifacts_noswp, feature_indices, orc_predictions_noswp
):
    dataset = artifacts_noswp.dataset

    nn_predictions = loocv_nn(dataset, feature_indices)
    svm_predictions = benchmark(loocv_tuned_svm, dataset, feature_indices)

    distributions = {
        "NN": rank_distribution(dataset, nn_predictions),
        "SVM": rank_distribution(dataset, svm_predictions),
        "ORC": rank_distribution(dataset, orc_predictions_noswp),
    }

    lines = [
        f"Table 2: prediction ranks over {len(dataset)} loops (LOOCV, SWP off)",
        "",
        f"{'Prediction Correctness':28s} {'NN':>6s} {'SVM':>6s} {'ORC':>6s} {'Cost':>7s}",
    ]
    for rank, row_name in enumerate(ROW_NAMES, start=1):
        nn_f, cost = distributions["NN"].row(rank)
        svm_f, _ = distributions["SVM"].row(rank)
        orc_f, _ = distributions["ORC"].row(rank)
        lines.append(
            f"{row_name:28s} {nn_f:6.2f} {svm_f:6.2f} {orc_f:6.2f} {cost:6.2f}x"
        )
    lines.append("")
    lines.append(
        "Optimal-or-second-best: "
        f"NN {distributions['NN'].near_optimal:.2f}, "
        f"SVM {distributions['SVM'].near_optimal:.2f}, "
        f"ORC {distributions['ORC'].near_optimal:.2f}"
    )
    lines.append(
        "Paper: SVM 0.65 optimal / 0.79 near-optimal; NN 0.62; ORC 0.16; "
        "cost ladder 1.00-1.77x"
    )
    emit("table2_accuracy", "\n".join(lines))

    # Shape assertions: learned classifiers far ahead of the hand heuristic,
    # SVM at least on par with NN, most predictions near-optimal, gentle
    # cost ladder.
    svm_acc = accuracy(dataset, svm_predictions)
    nn_acc = accuracy(dataset, nn_predictions)
    orc_acc = accuracy(dataset, orc_predictions_noswp)
    assert svm_acc >= 0.5
    assert nn_acc >= 0.5
    assert orc_acc <= 0.4
    assert svm_acc > orc_acc + 0.15
    assert near_optimal_accuracy(dataset, svm_predictions) >= 0.7
    costs = distributions["SVM"].costs
    assert costs[0] == 1.0
    assert costs[1] <= 1.25
    assert np.all(np.diff(costs) >= -1e-9)
