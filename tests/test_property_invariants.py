"""Property-based tests (hypothesis) for the core invariants.

The heavyweight invariant: *any* loop the strategies can construct, unrolled
by *any* factor, with or without the cleanup passes, computes the same
observable results as the rolled original.  Plus structural invariants of
schedules, spill estimates, and the dataset filters.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ir.dependence import analyze_dependences, edge_latency
from repro.ir.interp import initial_state, run_loop, run_unrolled
from repro.ir.validate import validate_loop
from repro.machine import ITANIUM2
from repro.sched.list_scheduler import list_schedule, steady_state_cycles
from repro.transforms.pipeline import optimize_for_factor
from repro.transforms.unroll import unroll

from tests.strategies import random_loops


class TestUnrollEquivalence:
    @given(loop=random_loops(), factor=st.integers(1, 8), seed=st.integers(0, 10))
    @settings(max_examples=60, deadline=None)
    def test_plain_unroll_preserves_observables(self, loop, factor, seed):
        result = unroll(loop, factor)
        rolled = initial_state(loop, seed=seed)
        transformed = rolled.copy()
        run_loop(loop, rolled)
        run_unrolled(result, transformed)
        for key, expected in rolled.observable(loop).items():
            np.testing.assert_allclose(
                transformed.observable(loop)[key], expected, rtol=1e-12
            )

    @given(loop=random_loops(), factor=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_optimized_unroll_preserves_observables(self, loop, factor):
        result = optimize_for_factor(loop, factor)
        rolled = initial_state(loop, seed=1)
        transformed = rolled.copy()
        run_loop(loop, rolled)
        run_unrolled(result, transformed)
        for key, expected in rolled.observable(loop).items():
            np.testing.assert_allclose(
                transformed.observable(loop)[key], expected, rtol=1e-12
            )

    @given(loop=random_loops(), factor=st.integers(2, 8))
    @settings(max_examples=40, deadline=None)
    def test_unrolled_parts_are_wellformed(self, loop, factor):
        result = unroll(loop, factor)
        if result.main is not None:
            validate_loop(result.main)
        if result.remainder is not None:
            validate_loop(result.remainder)
        # Iteration accounting: main covers factor-sized chunks, the
        # remainder covers what's left.
        total = loop.trip.runtime
        covered = 0
        if result.main is not None:
            covered += result.main.trip.runtime * result.factor
        if result.remainder is not None:
            covered += result.remainder.trip.runtime
        assert covered == total


class TestSchedulerInvariants:
    @given(loop=random_loops())
    @settings(max_examples=40, deadline=None)
    def test_schedule_respects_dependences_and_width(self, loop):
        deps = analyze_dependences(loop)
        schedule = list_schedule(deps, ITANIUM2)
        for edge in deps.acyclic_edges():
            lat = edge_latency(edge, deps.body, ITANIUM2)
            assert schedule.start[edge.dst] >= schedule.start[edge.src] + lat
        per_cycle = {}
        for cycle in schedule.start:
            per_cycle[cycle] = per_cycle.get(cycle, 0) + 1
        assert max(per_cycle.values()) <= ITANIUM2.issue_width

    @given(loop=random_loops(), factor=st.integers(1, 8))
    @settings(max_examples=30, deadline=None)
    def test_steady_state_period_positive_and_bounded(self, loop, factor):
        part = optimize_for_factor(loop, factor).main
        if part is None:
            return
        deps = analyze_dependences(part)
        schedule = list_schedule(deps, ITANIUM2)
        period = steady_state_cycles(deps, schedule, ITANIUM2)
        assert period >= 1
        assert period <= schedule.issue_length + ITANIUM2.backedge_cycles + 64


class TestCostModelInvariants:
    @given(loop=random_loops(), factor=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_costs_positive_and_deterministic(self, loop, factor):
        from repro.simulate import CostModel

        model = CostModel()
        a = model.loop_cost(loop, factor).total_cycles
        b = CostModel().loop_cost(loop, factor).total_cycles
        assert a > 0
        assert a == b

    @given(loop=random_loops())
    @settings(max_examples=20, deadline=None)
    def test_feature_vector_finite(self, loop):
        from repro.features import extract_features

        vector = extract_features(loop)
        assert np.isfinite(vector).all()
