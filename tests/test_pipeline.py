"""Unit tests for the measurement/labelling/evaluation pipeline."""

import numpy as np
import pytest

from repro.ir.program import Suite
from repro.pipeline import (
    EvaluationConfig,
    LabelingConfig,
    evaluate_speedups,
    label_suite,
    measure_suite,
    stats_from_table,
)
from repro.pipeline.cache import build_artifacts, config_key
from repro.simulate import NOISELESS, NoiseModel


class TestMeasurementTable:
    def test_table_covers_every_loop(self, mini_suite, mini_table):
        assert len(mini_table) == mini_suite.n_loops
        assert mini_table.X.shape == (len(mini_table), 38)
        assert (mini_table.true_cycles > 0).all()

    def test_measured_close_to_truth_under_light_noise(self, mini_table):
        ratio = mini_table.measured / np.maximum(mini_table.true_cycles, 1.0)
        assert np.median(ratio) < 1.1  # counter overhead + light jitter

    def test_survivor_mask_filters(self, mini_table):
        strict = mini_table.survivor_mask(min_cycles=1e12, min_benefit=1.0)
        assert not strict.any()
        lax = mini_table.survivor_mask(min_cycles=0.0, min_benefit=1.0)
        assert lax.all()

    def test_dataset_rows_match_mask(self, mini_table, mini_config):
        mask = mini_table.survivor_mask(mini_config.min_cycles, mini_config.min_benefit)
        dataset = mini_table.to_dataset(mini_config.min_cycles, mini_config.min_benefit)
        assert len(dataset) == int(mask.sum())

    def test_labels_are_measured_argmin(self, mini_dataset):
        recomputed = np.argmin(mini_dataset.cycles, axis=1) + 1
        np.testing.assert_array_equal(mini_dataset.labels, recomputed)

    def test_table_round_trip(self, mini_table, tmp_path):
        from repro.pipeline import MeasurementTable

        path = tmp_path / "table.npz"
        mini_table.save(path)
        loaded = MeasurementTable.load(path)
        np.testing.assert_array_equal(loaded.measured, mini_table.measured)
        np.testing.assert_array_equal(loaded.loop_names, mini_table.loop_names)
        assert loaded.swp == mini_table.swp

    def test_rows_for_benchmark(self, mini_table, mini_suite):
        bench = mini_suite.benchmarks[0]
        rows = mini_table.rows_for_benchmark(bench.name)
        assert len(rows) == bench.n_loops


class TestLabelingProtocol:
    def test_stats_partition_the_population(self, mini_table, mini_config):
        stats = stats_from_table(mini_table, mini_config)
        assert (
            stats.n_below_cycle_floor + stats.n_flat + stats.n_labeled
            == stats.n_loops_total
        )
        assert sum(stats.labels_histogram.values()) == stats.n_labeled
        assert "labelled" in stats.summary()

    def test_label_suite_end_to_end(self, mini_suite, mini_config):
        dataset, stats = label_suite(mini_suite, mini_config)
        assert len(dataset) == stats.n_labeled
        assert dataset.swp == mini_config.swp

    def test_measurements_reproducible_from_seed(self, mini_suite, mini_config):
        a = measure_suite(mini_suite, mini_config)
        b = measure_suite(mini_suite, mini_config)
        np.testing.assert_array_equal(a.measured, b.measured)

    def test_noiseless_labels_equal_true_argmin(self, mini_suite):
        config = LabelingConfig(
            swp=False, noise=NOISELESS, n_runs=1, min_cycles=0.0, min_benefit=1.0
        )
        dataset, _ = label_suite(mini_suite, config)
        np.testing.assert_array_equal(
            dataset.labels, np.argmin(dataset.true_cycles, axis=1) + 1
        )

    def test_noise_flips_some_labels(self, mini_suite):
        noisy = LabelingConfig(
            swp=False,
            noise=NoiseModel(sigma=0.05, outlier_rate=0.05),
            n_runs=3,
            min_cycles=0.0,
            min_benefit=1.0,
        )
        dataset, _ = label_suite(mini_suite, noisy)
        true_best = np.argmin(dataset.true_cycles, axis=1) + 1
        agreement = float(np.mean(dataset.labels == true_best))
        assert 0.3 < agreement < 1.0


class TestEvaluation:
    def test_speedup_report_structure(self, mini_suite, mini_table, mini_dataset):
        names = tuple(b.name for b in mini_suite.benchmarks[:3])
        config = EvaluationConfig(swp=False, benchmarks=names)
        report = evaluate_speedups(mini_suite, mini_table, mini_dataset, config)
        assert len(report.results) == 3
        for result in report.results:
            assert set(result.improvements) == {"nn", "svm", "oracle"}
            assert result.runtimes["orc"] > 0

    def test_oracle_bounds_learners_in_noiseless_world(self, mini_suite):
        config = LabelingConfig(
            swp=False, noise=NOISELESS, n_runs=1, min_cycles=0.0, min_benefit=1.0
        )
        table = measure_suite(mini_suite, config)
        dataset = table.to_dataset(0.0, 1.0)
        names = tuple(b.name for b in mini_suite.benchmarks[:3])
        report = evaluate_speedups(
            mini_suite, table, dataset,
            EvaluationConfig(swp=False, benchmarks=names, n_timing_runs=1),
        )
        for result in report.results:
            # With noiseless labels the oracle is truly optimal per loop.
            assert result.improvements["oracle"] >= result.improvements["svm"] - 0.01
            assert result.improvements["oracle"] >= -0.01


class TestCache:
    def test_config_key_sensitivity(self):
        base = LabelingConfig(swp=False)
        swp = LabelingConfig(swp=True)
        assert config_key(1, 1.0, base) != config_key(1, 1.0, swp)
        assert config_key(1, 1.0, base) != config_key(2, 1.0, base)
        assert config_key(1, 1.0, base) != config_key(1, 0.5, base)
        assert config_key(1, 1.0, base) == config_key(1, 1.0, LabelingConfig(swp=False))

    def test_build_artifacts_caches(self, tmp_path):
        import time

        config = LabelingConfig(
            seed=5, swp=False, noise=NOISELESS, n_runs=1,
            min_cycles=0.0, min_benefit=1.0,
        )
        t0 = time.time()
        first = build_artifacts(
            suite_seed=5, loops_scale=0.03, config=config, cache_dir=tmp_path
        )
        cold = time.time() - t0
        t0 = time.time()
        second = build_artifacts(
            suite_seed=5, loops_scale=0.03, config=config, cache_dir=tmp_path
        )
        warm = time.time() - t0
        np.testing.assert_array_equal(first.table.measured, second.table.measured)
        assert warm < cold
        assert any(tmp_path.glob("measurements_*.npz"))
