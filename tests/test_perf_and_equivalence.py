"""Fast-vs-reference equivalence and the ``repro.perf`` bench subsystem.

The performance work keeps every seed code path alive behind
``engine="reference"`` switches; these tests pin the optimized engines to
those references — the cached two-stage cost model, the paired measurement
run, the batched noise stream, the vectorized mutual information, and the
incremental greedy-selection workspaces must all reproduce the seed's
numbers, not merely approximate them.
"""

import dataclasses
import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.instrument import MeasurementRollup
from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.types import Opcode
from repro.ml import (
    greedy_forward_selection,
    mutual_information_score,
    mutual_information_score_reference,
)
from repro.perf import (
    BENCH_SCHEMA_VERSION,
    BenchConfig,
    BenchReport,
    StageTiming,
    write_report,
)
from repro.pipeline import measure_suite_pair
from repro.simulate.executor import AnalysisCache, CostModel
from repro.simulate.noise import DEFAULT_NOISE
from repro.transforms.pipeline import OptimizationPlan

from tests.strategies import random_loops

#: The default plan plus every single-switch ablation the benches use.
PLANS = [
    OptimizationPlan(),
    OptimizationPlan(scalar_replacement=False),
    OptimizationPlan(coalescing=False),
    OptimizationPlan(dead_code_elimination=False),
    OptimizationPlan(
        scalar_replacement=False, coalescing=False, dead_code_elimination=False
    ),
]


class TestCostModelEquivalence:
    """Property: the two-stage cached engine is bit-identical to the seed's
    single-stage reference path for any loop, factor, regime, and plan."""

    @given(
        loop=random_loops(),
        factor=st.integers(1, 8),
        swp=st.booleans(),
        plan=st.sampled_from(PLANS),
    )
    @settings(max_examples=40, deadline=None)
    def test_fast_matches_reference(self, loop, factor, swp, plan):
        fast = CostModel(swp=swp, plan=plan, engine="fast")
        reference = CostModel(swp=swp, plan=plan, engine="reference")
        assert fast.loop_cost(loop, factor) == reference.loop_cost(loop, factor)

    @given(loop=random_loops(), factor=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_shared_cache_serves_both_regimes(self, loop, factor):
        shared = AnalysisCache()
        off = CostModel(swp=False, analysis=shared)
        on = CostModel(swp=True, analysis=shared)
        first_off = off.loop_cost(loop, factor)
        first_on = on.loop_cost(loop, factor)  # reuses the off analysis
        assert shared.hits >= 1
        assert first_off == CostModel(swp=False, engine="reference").loop_cost(
            loop, factor
        )
        assert first_on == CostModel(swp=True, engine="reference").loop_cost(
            loop, factor
        )
        # Cache-hit answers are stable under repeated queries.
        assert off.loop_cost(loop, factor) == first_off
        assert on.loop_cost(loop, factor) == first_on

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            CostModel(engine="turbo")


def _named_loop(name, op=Opcode.FADD, trip=32):
    builder = LoopBuilder(name, trip=TripInfo(runtime=trip))
    value = builder.load("a")
    builder.store(builder.fp(op, value, builder.fconst(1.5)), "b")
    return builder.build()


class TestAnalysisCache:
    def test_lru_bound_evicts_oldest(self):
        cache = AnalysisCache(maxsize=2)
        model = CostModel(analysis=cache)
        loop = _named_loop("lru")
        for factor in (1, 2, 3):
            model.loop_cost(loop, factor)
        assert len(cache) == 2
        # Factor 1 was evicted; factors 2 and 3 still hit.
        model.loop_cost(loop, 2)
        model.loop_cost(loop, 3)
        assert cache.hits == 2
        hits_before = cache.hits
        model.loop_cost(loop, 1)
        assert cache.hits == hits_before  # miss: re-analysed

    def test_name_collision_is_verified_structurally(self):
        cache = AnalysisCache()
        model = CostModel(analysis=cache)
        first = _named_loop("dup", op=Opcode.FADD)
        impostor = _named_loop("dup", op=Opcode.FMUL)
        model.loop_cost(first, 4)
        misses_before = cache.misses
        cost = model.loop_cost(impostor, 4)  # same key, different loop
        assert cache.misses == misses_before + 1
        assert cost == CostModel(engine="reference").loop_cost(impostor, 4)

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            AnalysisCache(maxsize=0)

    def test_clear_preserves_counters(self):
        cache = AnalysisCache()
        model = CostModel(analysis=cache)
        loop = _named_loop("clear")
        model.loop_cost(loop, 2)
        model.loop_cost(loop, 2)
        hits, misses = cache.hits, cache.misses
        cache.clear()
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (hits, misses)


class TestNoiseStreamContract:
    def test_scalar_is_single_row_batch(self):
        rng_scalar = np.random.default_rng(42)
        rng_batch = np.random.default_rng(42)
        single = DEFAULT_NOISE.samples(1e6, 100, rng_scalar, n=30)
        batch = DEFAULT_NOISE.batch_samples(
            np.array([1e6]), np.array([100]), rng_batch, n=30
        )
        np.testing.assert_array_equal(single, batch[0])

    def test_stream_position_depends_only_on_shape(self):
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        DEFAULT_NOISE.batch_samples(
            np.array([1e5, 2e5, 3e5]), np.array([1, 2, 3]), rng_a, n=7
        )
        DEFAULT_NOISE.batch_samples(
            np.array([5e9, 1.0, 7e2]), np.array([999, 1, 10**6]), rng_b, n=7
        )
        np.testing.assert_array_equal(rng_a.random(8), rng_b.random(8))

    def test_batch_medians_match_per_row_medians(self):
        rng = np.random.default_rng(3)
        true_cycles = np.array([2e5, 9e5, 4e6])
        entries = np.array([10, 40, 160])
        rng_m = np.random.default_rng(77)
        rng_s = np.random.default_rng(77)
        medians = DEFAULT_NOISE.batch_medians(true_cycles, entries, rng_m, n=11)
        samples = DEFAULT_NOISE.batch_samples(true_cycles, entries, rng_s, n=11)
        np.testing.assert_array_equal(medians, np.median(samples, axis=1))
        del rng


class TestMeasureSuitePair:
    def test_pair_matches_standalone_runs(self, mini_suite, mini_config, mini_table):
        rollup_off, rollup_on = MeasurementRollup(), MeasurementRollup()
        table_off, table_on = measure_suite_pair(
            mini_suite, mini_config, jobs=1, rollup_off=rollup_off, rollup_on=rollup_on
        )
        from repro.pipeline import measure_suite

        table_on_ref = measure_suite(
            mini_suite, dataclasses.replace(mini_config, swp=True), jobs=1
        )
        for pair_table, ref_table in ((table_off, mini_table), (table_on, table_on_ref)):
            np.testing.assert_array_equal(pair_table.measured, ref_table.measured)
            np.testing.assert_array_equal(pair_table.true_cycles, ref_table.true_cycles)
            np.testing.assert_array_equal(pair_table.X, ref_table.X)
            np.testing.assert_array_equal(pair_table.loop_names, ref_table.loop_names)
        assert not table_off.swp and table_on.swp
        # The ON regime reuses every analysis the OFF regime built.
        hits = rollup_off.analysis_hits() + rollup_on.analysis_hits()
        misses = rollup_off.analysis_misses() + rollup_on.analysis_misses()
        assert hits == misses > 0


#: Computed from the seed's double-loop implementation on this exact input.
_MIS_PIN = 0.9364354703919453


class TestMutualInformationRegression:
    def _pinned_input(self):
        rng = np.random.default_rng(20050320)
        y = rng.integers(1, 9, size=500)
        phi = np.round(y + rng.normal(0, 1.5, size=500), 1)
        return phi, y

    def test_pinned_value(self):
        phi, y = self._pinned_input()
        assert mutual_information_score(phi, y) == pytest.approx(_MIS_PIN, abs=1e-12)
        assert mutual_information_score_reference(phi, y) == pytest.approx(
            _MIS_PIN, abs=1e-12
        )

    def test_fast_matches_reference_across_shapes(self):
        rng = np.random.default_rng(5)
        for kind in range(12):
            n = int(rng.integers(20, 400))
            y = rng.integers(1, 9, size=n)
            if kind % 3 == 0:
                phi = rng.normal(size=n)  # continuous: quantile bins
            elif kind % 3 == 1:
                phi = rng.integers(0, 3, size=n).astype(float)  # low cardinality
            else:
                phi = np.full(n, 2.5)  # constant: zero information
            fast = mutual_information_score(phi, y)
            reference = mutual_information_score_reference(phi, y)
            assert fast == pytest.approx(reference, abs=1e-12)


class TestGreedyEngineEquivalence:
    def _problem(self, n=260, d=12, seed=11):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        # Duplicate some rows so the SVM workspace's deduplicated solver
        # path is exercised alongside the dense fallback.
        X[: n // 4] = X[n // 4 : n // 2]
        y = 1 + (X[:, 3] > 0).astype(int) * 2 + (X[:, 7] > 0).astype(int)
        return X, y

    @pytest.mark.parametrize("classifier", ["nn", "svm"])
    def test_fast_matches_reference(self, classifier):
        X, y = self._problem()
        fast = greedy_forward_selection(
            X, y, classifier, n_features=4, engine="fast"
        )
        reference = greedy_forward_selection(
            X, y, classifier, n_features=4, engine="reference"
        )
        assert [s.index for s in fast] == [s.index for s in reference]
        for fast_step, ref_step in zip(fast, reference):
            assert fast_step.score == pytest.approx(ref_step.score, abs=1e-12)

    @pytest.mark.parametrize("classifier", ["nn", "svm"])
    def test_engines_agree_under_subsampling(self, classifier):
        X, y = self._problem(n=300)
        fast = greedy_forward_selection(
            X, y, classifier, n_features=3, subsample=120, seed=2, engine="fast"
        )
        reference = greedy_forward_selection(
            X, y, classifier, n_features=3, subsample=120, seed=2, engine="reference"
        )
        assert [s.index for s in fast] == [s.index for s in reference]

    def test_unknown_engine_rejected(self):
        X, y = self._problem(n=40)
        with pytest.raises(ValueError):
            greedy_forward_selection(X, y, "nn", n_features=1, engine="warp")


class TestBenchReport:
    def _report(self):
        timing = StageTiming(
            stage="measure",
            reference_seconds=2.0,
            optimized_seconds=0.5,
            detail={"n_loops": 3},
        )
        return BenchReport(config=BenchConfig(), date="2026-08-07", stages=(timing,))

    def test_speedup(self):
        assert self._report().stage("measure").speedup == pytest.approx(4.0)

    def test_zero_optimized_time_is_infinite_speedup(self):
        timing = StageTiming("label", 1.0, 0.0, {})
        assert timing.speedup == float("inf")

    def test_json_schema(self):
        payload = self._report().to_json()
        assert payload["bench_schema_version"] == BENCH_SCHEMA_VERSION
        assert set(payload) == {
            "bench_schema_version",
            "date",
            "config",
            "environment",
            "stages",
        }
        assert set(payload["environment"]) == {"python", "numpy", "machine"}
        stage = payload["stages"][0]
        assert set(stage) == {
            "stage",
            "reference_seconds",
            "optimized_seconds",
            "speedup",
            "detail",
        }
        assert stage["speedup"] == pytest.approx(4.0)

    def test_unknown_stage_raises(self):
        with pytest.raises(KeyError):
            self._report().stage("deploy")

    def test_write_report_round_trips(self, tmp_path):
        path = write_report(self._report(), tmp_path)
        assert path.name == "BENCH_2026-08-07.json"
        payload = json.loads(path.read_text())
        assert payload["stages"][0]["stage"] == "measure"

    def test_quick_config_is_smaller(self):
        quick = BenchConfig.quick_config()
        full = BenchConfig()
        assert quick.quick and not full.quick
        assert quick.loops_scale < full.loops_scale
        assert quick.subsample < full.subsample

    def test_summary_mentions_every_stage(self):
        summary = self._report().summary()
        assert "measure" in summary and "speedup" in summary


class TestCheckedInReport:
    """The repo's newest ``BENCH_<date>.json`` must keep pace with the
    code: a schema bump without a regenerated report means the checked-in
    perf data no longer describes what the bench measures."""

    def _latest(self):
        root = pathlib.Path(__file__).resolve().parent.parent
        reports = sorted(root.glob("BENCH_*.json"))
        assert reports, "no checked-in BENCH_<date>.json report"
        return json.loads(reports[-1].read_text())

    def test_latest_report_is_at_current_schema(self):
        assert self._latest()["bench_schema_version"] == BENCH_SCHEMA_VERSION

    def test_latest_report_has_multiproc_stage(self):
        payload = self._latest()
        stages = {s["stage"]: s for s in payload["stages"]}
        assert "multiproc" in stages
        detail = stages["multiproc"]["detail"]
        assert detail["predictions_match"] is True
        assert detail["balanced"] is True
        assert detail["cpus"] >= 1
        assert set(map(int, detail["runs"])) == set(detail["worker_counts"])

    def test_latest_report_has_lifecycle_stage(self):
        payload = self._latest()
        stages = {s["stage"]: s for s in payload["stages"]}
        assert "lifecycle" in stages
        detail = stages["lifecycle"]["detail"]
        assert detail["promotion_atomic"] is True
        assert detail["rollback_ok"] is True
        assert detail["canary_accepted"] is True
        assert detail["has_fingerprint"] is True
        assert detail["drift_lines_per_s"] > 0
