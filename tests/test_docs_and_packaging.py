"""Housekeeping tests: public API surface, docs, and example integrity.

Cheap guards that keep the five deliverables wired together: the package
exports what the README shows, every documented CLI subcommand exists, the
example scripts at least parse, and the documentation files ship.
"""

import ast
import pathlib

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]


class TestPublicAPI:
    def test_top_level_exports(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports(self):
        import repro.features
        import repro.heuristics
        import repro.ir
        import repro.machine
        import repro.ml
        import repro.pipeline
        import repro.simulate
        import repro.transforms
        import repro.workloads

        for module in (
            repro.ir, repro.machine, repro.transforms, repro.simulate,
            repro.features, repro.workloads, repro.ml, repro.heuristics,
            repro.pipeline,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_quick_predict_signature(self):
        import inspect

        import repro

        parameters = inspect.signature(repro.quick_predict).parameters
        assert "loop" in parameters and "swp" in parameters

    def test_version_is_set(self):
        import repro

        assert repro.__version__


class TestCLICoverage:
    def test_documented_subcommands_exist(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["--help"])

    @pytest.mark.parametrize(
        "command",
        ["build-data", "histogram", "table2", "speedups", "features",
         "predict", "predict-file", "export", "cache"],
    )
    def test_subcommand_registered(self, command, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main([command, "--help"])
        assert excinfo.value.code == 0


class TestExamplesAndDocs:
    @pytest.mark.parametrize(
        "script",
        ["quickstart.py", "compiler_integration.py", "retarget_architecture.py",
         "outlier_inspection.py", "feature_selection_study.py"],
    )
    def test_example_scripts_parse_and_have_docstrings(self, script):
        path = REPO / "examples" / script
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{script} needs a module docstring"
        names = {node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)}
        assert "main" in names

    def test_example_loop_file_parses(self):
        from repro.frontend import parse_program

        source = (REPO / "examples" / "loops.rul").read_text()
        parsed = parse_program(source)
        assert len(parsed) >= 3

    @pytest.mark.parametrize(
        "doc",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md",
         "docs/loop-language.md", "docs/cost-model.md",
         "docs/architecture.md", "docs/testing.md"],
    )
    def test_documentation_ships(self, doc):
        path = REPO / doc
        assert path.exists(), doc
        assert len(path.read_text()) > 500

    def test_design_indexes_every_bench(self):
        design = (REPO / "DESIGN.md").read_text()
        for bench in (REPO / "benchmarks").glob("test_*.py"):
            assert bench.name in design, f"DESIGN.md missing {bench.name}"

    def test_public_functions_have_docstrings(self):
        """Every public function/class in the library carries a docstring."""
        missing = []
        for path in (REPO / "src" / "repro").rglob("*.py"):
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(node, (ast.FunctionDef, ast.ClassDef)):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        missing.append(f"{path.name}:{node.name}")
        assert not missing, missing
