"""Semantic equivalence: rolled versus transformed loops.

These are the load-bearing correctness tests of the compiler substrate: a
loop run rolled and run unrolled (with or without the cleanup passes) on
identical initial state must leave identical observable results — final
array contents and final values of loop-carried scalars.  Hypothesis drives
randomised variants in ``test_property_invariants.py``; the cases here pin
down each mechanism individually.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.builder import LoopBuilder
from repro.ir.interp import initial_state, run_loop, run_unrolled
from repro.ir.loop import TripInfo
from repro.ir.types import CmpOp, DType, Opcode
from repro.transforms.pipeline import OptimizationPlan, optimize_for_factor
from repro.transforms.unroll import unroll
from repro.workloads import kernels

from tests.strategies import awkward_trip_loops, early_exit_loops, predicated_loops

ALL_FACTORS = list(range(1, 9))


def assert_equivalent(loop, factor, carried_inits=None, seed=0, optimized=False, strict_exit=False):
    """Run rolled vs unrolled on identical state; observables must match."""
    if optimized:
        result = optimize_for_factor(loop, factor)
    else:
        result = unroll(loop, factor)
    rolled_state = initial_state(loop, seed=seed, carried_inits=carried_inits)
    unrolled_state = rolled_state.copy()
    run_loop(loop, rolled_state, strict_exit=strict_exit)
    run_unrolled(result, unrolled_state, strict_exit=strict_exit)
    rolled_obs = rolled_state.observable(loop)
    unrolled_obs = unrolled_state.observable(loop)
    assert rolled_obs.keys() == unrolled_obs.keys()
    for key in rolled_obs:
        np.testing.assert_allclose(
            unrolled_obs[key],
            rolled_obs[key],
            rtol=1e-12,
            err_msg=f"{loop.name} factor={factor} key={key}",
        )


@pytest.mark.parametrize("factor", ALL_FACTORS)
class TestKernelEquivalence:
    def test_daxpy(self, factor):
        assert_equivalent(kernels.daxpy(trip=53, entries=1), factor)

    def test_dot_product(self, factor):
        assert_equivalent(kernels.dot_product(trip=41, entries=1), factor)

    def test_stencil(self, factor):
        assert_equivalent(kernels.stencil3(trip=37, entries=1), factor)

    def test_strided(self, factor):
        assert_equivalent(kernels.strided_copy(stride=3, trip=29, entries=1), factor)

    def test_gather(self, factor):
        assert_equivalent(kernels.gather_accumulate(trip=33, entries=1), factor)

    def test_linear_recurrence(self, factor):
        assert_equivalent(kernels.linear_recurrence(trip=26, entries=1), factor)

    def test_int_hash(self, factor):
        assert_equivalent(kernels.int_hash(trip=45, entries=1), factor)

    def test_conditional_update(self, factor):
        assert_equivalent(kernels.conditional_update(trip=31, entries=1), factor)

    def test_complex_multiply(self, factor):
        assert_equivalent(kernels.complex_multiply(trip=27, entries=1), factor)

    def test_scatter(self, factor):
        assert_equivalent(kernels.scatter_increment(trip=23, entries=1), factor)

    def test_max_reduction(self, factor):
        assert_equivalent(kernels.max_reduction(trip=39, entries=1), factor)


@pytest.mark.parametrize("factor", ALL_FACTORS)
class TestOptimizedEquivalence:
    """The full pipeline (scalar replacement + coalescing + DCE) must also
    preserve semantics."""

    def test_daxpy(self, factor):
        assert_equivalent(kernels.daxpy(trip=53, entries=1), factor, optimized=True)

    def test_stencil(self, factor):
        assert_equivalent(kernels.stencil3(trip=37, entries=1), factor, optimized=True)

    def test_fir(self, factor):
        assert_equivalent(kernels.fir_filter(taps=5, trip=44, entries=1), factor, optimized=True)

    def test_complex_multiply(self, factor):
        assert_equivalent(kernels.complex_multiply(trip=30, entries=1), factor, optimized=True)

    def test_cross_iteration_store(self, factor):
        builder = LoopBuilder("t", TripInfo(runtime=35))
        value = builder.load("a", offset=0)
        doubled = builder.fp(Opcode.FMUL, value, builder.fconst(1.25))
        builder.store(doubled, "a", offset=3)
        assert_equivalent(builder.build(), factor, optimized=True)


@pytest.mark.parametrize("factor", ALL_FACTORS)
@pytest.mark.parametrize("exit_at", [0, 1, 6, 19, 39])
class TestEarlyExitEquivalence:
    def test_sentinel_search(self, factor, exit_at):
        """The exit may fire at any iteration, including mid-body."""
        loop = kernels.sentinel_search(trip=40, entries=1)
        key_reg = next(iter(loop.invariant_regs() - {r for r in loop.invariant_regs() if r.dtype is not DType.F64}))
        result = unroll(loop, factor)
        rolled = initial_state(loop, seed=9)
        rolled.arrays["a"][:] = 0.0
        rolled.arrays["a"][exit_at] = rolled.regs[key_reg]
        unrolled = rolled.copy()
        r1 = run_loop(loop, rolled, strict_exit=True)
        r2 = run_unrolled(result, unrolled, strict_exit=True)
        assert r1.exited_early and r2.exited_early
        for key, value in rolled.observable(loop).items():
            np.testing.assert_allclose(unrolled.observable(loop)[key], value)


class TestGeneratedPredication:
    """Hypothesis-driven: any predicated loop the strategy can build stays
    equivalent under every unroll factor, with and without cleanup."""

    @given(loop=predicated_loops(), factor=st.integers(1, 8), seed=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_plain(self, loop, factor, seed):
        assert_equivalent(loop, factor, seed=seed)

    @given(loop=predicated_loops(), factor=st.integers(1, 8))
    @settings(max_examples=25, deadline=None)
    def test_optimized(self, loop, factor):
        assert_equivalent(loop, factor, optimized=True)


class TestGeneratedAwkwardTrips:
    """Hypothesis-driven: prime/odd/tiny trip counts, so every factor hits
    the remainder (or full-unroll clamping) machinery."""

    @given(case=awkward_trip_loops(), factor=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_plain(self, case, factor):
        loop, inits = case
        assert_equivalent(loop, factor, carried_inits=inits)

    @given(case=awkward_trip_loops(), factor=st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_optimized(self, case, factor):
        loop, inits = case
        assert_equivalent(loop, factor, carried_inits=inits, optimized=True)


class TestGeneratedEarlyExits:
    """Hypothesis-driven sentinel searches: the exit may fire at any
    iteration the strategy chose, under any unroll factor."""

    @given(case=early_exit_loops(), factor=st.integers(1, 8), seed=st.integers(0, 5))
    @settings(max_examples=40, deadline=None)
    def test_exit_fires_identically(self, case, factor, seed):
        loop, key_reg, exit_at = case
        result = unroll(loop, factor)
        rolled = initial_state(loop, seed=seed)
        rolled.regs[key_reg] = 3.75  # nonzero so the planted sentinel is unique
        rolled.arrays["a"][:] = 0.0
        rolled.arrays["a"][exit_at] = rolled.regs[key_reg]
        unrolled = rolled.copy()
        r1 = run_loop(loop, rolled, strict_exit=True)
        r2 = run_unrolled(result, unrolled, strict_exit=True)
        assert r1.exited_early and r2.exited_early
        for key, value in rolled.observable(loop).items():
            np.testing.assert_allclose(
                unrolled.observable(loop)[key],
                value,
                err_msg=f"factor={factor} exit_at={exit_at} key={key}",
            )


@pytest.mark.parametrize("factor", [2, 3, 5, 8])
@pytest.mark.parametrize("trip", [1, 2, 3, 7, 8, 9, 64, 65])
class TestAwkwardTripCounts:
    def test_unknown_trip(self, factor, trip):
        builder = LoopBuilder("t", TripInfo(runtime=trip))
        acc = builder.carried(DType.F64, init=0.0)
        value = builder.load("a")
        builder.fp(Opcode.FADD, acc, value, dest=acc)
        builder.store(acc, "out")
        assert_equivalent(builder.build(), factor, carried_inits=builder.carried_inits)

    def test_known_trip(self, factor, trip):
        builder = LoopBuilder("t", TripInfo(runtime=trip, compile_time=trip))
        value = builder.load("a")
        builder.store(builder.fp(Opcode.FMUL, value, builder.fconst(3.0)), "out")
        assert_equivalent(builder.build(), factor)
