"""Unit tests for the LS-SVM and its exact leave-one-out shortcut."""

import numpy as np
import pytest

from repro.ml.svm import LSSVM, multiscale_rbf_kernel, rbf_kernel


def _blobs(n_per=40, gap=3.0, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.normal(loc=(-gap / 2, 0), scale=0.5, size=(n_per, 2))
    b = rng.normal(loc=(+gap / 2, 0), scale=0.5, size=(n_per, 2))
    X = np.vstack([a, b])
    y = np.array([1.0] * n_per + [-1.0] * n_per)
    return X, y


class TestKernels:
    def test_rbf_diagonal_is_one(self):
        X = np.random.default_rng(0).normal(size=(10, 3))
        K = rbf_kernel(X, X, sigma=0.7)
        np.testing.assert_allclose(np.diag(K), 1.0)

    def test_rbf_symmetric_and_bounded(self):
        X = np.random.default_rng(1).normal(size=(15, 4))
        K = rbf_kernel(X, X, sigma=1.0)
        np.testing.assert_allclose(K, K.T)
        assert (K >= 0).all() and (K <= 1.0 + 1e-12).all()

    def test_rbf_decays_with_distance(self):
        A = np.array([[0.0], [1.0], [5.0]])
        K = rbf_kernel(A, np.array([[0.0]]), sigma=1.0)
        assert K[0, 0] > K[1, 0] > K[2, 0]

    def test_multiscale_is_convex_combination(self):
        X = np.random.default_rng(2).normal(size=(8, 3))
        sharp = rbf_kernel(X, X, 0.1)
        smooth = rbf_kernel(X, X, 3.0)
        mixed = multiscale_rbf_kernel(X, X, 0.1, scale_ratio=30.0, mix=0.25)
        np.testing.assert_allclose(mixed, 0.25 * sharp + 0.75 * smooth)

    def test_multiscale_kernel_matrix_is_psd(self):
        X = np.random.default_rng(3).normal(size=(20, 3))
        K = multiscale_rbf_kernel(X, X, 0.2)
        eigenvalues = np.linalg.eigvalsh(K)
        assert eigenvalues.min() > -1e-9


class TestBinaryLSSVM:
    def test_separable_blobs_classified(self):
        X, y = _blobs()
        model = LSSVM(C=10.0, sigma=1.0).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.98

    def test_decision_values_sign_matches_predict(self):
        X, y = _blobs(seed=3)
        model = LSSVM(C=5.0, sigma=0.8).fit(X, y)
        values = model.decision_values(X)
        np.testing.assert_array_equal(np.sign(values) >= 0, model.predict(X) == 1)

    def test_multi_rhs_trains_independent_machines(self):
        X, y = _blobs(seed=4)
        Y = np.stack([y, -y], axis=1)
        model = LSSVM(C=10.0, sigma=1.0).fit(X, Y)
        values = model.decision_values(X)
        assert values.shape == (len(X), 2)
        np.testing.assert_allclose(values[:, 0], -values[:, 1], atol=1e-8)

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ValueError):
            LSSVM(C=0.0)
        with pytest.raises(ValueError):
            LSSVM(sigma=-1.0)
        with pytest.raises(ValueError):
            LSSVM(kernel="poly")

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            LSSVM().decision_values(np.zeros((1, 2)))


class TestLeaveOneOutIdentity:
    """The closed-form LOO decision values must match explicit refits."""

    @pytest.mark.parametrize("kernel", ["rbf", "multiscale"])
    def test_loo_matches_refit(self, kernel):
        X, y = _blobs(n_per=15, gap=2.0, seed=5)
        model = LSSVM(C=4.0, sigma=0.9, kernel=kernel).fit(X, y)
        fast = model.loo_decision_values()
        for i in range(len(X)):
            mask = np.ones(len(X), dtype=bool)
            mask[i] = False
            refit = LSSVM(C=4.0, sigma=0.9, kernel=kernel).fit(X[mask], y[mask])
            expected = float(np.asarray(refit.decision_values(X[i : i + 1])).ravel()[0])
            assert fast[i] == pytest.approx(expected, rel=1e-6, abs=1e-8), i

    def test_loo_matches_refit_multi_rhs(self):
        X, y = _blobs(n_per=12, seed=6)
        Y = np.stack([y, np.where(X[:, 1] > 0, 1.0, -1.0)], axis=1)
        model = LSSVM(C=2.0, sigma=1.1).fit(X, Y)
        fast = model.loo_decision_values()
        for i in range(0, len(X), 3):
            mask = np.ones(len(X), dtype=bool)
            mask[i] = False
            refit = LSSVM(C=2.0, sigma=1.1).fit(X[mask], Y[mask])
            expected = np.asarray(refit.decision_values(X[i : i + 1])).ravel()
            np.testing.assert_allclose(fast[i], expected, rtol=1e-6, atol=1e-8)
