"""Unit tests for the dataset container and the Table 2 metrics."""

import numpy as np
import pytest

from repro.ir.types import MAX_UNROLL
from repro.ml import (
    LoopDataset,
    accuracy,
    concatenate,
    mean_cost_ratio,
    near_optimal_accuracy,
    prediction_ranks,
    rank_distribution,
)


def _toy_dataset(n=12, seed=0, swp=False):
    rng = np.random.default_rng(seed)
    cycles = rng.uniform(1_000.0, 2_000.0, size=(n, MAX_UNROLL))
    labels = np.argmin(cycles, axis=1) + 1
    return LoopDataset(
        X=rng.normal(size=(n, 38)),
        labels=labels.astype(np.int64),
        cycles=cycles,
        true_cycles=cycles * 1.01,
        loop_names=np.array([f"bench{i % 3}/loop{i}" for i in range(n)]),
        benchmarks=np.array([f"bench{i % 3}" for i in range(n)]),
        suites=np.array(["s"] * n),
        languages=np.array(["C"] * n),
        swp=swp,
    )


class TestDataset:
    def test_shape_validation(self):
        ds = _toy_dataset()
        with pytest.raises(ValueError):
            LoopDataset(
                X=ds.X[:, :10],
                labels=ds.labels,
                cycles=ds.cycles,
                true_cycles=ds.true_cycles,
                loop_names=ds.loop_names,
                benchmarks=ds.benchmarks,
                suites=ds.suites,
                languages=ds.languages,
                swp=False,
            )

    def test_label_range_validation(self):
        ds = _toy_dataset()
        bad = ds.labels.copy()
        bad[0] = 9
        with pytest.raises(ValueError):
            LoopDataset(
                X=ds.X, labels=bad, cycles=ds.cycles, true_cycles=ds.true_cycles,
                loop_names=ds.loop_names, benchmarks=ds.benchmarks,
                suites=ds.suites, languages=ds.languages, swp=False,
            )

    def test_exclude_benchmark(self):
        ds = _toy_dataset()
        rest = ds.exclude_benchmark("bench0")
        assert "bench0" not in set(rest.benchmarks)
        assert len(rest) + len(ds.only_benchmark("bench0")) == len(ds)

    def test_benchmark_names_preserve_order(self):
        ds = _toy_dataset()
        assert ds.benchmark_names() == ("bench0", "bench1", "bench2")

    def test_rank_and_cost_helpers(self):
        ds = _toy_dataset()
        for row in range(len(ds)):
            best = int(ds.labels[row])
            assert ds.rank_of_prediction(row, best) == 1
            assert ds.cost_ratio(row, best) == pytest.approx(1.0)

    def test_label_histogram_sums_to_one(self):
        ds = _toy_dataset(n=50)
        assert ds.label_histogram().sum() == pytest.approx(1.0)

    def test_save_load_round_trip(self, tmp_path):
        ds = _toy_dataset()
        path = tmp_path / "ds.npz"
        ds.save(path)
        loaded = LoopDataset.load(path)
        np.testing.assert_array_equal(loaded.X, ds.X)
        np.testing.assert_array_equal(loaded.labels, ds.labels)
        np.testing.assert_array_equal(loaded.loop_names, ds.loop_names)
        assert loaded.swp == ds.swp

    def test_concatenate(self):
        a, b = _toy_dataset(seed=1), _toy_dataset(seed=2)
        combined = concatenate([a, b])
        assert len(combined) == len(a) + len(b)

    def test_concatenate_rejects_mixed_regimes(self):
        with pytest.raises(ValueError, match="regime"):
            concatenate([_toy_dataset(swp=False), _toy_dataset(swp=True)])


class TestMetrics:
    def test_perfect_predictions(self):
        ds = _toy_dataset()
        assert accuracy(ds, ds.labels) == 1.0
        assert near_optimal_accuracy(ds, ds.labels) == 1.0
        assert mean_cost_ratio(ds, ds.labels) == pytest.approx(1.0)
        distribution = rank_distribution(ds, ds.labels)
        assert distribution.optimal == 1.0
        assert distribution.fractions[1:].sum() == 0.0

    def test_worst_predictions(self):
        ds = _toy_dataset()
        worst = np.argmax(ds.cycles, axis=1) + 1
        ranks = prediction_ranks(ds, worst)
        assert (ranks == MAX_UNROLL).all()
        assert mean_cost_ratio(ds, worst) > 1.0

    def test_cost_column_is_dataset_property(self):
        """The Cost column depends only on the dataset, not the predictor."""
        ds = _toy_dataset()
        a = rank_distribution(ds, ds.labels)
        b = rank_distribution(ds, np.full(len(ds), 1))
        np.testing.assert_allclose(a.costs, b.costs)

    def test_costs_monotone(self):
        ds = _toy_dataset(n=40, seed=5)
        costs = rank_distribution(ds, ds.labels).costs
        assert np.all(np.diff(costs) >= -1e-12)
        assert costs[0] == pytest.approx(1.0)

    def test_prediction_length_checked(self):
        ds = _toy_dataset()
        with pytest.raises(ValueError):
            prediction_ranks(ds, ds.labels[:-1])

    def test_fractions_sum_to_one(self):
        ds = _toy_dataset(n=30, seed=7)
        rng = np.random.default_rng(0)
        predictions = rng.integers(1, 9, size=len(ds))
        distribution = rank_distribution(ds, predictions)
        assert distribution.fractions.sum() == pytest.approx(1.0)
