"""Unit tests for the software pipeliner (modulo scheduling)."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.dependence import analyze_dependences, edge_latency
from repro.ir.loop import TripInfo
from repro.ir.types import DType, FUKind, Opcode
from repro.machine import ITANIUM2, NARROW
from repro.sched.modulo import (
    ModuloScheduleError,
    modulo_schedule,
    recurrence_mii,
    resource_mii,
    swp_register_pressure,
)


def assert_kernel_legal(loop, machine):
    """A modulo schedule must honor dependences modulo II and the MRT."""
    deps = analyze_dependences(loop)
    kernel = modulo_schedule(deps, machine)
    # Dependences: start(dst) + II*distance >= start(src) + latency.
    for edge in deps.edges:
        lat = edge_latency(edge, deps.body, machine)
        assert (
            kernel.start[edge.dst] + kernel.ii * edge.distance
            >= kernel.start[edge.src] + lat
        ), f"violated {edge} at II={kernel.ii}"
    # Modulo reservation: per row, per kind, capacity respected (A-type ops
    # may use INT or MEM, so check the joint capacity).
    rows: dict[int, list] = {}
    for pos, t in enumerate(kernel.start):
        rows.setdefault(t % kernel.ii, []).append(deps.body[pos])
    for row, members in rows.items():
        fp = sum(1 for m in members if m.op.fu_kind is FUKind.FP and m.op.info.pipelined)
        assert fp <= machine.fu_counts[FUKind.FP]
        mem_like = sum(1 for m in members if m.op.fu_kind in (FUKind.MEM, FUKind.INT))
        assert mem_like <= machine.fu_counts[FUKind.MEM] + machine.fu_counts[FUKind.INT]
    return deps, kernel


class TestResourceMII:
    def test_memory_bound_loop_is_fractional(self, daxpy_loop):
        deps = analyze_dependences(daxpy_loop)
        # 3 memory ops on 2 ports -> 1.5.
        assert resource_mii(deps, ITANIUM2) == pytest.approx(1.5)

    def test_narrow_machine_raises_bound(self, daxpy_loop):
        deps = analyze_dependences(daxpy_loop)
        # 1 memory port -> 3 memory slots.
        assert resource_mii(deps, NARROW) >= 3.0

    def test_non_pipelined_ops_count_full_latency(self):
        builder = LoopBuilder("t", TripInfo(runtime=64))
        a = builder.load("a")
        builder.store(builder.fp(Opcode.FDIV, a, builder.fconst(3.0)), "out")
        deps = analyze_dependences(builder.build())
        # The divide blocks an FP unit for its full 24 cycles.
        assert resource_mii(deps, ITANIUM2) >= 12.0

    def test_branches_cost_whole_cycles(self):
        from repro.workloads.kernels import sentinel_search

        deps = analyze_dependences(sentinel_search(trip=32, entries=1))
        assert resource_mii(deps, ITANIUM2) >= 1.0


class TestRecurrenceMII:
    def test_dataflow_only_loop_has_unit_recmii(self, daxpy_loop):
        deps = analyze_dependences(daxpy_loop)
        assert recurrence_mii(deps, ITANIUM2) == 1

    def test_reduction_recmii_is_add_latency(self, reduction_loop):
        loop, _, _ = reduction_loop
        deps = analyze_dependences(loop)
        assert recurrence_mii(deps, ITANIUM2) == ITANIUM2.latencies[Opcode.FADD]

    def test_memory_recurrence_divides_by_distance(self):
        # a[i+3] = f(a[i]): latency of (load; fmul; store->load) over
        # distance 3.
        builder = LoopBuilder("t", TripInfo(runtime=64))
        value = builder.load("a", offset=0)
        scaled = builder.fp(Opcode.FMUL, value, builder.fconst(0.5))
        builder.store(scaled, "a", offset=3)
        deps = analyze_dependences(builder.build())
        machine = ITANIUM2
        chain = machine.load_latency + machine.latencies[Opcode.FMUL] + 1
        expected = -(-chain // 3)
        assert recurrence_mii(deps, machine) == expected

    def test_longer_distance_lowers_recmii(self):
        def rec_mii_for(distance):
            builder = LoopBuilder("t", TripInfo(runtime=64))
            value = builder.load("a", offset=0)
            scaled = builder.fp(Opcode.FMUL, value, builder.fconst(0.5))
            builder.store(scaled, "a", offset=distance)
            return recurrence_mii(analyze_dependences(builder.build()), ITANIUM2)

        assert rec_mii_for(1) > rec_mii_for(4)


class TestKernelSchedules:
    def test_daxpy_achieves_small_ii(self, daxpy_loop):
        deps, kernel = assert_kernel_legal(daxpy_loop, ITANIUM2)
        assert kernel.ii <= 3  # ceil(1.5) + slack

    def test_reduction_ii_bounded_by_recurrence(self, reduction_loop):
        loop, _, _ = reduction_loop
        deps, kernel = assert_kernel_legal(loop, ITANIUM2)
        assert kernel.ii >= ITANIUM2.latencies[Opcode.FADD]

    def test_unrolled_body_fractional_ii_recovery(self, daxpy_loop):
        """The paper's fractional-II effect: unrolling by 2 schedules two
        iterations in ceil(2 * 1.5) = 3 cycles, 1.5/iteration."""
        from repro.transforms.unroll import unroll

        rolled = modulo_schedule(analyze_dependences(daxpy_loop), ITANIUM2)
        unrolled_loop = unroll(daxpy_loop, 2).main
        unrolled = modulo_schedule(analyze_dependences(unrolled_loop), ITANIUM2)
        assert rolled.ii / 1 > unrolled.ii / 2

    def test_stencil_kernel_legal(self, stencil_loop):
        assert_kernel_legal(stencil_loop, ITANIUM2)

    def test_narrow_machine_kernels_legal(self, daxpy_loop, stencil_loop):
        assert_kernel_legal(daxpy_loop, NARROW)
        assert_kernel_legal(stencil_loop, NARROW)

    def test_infeasible_budget_raises(self, daxpy_loop):
        deps = analyze_dependences(daxpy_loop)
        with pytest.raises(ModuloScheduleError):
            modulo_schedule(deps, ITANIUM2, ii_budget=0)


class TestSWPPressure:
    def test_pressure_counts_overlapping_lifetimes(self, daxpy_loop):
        deps = analyze_dependences(daxpy_loop)
        kernel = modulo_schedule(deps, ITANIUM2)
        int_need, fp_need = swp_register_pressure(deps, kernel)
        assert fp_need >= 3  # two loaded values + the fma result in flight
        assert int_need == 0

    def test_longer_lifetimes_need_more_rotating_registers(self, reduction_loop):
        loop, _, _ = reduction_loop
        deps = analyze_dependences(loop)
        kernel = modulo_schedule(deps, ITANIUM2)
        int_need, fp_need = swp_register_pressure(deps, kernel)
        assert fp_need >= 2
