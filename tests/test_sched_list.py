"""Unit tests for the list scheduler."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.dependence import analyze_dependences, edge_latency
from repro.ir.loop import TripInfo
from repro.ir.types import CmpOp, DType, FUKind, Opcode
from repro.machine import ITANIUM2, NARROW
from repro.sched.list_scheduler import list_schedule, steady_state_cycles


def assert_schedule_legal(loop, machine):
    """A schedule must honor intra-iteration dependences, FU capacities,
    issue width, and branch group-termination."""
    deps = analyze_dependences(loop)
    schedule = list_schedule(deps, machine)
    start = schedule.start
    # Dependences.
    for edge in deps.acyclic_edges():
        lat = edge_latency(edge, deps.body, machine)
        assert start[edge.dst] >= start[edge.src] + lat, (
            f"edge {edge} violated: {start[edge.src]} + {lat} > {start[edge.dst]}"
        )
    # Per-cycle capacity.
    by_cycle: dict[int, list[int]] = {}
    for pos, cycle in enumerate(start):
        by_cycle.setdefault(cycle, []).append(pos)
    for cycle, members in by_cycle.items():
        assert len(members) <= machine.issue_width
        branch_members = [m for m in members if deps.body[m].op.is_branch]
        assert len(branch_members) <= 1
        # Dedicated unit classes must not be oversubscribed (A-type int ops
        # may borrow MEM slots, so check FP/BR strictly and MEM+INT jointly).
        fp_ops = sum(1 for m in members if deps.body[m].op.fu_kind is FUKind.FP)
        assert fp_ops <= machine.fu_counts[FUKind.FP]
        mem_ops = sum(1 for m in members if deps.body[m].op.fu_kind is FUKind.MEM)
        assert mem_ops <= machine.fu_counts[FUKind.MEM]
    return deps, schedule


class TestLegality:
    def test_daxpy_on_default_machine(self, daxpy_loop):
        assert_schedule_legal(daxpy_loop, ITANIUM2)

    def test_daxpy_on_narrow_machine(self, daxpy_loop):
        assert_schedule_legal(daxpy_loop, NARROW)

    def test_wide_body_respects_memory_ports(self):
        builder = LoopBuilder("t", TripInfo(runtime=8))
        for k in range(8):
            builder.store(builder.load(f"a{k}"), f"out{k}")
        deps, schedule = assert_schedule_legal(builder.build(), ITANIUM2)
        # 16 memory ops over 2 ports: at least 8 cycles of issue.
        assert schedule.issue_length >= 8

    def test_empty_body_unreachable_by_construction(self):
        # Loops cannot be empty; the scheduler still handles length-1.
        builder = LoopBuilder("t", TripInfo(runtime=4))
        builder.store(builder.fconst(1.0), "out")
        deps = analyze_dependences(builder.build())
        schedule = list_schedule(deps, ITANIUM2)
        assert schedule.issue_length == 1


class TestLatencyBehaviour:
    def test_dependent_chain_spreads_over_latency(self, daxpy_loop):
        deps = analyze_dependences(daxpy_loop)
        schedule = list_schedule(deps, ITANIUM2)
        # loads at 0; fma at >= 6 (load latency); store at >= 10.
        assert schedule.start[2] >= 6
        assert schedule.start[3] >= 10
        assert schedule.completion_length >= 11

    def test_independent_ops_pack_tightly(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        a = builder.load("a")
        b = builder.load("b")
        builder.store(a, "out1")
        builder.store(b, "out2")
        deps = analyze_dependences(builder.build())
        schedule = list_schedule(deps, ITANIUM2)
        # Two loads on two ports in cycle 0.
        assert schedule.start[0] == 0 and schedule.start[1] == 0

    def test_non_pipelined_divide_blocks_its_unit(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        a = builder.load("a")
        b = builder.load("b")
        d1 = builder.fp(Opcode.FDIV, a, b)
        d2 = builder.fp(Opcode.FDIV, b, a)
        d3 = builder.fp(Opcode.FDIV, a, a)
        builder.store(d1, "o1")
        builder.store(d2, "o2")
        builder.store(d3, "o3")
        deps = analyze_dependences(builder.build())
        schedule = list_schedule(deps, ITANIUM2)
        div_starts = sorted(schedule.start[2:5])
        # Two FP units, divide occupancy = 24 cycles: the third divide must
        # wait for a unit to free up.
        assert div_starts[2] >= div_starts[0] + 24


class TestSteadyState:
    def test_period_bounded_by_resources_and_issue(self, daxpy_loop):
        deps = analyze_dependences(daxpy_loop)
        schedule = list_schedule(deps, ITANIUM2)
        period = steady_state_cycles(deps, schedule, ITANIUM2)
        resource_floor = -(-len(daxpy_loop.body) // ITANIUM2.issue_width)
        assert resource_floor <= period <= schedule.issue_length + ITANIUM2.backedge_cycles

    def test_overlap_efficiency_compresses_stalls(self, daxpy_loop):
        from dataclasses import replace

        deps = analyze_dependences(daxpy_loop)
        schedule = list_schedule(deps, ITANIUM2)
        strict = replace(
            ITANIUM2,
            fu_counts=dict(ITANIUM2.fu_counts),
            latencies=dict(ITANIUM2.latencies),
            overlap_efficiency=0.0,
        )
        assert steady_state_cycles(deps, schedule, strict) > steady_state_cycles(
            deps, schedule, ITANIUM2
        )
        assert steady_state_cycles(deps, schedule, strict) == (
            schedule.issue_length + ITANIUM2.backedge_cycles
        )

    def test_recurrence_bounds_period(self, reduction_loop):
        loop, _, _ = reduction_loop
        deps = analyze_dependences(loop)
        schedule = list_schedule(deps, ITANIUM2)
        period = steady_state_cycles(deps, schedule, ITANIUM2)
        # The FADD feeds itself next iteration: period >= its latency.
        assert period >= ITANIUM2.latencies[Opcode.FADD]

    def test_branches_terminate_issue_groups(self):
        builder = LoopBuilder("t", TripInfo(runtime=16, counted=False))
        for k in range(3):
            value = builder.load(f"a{k}")
            hit = builder.cmp(CmpOp.GT, value, builder.fconst(9.0), fp=True)
            builder.exit_if(hit)
        loop = builder.build()
        deps = analyze_dependences(loop)
        schedule = list_schedule(deps, ITANIUM2)
        # Three branches need three distinct cycles.
        branch_cycles = {
            schedule.start[i]
            for i, inst in enumerate(loop.body)
            if inst.op is Opcode.BR_EXIT
        }
        assert len(branch_cycles) == 3
