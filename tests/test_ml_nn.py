"""Unit tests for the near-neighbor classifier."""

import numpy as np
import pytest

from repro.ml.near_neighbor import DEFAULT_RADIUS, NearNeighborClassifier


def _clustered(seed=0):
    rng = np.random.default_rng(seed)
    centers = {1: (0.0, 0.0), 2: (10.0, 0.0), 4: (0.0, 10.0), 8: (10.0, 10.0)}
    X, y = [], []
    for label, center in centers.items():
        points = rng.normal(loc=center, scale=0.6, size=(25, 2))
        X.append(points)
        y.extend([label] * 25)
    return np.vstack(X), np.array(y)


class TestBasics:
    def test_default_radius_is_the_papers(self):
        assert DEFAULT_RADIUS == 0.3

    def test_fit_requires_data(self):
        with pytest.raises(ValueError):
            NearNeighborClassifier().fit(np.zeros((0, 3)), np.zeros(0))

    def test_unfitted_prediction_raises(self):
        with pytest.raises(RuntimeError):
            NearNeighborClassifier().predict(np.zeros((1, 3)))

    def test_invalid_radius_rejected(self):
        with pytest.raises(ValueError):
            NearNeighborClassifier(radius=0.0)

    def test_clustered_data_classified(self):
        X, y = _clustered()
        model = NearNeighborClassifier().fit(X, y)
        assert (model.predict(X) == y).mean() == 1.0


class TestVotingSemantics:
    def test_majority_vote_within_radius(self):
        # Two class-2 points and one class-1 point near the query.
        X = np.array([[0.0, 0.0], [0.02, 0.0], [0.04, 0.0], [1.0, 1.0]])
        y = np.array([2, 2, 1, 8])
        model = NearNeighborClassifier(radius=0.3).fit(X, y)
        pred = model.predict_one(np.array([0.01, 0.0]))
        assert pred.label == 2
        assert pred.n_neighbors == 3
        assert not pred.used_fallback

    def test_no_neighbors_falls_back_to_nearest(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        y = np.array([4, 8])
        model = NearNeighborClassifier(radius=0.05).fit(X, y)
        pred = model.predict_one(np.array([0.6, 0.6]))
        assert pred.used_fallback
        assert pred.n_neighbors == 0
        assert pred.label == 8

    def test_tie_falls_back_to_single_nearest(self):
        X = np.array([[0.0, 0.0], [0.2, 0.0], [1.0, 0.0], [1.0, 0.2]])
        y = np.array([2, 2, 4, 4])
        model = NearNeighborClassifier(radius=2.0).fit(X, y)
        pred = model.predict_one(np.array([0.05, 0.0]))
        assert pred.used_fallback  # 2-2 vote tie
        assert pred.label == 2  # nearest neighbor decides

    def test_confidence_reflects_vote_share(self):
        # After min-max normalisation the clusters sit at the unit square's
        # corners (spread ~0.06), so radius 0.25 captures only same-cluster
        # neighbors: votes should be unanimous.
        X, y = _clustered()
        model = NearNeighborClassifier(radius=0.25).fit(X, y)
        confidences = model.confidences(X[:5])
        assert (confidences > 0.9).all()


class TestNormalization:
    def test_large_scale_features_do_not_dominate(self):
        # Feature 0 decides the class; feature 1 is huge random noise.
        rng = np.random.default_rng(2)
        n = 60
        decisive = np.concatenate([np.zeros(n // 2), np.ones(n // 2)])
        noise = rng.uniform(0, 1e6, size=n)
        X = np.stack([decisive, noise], axis=1)
        y = np.where(decisive > 0.5, 8, 1)
        model = NearNeighborClassifier().fit(X, y)
        queries = np.stack([[0.0, 5e5], [1.0, 5e5]], axis=0)
        assert list(model.predict(queries)) == [1, 8]


class TestLOOCV:
    def test_fast_loocv_matches_naive(self, mini_dataset):
        from repro.ml.crossval import loocv_naive, loocv_nn

        limit = min(60, len(mini_dataset))
        fast = loocv_nn(mini_dataset)[:limit]
        naive = loocv_naive(
            mini_dataset,
            factory=lambda: NearNeighborClassifier(),
            limit=limit,
        )
        # The naive path refits (normalisation changes slightly without the
        # held-out row); agreement must still be nearly total.
        agreement = float(np.mean(fast == naive))
        assert agreement >= 0.9

    def test_loocv_excludes_self(self):
        # Duplicate points with conflicting labels: with self included the
        # accuracy would be perfect; excluding self it cannot be.
        X = np.repeat(np.array([[0.0, 0.0], [1.0, 1.0]]), 2, axis=0)
        y = np.array([1, 2, 4, 8])
        model = NearNeighborClassifier(radius=0.1).fit(X, y)
        loo = model.loocv_predictions()
        assert list(loo) == [2, 1, 8, 4]
