"""Unit tests for the heuristics: ORC, oracle, fixed, and learned."""

import numpy as np
import pytest

from repro.heuristics import (
    FixedFactorHeuristic,
    ORCHeuristic,
    OracleHeuristic,
    orc_unroll_factor_no_swp,
    orc_unroll_factor_swp,
    train_nn_heuristic,
    train_svm_heuristic,
)
from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.types import DType, Opcode
from repro.workloads.kernels import daxpy, gather_accumulate, sentinel_search


def _loop_of_size(n_ops, trip=256, known=False):
    builder = LoopBuilder("t", TripInfo(runtime=trip, compile_time=trip if known else None))
    for k in range(max(1, n_ops // 2)):
        value = builder.load(f"a{k}")
        builder.store(value, f"o{k}")
    return builder.build()


class TestORCNoSWP:
    def test_full_unroll_of_short_known_trips(self):
        loop = _loop_of_size(4, trip=6, known=True)
        assert orc_unroll_factor_no_swp(loop) == 6

    def test_exit_loops_barely_unrolled(self):
        loop = sentinel_search(trip=64, entries=1)
        assert orc_unroll_factor_no_swp(loop) <= 2

    def test_huge_bodies_not_unrolled(self):
        loop = _loop_of_size(400)
        assert orc_unroll_factor_no_swp(loop) == 1

    def test_budget_fills_exactly_not_pow2(self):
        # A 26-op body under the 150-op budget: 150 // 26 = 5 — the model
        # happily picks a non-power-of-two (its signature blind spot).
        loop = _loop_of_size(26)
        assert orc_unroll_factor_no_swp(loop) == 5

    def test_divisor_preference_for_known_trips(self):
        loop = _loop_of_size(26, trip=100, known=True)
        # Budget allows 5; 5 divides 100, so no remainder loop: pick 5.
        assert orc_unroll_factor_no_swp(loop) == 5
        prime = _loop_of_size(26, trip=101, known=True)
        # Nothing in 2..5 divides 101: refuse to unroll.
        assert orc_unroll_factor_no_swp(prime) == 1

    def test_indirect_refs_capped(self):
        loop = gather_accumulate(trip=128, entries=1)
        assert orc_unroll_factor_no_swp(loop) <= 2


class TestORCSWP:
    def test_fractional_ii_drives_the_choice(self):
        # daxpy: ResMII = 1.5 -> unrolling by 2 gives an integral bound.
        loop = daxpy(trip=512, entries=1)
        assert orc_unroll_factor_swp(loop) == 2

    def test_exit_loops_fall_back_to_no_swp_rule(self):
        loop = sentinel_search(trip=64, entries=1)
        assert orc_unroll_factor_swp(loop) == orc_unroll_factor_no_swp(loop)

    def test_wrapper_dispatch(self):
        loop = daxpy(trip=512, entries=1)
        assert ORCHeuristic(swp=True).predict_loop(loop) == orc_unroll_factor_swp(loop)
        assert ORCHeuristic(swp=False).predict_loop(loop) == orc_unroll_factor_no_swp(loop)


class TestOracle:
    def test_reads_measured_best(self, mini_dataset, mini_suite):
        oracle = OracleHeuristic.from_dataset(mini_dataset)
        loops = {l.name: l for b in mini_suite.benchmarks for l in b.loops}
        name = str(mini_dataset.loop_names[0])
        assert oracle.predict_loop(loops[name]) == int(mini_dataset.labels[0])

    def test_unmeasured_loops_default_to_rolled(self, mini_suite):
        oracle = OracleHeuristic({})
        loop = mini_suite.benchmarks[0].loops[0]
        assert oracle.predict_loop(loop) == 1

    def test_fixed_factor(self, daxpy_loop):
        assert FixedFactorHeuristic(4).predict_loop(daxpy_loop) == 4
        with pytest.raises(ValueError):
            FixedFactorHeuristic(9)


class TestLearnedHeuristics:
    def test_nn_heuristic_round_trip(self, mini_dataset, mini_suite):
        heuristic = train_nn_heuristic(mini_dataset)
        loops = {l.name: l for b in mini_suite.benchmarks for l in b.loops}
        # A loop from the training set should usually get its own label
        # back (its own feature vector sits in the database).
        hits = 0
        rows = range(0, len(mini_dataset), max(1, len(mini_dataset) // 20))
        for row in rows:
            loop = loops[str(mini_dataset.loop_names[row])]
            if heuristic.predict_loop(loop) == int(mini_dataset.labels[row]):
                hits += 1
        assert hits / len(list(rows)) > 0.5

    def test_svm_heuristic_predicts_in_range(self, mini_dataset, daxpy_loop):
        heuristic = train_svm_heuristic(mini_dataset)
        assert 1 <= heuristic.predict_loop(daxpy_loop) <= 8

    def test_feature_subset_plumbed_through(self, mini_dataset, daxpy_loop):
        indices = np.array([1, 2, 4, 19, 24])
        heuristic = train_nn_heuristic(mini_dataset, feature_indices=indices)
        assert 1 <= heuristic.predict_loop(daxpy_loop) <= 8
        batch = heuristic.predict_features(mini_dataset.X[:5])
        assert batch.shape == (5,)
