"""Unit tests for the feature catalog and extractor."""

import numpy as np
import pytest

from repro.features import (
    FEATURE_NAMES,
    FEATURES,
    N_FEATURES,
    by_name,
    extract_features,
    extract_matrix,
    feature_index,
    fit_minmax,
    fit_normalizer,
    fit_zscore,
    table1_subset,
)
from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.types import CmpOp, DType, Language, Opcode


class TestCatalog:
    def test_exactly_38_features(self):
        assert N_FEATURES == 38
        assert len(FEATURE_NAMES) == 38

    def test_indices_are_consecutive(self):
        assert [spec.index for spec in FEATURES] == list(range(38))

    def test_names_are_unique(self):
        assert len(set(FEATURE_NAMES)) == 38

    def test_lookup_by_name(self):
        assert by_name("tripcount").index == feature_index("tripcount")
        with pytest.raises(KeyError):
            feature_index("does_not_exist")

    def test_table1_subset_matches_flags(self):
        subset = table1_subset()
        assert all(spec.table1 for spec in subset)
        assert {"nest_level", "num_ops", "tripcount", "language"} <= {
            s.name for s in subset
        }


class TestExtraction:
    def test_vector_shape_and_dtype(self, daxpy_loop):
        vector = extract_features(daxpy_loop)
        assert vector.shape == (38,)
        assert vector.dtype == np.float64

    def test_counts_on_known_loop(self, daxpy_loop):
        v = extract_features(daxpy_loop)
        get = lambda name: v[feature_index(name)]
        assert get("num_ops") == 4
        assert get("num_fp_ops") == 1  # the fma
        assert get("num_loads") == 2
        assert get("num_stores") == 1
        assert get("num_mem_ops") == 3
        assert get("num_branches") == 0
        assert get("nest_level") == 1
        assert get("language") == Language.C.value
        assert get("known_tripcount") == 0
        assert get("tripcount") == -1
        assert get("stride_one_frac") == 1.0
        assert get("num_distinct_arrays") == 2
        assert get("has_early_exit") == 0

    def test_known_tripcount_recorded(self):
        builder = LoopBuilder("t", TripInfo(runtime=48, compile_time=48))
        builder.store(builder.load("a"), "out")
        v = extract_features(builder.build())
        assert v[feature_index("tripcount")] == 48
        assert v[feature_index("known_tripcount")] == 1

    def test_carried_recurrence_features(self, reduction_loop):
        loop, _, _ = reduction_loop
        v = extract_features(loop)
        assert v[feature_index("num_carried_reg_deps")] == 1
        assert v[feature_index("rec_mii")] >= 4

    def test_predicate_and_exit_features(self):
        from repro.workloads.kernels import sentinel_search

        v = extract_features(sentinel_search(trip=32, entries=1))
        assert v[feature_index("has_early_exit")] == 1
        assert v[feature_index("num_branches")] == 1
        assert v[feature_index("num_unique_predicates")] >= 1
        assert v[feature_index("max_control_dep_height")] >= 0

    def test_indirect_refs_counted(self):
        from repro.workloads.kernels import gather_accumulate

        v = extract_features(gather_accumulate(trip=32, entries=1))
        assert v[feature_index("num_indirect_refs")] == 1

    def test_min_carried_mem_dep(self):
        builder = LoopBuilder("t", TripInfo(runtime=32))
        value = builder.load("a", offset=0)
        builder.store(value, "a", offset=3)
        v = extract_features(builder.build())
        assert v[feature_index("min_mem_carried_dep")] == 3

    def test_no_carried_mem_dep_is_minus_one(self, daxpy_loop):
        v = extract_features(daxpy_loop)
        assert v[feature_index("min_mem_carried_dep")] == -1

    def test_matrix_extraction_matches_rows(self, daxpy_loop, stencil_loop):
        matrix = extract_matrix([daxpy_loop, stencil_loop])
        assert matrix.shape == (2, 38)
        np.testing.assert_array_equal(matrix[0], extract_features(daxpy_loop))
        np.testing.assert_array_equal(matrix[1], extract_features(stencil_loop))

    def test_features_are_deterministic(self, stencil_loop):
        np.testing.assert_array_equal(
            extract_features(stencil_loop), extract_features(stencil_loop)
        )


class TestNormalization:
    def test_minmax_maps_to_unit_interval(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 6)) * 100
        Z = fit_minmax(X).transform(X)
        assert Z.min() >= -1e-12 and Z.max() <= 1 + 1e-12

    def test_zscore_standardises(self):
        rng = np.random.default_rng(1)
        X = rng.normal(loc=5, scale=3, size=(200, 4))
        Z = fit_zscore(X).transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-12)

    def test_constant_features_do_not_blow_up(self):
        X = np.ones((10, 3))
        Z = fit_minmax(X).transform(X)
        assert np.isfinite(Z).all()

    def test_round_trip(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(30, 5))
        norm = fit_zscore(X)
        np.testing.assert_allclose(norm.inverse_transform(norm.transform(X)), X)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            fit_normalizer(np.ones((3, 2)), "quantile")

    def test_train_statistics_applied_to_novel_data(self):
        X = np.array([[0.0], [10.0]])
        norm = fit_minmax(X)
        np.testing.assert_allclose(norm.transform(np.array([[20.0]])), [[2.0]])
