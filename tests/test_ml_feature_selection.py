"""Unit tests for mutual information and greedy forward selection."""

import numpy as np
import pytest

from repro.ml import (
    greedy_forward_selection,
    mutual_information_score,
    rank_by_mutual_information,
    selected_feature_union,
)


class TestMutualInformation:
    def test_independent_feature_scores_near_zero(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(1, 9, size=4000)
        noise = rng.normal(size=4000)
        assert mutual_information_score(noise, labels) < 0.05

    def test_perfect_feature_scores_label_entropy(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(1, 5, size=2000)
        mis = mutual_information_score(labels.astype(float), labels)
        probs = np.bincount(labels)[1:] / len(labels)
        probs = probs[probs > 0]
        entropy = -(probs * np.log2(probs)).sum()
        assert mis == pytest.approx(entropy, rel=1e-9)

    def test_informative_beats_noisy(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(1, 9, size=3000)
        informative = labels + rng.normal(0, 0.4, size=3000)
        noisy = labels + rng.normal(0, 6.0, size=3000)
        assert mutual_information_score(informative, labels) > mutual_information_score(
            noisy, labels
        )

    def test_score_is_non_negative(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(1, 9, size=500)
        for _ in range(5):
            values = rng.normal(size=500)
            assert mutual_information_score(values, labels) >= -1e-12

    def test_binning_respects_low_cardinality(self):
        # A binary feature must not be split into spurious quantile bins.
        labels = np.array([1, 1, 2, 2] * 100)
        feature = np.array([0.0, 0.0, 1.0, 1.0] * 100)
        assert mutual_information_score(feature, labels) == pytest.approx(1.0)

    def test_ranking_is_sorted_and_complete(self, mini_dataset):
        ranked = rank_by_mutual_information(mini_dataset.X, mini_dataset.labels)
        assert len(ranked) == mini_dataset.n_features
        scores = [s.score for s in ranked]
        assert scores == sorted(scores, reverse=True)


class TestGreedySelection:
    def _planted_problem(self, n=400, seed=4):
        """Labels depend on features 3 and 7 only."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, 10))
        labels = 1 + (X[:, 3] > 0).astype(int) * 2 + (X[:, 7] > 0).astype(int)
        return X, labels

    def test_planted_features_found_first(self):
        X, y = self._planted_problem()
        chosen = greedy_forward_selection(X, y, "nn", n_features=2)
        assert {s.index for s in chosen} == {3, 7}

    def test_errors_fall_while_signal_remains(self):
        # Greedy is forced to keep adding features to the requested depth;
        # errors must fall while informative features remain (the first
        # two here), though pure-noise additions afterwards may tick up.
        X, y = self._planted_problem()
        chosen = greedy_forward_selection(X, y, "nn", n_features=4)
        errors = [s.score for s in chosen]
        assert errors[1] <= errors[0]
        assert errors[1] <= 0.05  # both planted features found: near-zero

    def test_svm_variant_runs(self):
        X, y = self._planted_problem(n=150)
        chosen = greedy_forward_selection(X, y, "svm", n_features=2, subsample=100)
        assert len(chosen) == 2
        assert chosen[-1].score <= chosen[0].score + 1e-12

    def test_unknown_classifier_rejected(self):
        X, y = self._planted_problem(n=50)
        with pytest.raises(ValueError):
            greedy_forward_selection(X, y, "tree")

    def test_subsample_bounds_work(self):
        X, y = self._planted_problem(n=300)
        chosen = greedy_forward_selection(X, y, "nn", n_features=2, subsample=80)
        assert len(chosen) == 2

    def test_no_duplicate_picks(self, mini_dataset):
        chosen = greedy_forward_selection(
            mini_dataset.X, mini_dataset.labels, "nn", n_features=6, subsample=150
        )
        indices = [s.index for s in chosen]
        assert len(set(indices)) == len(indices)


class TestUnion:
    def test_union_contains_mis_winners(self, mini_dataset):
        union = selected_feature_union(
            mini_dataset.X, mini_dataset.labels, n_mis=3, n_greedy=2, subsample=120
        )
        ranked = rank_by_mutual_information(mini_dataset.X, mini_dataset.labels)
        top_mis = {s.index for s in ranked[:3]}
        assert top_mis <= set(union.tolist())
        assert np.all(np.diff(union) > 0)  # sorted, unique
