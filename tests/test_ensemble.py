"""The calibrated ensemble's differential tier.

Three exact contracts, checked property-style across datasets, seeds, and
SWP regimes (mirroring the dedup differential suite): an ensemble
restricted to a single family agrees with that family bit-for-bit; the
engine's batched path answers exactly like per-request serving for every
classifier; and a registry round trip is the identity on predictions.
Plus the statistical contracts: calibrated outputs are distributions and
confidence is the probability mass of the chosen label.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ml.ensemble import (
    FAMILY_NAMES,
    CalibratedEnsemble,
    calibrate_proba,
    fit_temperature,
    train_calibrated_ensemble,
)
from repro.registry import load_artifact, train_model_artifact
from repro.serve import PredictionEngine
from tests.strategies import labelled_datasets
from tests.test_model_artifacts import synthetic_dataset

_PROPERTY_SETTINGS = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ALL_CLASSIFIERS = (*FAMILY_NAMES, "ensemble")


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset()


@pytest.fixture(scope="module")
def ensemble(dataset):
    return train_calibrated_ensemble(dataset.X, dataset.labels, seed=0)


@pytest.fixture(scope="module")
def artifact(dataset):
    return train_model_artifact(dataset)


class TestSingleFamilyAgreement:
    """restrict() to one family == that family's own predict, exactly."""

    @pytest.mark.parametrize("family", FAMILY_NAMES)
    def test_each_family_agrees_exactly(self, ensemble, dataset, family):
        solo = ensemble.restrict((family,))
        np.testing.assert_array_equal(
            solo.predict(dataset.X),
            np.asarray(ensemble.members[family].predict(dataset.X), dtype=np.int64),
        )

    @_PROPERTY_SETTINGS
    @given(data=labelled_datasets(), seed=st.integers(0, 50))
    def test_agreement_across_datasets_and_seeds(self, data, seed):
        ensemble = train_calibrated_ensemble(data.X, data.labels, seed=seed)
        for family in FAMILY_NAMES:
            solo = ensemble.restrict((family,))
            np.testing.assert_array_equal(
                solo.predict(data.X),
                np.asarray(ensemble.members[family].predict(data.X), dtype=np.int64),
                err_msg=f"family={family} seed={seed} swp={data.swp}",
            )

    def test_restrict_shares_members_without_refit(self, ensemble):
        solo = ensemble.restrict(("svm",))
        assert solo.members["svm"] is ensemble.members["svm"]
        assert solo.temperatures == ensemble.temperatures

    def test_restrict_rejects_unknown_family(self, ensemble):
        with pytest.raises(ValueError, match="unknown families"):
            ensemble.restrict(("xgboost",))
        with pytest.raises(ValueError, match="at least one"):
            ensemble.restrict(())


class TestCalibration:
    def test_combined_proba_is_a_distribution(self, ensemble, dataset):
        proba = ensemble.predict_proba(dataset.X)
        assert np.all(proba >= 0.0) and np.all(proba <= 1.0)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_confidence_is_chosen_label_mass(self, ensemble, dataset):
        detail = ensemble.predict_detail(dataset.X)
        assert np.all(detail.confidence >= 0.0) and np.all(detail.confidence <= 1.0)
        columns = np.searchsorted(ensemble.classes, detail.labels)
        np.testing.assert_array_equal(
            detail.confidence, detail.proba[np.arange(len(detail.labels)), columns]
        )

    def test_votes_cover_every_family(self, ensemble, dataset):
        detail = ensemble.predict_detail(dataset.X)
        assert set(detail.votes) == set(FAMILY_NAMES)
        for family, votes in detail.votes.items():
            np.testing.assert_array_equal(
                votes, np.asarray(ensemble.members[family].predict(dataset.X))
            )

    def test_unit_temperature_is_identity(self):
        rng = np.random.default_rng(0)
        proba = rng.dirichlet(np.ones(4), size=16)
        np.testing.assert_allclose(calibrate_proba(proba, 1.0), proba, atol=1e-12)

    def test_fit_temperature_prefers_soft_for_overconfident(self):
        # Confidently wrong predictions: NLL improves with T > 1.
        proba = np.full((40, 2), 0.02)
        proba[:, 0] = 0.98
        labels = np.ones(40, dtype=np.int64)  # truth is the 2% column
        assert fit_temperature(proba, labels) > 1.0

    @_PROPERTY_SETTINGS
    @given(data=labelled_datasets())
    def test_calibrated_outputs_on_any_dataset(self, data):
        ensemble = train_calibrated_ensemble(data.X, data.labels, seed=0)
        detail = ensemble.predict_detail(data.X)
        assert np.all(detail.confidence >= 0.0) and np.all(detail.confidence <= 1.0)
        np.testing.assert_allclose(detail.proba.sum(axis=1), 1.0, atol=1e-9)
        assert set(np.unique(detail.labels)) <= set(ensemble.classes.tolist())


class TestEngineBatchedDifferential:
    """Batched serving must equal per-request serving bit-for-bit, for
    every classifier family (the PR 6 dedup differential, serve edition)."""

    def _requests(self, dataset, classifier, n=12):
        return [
            {
                "id": i,
                "classifier": classifier,
                "features": [float(v) for v in dataset.X[i % len(dataset)]],
            }
            for i in range(n)
        ]

    @pytest.mark.parametrize("classifier", ALL_CLASSIFIERS)
    def test_batched_equals_per_request(self, artifact, dataset, classifier):
        engine = PredictionEngine(artifact)
        requests = self._requests(dataset, classifier)
        scalar = [engine.handle(r) for r in requests]
        batched = engine.handle_batch(requests)
        for s, b in zip(scalar, batched):
            assert s["ok"] and b["ok"]
            assert s["factor"] == b["factor"]
            assert s["classifier"] == b["classifier"] == classifier
            if classifier == "ensemble":
                assert s["confidence"] == b["confidence"]
                assert s["votes"] == b["votes"]

    def test_mixed_classifier_batch_matches_scalar(self, artifact, dataset):
        engine = PredictionEngine(artifact)
        requests = [
            req
            for classifier in ALL_CLASSIFIERS
            for req in self._requests(dataset, classifier, n=4)
        ]
        scalar = [engine.handle(r) for r in requests]
        batched = engine.handle_batch(requests)
        assert [s["factor"] for s in scalar] == [b["factor"] for b in batched]
        assert [s["classifier"] for s in scalar] == [b["classifier"] for b in batched]

    @_PROPERTY_SETTINGS
    @given(data=labelled_datasets(), seed=st.integers(0, 20))
    def test_differential_across_datasets_seeds_and_regimes(self, data, seed):
        artifact = train_model_artifact(data, seed=seed)
        engine = PredictionEngine(artifact)
        requests = [
            {
                "id": f"{classifier}-{i}",
                "classifier": classifier,
                "features": [float(v) for v in data.X[i]],
            }
            for classifier in ALL_CLASSIFIERS
            for i in range(min(len(data), 3))
        ]
        scalar = [engine.handle(r) for r in requests]
        batched = engine.handle_batch(requests)
        for s, b in zip(scalar, batched):
            assert s["ok"] and b["ok"], f"swp={data.swp} seed={seed}"
            assert s["factor"] == b["factor"]
            if s["classifier"] == "ensemble":
                assert s["confidence"] == b["confidence"]
                assert s["votes"] == b["votes"]


class TestRegistryRoundTrip:
    def test_head_plus_members_restore_is_bit_identical(self, ensemble, dataset):
        restored = CalibratedEnsemble.from_members(
            ensemble.members, ensemble.head_state()
        )
        np.testing.assert_array_equal(
            restored.predict_proba(dataset.X), ensemble.predict_proba(dataset.X)
        )
        np.testing.assert_array_equal(
            restored.predict(dataset.X), ensemble.predict(dataset.X)
        )

    def test_artifact_round_trip_every_family(self, artifact, dataset, tmp_path):
        loaded = load_artifact(artifact.save(tmp_path / "ens.rma"))
        for name in artifact.families:
            np.testing.assert_array_equal(
                loaded.predict_features(dataset.X, name),
                artifact.predict_features(dataset.X, name),
                err_msg=name,
            )
        fresh = loaded.ensemble.predict_detail(dataset.X)
        original = artifact.ensemble.predict_detail(dataset.X)
        np.testing.assert_array_equal(fresh.confidence, original.confidence)
        np.testing.assert_array_equal(fresh.proba, original.proba)

    @_PROPERTY_SETTINGS
    @given(data=labelled_datasets())
    def test_round_trip_on_any_dataset(self, data, tmp_path_factory):
        artifact = train_model_artifact(data)
        path = tmp_path_factory.mktemp("ens") / "model.rma"
        loaded = load_artifact(artifact.save(path))
        for name in artifact.families:
            np.testing.assert_array_equal(
                loaded.predict_features(data.X, name),
                artifact.predict_features(data.X, name),
                err_msg=f"{name} swp={data.swp}",
            )
