"""The self-healing cache and the parallel measurement pipeline.

Covers the failure modes that used to be fatal: corrupt or truncated
``.npz`` entries (previously ``zipfile.BadZipFile`` all the way up through
the CLI), torn writes, and cross-run cache state.  Also pins the pipeline's
central parallelism contract: ``measure_suite`` is bit-identical at every
``jobs`` value.
"""

import tempfile
import zipfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.cli import main
from repro.instrument import MeasurementRollup
from repro.pipeline import (
    CacheStore,
    CorruptTableError,
    LabelingConfig,
    MeasurementTable,
    build_artifacts,
    cached_measurements,
    config_key,
    measure_suite,
    resolve_jobs,
)
from repro.simulate import NOISELESS
from tests.strategies import measurement_tables

SEED = 99
SCALE = 0.03


@pytest.fixture(scope="module")
def fast_config():
    return LabelingConfig(
        seed=7, swp=False, noise=NOISELESS, n_runs=1, min_cycles=0.0, min_benefit=1.0
    )


def _build(fast_config, cache_dir):
    return build_artifacts(
        suite_seed=SEED, loops_scale=SCALE, config=fast_config, cache_dir=cache_dir
    )


def _entry_path(fast_config, cache_dir) -> Path:
    return CacheStore(cache_dir).path_for(config_key(SEED, SCALE, fast_config))


class TestSelfHealingCache:
    def test_garbage_entry_is_a_miss_and_heals(self, fast_config, tmp_path):
        """Plant a garbage .npz where the cache expects an entry: the build
        must recover, rebuild, and leave a loadable file behind."""
        path = _entry_path(fast_config, tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"\x00garbage, definitely not a zip archive")

        artifacts = _build(fast_config, tmp_path)
        assert len(artifacts.table) > 0
        healed = MeasurementTable.load(path)  # must not raise
        np.testing.assert_array_equal(healed.measured, artifacts.table.measured)
        assert CacheStore(tmp_path).quarantined()  # the bad file was set aside

    def test_corruption_after_a_good_build_recovers_identically(
        self, fast_config, tmp_path
    ):
        first = _build(fast_config, tmp_path)
        path = _entry_path(fast_config, tmp_path)
        path.write_bytes(b"rotten")
        second = _build(fast_config, tmp_path)
        np.testing.assert_array_equal(first.table.measured, second.table.measured)
        np.testing.assert_array_equal(first.dataset.labels, second.dataset.labels)

    def test_truncated_entry_recovers(self, fast_config, tmp_path):
        _build(fast_config, tmp_path)
        path = _entry_path(fast_config, tmp_path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CorruptTableError):
            MeasurementTable.load(path)
        artifacts = _build(fast_config, tmp_path)
        assert MeasurementTable.load(path).swp == artifacts.table.swp

    def test_missing_arrays_are_corruption(self, tmp_path):
        path = tmp_path / "half.npz"
        np.savez_compressed(path, X=np.zeros((1, 38)))
        with pytest.raises(CorruptTableError):
            MeasurementTable.load(path)

    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            MeasurementTable.load(tmp_path / "nonesuch.npz")

    def test_save_is_atomic_and_leaves_no_temp_files(self, mini_table, tmp_path):
        path = tmp_path / "table.npz"
        mini_table.save(path)
        assert zipfile.is_zipfile(path)
        assert CacheStore(tmp_path).stale_tmp() == []

    def test_store_load_round_trip(self, mini_table, tmp_path):
        store = CacheStore(tmp_path)
        store.store("abc123", mini_table)
        loaded = store.load("abc123")
        np.testing.assert_array_equal(loaded.measured, mini_table.measured)
        assert store.load("missing") is None

    def test_gc_and_clear(self, mini_table, tmp_path):
        store = CacheStore(tmp_path)
        store.store("good", mini_table)
        store.path_for("bad").write_bytes(b"junk")
        (tmp_path / ".leftover.npz.123.tmp").write_bytes(b"torn write")

        removed = store.gc()
        assert store.path_for("bad") in removed
        assert store.load("good") is not None  # gc never touches live entries
        assert store.stale_tmp() == []

        assert store.clear() >= 1
        assert store.entries() == []

    def test_swp_mismatch_is_a_miss(self, fast_config, tmp_path, mini_suite):
        """A table whose contents don't match the key's config (hash
        collision, foreign file) is re-measured, not trusted."""
        from dataclasses import replace

        key = config_key(1, 1.0, fast_config)
        store = CacheStore(tmp_path)
        wrong = measure_suite(mini_suite, replace(fast_config, swp=True))
        store.store(key, wrong)
        table = cached_measurements(mini_suite, 1, 1.0, fast_config, tmp_path)
        assert table.swp is False


class TestParallelPipeline:
    @pytest.fixture(scope="class")
    def tiny_suite(self, mini_suite):
        """Two benchmarks is enough to exercise the fan-out and merge."""
        from repro.ir.program import Suite

        return Suite(name="tiny", benchmarks=mini_suite.benchmarks[:2])

    def test_parallel_matches_serial_bit_for_bit(self, tiny_suite, mini_config):
        serial = measure_suite(tiny_suite, mini_config, jobs=1)
        parallel = measure_suite(tiny_suite, mini_config, jobs=4)
        for name in (
            "X",
            "measured",
            "true_cycles",
            "loop_names",
            "benchmarks",
            "suites",
            "languages",
            "entry_counts",
        ):
            assert np.array_equal(getattr(serial, name), getattr(parallel, name)), name
        assert serial.swp == parallel.swp

    def test_rollup_accounts_for_every_unit(self, tiny_suite, mini_config):
        rollup = MeasurementRollup()
        measure_suite(tiny_suite, mini_config, jobs=2, rollup=rollup)
        assert rollup.n_units == len(tiny_suite.benchmarks) * 8
        assert rollup.total_seconds() > 0
        assert sum(rollup.per_worker().values()) == pytest.approx(
            rollup.total_seconds()
        )
        assert "units over" in rollup.summary()

    def test_resolve_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1
        assert resolve_jobs(3) == 3
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs(None) == 5
        assert resolve_jobs(2) == 2  # explicit beats the environment
        with pytest.raises(ValueError):
            resolve_jobs(0)
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(ValueError):
            resolve_jobs(None)


class TestTableRoundTripProperties:
    @given(table=measurement_tables())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_save_load_round_trip(self, table):
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "roundtrip.npz"
            table.save(path)
            loaded = MeasurementTable.load(path)
        np.testing.assert_array_equal(loaded.X, table.X)
        np.testing.assert_array_equal(loaded.measured, table.measured)
        np.testing.assert_array_equal(loaded.true_cycles, table.true_cycles)
        np.testing.assert_array_equal(loaded.loop_names, table.loop_names)
        np.testing.assert_array_equal(loaded.benchmarks, table.benchmarks)
        np.testing.assert_array_equal(loaded.suites, table.suites)
        np.testing.assert_array_equal(loaded.languages, table.languages)
        np.testing.assert_array_equal(loaded.entry_counts, table.entry_counts)
        assert loaded.swp == table.swp

    @given(table=measurement_tables())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_overwrite_is_atomic(self, table):
        """Re-saving over an existing entry goes through the same
        temp-then-rename path and leaves a loadable file."""
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "entry.npz"
            table.save(path)
            table.save(path)
            loaded = MeasurementTable.load(path)
            assert len(loaded) == len(table)
            assert not list(Path(tmp).glob(".*.tmp"))


class TestCacheCLI:
    def test_stats_gc_clear(self, mini_table, tmp_path, capsys):
        store = CacheStore(tmp_path)
        store.store("live", mini_table)
        store.path_for("dead").write_bytes(b"junk")

        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "2 entries" in capsys.readouterr().out

        assert main(["cache", "gc", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert store.load("live") is not None

        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed" in capsys.readouterr().out
        assert store.entries() == []

    def test_cache_commands_survive_planted_garbage(self, tmp_path, capsys):
        """Acceptance: a corrupt cache file never crashes any CLI command."""
        CacheStore(tmp_path).path_for("junk").write_bytes(b"\x1f\x8b broken")
        for action in ("stats", "gc", "stats"):
            assert main(["cache", action, "--cache-dir", str(tmp_path)]) == 0
