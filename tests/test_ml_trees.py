"""The CART tree and the random forest: seeded determinism, exact
permutation invariance of forest voting, per-split feature subsampling,
and bit-identical state round-trips.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ml.trees import DecisionTree, RandomForest
from tests.strategies import labelled_datasets

_PROPERTY_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _separable(n=48, n_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    labels = (np.arange(n) % n_classes) + 1
    X = rng.normal(size=(n, 8)) + labels[:, None] * 1.0
    return X, labels.astype(np.int64)


class TestDecisionTree:
    def test_learns_separable_data(self):
        X, y = _separable()
        tree = DecisionTree(max_depth=6, min_leaf=1).fit(X, y)
        assert float(np.mean(tree.predict(X) == y)) >= 0.9

    def test_state_round_trip_is_bit_identical(self):
        X, y = _separable()
        tree = DecisionTree(max_depth=5, min_leaf=2).fit(X, y)
        restored = DecisionTree.from_state(tree.get_state())
        np.testing.assert_array_equal(restored.predict(X), tree.predict(X))
        np.testing.assert_array_equal(
            restored.predict_proba(X), tree.predict_proba(X)
        )

    def test_feature_subsampling_is_seeded(self):
        X, y = _separable()
        grow = lambda seed: DecisionTree(
            max_depth=4, min_leaf=2, max_features=2, rng=np.random.default_rng(seed)
        ).fit(X, y)
        np.testing.assert_array_equal(grow(7).predict(X), grow(7).predict(X))

    def test_unfitted_predict_is_an_error(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            DecisionTree().predict(np.zeros((1, 3)))

    def test_bad_hyperparameters_are_rejected(self):
        with pytest.raises(ValueError, match="max_depth"):
            DecisionTree(max_depth=0)
        with pytest.raises(ValueError, match="max_features"):
            DecisionTree(max_features=0)


class TestRandomForest:
    def test_same_seed_same_forest(self):
        X, y = _separable()
        a = RandomForest(n_trees=10, seed=5).fit(X, y)
        b = RandomForest(n_trees=10, seed=5).fit(X, y)
        np.testing.assert_array_equal(a.predict_proba(X), b.predict_proba(X))
        np.testing.assert_array_equal(a.predict(X), b.predict(X))

    def test_voting_is_exactly_permutation_invariant(self):
        """Reordering the fitted trees must not change a single bit of the
        aggregated probabilities — the sort-before-sum contract."""
        X, y = _separable()
        forest = RandomForest(n_trees=12, seed=0).fit(X, y)
        before = forest.predict_proba(X)
        rng = np.random.default_rng(42)
        for _ in range(3):
            forest._trees = [forest._trees[i] for i in rng.permutation(len(forest._trees))]
            after = forest.predict_proba(X)
            assert before.tobytes() == after.tobytes()

    def test_proba_rows_are_distributions(self):
        X, y = _separable()
        forest = RandomForest(n_trees=8, seed=1).fit(X, y)
        proba = forest.predict_proba(X)
        assert np.all(proba >= 0.0) and np.all(proba <= 1.0)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_predict_is_argmax_of_proba(self):
        X, y = _separable()
        forest = RandomForest(n_trees=8, seed=1).fit(X, y)
        np.testing.assert_array_equal(
            forest.predict(X),
            forest.classes_[np.argmax(forest.predict_proba(X), axis=1)],
        )

    def test_learns_separable_data(self):
        X, y = _separable()
        forest = RandomForest(seed=0).fit(X, y)
        assert float(np.mean(forest.predict(X) == y)) >= 0.9

    def test_state_round_trip_is_bit_identical(self):
        X, y = _separable()
        forest = RandomForest(n_trees=9, seed=3).fit(X, y)
        restored = RandomForest.from_state(forest.get_state())
        np.testing.assert_array_equal(
            restored.predict_proba(X), forest.predict_proba(X)
        )
        np.testing.assert_array_equal(restored.predict(X), forest.predict(X))
        np.testing.assert_array_equal(restored.classes_, forest.classes_)

    def test_unfitted_forest_is_an_error(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomForest().predict(np.zeros((1, 3)))
        with pytest.raises(ValueError, match="n_trees"):
            RandomForest(n_trees=0)

    @_PROPERTY_SETTINGS
    @given(dataset=labelled_datasets(), seed=st.integers(0, 100))
    def test_determinism_and_round_trip_on_any_dataset(self, dataset, seed):
        a = RandomForest(n_trees=6, seed=seed).fit(dataset.X, dataset.labels)
        b = RandomForest(n_trees=6, seed=seed).fit(dataset.X, dataset.labels)
        np.testing.assert_array_equal(a.predict_proba(dataset.X), b.predict_proba(dataset.X))
        restored = RandomForest.from_state(a.get_state())
        np.testing.assert_array_equal(
            restored.predict_proba(dataset.X), a.predict_proba(dataset.X)
        )

    @_PROPERTY_SETTINGS
    @given(dataset=labelled_datasets())
    def test_permutation_invariance_on_any_dataset(self, dataset):
        forest = RandomForest(n_trees=7, seed=0).fit(dataset.X, dataset.labels)
        before = forest.predict_proba(dataset.X)
        forest._trees = forest._trees[::-1]
        assert before.tobytes() == forest.predict_proba(dataset.X).tobytes()
