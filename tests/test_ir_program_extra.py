"""Additional coverage: unroll-result helpers, interp edge cases, cost
model bookkeeping — the smaller surfaces the main suites skim over."""

import numpy as np
import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.interp import initial_state, run_loop, run_unrolled
from repro.ir.loop import TripInfo
from repro.ir.types import CmpOp, DType, Opcode
from repro.simulate import CostModel
from repro.transforms.unroll import unroll
from repro.workloads.kernels import daxpy, sentinel_search


class TestUnrollResultHelpers:
    def test_loops_lists_executing_parts(self, daxpy_loop):
        result = unroll(daxpy_loop, 5)
        parts = result.loops()
        assert parts == (result.main, result.remainder)
        exact = unroll(daxpy_loop, 4)  # 96 % 4 == 0
        assert exact.loops() == (exact.main,)

    def test_emitted_size_counts_remainder_code(self, daxpy_loop):
        result = unroll(daxpy_loop, 4)
        # Unknown trip: remainder code is emitted even though none runs.
        assert result.emitted_size == result.main.size + daxpy_loop.size

    def test_main_none_when_trip_smaller_than_factor(self):
        builder = LoopBuilder("t", TripInfo(runtime=3))
        builder.store(builder.load("a"), "o")
        result = unroll(builder.build(), 8)
        assert result.main is None
        assert result.remainder.trip.runtime == 3
        # It still executes correctly.
        loop = result.original
        rolled = initial_state(loop, seed=0)
        other = rolled.copy()
        run_loop(loop, rolled)
        run_unrolled(result, other)
        np.testing.assert_allclose(other.arrays["o"], rolled.arrays["o"])


class TestInterpreterEdges:
    def test_run_unrolled_skips_remainder_after_exit(self):
        builder = LoopBuilder("t", TripInfo(runtime=10))
        value = builder.load("a")
        hit = builder.cmp(CmpOp.GT, value, builder.fconst(100.0), fp=True)
        builder.exit_if(hit)
        builder.store(builder.fconst(1.0), "touched")
        loop = builder.build()
        result = unroll(loop, 4)
        state = initial_state(loop, seed=0)
        state.arrays["a"][:] = 0.0
        state.arrays["a"][5] = 999.0  # exit in the second unrolled body
        outcome = run_unrolled(result, state)
        assert outcome.exited_early
        # Iterations 6..9 never ran: remainder must have been skipped.
        assert state.arrays["touched"][6] == pytest.approx(
            initial_state(loop, seed=0).arrays["touched"][6]
        )

    def test_observable_includes_carried_scalars(self, reduction_loop):
        loop, acc, inits = reduction_loop
        state = initial_state(loop, seed=1, carried_inits=inits)
        run_loop(loop, state)
        observable = state.observable(loop)
        assert f"%{acc.name}" in observable

    def test_prefetch_is_a_noop(self):
        from repro.ir.instruction import Instruction
        from repro.ir.values import MemRef

        builder = LoopBuilder("t", TripInfo(runtime=4))
        builder.store(builder.load("a"), "o")
        loop = builder.build()
        body = (Instruction(Opcode.PREFETCH, mem=MemRef("a")),) + loop.body
        with_prefetch = loop.with_body(body)
        a_state = initial_state(loop, seed=2)
        b_state = a_state.copy()
        run_loop(loop, a_state)
        run_loop(with_prefetch, b_state)
        np.testing.assert_allclose(b_state.arrays["o"], a_state.arrays["o"])


class TestCostBookkeeping:
    def test_cost_fields_consistent(self):
        loop = daxpy(trip=256, entries=8)
        cost = CostModel().loop_cost(loop, 4)
        assert cost.loop_name == loop.name
        assert cost.factor == 4
        assert cost.total_cycles == pytest.approx(
            cost.per_entry_cycles * loop.entry_count
        )
        assert cost.emitted_instructions > 0

    def test_swp_cost_reports_kernel_metadata(self):
        loop = daxpy(trip=512, entries=4)
        cost = CostModel(swp=True).loop_cost(loop, 2)
        assert cost.swp_used
        assert cost.ii is not None and cost.ii >= 1
        assert cost.stages is not None and cost.stages >= 1

    def test_exit_loop_cost_monotone_overshoot(self):
        loop = sentinel_search(trip=24, entries=200)
        model = CostModel()
        overshoot = [
            model.loop_cost(loop, u).per_entry_cycles for u in (1, 4, 8)
        ]
        # Short-trip search loops should not reward giant factors.
        assert overshoot[2] > overshoot[1] * 0.8

    def test_remainder_spills_are_counted(self):
        # A fat body at factor 7 leaves a fat remainder; spill bookkeeping
        # must cover both parts without double counting the main loop.
        builder = LoopBuilder("t", TripInfo(runtime=30), entry_count=2)
        for k in range(20):
            value = builder.load(f"a{k}")
            builder.store(builder.fp(Opcode.FMUL, value, builder.fconst(1.1)), f"o{k}")
        loop = builder.build()
        cost = CostModel().loop_cost(loop, 7)
        assert cost.spill_penalty >= 0.0
        assert np.isfinite(cost.total_cycles)
