"""Unit tests for machine descriptions."""

import pytest

from repro.ir import instruction as ins
from repro.ir.types import DType, FUKind, Opcode
from repro.ir.values import MemRef, Reg
from repro.machine import ITANIUM2, MACHINES, NARROW, SLOW_MEMORY, WIDE, machine_by_name

F0 = Reg("f0", DType.F64)
F1 = Reg("f1", DType.F64)
R0 = Reg("r0", DType.I64)


class TestLatencies:
    def test_load_latency_comes_from_machine(self):
        load = ins.load(F0, MemRef("a"))
        assert ITANIUM2.latency(load) == ITANIUM2.load_latency

    def test_wide_load_pays_one_extra_cycle(self):
        pair = ins.Instruction(
            Opcode.LOAD_PAIR, dest=F0, dest2=F1, mem=MemRef("a", width=2)
        )
        assert ITANIUM2.latency(pair) == ITANIUM2.load_latency + 1

    def test_fp_latency(self):
        fadd = ins.binop(Opcode.FADD, F0, F1, F1)
        assert ITANIUM2.latency(fadd) == 4

    def test_with_load_latency_overrides_only_loads(self):
        slow = ITANIUM2.with_load_latency(20)
        assert slow.latency(ins.load(F0, MemRef("a"))) == 20
        assert slow.latency(ins.binop(Opcode.FADD, F0, F1, F1)) == 4

    def test_with_same_latency_is_identity(self):
        assert ITANIUM2.with_load_latency(ITANIUM2.load_latency) is ITANIUM2


class TestUnitAssignment:
    def test_atype_int_ops_may_use_memory_units(self):
        add = ins.binop(Opcode.ADD, R0, R0, R0)
        assert FUKind.MEM in ITANIUM2.fu_options(add)
        assert FUKind.INT in ITANIUM2.fu_options(add)

    def test_multiplies_are_int_only(self):
        mul = ins.binop(Opcode.MUL, R0, R0, R0)
        assert ITANIUM2.fu_options(mul) == (FUKind.INT,)

    def test_fp_ops_are_fp_only(self):
        fadd = ins.binop(Opcode.FADD, F0, F1, F1)
        assert ITANIUM2.fu_options(fadd) == (FUKind.FP,)

    def test_divides_are_not_pipelined(self):
        fdiv = ins.binop(Opcode.FDIV, F0, F1, F1)
        assert not ITANIUM2.is_pipelined(fdiv)


class TestGeometry:
    def test_code_bytes_uses_bundle_density(self):
        assert ITANIUM2.code_bytes(3) == 16
        assert ITANIUM2.code_bytes(6) == 32

    def test_regs_available(self):
        assert ITANIUM2.regs_available(fp=True) == ITANIUM2.fp_regs
        assert ITANIUM2.regs_available(fp=False) == ITANIUM2.int_regs
        assert ITANIUM2.regs_available(fp=True, rotating=True) == ITANIUM2.rotating_regs

    def test_stock_machines_registry(self):
        assert machine_by_name("itanium2-like") is ITANIUM2
        assert set(MACHINES) == {m.name for m in (ITANIUM2, NARROW, WIDE, SLOW_MEMORY)}
        with pytest.raises(KeyError, match="unknown machine"):
            machine_by_name("pentium")

    def test_variants_differ_meaningfully(self):
        assert NARROW.issue_width < ITANIUM2.issue_width < WIDE.issue_width
        assert SLOW_MEMORY.load_latency > ITANIUM2.load_latency

    def test_machine_requires_every_unit_kind(self):
        from repro.machine.model import DEFAULT_LATENCIES, MachineModel

        with pytest.raises(ValueError, match="at least one"):
            MachineModel(
                name="broken",
                issue_width=4,
                fu_counts={FUKind.MEM: 1, FUKind.INT: 1, FUKind.FP: 1},
                latencies=DEFAULT_LATENCIES,
                load_latency=4,
            )
