"""Versioned model artifacts: determinism, checksums, corruption healing.

Mirrors ``test_cache_selfheal.py`` for the model registry: the failure
modes that must never escape as raw ``zipfile.BadZipFile``/``KeyError``
(truncation, bit flips, torn writes, foreign files), the schema-version
contract, and the load-bearing guarantee of the whole subsystem — a
saved-then-loaded artifact reproduces the in-process trained model's
predictions bit-identically.
"""

import json
import os
import zipfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.heuristics import (
    train_forest_heuristic,
    train_mlp_heuristic,
    train_nn_heuristic,
    train_svm_heuristic,
)
from repro.ml.dataset import LoopDataset
from repro.registry import (
    ARTIFACT_SCHEMA_VERSION,
    ArtifactError,
    ArtifactStore,
    CorruptArtifactError,
    StaleArtifactError,
    dataset_fingerprint,
    default_artifact_dir,
    load_artifact,
    load_or_quarantine,
    save_artifact,
    train_model_artifact,
)
from repro.workloads import kernels


def synthetic_dataset(n=40, seed=0, n_classes=4) -> LoopDataset:
    """A small labelled dataset with class-separable features, cheap
    enough to train both classifiers on in every test module."""
    rng = np.random.default_rng(seed)
    labels = (np.arange(n) % n_classes) + 1
    X = rng.normal(size=(n, 38)) + labels[:, None] * 0.8
    cycles = rng.uniform(1e4, 1e6, size=(n, 8))
    return LoopDataset(
        X=X,
        labels=labels.astype(np.int64),
        cycles=cycles,
        true_cycles=cycles * 1.01,
        loop_names=np.array([f"bench{i % 3}/loop{i}" for i in range(n)]),
        benchmarks=np.array([f"bench{i % 3}" for i in range(n)]),
        suites=np.array(["s"] * n),
        languages=np.array(["C"] * n),
        swp=False,
    )


@pytest.fixture(scope="module")
def dataset() -> LoopDataset:
    return synthetic_dataset()


@pytest.fixture(scope="module")
def artifact(dataset):
    return train_model_artifact(dataset, provenance={"origin": "test"})


@pytest.fixture(scope="module")
def saved(artifact, tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("artifact") / "model.rma"
    artifact.save(path)
    return path


class TestRoundTrip:
    def test_loaded_predictions_bit_identical(self, dataset, artifact, saved):
        """The acceptance criterion: a loaded artifact answers exactly like
        the in-process trained model, for both classifiers."""
        loaded = load_artifact(saved)
        for classifier in loaded.families:
            np.testing.assert_array_equal(
                loaded.predict_features(dataset.X, classifier),
                artifact.predict_features(dataset.X, classifier),
                err_msg=classifier,
            )

    def test_loaded_matches_fresh_in_process_train(self, dataset, saved):
        """Training is deterministic, so save -> load must also equal a
        *fresh* train on the same dataset (not just the instance that was
        serialised)."""
        loaded = load_artifact(saved)
        fresh = {
            "nn": train_nn_heuristic(dataset),
            "svm": train_svm_heuristic(dataset),
            "mlp": train_mlp_heuristic(dataset),
            "forest": train_forest_heuristic(dataset),
        }
        for name, heuristic in fresh.items():
            np.testing.assert_array_equal(
                loaded.predict_features(dataset.X, name),
                heuristic.predict_features(dataset.X),
                err_msg=name,
            )

    def test_loop_prediction_round_trip(self, artifact, saved):
        loaded = load_artifact(saved)
        loop = kernels.daxpy(trip=50, entries=1)
        for classifier in loaded.families:
            assert loaded.predict_loop(loop, classifier) == artifact.predict_loop(
                loop, classifier
            )

    def test_metadata_round_trip(self, artifact, saved):
        loaded = load_artifact(saved)
        assert loaded.feature_names == artifact.feature_names
        assert loaded.feature_indices is None
        assert loaded.provenance["origin"] == "test"
        assert loaded.provenance["n_rows"] == 40
        assert loaded.provenance["dataset_fingerprint"] == artifact.provenance[
            "dataset_fingerprint"
        ]

    def test_feature_subset_round_trip(self, dataset, tmp_path):
        indices = np.array([0, 3, 7, 12], dtype=np.int64)
        subset = train_model_artifact(dataset, feature_indices=indices)
        path = subset.save(tmp_path / "subset.rma")
        loaded = load_artifact(path)
        np.testing.assert_array_equal(loaded.feature_indices, indices)
        assert len(loaded.feature_names) == 4
        np.testing.assert_array_equal(
            loaded.predict_features(dataset.X, "svm"),
            subset.predict_features(dataset.X, "svm"),
        )

    def test_save_is_byte_deterministic(self, artifact, tmp_path):
        a, b = tmp_path / "a.rma", tmp_path / "b.rma"
        artifact.save(a)
        artifact.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_save_is_atomic_and_leaves_no_temp_files(self, artifact, tmp_path):
        path = tmp_path / "model.rma"
        artifact.save(path)
        artifact.save(path)  # overwrite goes through the same rename path
        assert zipfile.is_zipfile(path)
        assert not list(tmp_path.glob(".*.tmp"))

    def test_dataset_fingerprint_tracks_content(self, dataset):
        assert dataset_fingerprint(dataset) == dataset_fingerprint(dataset)
        other = synthetic_dataset(seed=1)
        assert dataset_fingerprint(dataset) != dataset_fingerprint(other)

    def test_restored_svm_refuses_loo(self, saved):
        """LU factors are deliberately not serialised; the restored model
        must fail loudly (not wrongly) if leave-one-out values are asked
        for."""
        loaded = load_artifact(saved)
        machine = next(iter(loaded.svm.classifier._machines.values()))
        with pytest.raises(RuntimeError, match="restored from an artifact"):
            machine.loo_decision_values()


def _rewrite_with_manifest(source: Path, target: Path, mutate) -> None:
    """Copy an artifact, passing the manifest dict through ``mutate`` and
    re-stamping ``manifest.sha256`` so only the mutated field differs."""
    with zipfile.ZipFile(source) as archive:
        entries = {name: archive.read(name) for name in archive.namelist()}
    manifest = json.loads(entries["manifest.json"])
    mutate(manifest)
    entries["manifest.json"] = json.dumps(manifest, sort_keys=True, indent=1).encode()
    import hashlib

    entries["manifest.sha256"] = hashlib.sha256(entries["manifest.json"]).hexdigest().encode()
    with zipfile.ZipFile(target, "w") as archive:
        for name, data in entries.items():
            archive.writestr(name, data)


class TestCorruption:
    def test_missing_file_is_not_corruption(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifact(tmp_path / "nonesuch.rma")

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage.rma"
        path.write_bytes(b"\x00definitely not a zip archive")
        with pytest.raises(CorruptArtifactError):
            load_artifact(path)

    def test_truncation(self, saved, tmp_path):
        path = tmp_path / "truncated.rma"
        path.write_bytes(saved.read_bytes()[: saved.stat().st_size // 2])
        with pytest.raises(CorruptArtifactError):
            load_artifact(path)

    def test_bit_flip_fails_a_checksum(self, saved, tmp_path):
        data = bytearray(saved.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path = tmp_path / "flipped.rma"
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptArtifactError):
            load_artifact(path)

    def test_missing_array_entry(self, saved, tmp_path):
        with zipfile.ZipFile(saved) as archive:
            entries = {name: archive.read(name) for name in archive.namelist()}
        victim = next(name for name in entries if name.startswith("arrays/"))
        del entries[victim]
        path = tmp_path / "hollow.rma"
        with zipfile.ZipFile(path, "w") as archive:
            for name, data in entries.items():
                archive.writestr(name, data)
        with pytest.raises(CorruptArtifactError):
            load_artifact(path)

    def test_foreign_zip_is_corrupt_not_keyerror(self, tmp_path):
        path = tmp_path / "foreign.rma"
        with zipfile.ZipFile(path, "w") as archive:
            archive.writestr("readme.txt", "not a model")
        with pytest.raises(CorruptArtifactError):
            load_artifact(path)

    def test_stale_schema_is_distinct_and_not_quarantined(self, saved, tmp_path):
        path = tmp_path / "old.rma"

        def bump(manifest):
            manifest["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1

        _rewrite_with_manifest(saved, path, bump)
        with pytest.raises(StaleArtifactError, match="retrain"):
            load_or_quarantine(path)
        assert path.exists()  # valid file from another era: left in place
        assert not list(tmp_path.glob("*.corrupt"))

    def test_v1_era_artifact_is_stale_not_corrupt(self, saved, tmp_path):
        """The real migration case: a v1 artifact (NN + SVM only, before
        the multi-family schema) must surface as stale — intact, version
        named in the message, never quarantined."""
        path = tmp_path / "v1.rma"

        def downgrade(manifest):
            manifest["schema_version"] = 1

        _rewrite_with_manifest(saved, path, downgrade)
        with pytest.raises(StaleArtifactError, match="schema v1"):
            load_or_quarantine(path)
        assert path.exists()  # old era, still valid: left in place
        assert not list(tmp_path.glob("*.corrupt"))

    def test_wrong_format_tag_is_corrupt(self, saved, tmp_path):
        path = tmp_path / "other.rma"

        def retag(manifest):
            manifest["format"] = "something-else"

        _rewrite_with_manifest(saved, path, retag)
        with pytest.raises(CorruptArtifactError):
            load_artifact(path)

    def test_quarantine_renames_the_corrupt_file(self, saved, tmp_path):
        path = tmp_path / "doomed.rma"
        path.write_bytes(saved.read_bytes()[:100])
        with pytest.raises(CorruptArtifactError):
            load_or_quarantine(path)
        assert not path.exists()
        assert (tmp_path / "doomed.rma.corrupt").exists()

    @given(fraction=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_any_truncation_is_one_exception(self, saved, tmp_path_factory, fraction):
        """Property: cutting the file anywhere yields CorruptArtifactError —
        never BadZipFile, KeyError, or a silent bad load."""
        tmp = tmp_path_factory.mktemp("trunc")
        data = saved.read_bytes()
        path = tmp / "cut.rma"
        path.write_bytes(data[: max(1, int(len(data) * fraction))])
        with pytest.raises((CorruptArtifactError, FileNotFoundError)):
            load_artifact(path)

    @given(position=st.integers(min_value=0), bit=st.integers(min_value=0, max_value=7))
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_any_bit_flip_never_escapes_the_taxonomy(
        self, saved, tmp_path_factory, position, bit
    ):
        """Property: flipping any single bit either fails a checksum
        (CorruptArtifactError) or leaves the load's *answers* intact (a
        flip in zip padding can be semantically invisible)."""
        tmp = tmp_path_factory.mktemp("flip")
        data = bytearray(saved.read_bytes())
        data[position % len(data)] ^= 1 << bit
        path = tmp / "flip.rma"
        path.write_bytes(bytes(data))
        try:
            loaded = load_artifact(path)
        except ArtifactError:
            return  # the taxonomy caught it
        reference = load_artifact(saved)
        X = synthetic_dataset().X
        np.testing.assert_array_equal(
            loaded.predict_features(X, "svm"), reference.predict_features(X, "svm")
        )


class TestArtifactStore:
    def test_store_load_round_trip(self, dataset, artifact, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("default", artifact)
        loaded = store.load("default")
        np.testing.assert_array_equal(
            loaded.predict_features(dataset.X, "svm"),
            artifact.predict_features(dataset.X, "svm"),
        )
        assert store.load("missing") is None

    def test_corrupt_entry_is_a_miss_and_quarantined(self, artifact, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("bad", artifact)
        store.path_for("bad").write_bytes(b"rotten")
        assert store.load("bad") is None
        assert store.quarantined()
        assert store.path_for("bad") not in store.entries()

    def test_stale_entry_is_a_miss_but_kept(self, artifact, saved, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("live", artifact)

        def bump(manifest):
            manifest["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1

        _rewrite_with_manifest(saved, store.path_for("old"), bump)
        assert store.load("old") is None
        assert store.path_for("old").exists()
        assert not store.quarantined()
        assert store.load("live") is not None

    def test_v1_stale_entry_keeps_store_counters_balanced(
        self, artifact, saved, tmp_path
    ):
        """A v1-era entry is a miss but not a casualty: nothing moves to
        quarantine, the file stays listed on disk, and live entries keep
        loading."""
        store = ArtifactStore(tmp_path)
        store.store("live", artifact)

        def downgrade(manifest):
            manifest["schema_version"] = 1

        _rewrite_with_manifest(saved, store.path_for("v1-era"), downgrade)
        assert store.load("v1-era") is None
        stats = store.stats()
        assert stats.n_quarantined == 0
        assert stats.n_entries == 2  # the stale file still counts on disk
        assert store.path_for("v1-era").exists()
        assert store.load("live") is not None

    def test_stats_gc_clear(self, artifact, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("good", artifact)
        store.path_for("junk").write_bytes(b"junk")
        (tmp_path / ".leftover.rma.123.tmp").write_bytes(b"torn write")

        stats = store.stats()
        assert stats.n_entries == 2  # junk still *looks* like an entry
        assert stats.n_stale_tmp == 1
        assert "artifact(s)" in stats.summary()

        removed = store.gc()
        assert store.path_for("junk") in removed
        assert store.load("good") is not None  # gc never touches live entries
        assert store.stale_tmp() == []

        assert store.clear() >= 1
        assert store.entries() == []

    def test_default_dir_honours_environment(self):
        # conftest points REPRO_ARTIFACT_DIR at a temp dir for the session.
        assert default_artifact_dir() == Path(os.environ["REPRO_ARTIFACT_DIR"])

    def test_artifact_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_ARTIFACT_DIR", str(tmp_path / "elsewhere"))
        store = ArtifactStore()
        assert store.root == tmp_path / "elsewhere"


class TestSerialisationEdges:
    def test_unserialisable_state_is_a_type_error(self):
        from repro.registry.artifact import _flatten

        with pytest.raises(TypeError, match="cannot serialise"):
            _flatten({"bad": object()}, "state", {})

    def test_flatten_unflatten_inverse(self):
        from repro.registry.artifact import _flatten, _unflatten

        tree = {
            "a": np.arange(6, dtype=np.float64).reshape(2, 3),
            "b": {"c": [1, "x", None, np.array([2.5])], "d": True},
        }
        arrays: dict[str, np.ndarray] = {}
        flat = _flatten(tree, "state", arrays)
        assert json.dumps(flat)  # JSON-serialisable by construction
        rebuilt = _unflatten(flat, arrays)
        np.testing.assert_array_equal(rebuilt["a"], tree["a"])
        np.testing.assert_array_equal(rebuilt["b"]["c"][3], tree["b"]["c"][3])
        assert rebuilt["b"]["c"][1] == "x"
        assert rebuilt["b"]["d"] is True
