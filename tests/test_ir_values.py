"""Unit tests for operand values and affine index arithmetic."""

import pytest

from repro.ir.types import DType
from repro.ir.values import AffineIndex, Imm, MemRef, Reg, carried_distance


class TestReg:
    def test_str_uses_percent_prefix(self):
        assert str(Reg("f3", DType.F64)) == "%f3"

    def test_renamed_preserves_type(self):
        reg = Reg("r1", DType.I64).renamed("r1.0")
        assert reg.name == "r1.0"
        assert reg.dtype is DType.I64

    def test_regs_are_hashable_and_value_equal(self):
        assert Reg("a", DType.F64) == Reg("a", DType.F64)
        assert len({Reg("a", DType.F64), Reg("a", DType.F64)}) == 1
        assert Reg("a", DType.F64) != Reg("a", DType.I64)


class TestImm:
    def test_int_rendering(self):
        assert str(Imm(7)) == "7"

    def test_float_rendering(self):
        assert str(Imm(2.5, DType.F64)) == "2.5"


class TestAffineIndex:
    def test_at_evaluates_affine_form(self):
        index = AffineIndex(coeff=3, offset=2)
        assert index.at(0) == 2
        assert index.at(10) == 32

    def test_shifted_substitutes_iteration(self):
        index = AffineIndex(coeff=2, offset=1).shifted(3)
        assert index.coeff == 2
        assert index.offset == 7

    def test_unrolled_scales_stride_and_offsets(self):
        # Copy k of an unroll-by-u body reads element coeff*(j*u + k) + off.
        index = AffineIndex(coeff=1, offset=0).unrolled(u=4, k=3)
        assert index.coeff == 4
        assert index.offset == 3

    def test_unrolled_with_base_models_remainder_loops(self):
        index = AffineIndex(coeff=2, offset=5).unrolled(u=1, k=0, base=10)
        assert index.coeff == 2
        assert index.offset == 25

    def test_unrolled_agrees_with_direct_evaluation(self):
        index = AffineIndex(coeff=3, offset=4)
        unrolled = index.unrolled(u=5, k=2, base=7)
        for j in range(6):
            assert unrolled.at(j) == index.at(7 + j * 5 + 2)

    @pytest.mark.parametrize(
        "index, expected",
        [
            (AffineIndex(1, 0), "i"),
            (AffineIndex(2, 3), "2*i+3"),
            (AffineIndex(1, -1), "i-1"),
            (AffineIndex(0, 5), "5"),
        ],
    )
    def test_rendering(self, index, expected):
        assert str(index) == expected


class TestMemRef:
    def test_stride_of_affine_ref(self):
        assert MemRef("a", AffineIndex(4, 0)).stride == 4

    def test_stride_of_indirect_ref_is_zero(self):
        ref = MemRef("a", indirect=True, index_reg=Reg("r0", DType.I64))
        assert ref.stride == 0

    def test_indirect_ref_survives_unrolling_unchanged(self):
        ref = MemRef("a", indirect=True, index_reg=Reg("r0", DType.I64))
        assert ref.unrolled(4, 2) is ref

    def test_wide_ref_rendering(self):
        assert str(MemRef("a", AffineIndex(2, 0), width=2)) == "a[2*i]:2"


class TestCarriedDistance:
    def test_same_location_is_distance_zero(self):
        a = MemRef("a", AffineIndex(1, 3))
        assert carried_distance(a, a) == 0

    def test_later_read_of_earlier_write(self):
        # store a[i+2] ... load a[i]: the load at iteration i+2 sees it.
        store = MemRef("a", AffineIndex(1, 2))
        load = MemRef("a", AffineIndex(1, 0))
        assert carried_distance(store, load) == 2

    def test_negative_distances_are_rejected(self):
        store = MemRef("a", AffineIndex(1, 0))
        load = MemRef("a", AffineIndex(1, 2))
        assert carried_distance(store, load) is None

    def test_different_arrays_never_alias(self):
        assert carried_distance(MemRef("a"), MemRef("b")) is None

    def test_non_integral_distance_is_none(self):
        store = MemRef("a", AffineIndex(2, 1))
        load = MemRef("a", AffineIndex(2, 0))
        assert carried_distance(store, load) is None

    def test_indirect_is_unanalyzable(self):
        gather = MemRef("a", indirect=True, index_reg=Reg("r0", DType.I64))
        assert carried_distance(gather, MemRef("a")) is None

    def test_invariant_scalars_with_equal_offsets(self):
        a = MemRef("a", AffineIndex(0, 7))
        b = MemRef("a", AffineIndex(0, 7))
        assert carried_distance(a, b) == 0

    def test_invariant_scalars_with_distinct_offsets(self):
        a = MemRef("a", AffineIndex(0, 7))
        b = MemRef("a", AffineIndex(0, 8))
        assert carried_distance(a, b) is None
