"""Unit tests for the printer, validator, builder, and program containers."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.printer import format_instruction, format_loop
from repro.ir.program import Benchmark, Suite
from repro.ir.types import CmpOp, DType, Language, Opcode
from repro.ir.validate import ValidationError, is_valid_loop, validate_loop


class TestPrinter:
    def test_instruction_rendering(self, daxpy_loop):
        text = format_instruction(daxpy_loop.body[0])
        assert text == "%f0 = load x[i]"

    def test_store_rendering(self, daxpy_loop):
        text = format_instruction(daxpy_loop.body[-1])
        assert "store" in text and "-> y[i]" in text

    def test_predicated_rendering(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        value = builder.load("a")
        pred = builder.cmp(CmpOp.GT, value, builder.fconst(0.0), fp=True)
        builder.store(value, "out", pred=pred)
        text = format_instruction(builder.build().body[-1])
        assert text.startswith("(%p0)")

    def test_compare_renders_condition(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        value = builder.load("a")
        builder.cmp(CmpOp.LE, value, builder.fconst(1.0), fp=True)
        builder.store(value, "o")
        text = format_instruction(builder.build().body[1])
        assert "fcmp.le" in text

    def test_loop_header_mentions_trip_knowledge(self):
        builder = LoopBuilder("t", TripInfo(runtime=8, compile_time=8))
        builder.store(builder.load("a"), "o")
        assert "trip=8" in format_loop(builder.build())

    def test_implicit_marker(self):
        from repro.ir.instruction import mov
        from repro.ir.values import Imm, Reg

        inst = mov(Reg("r0", DType.I64), Imm(1), implicit=True)
        assert format_instruction(inst).endswith("; implicit")


class TestValidator:
    def test_valid_loop_passes(self, daxpy_loop):
        validate_loop(daxpy_loop)
        assert is_valid_loop(daxpy_loop)

    def test_redefinition_rejected(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        value = builder.load("a")
        builder.fp(Opcode.FMUL, value, value, dest=value)
        builder.store(value, "o")
        loop = builder.build(validate=False)
        with pytest.raises(ValidationError, match="redefined"):
            validate_loop(loop)
        assert not is_valid_loop(loop)

    def test_out_of_bounds_reference_rejected(self):
        builder = LoopBuilder("t", TripInfo(runtime=100))
        builder.store(builder.load("a"), "o")
        loop = builder.build().with_body(
            builder.build().body, arrays={"a": 5, "o": 200}
        )
        with pytest.raises(ValidationError, match="out of bounds"):
            validate_loop(loop)

    def test_undeclared_array_rejected(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        builder.store(builder.load("a"), "o")
        loop = builder.build().with_body(builder.build().body, arrays={"a": 16})
        with pytest.raises(ValidationError, match="undeclared"):
            validate_loop(loop)

    def test_mistyped_predicate_rejected(self):
        from repro.ir.instruction import store as mk_store
        from repro.ir.loop import Loop
        from repro.ir.values import MemRef, Reg

        bad_pred = Reg("f9", DType.F64)
        loop = Loop(
            name="t",
            body=(mk_store(Reg("f0", DType.F64), MemRef("o"), pred=bad_pred),),
            trip=TripInfo(runtime=1),
            arrays={"o": 8},
        )
        with pytest.raises(ValidationError, match="not PRED"):
            validate_loop(loop)


class TestBuilder:
    def test_fresh_registers_unique(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        regs = {builder.reg(DType.F64) for _ in range(10)}
        assert len(regs) == 10

    def test_array_auto_sizing_covers_strides(self):
        builder = LoopBuilder("t", TripInfo(runtime=100))
        builder.load("a", stride=4, offset=3)
        builder.store(builder.fconst(0.0), "o")
        loop = builder.build()
        # 4*(99 + MAX_UNROLL) + 3 + 1 elements at least.
        assert loop.arrays["a"] >= 4 * 99 + 4

    def test_carried_inits_recorded(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        acc = builder.carried(DType.F64, init=2.5)
        value = builder.load("a")
        builder.fp(Opcode.FADD, acc, value, dest=acc)
        assert builder.carried_inits == {acc: 2.5}

    def test_build_validates_by_default(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        value = builder.load("a")
        builder.fp(Opcode.FMUL, value, value, dest=value)
        with pytest.raises(ValidationError):
            builder.build()


class TestProgramContainers:
    def _bench(self, name, loops, fp=False):
        return Benchmark(
            name=name,
            suite="spec2000-fp" if fp else "spec2000-int",
            language=Language.C,
            loops=tuple(loops),
            loop_fraction=0.5,
        )

    def test_suite_aggregation(self, daxpy_loop, stencil_loop):
        suite = Suite(
            "s",
            (
                self._bench("a", [daxpy_loop]),
                self._bench("b", [stencil_loop]),
            ),
        )
        assert suite.n_loops == 2
        assert suite.benchmark_by_name("a").n_loops == 1
        with pytest.raises(KeyError):
            suite.benchmark_by_name("zzz")

    def test_loop_lookup(self, daxpy_loop):
        bench = self._bench("a", [daxpy_loop])
        assert bench.loop_by_name(daxpy_loop.name) is daxpy_loop
        with pytest.raises(KeyError):
            bench.loop_by_name("nope")

    def test_fp_detection(self, daxpy_loop):
        assert self._bench("a", [daxpy_loop], fp=True).is_floating_point
        assert not self._bench("a", [daxpy_loop], fp=False).is_floating_point

    def test_loop_fraction_validated(self, daxpy_loop):
        with pytest.raises(ValueError):
            Benchmark(
                name="a", suite="s", language=Language.C,
                loops=(daxpy_loop,), loop_fraction=0.0,
            )
