"""The closed serve→train→promote loop: request-log rotation, drift
detection, the canary gate, journal-backed atomic promotion with
rollback, kill/resume at every checkpoint, and the end-to-end cycle
against a live daemon.

The acceptance property throughout: ``kill -9`` (simulated by the fault
injector's ``run.abort`` site, which fires after every journal commit)
at ANY checkpoint leaves a registry that is whole-old-or-whole-new and a
journal from which ``resume`` completes bit-identically to an
uninterrupted run.
"""

import dataclasses
import hashlib
import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import extract_features
from repro.frontend import parse_program
from repro.lifecycle import (
    CanaryConfig,
    DriftConfig,
    DriftReport,
    LifecycleConfig,
    LifecyclePoller,
    ShadowConfig,
    augment_dataset,
    default_journal_path,
    evaluate_canary,
    evaluate_shadow,
    file_checksum,
    lastgood_path,
    lifecycle_status,
    promote_artifact,
    rejected_path,
    rollback_artifact,
    run_lifecycle,
    scan_drift,
    staged_path,
    vote_entropies,
)
from repro.machine.itanium2 import ITANIUM2
from repro.registry import (
    ArtifactError,
    ArtifactStore,
    save_artifact,
    train_model_artifact,
)
from repro.resilience import (
    AbortRun,
    CheckpointJournal,
    FaultPlan,
    FaultRule,
    fault_plan,
)
from repro.serve import (
    BackgroundDaemon,
    DaemonConfig,
    RequestLog,
    ServeDaemon,
    iter_request_log,
    read_request_log,
    request_log_segments,
)

from tests.test_daemon import _Client
from tests.test_model_artifacts import synthetic_dataset

LOOP_TEMPLATE = """loop "lifecycle/saxpy{i}" trip={trip} entries=24 lang=c
  %x = load x[i]
  %y = load y[i]
  %r = fma %x, {c}.0, %y
  store %r -> y[i]
end
"""

#: Lenient confidence/entropy thresholds: the synthetic ensemble's
#: absolute confidence is not what these tests exercise, so only the
#: feature-shift signal (which we control exactly) can trip the scan.
SHIFT_ONLY = dict(max_low_confidence_share=1.1, max_vote_entropy=1.1)


def _loop_source(i: int) -> str:
    return LOOP_TEMPLATE.format(i=i, trip=64 * (i + 1), c=i + 1)


def _feature_record(i, features, confidence=0.9, ok=True):
    features = [float(value) for value in features]
    return {
        "id": i,
        "ok": ok,
        "features_sha256": hashlib.sha256(
            json.dumps(features).encode()
        ).hexdigest(),
        "features": features,
        "confidence": confidence,
        "factor": 1,
    }


def _source_record(i, confidence=0.9):
    source = _loop_source(i)
    return {
        "id": i,
        "ok": True,
        "features_sha256": hashlib.sha256(source.encode()).hexdigest(),
        "source": source,
        "confidence": confidence,
        "factor": 1,
    }


def _measurable_record(i, shift=0.0, confidence=0.9):
    """A record carrying BOTH the served feature vector (for the drift
    replay) and its loop source (for the measurement queue) — what the
    daemon logs for a source request replayed from upstream tooling."""
    source = _loop_source(i)
    loop = parse_program(source)[0].loop
    features = [
        float(value) + shift for value in extract_features(loop, ITANIUM2)
    ]
    record = _feature_record(i, features, confidence=confidence)
    record["features_sha256"] = hashlib.sha256(source.encode()).hexdigest()
    record["source"] = source
    return record


def _write_log(path, records) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset()


@pytest.fixture(scope="module")
def incumbent(dataset):
    return train_model_artifact(dataset)


@pytest.fixture
def store(tmp_path, incumbent):
    store = ArtifactStore(tmp_path / "registry")
    store.root.mkdir(parents=True)
    save_artifact(incumbent, store.path_for("base"))
    return store


def _train_fn(dataset):
    def train(measured_rows):
        return train_model_artifact(augment_dataset(dataset, measured_rows))

    return train


def _degraded_train_fn(dataset):
    """A retrain that learns shuffled labels — behaviourally unrelated to
    the incumbent, deterministic for resume."""

    def train(measured_rows):
        rng = np.random.default_rng(99)
        bad = dataclasses.replace(
            dataset, labels=rng.permutation(dataset.labels)
        )
        return train_model_artifact(augment_dataset(bad, measured_rows))

    return train


def _config(log_path, **kwargs):
    kwargs.setdefault("drift", DriftConfig(window=4, **SHIFT_ONLY))
    kwargs.setdefault("canary", CanaryConfig(min_family_agreement=0.5))
    return LifecycleConfig(log_path=log_path, model="base", **kwargs)


# ---------------------------------------------------------------------------
# satellite: size-based request-log rotation


class TestRequestLogRotation:
    def _fill(self, path, n=200, max_bytes=512, chunk=20):
        # Rotation happens between batched writes; pacing the producer in
        # chunks (waiting for the writer to durably catch up) guarantees
        # multiple batches and therefore multiple rotation opportunities.
        log = RequestLog(path, max_bytes=max_bytes)
        for start in range(0, n, chunk):
            for i in range(start, min(start + chunk, n)):
                log.record({"id": i, "ok": True, "pad": "x" * 40})
            deadline = time.time() + 10.0
            while log.records < min(start + chunk, n) and time.time() < deadline:
                time.sleep(0.002)
        log.close()
        return log

    def test_rotation_chains_segments(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        log = self._fill(path)
        assert log.rotations >= 2
        segments = request_log_segments(path)
        assert segments[-1] == path
        assert len(segments) == log.rotations + 1
        # oldest first: .N, ..., .1, live
        indexes = [int(s.name.rsplit(".", 1)[1]) for s in segments[:-1]]
        assert indexes == sorted(indexes, reverse=True)

    def test_rotation_never_tears_a_record(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        self._fill(path, n=300, max_bytes=256)
        ids = []
        for segment in request_log_segments(path):
            for line in segment.read_text().splitlines():
                ids.append(json.loads(line)["id"])  # every line parses whole
        assert sorted(ids) == list(range(300))

    def test_replay_reader_walks_segments_in_write_order(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        self._fill(path, n=120, max_bytes=512)
        replayed = [record["id"] for record in iter_request_log(path)]
        assert replayed == list(range(120))

    def test_sharing_writers_never_lose_or_tear(self, tmp_path):
        # Two RequestLog instances on one path (the multi-worker layout)
        # with rotation racing between them.
        path = tmp_path / "shared.jsonl"
        logs = [RequestLog(path, worker=w, max_bytes=1024) for w in range(2)]

        def pump(log, offset):
            for i in range(150):
                log.record({"id": offset + i, "pad": "y" * 30})

        threads = [
            threading.Thread(target=pump, args=(log, 1000 * w))
            for w, log in enumerate(logs)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for log in logs:
            log.close()
        ids = [record["id"] for record in iter_request_log(path)]
        assert sorted(ids) == sorted(
            list(range(0, 150)) + list(range(1000, 1150))
        )

    def test_stats_expose_bytes_and_rotations(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        log = self._fill(path, n=50, max_bytes=100_000)
        stats = log.stats()
        assert stats["records"] == 50
        assert stats["bytes_written"] > 0
        assert stats["file_bytes"] == stats["bytes_written"]
        assert stats["rotations"] == 0

    def test_unrotated_log_reads_as_before(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        log = RequestLog(path)
        log.record({"id": 7})
        log.close()
        assert read_request_log(path) == [{"id": 7}]
        assert request_log_segments(path) == [path]

    def test_max_bytes_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            RequestLog(tmp_path / "bad.jsonl", max_bytes=0)


# ---------------------------------------------------------------------------
# drift detection


class TestDriftScan:
    def test_training_fingerprint_is_stored(self, incumbent, dataset):
        stats = incumbent.provenance["feature_stats"]
        np.testing.assert_allclose(stats["mean"], dataset.X.mean(axis=0))
        np.testing.assert_allclose(stats["std"], dataset.X.std(axis=0))

    def test_in_distribution_traffic_is_clean(self, incumbent, dataset):
        records = [
            _feature_record(i, dataset.X[i % len(dataset.X)])
            for i in range(16)
        ]
        report = scan_drift(
            records, incumbent, DriftConfig(window=8, **SHIFT_ONLY)
        )
        assert report.n_replayable == 16
        assert report.has_fingerprint is True
        assert report.drifted is False
        assert report.flagged == ()

    def test_shifted_traffic_flags_feature_shift(self, incumbent, dataset):
        records = [
            _feature_record(i, dataset.X[i % len(dataset.X)] + 40.0)
            for i in range(8)
        ]
        report = scan_drift(
            records, incumbent, DriftConfig(window=4, **SHIFT_ONLY)
        )
        assert report.drifted is True
        assert all("feature-shift" in w.reasons for w in report.windows)
        # every row of a drifted window is routed to the queue
        assert len(report.flagged) == 8

    def test_low_confidence_share_flags_without_shift(self, incumbent, dataset):
        records = [
            _feature_record(i, dataset.X[i % len(dataset.X)])
            for i in range(8)
        ]
        config = DriftConfig(
            window=8,
            low_confidence=1.1,  # every served confidence counts as low
            max_low_confidence_share=0.5,
            max_vote_entropy=1.1,
        )
        report = scan_drift(records, incumbent, config)
        assert report.drifted is True
        assert report.windows[0].reasons == ("low-confidence",)

    def test_artifact_without_fingerprint_degrades_gracefully(
        self, incumbent, dataset
    ):
        provenance = {
            key: value
            for key, value in incumbent.provenance.items()
            if key != "feature_stats"
        }
        legacy = dataclasses.replace(incumbent, provenance=provenance)
        records = [_feature_record(i, dataset.X[0] + 40.0) for i in range(4)]
        report = scan_drift(
            records, legacy, DriftConfig(window=4, **SHIFT_ONLY)
        )
        assert report.has_fingerprint is False
        assert report.drifted is False  # shift signal reads 0 without stats

    def test_source_only_records_ride_along_when_windows_drift(
        self, incumbent, dataset
    ):
        records = [
            _feature_record(i, dataset.X[i % len(dataset.X)] + 40.0)
            for i in range(4)
        ]
        records.append(_source_record(99))
        report = scan_drift(
            records, incumbent, DriftConfig(window=4, **SHIFT_ONLY)
        )
        assert records[-1]["features_sha256"] in report.flagged

    def test_low_confidence_source_record_flagged_in_clean_log(
        self, incumbent
    ):
        records = [_source_record(0, confidence=0.1)]
        report = scan_drift(
            records, incumbent, DriftConfig(window=4, **SHIFT_ONLY)
        )
        assert report.n_replayable == 0
        assert report.flagged == (records[0]["features_sha256"],)

    def test_vote_entropy_bounds(self):
        unanimous = {"a": [1, 1], "b": [1, 1], "c": [1, 1]}
        split = {"a": [1, 1], "b": [2, 2], "c": [3, 3]}
        np.testing.assert_allclose(vote_entropies(unanimous), [0.0, 0.0])
        np.testing.assert_allclose(vote_entropies(split), [1.0, 1.0])

    def test_report_round_trips_through_json(self, incumbent, dataset):
        records = [
            _feature_record(i, dataset.X[i % len(dataset.X)] + 40.0)
            for i in range(6)
        ]
        report = scan_drift(
            records, incumbent, DriftConfig(window=4, **SHIFT_ONLY)
        )
        clone = DriftReport.from_json(json.loads(json.dumps(report.to_json())))
        assert clone == report


# ---------------------------------------------------------------------------
# canary gate and shadow check


class TestCanaryGate:
    def test_identical_candidate_accepted(self, incumbent, dataset):
        verdict = evaluate_canary(
            incumbent, incumbent, dataset.X, dataset.labels
        )
        assert verdict.accepted is True
        assert verdict.candidate_accuracy == verdict.incumbent_accuracy
        assert min(verdict.family_agreement.values()) == 1.0

    def test_degraded_candidate_rejected(self, incumbent, dataset):
        degraded = _degraded_train_fn(dataset)([])
        verdict = evaluate_canary(
            incumbent, degraded, dataset.X, dataset.labels
        )
        assert verdict.accepted is False
        assert "accuracy-regression" in verdict.reasons

    def test_empty_replay_refuses_to_promote_blind(self, incumbent):
        verdict = evaluate_canary(
            incumbent, incumbent, np.empty((0, 38)), None
        )
        assert verdict.accepted is False
        assert verdict.reasons == ("empty-replay",)

    def test_unlabelled_replay_still_gates_on_agreement(
        self, incumbent, dataset
    ):
        degraded = _degraded_train_fn(dataset)([])
        verdict = evaluate_canary(incumbent, degraded, dataset.X, None)
        assert verdict.n_labelled == 0
        assert verdict.candidate_accuracy is None
        assert verdict.accepted is False
        assert verdict.reasons == ("family-agreement",)

    def test_shadow_abstains_without_traffic(self, incumbent):
        verdict = evaluate_shadow(
            incumbent, incumbent, np.empty((0, 38)), None
        )
        assert verdict.regressed is False

    def test_shadow_flags_degraded_promotion(self, incumbent, dataset):
        degraded = _degraded_train_fn(dataset)([])
        verdict = evaluate_shadow(
            degraded, incumbent, dataset.X, dataset.labels
        )
        assert verdict.regressed is True
        assert "accuracy-regression" in verdict.reasons

    def test_shadow_scores_only_recent_rows(self, incumbent, dataset):
        verdict = evaluate_shadow(
            incumbent,
            incumbent,
            dataset.X,
            dataset.labels,
            ShadowConfig(recent=5),
        )
        assert verdict.n_rows == 5
        assert verdict.regressed is False


# ---------------------------------------------------------------------------
# atomic promotion and rollback


class TestAtomicPromotion:
    def _candidate(self, incumbent):
        return dataclasses.replace(
            incumbent, provenance={**incumbent.provenance, "tag": "candidate"}
        )

    def _promote(self, store, candidate, resume=False):
        journal = CheckpointJournal(
            store.root / "promote.jsonl", run_key="test-promote"
        )
        with journal:
            if resume:
                journal.load()
            return promote_artifact(store, "base", candidate, journal)

    def test_promote_flips_live_and_snapshots_lastgood(
        self, store, incumbent
    ):
        live = store.path_for("base")
        before = file_checksum(live)
        result = self._promote(store, self._candidate(incumbent))
        assert file_checksum(live) == result.candidate_checksum != before
        assert result.previous_checksum == before
        assert file_checksum(lastgood_path(store, "base")) == before
        assert not staged_path(store, "base").exists()  # consumed by the flip

    def test_suffixed_slots_are_invisible_to_the_watcher(
        self, store, incumbent
    ):
        self._promote(store, self._candidate(incumbent))
        save_artifact(incumbent, rejected_path(store, "base"))
        assert store.entries() == [store.path_for("base")]

    def test_first_promotion_has_no_lastgood(self, tmp_path, incumbent):
        store = ArtifactStore(tmp_path)
        result = self._promote(store, self._candidate(incumbent))
        assert result.previous_checksum is None
        assert result.lastgood is None
        assert not lastgood_path(store, "base").exists()

    def test_rollback_restores_incumbent_and_preserves_evidence(
        self, store, incumbent
    ):
        live = store.path_for("base")
        before = file_checksum(live)
        result = self._promote(store, self._candidate(incumbent))
        journal = CheckpointJournal(
            store.root / "rollback.jsonl", run_key="test-rollback"
        )
        with journal:
            rollback = rollback_artifact(store, "base", journal)
        assert rollback["restored_checksum"] == before
        assert file_checksum(live) == before
        assert (
            file_checksum(rejected_path(store, "base"))
            == result.candidate_checksum
        )

    def test_rollback_without_lastgood_raises(self, store):
        journal = CheckpointJournal(
            store.root / "rollback.jsonl", run_key="test-rollback"
        )
        with journal:
            with pytest.raises(ArtifactError, match="last-good"):
                rollback_artifact(store, "base", journal)

    @settings(max_examples=8, deadline=None)
    @given(kill_at=st.integers(min_value=0, max_value=2))
    def test_kill_mid_promotion_never_tears_and_resumes_identically(
        self, kill_at, tmp_path_factory, incumbent
    ):
        tmp = tmp_path_factory.mktemp("promotion-kill")
        store = ArtifactStore(tmp)
        live = store.path_for("base")
        save_artifact(incumbent, live)
        old = file_checksum(live)
        candidate = self._candidate(incumbent)

        plan = FaultPlan(
            rules=(FaultRule(op="run.abort", match="*", skip=kill_at),)
        )
        with fault_plan(plan):
            with pytest.raises(AbortRun):
                self._promote(store, candidate)
        # never torn: whole old bytes or whole new bytes, always loadable
        assert file_checksum(live) in (old, file_checksum_of(candidate, tmp))
        result = self._promote(store, candidate, resume=True)
        assert file_checksum(live) == result.candidate_checksum
        assert file_checksum(lastgood_path(store, "base")) == old


def file_checksum_of(artifact, tmp) -> str:
    """Registry saves are byte-deterministic: the checksum a candidate
    WILL have once staged, computed without touching the registry."""
    scratch = Path(tmp) / "scratch.rma"
    save_artifact(artifact, scratch)
    checksum = file_checksum(scratch)
    scratch.unlink()
    return checksum


# ---------------------------------------------------------------------------
# the state machine


class TestRunLifecycle:
    def test_requires_train_fn(self, store):
        with pytest.raises(ValueError, match="train_fn"):
            run_lifecycle(_config("nowhere.jsonl"), store)

    def test_requires_incumbent(self, tmp_path, dataset):
        empty = ArtifactStore(tmp_path / "empty")
        empty.root.mkdir()
        with pytest.raises(ArtifactError, match="no incumbent"):
            run_lifecycle(
                _config("nowhere.jsonl"), empty, _train_fn(dataset)
            )

    def test_no_drift_short_circuits(self, store, dataset, tmp_path):
        log = tmp_path / "requests.jsonl"
        _write_log(
            log,
            [
                _feature_record(i, dataset.X[i % len(dataset.X)])
                for i in range(8)
            ],
        )
        before = file_checksum(store.path_for("base"))
        result = run_lifecycle(_config(log), store, _train_fn(dataset))
        assert result.outcome == "no-drift"
        assert result.measured == {}
        assert file_checksum(store.path_for("base")) == before
        assert not default_journal_path(store, "base").exists()

    def test_drifted_traffic_promotes(self, store, dataset, tmp_path):
        log = tmp_path / "requests.jsonl"
        _write_log(log, [_measurable_record(i, shift=50.0) for i in range(4)])
        before = file_checksum(store.path_for("base"))
        result = run_lifecycle(_config(log), store, _train_fn(dataset))
        assert result.outcome == "promoted"
        assert len(result.measured) == 4
        assert result.canary is not None and result.canary.accepted
        # the held-out half of the measured loops graded the candidate
        assert result.canary.n_labelled == 2
        assert result.promotion.previous_checksum == before
        assert file_checksum(store.path_for("base")) != before
        assert file_checksum(lastgood_path(store, "base")) == before
        assert not default_journal_path(store, "base").exists()

    def test_degraded_candidate_rejected_at_canary(
        self, store, dataset, tmp_path
    ):
        log = tmp_path / "requests.jsonl"
        _write_log(log, [_measurable_record(i, shift=50.0) for i in range(4)])
        before = file_checksum(store.path_for("base"))
        result = run_lifecycle(
            _config(log, canary=CanaryConfig(min_family_agreement=0.75)),
            store,
            _degraded_train_fn(dataset),
        )
        assert result.outcome == "rejected"
        assert result.canary.accepted is False
        assert result.promotion is None
        # the registry never changed and no staged debris remains
        assert file_checksum(store.path_for("base")) == before
        assert not staged_path(store, "base").exists()
        assert not default_journal_path(store, "base").exists()

    def test_shadow_regression_rolls_back(self, store, dataset, tmp_path):
        # Force a degraded candidate past the gate (break-glass mode);
        # the post-promotion shadow check must undo the damage.
        log = tmp_path / "requests.jsonl"
        _write_log(log, [_measurable_record(i, shift=50.0) for i in range(4)])
        before = file_checksum(store.path_for("base"))
        result = run_lifecycle(
            _config(log, skip_canary=True, shadow=ShadowConfig(min_agreement=0.9)),
            store,
            _degraded_train_fn(dataset),
        )
        assert result.outcome == "rolled-back"
        assert result.shadow is not None and result.shadow.regressed
        assert result.rollback["restored_checksum"] == before
        assert file_checksum(store.path_for("base")) == before
        assert rejected_path(store, "base").exists()

    def test_force_runs_the_loop_without_drift(self, store, dataset, tmp_path):
        log = tmp_path / "requests.jsonl"
        _write_log(
            log,
            [
                _feature_record(i, dataset.X[i % len(dataset.X)])
                for i in range(4)
            ],
        )
        result = run_lifecycle(
            _config(log, force=True), store, _train_fn(dataset)
        )
        assert result.drift.drifted is False
        assert result.measured == {}  # nothing flagged, nothing to measure
        assert result.outcome == "promoted"

    def test_kill_resume_at_every_checkpoint_is_bit_identical(
        self, incumbent, dataset, tmp_path
    ):
        """The tentpole property, exhaustively: kill the run at checkpoint
        k for every k (replay, drift, each measure, retrain, canary, the
        three promotion phases, shadow) and resume; the final registry
        bytes must equal the uninterrupted run's."""
        log = tmp_path / "requests.jsonl"
        _write_log(log, [_measurable_record(i, shift=50.0) for i in range(3)])

        def fresh_store(tag):
            store = ArtifactStore(tmp_path / tag)
            store.root.mkdir()
            save_artifact(incumbent, store.path_for("base"))
            return store

        reference_store = fresh_store("reference")
        reference = run_lifecycle(
            _config(log), reference_store, _train_fn(dataset)
        )
        assert reference.outcome == "promoted"
        reference_live = file_checksum(reference_store.path_for("base"))

        kill_at = 0
        while True:
            store = fresh_store(f"kill{kill_at}")
            live = store.path_for("base")
            old = file_checksum(live)
            plan = FaultPlan(
                rules=(FaultRule(op="run.abort", match="*", skip=kill_at),)
            )
            try:
                with fault_plan(plan):
                    run_lifecycle(_config(log), store, _train_fn(dataset))
            except AbortRun:
                # never torn mid-run
                assert file_checksum(live) in (old, reference_live)
                result = run_lifecycle(
                    _config(log), store, _train_fn(dataset), resume=True
                )
                assert result.outcome == reference.outcome
                assert file_checksum(live) == reference_live
            else:
                break  # ran past the last checkpoint: plan never fired
            kill_at += 1
        assert kill_at >= 9  # replay, drift, 3x measure, retrain, canary, 3x promote

    @settings(max_examples=6, deadline=None)
    @given(kill_at=st.integers(min_value=2, max_value=4))
    def test_kill_mid_measure_resumes_identically(
        self, kill_at, incumbent, dataset, tmp_path_factory
    ):
        """Hypothesis over the measurement region (checkpoints 2..4 land
        inside the three measure units): resume must re-execute only the
        missing units yet produce identical registry bytes."""
        tmp = tmp_path_factory.mktemp("measure-kill")
        log = tmp / "requests.jsonl"
        _write_log(log, [_measurable_record(i, shift=50.0) for i in range(3)])
        store = ArtifactStore(tmp / "registry")
        store.root.mkdir()
        save_artifact(incumbent, store.path_for("base"))
        plan = FaultPlan(
            rules=(FaultRule(op="run.abort", match="*", skip=kill_at),)
        )
        with fault_plan(plan):
            with pytest.raises(AbortRun, match="measure:"):
                run_lifecycle(_config(log), store, _train_fn(dataset))
        result = run_lifecycle(
            _config(log), store, _train_fn(dataset), resume=True
        )
        assert result.outcome == "promoted"
        assert len(result.measured) == 3
        resumed = [event for event in result.events if event.kind == "resume"]
        assert len(resumed) == kill_at - 1  # committed units replayed, not re-run

    def test_replay_snapshot_is_pinned_across_resume(
        self, store, dataset, tmp_path
    ):
        # Records appended between kill and resume (a live daemon keeps
        # writing) must not change what the resumed run sees.
        log = tmp_path / "requests.jsonl"
        _write_log(log, [_measurable_record(i, shift=50.0) for i in range(3)])
        plan = FaultPlan(rules=(FaultRule(op="run.abort", match="*", skip=2),))
        with fault_plan(plan):
            with pytest.raises(AbortRun):
                run_lifecycle(_config(log), store, _train_fn(dataset))
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(_measurable_record(9, shift=50.0)) + "\n")
        result = run_lifecycle(
            _config(log), store, _train_fn(dataset), resume=True
        )
        assert result.drift.n_records == 3
        assert len(result.measured) == 3


# ---------------------------------------------------------------------------
# status and the poller


class TestLifecycleStatus:
    def test_slots_and_quiescence(self, store):
        status = lifecycle_status(store, "base")
        assert status["live"]["exists"] is True
        assert status["lastgood"]["exists"] is False
        assert status["in_progress"] is False
        assert status["journal"] is None

    def test_interrupted_run_is_reported(self, store, dataset, tmp_path):
        log = tmp_path / "requests.jsonl"
        _write_log(log, [_measurable_record(i, shift=50.0) for i in range(2)])
        plan = FaultPlan(rules=(FaultRule(op="run.abort", match="*", skip=2),))
        with fault_plan(plan):
            with pytest.raises(AbortRun):
                run_lifecycle(_config(log), store, _train_fn(dataset))
        status = lifecycle_status(store, "base")
        assert status["in_progress"] is True
        assert status["journal"]["stages"] == ["replay", "drift"]
        assert status["journal"]["measured"] == 1


class TestLifecyclePoller:
    def test_interval_must_be_positive(self, store, dataset):
        with pytest.raises(ValueError, match="interval_s"):
            LifecyclePoller(
                _config("nowhere.jsonl"), store, _train_fn(dataset), 0.0
            )

    def test_poller_ticks_and_records_outcomes(self, store, dataset, tmp_path):
        log = tmp_path / "requests.jsonl"
        _write_log(
            log,
            [
                _feature_record(i, dataset.X[i % len(dataset.X)])
                for i in range(4)
            ],
        )
        with LifecyclePoller(
            _config(log), store, _train_fn(dataset), interval_s=0.05
        ) as poller:
            deadline = time.time() + 10.0
            while poller.runs == 0 and time.time() < deadline:
                time.sleep(0.02)
        assert poller.runs >= 1
        assert set(poller.outcomes) == {"no-drift"}
        assert poller.errors == []

    def test_poller_survives_a_broken_cycle(self, tmp_path, dataset):
        empty = ArtifactStore(tmp_path / "empty")
        empty.root.mkdir()
        with LifecyclePoller(
            _config(tmp_path / "none.jsonl"),
            empty,
            _train_fn(dataset),
            interval_s=0.05,
        ) as poller:
            deadline = time.time() + 10.0
            while len(poller.errors) < 2 and time.time() < deadline:
                time.sleep(0.02)
        assert len(poller.errors) >= 2  # it kept ticking after the first


# ---------------------------------------------------------------------------
# the acceptance test: closed loop against a live daemon


class TestClosedLoopEndToEnd:
    def test_traffic_to_promotion_with_live_hot_reload(
        self, store, dataset, tmp_path
    ):
        """Shifted traffic through a real daemon writes the request log;
        the lifecycle detects drift, measures, retrains, canaries, and
        promotes; the SAME daemon hot-reloads the promoted artifact under
        continued traffic with zero dropped requests."""
        log_path = tmp_path / "requests.jsonl"
        daemon = ServeDaemon(
            store.path_for("base"),
            DaemonConfig(
                batch_window_ms=1.0,
                reload_poll_s=0.05,
                request_log=str(log_path),
            ),
            store=store,
        )
        responses = []
        with BackgroundDaemon(daemon) as background:
            client = _Client(background.address)
            # Drifted feature traffic (replayable) ...
            for i in range(8):
                record = _measurable_record(i % 4, shift=50.0)
                responses.append(
                    client.ask({"id": i, "features": record["features"]})
                )
            # ... and the same loops as source requests (measurable).
            for i in range(4):
                responses.append(
                    client.ask({"id": 100 + i, "source": _loop_source(i)})
                )
            # the log is written off the hot path; wait for the flush
            deadline = time.time() + 10.0
            while daemon.request_log.records < 12 and time.time() < deadline:
                time.sleep(0.02)
            assert daemon.request_log.records == 12

            before = file_checksum(store.path_for("base"))
            result = run_lifecycle(
                _config(log_path), store, _train_fn(dataset)
            )
            assert result.outcome == "promoted"

            # the watcher must pick the promotion up under live traffic
            deadline = time.time() + 10.0
            while daemon.reloads == 0 and time.time() < deadline:
                responses.append(
                    client.ask(
                        {"id": 200, "features": _feature_record(0, dataset.X[0])["features"]}
                    )
                )
                time.sleep(0.02)
            client.close()
        assert daemon.reloads >= 1
        assert daemon.checksum == result.promotion.candidate_checksum != before
        assert all(response["ok"] for response in responses)
        assert daemon.gateway.counters.balanced()  # zero dropped requests

    def test_daemon_healthz_reports_log_bytes(self, store, dataset, tmp_path):
        log_path = tmp_path / "requests.jsonl"
        daemon = ServeDaemon(
            store.path_for("base"),
            DaemonConfig(request_log=str(log_path), request_log_max_bytes=400),
            store=store,
        )
        with BackgroundDaemon(daemon) as background:
            client = _Client(background.address)
            for i in range(20):
                client.ask(
                    {"id": i, "features": [float(v) for v in dataset.X[i % 40]]}
                )
            deadline = time.time() + 10.0
            while daemon.request_log.records < 20 and time.time() < deadline:
                time.sleep(0.02)
            health = client.ask({"healthz": True})["healthz"]
            client.close()
        stats = health["request_log"]
        assert stats["records"] == 20
        assert stats["bytes_written"] > 0
        assert stats["rotations"] >= 1  # 20 feature rows blow a 400-byte cap
        # rotation must not lose replayable records
        assert len(list(iter_request_log(log_path))) == 20
