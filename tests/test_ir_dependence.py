"""Unit tests for dependence analysis."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.dependence import DepKind, analyze_dependences
from repro.ir.loop import TripInfo
from repro.ir.types import CmpOp, DType, Opcode
from repro.machine import ITANIUM2


def _edges(graph, kind=None):
    return [
        e for e in graph.edges if kind is None or e.kind is kind
    ]


class TestRegisterDependences:
    def test_flow_edge_from_def_to_use(self, daxpy_loop):
        graph = analyze_dependences(daxpy_loop)
        flows = _edges(graph, DepKind.FLOW)
        # load x -> fma, load y -> fma, fma -> store.
        assert {(e.src, e.dst) for e in flows} == {(0, 2), (1, 2), (2, 3)}
        assert all(e.distance == 0 for e in flows)

    def test_carried_flow_for_recurrence(self, reduction_loop):
        loop, acc, _ = reduction_loop
        graph = analyze_dependences(loop)
        carried = [e for e in graph.edges if e.distance == 1 and e.kind is DepKind.FLOW]
        assert len(carried) == 1
        # The FADD (position 1) feeds itself one iteration later.
        assert carried[0].src == 1 and carried[0].dst == 1

    def test_double_definition_rejected(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        value = builder.load("a")
        builder.fp(Opcode.FADD, value, value, dest=value)  # redefines value
        loop = builder.build(validate=False)
        with pytest.raises(ValueError, match="defined twice"):
            analyze_dependences(loop)


class TestMemoryDependences:
    def test_store_load_forwarding_distance(self):
        # store a[i+2]; load a[i] => the load 2 iterations later conflicts.
        builder = LoopBuilder("t", TripInfo(runtime=16))
        value = builder.load("a", offset=0)
        scaled = builder.fp(Opcode.FMUL, value, builder.fconst(0.5))
        builder.store(scaled, "a", offset=2)
        loop = builder.build()
        graph = analyze_dependences(loop)
        mem_flow = _edges(graph, DepKind.MEM_FLOW)
        assert any(e.distance == 2 and e.src == 2 and e.dst == 0 for e in mem_flow)

    def test_independent_arrays_have_no_mem_edges(self, daxpy_loop):
        graph = analyze_dependences(daxpy_loop)
        # x is only loaded; y has a load and a store at the same address.
        mem = [e for e in graph.edges if e.kind.is_memory]
        assert all(
            daxpy_loop.body[e.src].mem.array == "y" for e in mem
        )

    def test_same_address_load_store_intra_iteration(self, daxpy_loop):
        graph = analyze_dependences(daxpy_loop)
        anti = _edges(graph, DepKind.MEM_ANTI)
        # load y[i] (pos 1) then store y[i] (pos 3), distance 0.
        assert any(e.src == 1 and e.dst == 3 and e.distance == 0 for e in anti)

    def test_indirect_store_creates_may_edges(self):
        from repro.workloads.kernels import scatter_increment

        loop = scatter_increment(trip=16, entries=1)
        graph = analyze_dependences(loop)
        may = _edges(graph, DepKind.MEM_MAY)
        assert may, "indirect store/load must produce conservative edges"
        assert any(e.distance == 1 for e in may)

    def test_load_load_pairs_are_free(self, stencil_loop):
        graph = analyze_dependences(stencil_loop)
        mem = [e for e in graph.edges if e.kind.is_memory]
        # Three loads of 'a' overlap across iterations, but no store to 'a'
        # exists, so no memory edges constrain them.
        assert all(stencil_loop.body[e.src].mem.array != "a" or
                   stencil_loop.body[e.dst].mem.array != "a" for e in mem)


class TestControlDependences:
    def test_exit_branch_guards_later_stores(self):
        builder = LoopBuilder("t", TripInfo(runtime=16, counted=False))
        value = builder.load("a")
        hit = builder.cmp(CmpOp.GT, value, builder.fconst(1.0), fp=True)
        builder.exit_if(hit)
        builder.store(value, "out")
        loop = builder.build()
        graph = analyze_dependences(loop)
        control = _edges(graph, DepKind.CONTROL)
        assert len(control) == 1
        assert loop.body[control[0].src].op is Opcode.BR_EXIT
        assert loop.body[control[0].dst].op is Opcode.STORE

    def test_loads_may_be_hoisted_past_exits(self):
        builder = LoopBuilder("t", TripInfo(runtime=16, counted=False))
        value = builder.load("a")
        hit = builder.cmp(CmpOp.GT, value, builder.fconst(1.0), fp=True)
        builder.exit_if(hit)
        later = builder.load("b")
        builder.store(later, "out")
        loop = builder.build()
        graph = analyze_dependences(loop)
        control_targets = {e.dst for e in _edges(graph, DepKind.CONTROL)}
        assert 3 not in control_targets  # the load of b is speculatable


class TestGraphQueries:
    def test_critical_path_includes_latencies(self, daxpy_loop):
        graph = analyze_dependences(daxpy_loop)
        # load (6) -> fma (4) -> store (1) = 11.
        assert graph.critical_path_length(ITANIUM2) == 11

    def test_components_counts_independent_strands(self):
        builder = LoopBuilder("t", TripInfo(runtime=8))
        a = builder.load("a")
        builder.store(a, "out1")
        b = builder.load("b")
        builder.store(b, "out2")
        graph = analyze_dependences(builder.build())
        assert graph.n_components() == 2

    def test_dependence_heights(self, daxpy_loop):
        graph = analyze_dependences(daxpy_loop)
        heights = graph.dependence_heights()
        assert heights[0] == 1  # load x
        assert heights[2] == 2  # fma
        assert heights[3] == 3  # store

    def test_to_networkx_mirrors_edges(self, daxpy_loop):
        graph = analyze_dependences(daxpy_loop)
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == len(daxpy_loop.body)
        assert nx_graph.number_of_edges() == len(graph.edges)

    def test_fan_in_degrees(self, daxpy_loop):
        graph = analyze_dependences(daxpy_loop)
        degrees = graph.fan_in_degrees()
        assert degrees[2] == 2  # the fma consumes both loads
