"""Unit tests for the hyperparameter search tooling."""

import numpy as np
import pytest

from repro.ml.near_neighbor import NearNeighborClassifier
from repro.ml.tuning import (
    TuningResult,
    cross_val_accuracy,
    grid_search,
    kfold_indices,
    tune_nn_radius,
)


class TestKFold:
    def test_folds_partition_the_data(self):
        folds = kfold_indices(23, 5, seed=1)
        combined = np.sort(np.concatenate(folds))
        np.testing.assert_array_equal(combined, np.arange(23))

    def test_fold_sizes_balanced(self):
        folds = kfold_indices(20, 4, seed=0)
        assert all(len(f) == 5 for f in folds)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            kfold_indices(5, 1)
        with pytest.raises(ValueError):
            kfold_indices(5, 6)

    def test_seed_controls_shuffle(self):
        a = kfold_indices(30, 3, seed=1)
        b = kfold_indices(30, 3, seed=2)
        assert any(not np.array_equal(x, y) for x, y in zip(a, b))


def _clustered(seed=0, n_per=30):
    rng = np.random.default_rng(seed)
    X, y = [], []
    for label, center in ((1, (0, 0)), (4, (6, 0)), (8, (0, 6))):
        X.append(rng.normal(loc=center, scale=0.5, size=(n_per, 2)))
        y.extend([label] * n_per)
    return np.vstack(X), np.array(y)


class TestCrossVal:
    def test_separable_data_scores_high(self):
        X, y = _clustered()
        score = cross_val_accuracy(lambda: NearNeighborClassifier(), X, y, k=5)
        assert score > 0.9

    def test_random_labels_score_low(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(90, 3))
        y = rng.integers(1, 9, size=90)
        score = cross_val_accuracy(lambda: NearNeighborClassifier(), X, y, k=5)
        assert score < 0.4


class TestGridSearch:
    def test_finds_the_better_radius(self):
        # Overlapping clusters with label noise: a tiny radius degenerates
        # to 1-NN (memorises the noise), while a vote over a real
        # neighborhood smooths it out — the search must notice.
        rng = np.random.default_rng(5)
        X = np.vstack(
            [rng.normal((0, 0), 1.0, (80, 2)), rng.normal((3, 0), 1.0, (80, 2))]
        )
        y = np.array([1] * 80 + [8] * 80)
        flip = rng.random(160) < 0.2
        y[flip] = np.where(y[flip] == 1, 8, 1)
        result = tune_nn_radius(X, y, radii=(0.001, 0.25), k=4)
        assert isinstance(result, TuningResult)
        assert result.best_params["radius"] == 0.25
        scores = dict((p["radius"], s) for p, s in result.trials)
        assert scores[0.25] > scores[0.001]

    def test_all_grid_points_tried(self):
        X, y = _clustered(seed=6)
        result = grid_search(
            lambda radius: NearNeighborClassifier(radius=radius),
            {"radius": [0.1, 0.2, 0.4]},
            X, y, k=3,
        )
        assert len(result.trials) == 3
        assert result.top(2)[0][1] >= result.top(2)[1][1]

    def test_subsample_limits_rows(self):
        X, y = _clustered(seed=7, n_per=50)
        result = grid_search(
            lambda radius: NearNeighborClassifier(radius=radius),
            {"radius": [0.2]},
            X, y, k=3, subsample=45,
        )
        assert result.best_score >= 0.0

    def test_multi_parameter_grid(self):
        X, y = _clustered(seed=8)
        result = grid_search(
            lambda radius, normalization: NearNeighborClassifier(
                radius=radius, normalization=normalization
            ),
            {"radius": [0.2, 0.4], "normalization": ["minmax", "zscore"]},
            X, y, k=3,
        )
        assert len(result.trials) == 4
        assert set(result.best_params) == {"radius", "normalization"}

    def test_mini_dataset_tuning_runs(self, mini_dataset):
        result = tune_nn_radius(
            mini_dataset.X, mini_dataset.labels, radii=(0.2, 0.3), k=3
        )
        majority = np.bincount(mini_dataset.labels, minlength=9)[1:].max() / len(
            mini_dataset
        )
        assert result.best_score > majority - 0.05
