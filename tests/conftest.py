"""Shared fixtures.

Expensive artefacts (a measured mini-suite and its labelled dataset) are
built once per session on a deliberately small configuration: a handful of
benchmarks, relaxed filters, light noise.  Tests that need the full-scale
pipeline belong in the benchmarks/ harness, not here.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.program import Suite
from repro.ir.types import DType, Opcode
from repro.pipeline.labeling import LabelingConfig, measure_suite
from repro.simulate.noise import NoiseModel
from repro.workloads.generator import generate_benchmark
from repro.workloads.spec_names import ROSTER


def _worker_suffix() -> str:
    """A per-process suffix so parallel test runs never share state dirs.

    Under pytest-xdist every worker gets its own ``tmp_path_factory``
    basetemp already; the explicit worker id keeps the isolation obvious
    (and correct even if a plugin rewires basetemp) at zero cost for
    serial runs, where it degrades to ``"serial"``.
    """
    return os.environ.get("PYTEST_XDIST_WORKER", "serial")


@pytest.fixture(scope="session", autouse=True)
def isolated_cache_dir(tmp_path_factory):
    """Point every cache-aware code path (CLI tests included) at a
    per-session, per-xdist-worker temp directory instead of the
    repo-level ``.cache/``.

    Commands within one session still share warm artefacts, but nothing
    leaks between test runs, no test can be broken by (or corrupt) the
    developer's working cache, and two ``-n auto`` workers never race on
    the same cache files.
    """
    cache_dir = tmp_path_factory.mktemp(f"measurement-cache-{_worker_suffix()}")
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield cache_dir
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session", autouse=True)
def isolated_artifact_dir(tmp_path_factory):
    """Same isolation for model artifacts: ``repro train``/``ArtifactStore``
    default to the repo-level ``.artifacts/`` via ``REPRO_ARTIFACT_DIR``,
    which tests must never touch."""
    artifact_dir = tmp_path_factory.mktemp(f"model-artifacts-{_worker_suffix()}")
    previous = os.environ.get("REPRO_ARTIFACT_DIR")
    os.environ["REPRO_ARTIFACT_DIR"] = str(artifact_dir)
    yield artifact_dir
    if previous is None:
        os.environ.pop("REPRO_ARTIFACT_DIR", None)
    else:
        os.environ["REPRO_ARTIFACT_DIR"] = previous


@pytest.fixture
def daxpy_loop():
    """A small, analyzable streaming loop (used across many suites)."""
    builder = LoopBuilder("test/daxpy", trip=TripInfo(runtime=96))
    x = builder.load("x")
    y = builder.load("y")
    builder.store(builder.fp(Opcode.FMA, x, builder.fconst(2.5), y), "y")
    return builder.build()


@pytest.fixture
def reduction_loop():
    """A serial FP reduction with a carried accumulator."""
    builder = LoopBuilder("test/vsum", trip=TripInfo(runtime=64))
    acc = builder.carried(DType.F64, init=0.0)
    value = builder.load("a")
    builder.fp(Opcode.FADD, acc, value, dest=acc)
    loop = builder.build()
    return loop, acc, builder.carried_inits


@pytest.fixture
def stencil_loop():
    """A 3-point stencil — cross-copy redundancy for scalar replacement."""
    builder = LoopBuilder("test/stencil", trip=TripInfo(runtime=80))
    a0 = builder.load("a", offset=0)
    a1 = builder.load("a", offset=1)
    a2 = builder.load("a", offset=2)
    t = builder.fp(Opcode.FADD, a0, a1)
    builder.store(builder.fp(Opcode.FADD, t, a2), "out")
    return builder.build()


@pytest.fixture(scope="session")
def mini_suite() -> Suite:
    """Six benchmarks (one per archetype plus two extras), scaled down."""
    picks = [ROSTER[1], ROSTER[0], ROSTER[28], ROSTER[44], ROSTER[56], ROSTER[64]]
    seeds = np.random.SeedSequence(1234).spawn(len(picks))
    benchmarks = tuple(
        generate_benchmark(info, np.random.default_rng(seed), loops_scale=0.3)
        for info, seed in zip(picks, seeds)
    )
    return Suite(name="mini", benchmarks=benchmarks)


@pytest.fixture(scope="session")
def mini_config() -> LabelingConfig:
    """Fast labelling config: light noise, relaxed filters, few runs."""
    return LabelingConfig(
        seed=7,
        swp=False,
        noise=NoiseModel(sigma=0.01, outlier_rate=0.0, counter_overhead=5),
        n_runs=5,
        min_cycles=5_000.0,
        min_benefit=1.02,
    )


@pytest.fixture(scope="session")
def mini_table(mini_suite, mini_config):
    return measure_suite(mini_suite, mini_config)


@pytest.fixture(scope="session")
def mini_dataset(mini_table, mini_config):
    return mini_table.to_dataset(mini_config.min_cycles, mini_config.min_benefit)
