"""The batched prediction engine: correctness, error taxonomy, counters.

The contract under test: an engine wraps one loaded artifact, never
raises on malformed input (every failure is a *typed* response), answers
batches in request order regardless of concurrency, and accounts every
request in its rollup.
"""

import numpy as np
import pytest

from repro.instrument import MeasurementRollup
from repro.registry import train_model_artifact
from repro.serve import (
    ERROR_BAD_FEATURE_VECTOR,
    ERROR_INVALID_JSON,
    ERROR_MALFORMED_REQUEST,
    ERROR_UNPARSEABLE_LOOP,
    PredictionEngine,
    error_response,
)

from tests.test_model_artifacts import synthetic_dataset

GOOD_SOURCE = (
    "loop serve_a trip=512 entries=8\n"
    "  %x = load a[i]\n"
    "  %y = fmul %x, 2.0\n"
    "  store %y -> b[i]\n"
    "end\n"
    "loop serve_b trip=64 entries=2\n"
    "  %x = load c[i]\n"
    "  store %x -> d[i]\n"
    "end\n"
)


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset()


@pytest.fixture(scope="module")
def artifact(dataset):
    return train_model_artifact(dataset)


@pytest.fixture
def engine(artifact):
    return PredictionEngine(artifact)


def _features(dataset, row=0):
    return [float(v) for v in dataset.X[row]]


class TestPrediction:
    def test_feature_request_matches_artifact(self, engine, dataset, artifact):
        response = engine.handle({"id": 7, "features": _features(dataset)})
        assert response["ok"] is True
        assert response["id"] == 7
        assert response["classifier"] == "svm"
        expected = int(artifact.predict_features(dataset.X[:1], "svm")[0])
        assert response["factor"] == expected
        assert response["latency_ms"] >= 0.0

    def test_classifier_override(self, engine, dataset, artifact):
        response = engine.handle(
            {"id": 1, "features": _features(dataset), "classifier": "nn"}
        )
        assert response["ok"] is True
        expected = int(artifact.predict_features(dataset.X[:1], "nn")[0])
        assert response["factor"] == expected

    def test_source_request_predicts_every_loop(self, engine, artifact):
        response = engine.handle({"id": 2, "source": GOOD_SOURCE})
        assert response["ok"] is True
        assert [entry["loop"] for entry in response["loops"]] == ["serve_a", "serve_b"]
        assert all(1 <= entry["factor"] <= 8 for entry in response["loops"])
        # The scalar factor is the first loop's (single-loop clients need
        # no list handling).
        assert response["factor"] == response["loops"][0]["factor"]

    def test_default_classifier_configurable(self, artifact, dataset):
        nn_engine = PredictionEngine(artifact, classifier="nn")
        response = nn_engine.handle({"id": 0, "features": _features(dataset)})
        assert response["classifier"] == "nn"

    def test_unknown_default_classifier_rejected(self, artifact):
        with pytest.raises(ValueError, match="unknown classifier"):
            PredictionEngine(artifact, classifier="xgboost")


class TestErrorTaxonomy:
    def _error(self, engine, request):
        response = engine.handle(request)
        assert response["ok"] is False
        return response["error"]

    def test_non_dict_request(self, engine):
        error = self._error(engine, [1, 2, 3])
        assert error["type"] == ERROR_MALFORMED_REQUEST

    def test_missing_payload(self, engine):
        error = self._error(engine, {"id": 1})
        assert error["type"] == ERROR_MALFORMED_REQUEST
        assert "'features' or 'source'" in error["message"]

    def test_ambiguous_payload(self, engine, dataset):
        error = self._error(
            engine, {"features": _features(dataset), "source": GOOD_SOURCE}
        )
        assert error["type"] == ERROR_MALFORMED_REQUEST

    def test_unknown_classifier(self, engine, dataset):
        error = self._error(
            engine, {"features": _features(dataset), "classifier": "xgboost"}
        )
        assert error["type"] == ERROR_MALFORMED_REQUEST
        assert "xgboost" in error["message"]

    def test_feature_vector_wrong_shape(self, engine):
        error = self._error(engine, {"features": [1.0, 2.0]})
        assert error["type"] == ERROR_BAD_FEATURE_VECTOR
        assert "expected 38" in error["message"]

    def test_feature_vector_not_a_list(self, engine):
        error = self._error(engine, {"features": "1,2,3"})
        assert error["type"] == ERROR_BAD_FEATURE_VECTOR

    def test_feature_vector_non_numeric(self, engine):
        error = self._error(engine, {"features": ["x"] * 38})
        assert error["type"] == ERROR_BAD_FEATURE_VECTOR

    def test_feature_vector_non_finite(self, engine):
        vector = [0.0] * 38
        vector[5] = float("nan")
        error = self._error(engine, {"features": vector})
        assert error["type"] == ERROR_BAD_FEATURE_VECTOR
        assert "non-finite" in error["message"]

    def test_unparseable_source(self, engine):
        error = self._error(engine, {"source": "loop broken\n  %x = frobnicate\nend"})
        assert error["type"] == ERROR_UNPARSEABLE_LOOP

    def test_empty_source_has_no_loops(self, engine):
        error = self._error(engine, {"source": "   \n"})
        assert error["type"] == ERROR_UNPARSEABLE_LOOP

    def test_non_string_source(self, engine):
        error = self._error(engine, {"source": 42})
        assert error["type"] == ERROR_UNPARSEABLE_LOOP

    def test_error_response_shape(self):
        response = error_response("req-9", ERROR_INVALID_JSON, "boom", 0.002)
        assert response == {
            "id": "req-9",
            "ok": False,
            "error": {"type": ERROR_INVALID_JSON, "message": "boom"},
            "latency_ms": 2.0,
        }


class TestBatching:
    def _mixed_batch(self, dataset, n=12):
        batch = []
        for i in range(n):
            if i % 3 == 2:
                batch.append({"id": i, "features": [1.0]})  # wrong width
            else:
                batch.append({"id": i, "features": _features(dataset, i % len(dataset))})
        return batch

    def test_concurrent_matches_serial_in_order(self, engine, dataset):
        batch = self._mixed_batch(dataset)
        serial = engine.serve_batch(batch, max_workers=1)
        concurrent = engine.serve_batch(batch, max_workers=4)
        assert [r["id"] for r in serial] == list(range(len(batch)))
        assert [r["id"] for r in concurrent] == list(range(len(batch)))
        for a, b in zip(serial, concurrent):
            assert a["ok"] == b["ok"]
            assert a.get("factor") == b.get("factor")

    def test_one_poisoned_request_cannot_sink_the_batch(self, engine, dataset):
        batch = [
            {"id": 0, "features": _features(dataset)},
            {"id": 1, "source": "loop broken\nend"},
            {"id": 2, "features": _features(dataset, 1)},
        ]
        responses = engine.serve_batch(batch, max_workers=2)
        assert [r["ok"] for r in responses] == [True, False, True]

    def test_rollup_accounts_every_request(self, artifact, dataset):
        rollup = MeasurementRollup()
        engine = PredictionEngine(artifact, rollup=rollup)
        batch = self._mixed_batch(dataset, n=9)
        engine.serve_batch(batch, max_workers=3)
        assert rollup.n_units == 9
        pcts = rollup.latency_percentiles()
        assert set(pcts) == {50.0, 95.0, 99.0}
        assert all(v >= 0.0 for v in pcts.values())
        assert pcts[50.0] <= pcts[95.0] <= pcts[99.0]
        assert "request(s)" in rollup.latency_summary()
        assert rollup.throughput(1.0) == 9.0
        assert rollup.throughput(0.0) == 0.0

    def test_empty_rollup_summary(self):
        assert MeasurementRollup().latency_summary() == "no requests served"
        assert MeasurementRollup().latency_percentiles() == {}


class TestServeLines:
    def test_invalid_json_line_keeps_its_slot(self, engine, dataset):
        import json

        lines = [
            json.dumps({"id": 0, "features": _features(dataset)}),
            "{not json",
            "",  # blank lines are skipped, not errors
            json.dumps({"id": 2, "features": _features(dataset, 1)}),
        ]
        responses = engine.serve_lines(lines)
        assert len(responses) == 3
        assert responses[0]["ok"] is True
        assert responses[1]["ok"] is False
        assert responses[1]["error"]["type"] == ERROR_INVALID_JSON
        assert responses[2]["ok"] is True
        assert responses[2]["id"] == 2

    def test_scalar_json_is_malformed_not_invalid(self, engine):
        # "42" parses as JSON; it fails later, as a malformed *request*.
        [response] = engine.serve_lines(["42"])
        assert response["error"]["type"] == ERROR_MALFORMED_REQUEST


class TestInputWidth:
    def test_subset_model_still_takes_full_catalog(self, dataset):
        indices = np.array([0, 3, 7], dtype=np.int64)
        artifact = train_model_artifact(dataset, feature_indices=indices)
        engine = PredictionEngine(artifact)
        assert engine.input_width == 38
        response = engine.handle({"id": 0, "features": _features(dataset)})
        assert response["ok"] is True


# ---------------------------------------------------------------------------
# Hardened serve path: injected internal faults, the gateway, the loader.
# ---------------------------------------------------------------------------

import os
import time

from repro.registry import ArtifactError, ArtifactStore
from repro.resilience import FaultPlan, FaultRule, fault_plan
from repro.serve import (
    ERROR_DEADLINE_EXCEEDED,
    ERROR_INTERNAL,
    ERROR_OVERLOADED,
    GatewayConfig,
    ServeGateway,
    load_serving_artifact,
)


class TestInternalErrorPath:
    def test_injected_internal_fault_yields_typed_response(self, engine, dataset):
        plan = FaultPlan(rules=(FaultRule(op="serve.internal", match="13"),))
        with fault_plan(plan):
            response = engine.handle({"id": 13, "features": _features(dataset)})
        assert response["ok"] is False
        assert response["error"]["type"] == ERROR_INTERNAL
        assert "injected" in response["error"]["message"]

    def test_fault_only_hits_the_matching_request(self, engine, dataset):
        plan = FaultPlan(rules=(FaultRule(op="serve.internal", match="1"),))
        batch = [
            {"id": 0, "features": _features(dataset)},
            {"id": 1, "features": _features(dataset)},
            {"id": 2, "features": _features(dataset)},
        ]
        with fault_plan(plan):
            responses = engine.serve_batch(batch)
        assert [r["ok"] for r in responses] == [True, False, True]
        assert responses[1]["error"]["type"] == ERROR_INTERNAL


class TestGateway:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="max_workers"):
            GatewayConfig(max_workers=0)
        with pytest.raises(ValueError, match="queue_limit"):
            GatewayConfig(queue_limit=0)
        with pytest.raises(ValueError, match="deadline_s"):
            GatewayConfig(deadline_s=0.0)

    def test_batch_in_order_with_counters(self, engine, dataset):
        batch = [{"id": i, "features": _features(dataset)} for i in range(6)]
        with ServeGateway(engine) as gateway:
            responses = gateway.serve_batch(batch)
        assert [r["id"] for r in responses] == list(range(6))
        assert all(r["ok"] for r in responses)
        assert gateway.counters.admitted == 6
        assert gateway.counters.served_ok == 6
        assert gateway.counters.summary().startswith("gateway: 6 admitted")

    def test_engine_errors_counted_separately(self, engine, dataset):
        batch = [
            {"id": 0, "features": _features(dataset)},
            {"id": 1, "features": [1.0]},  # wrong width
        ]
        with ServeGateway(engine) as gateway:
            responses = gateway.serve_batch(batch)
        assert responses[1]["error"]["type"] == ERROR_BAD_FEATURE_VECTOR
        assert gateway.counters.served_ok == 1
        assert gateway.counters.served_error == 1

    def test_full_queue_rejects_with_backpressure(self, engine, dataset):
        # One worker, queue bound 1: while the injected 0.5s request holds
        # the only slot, the next submit must be rejected *immediately*.
        plan = FaultPlan(rules=(FaultRule(op="serve.delay", match="0", delay_s=0.5),))
        config = GatewayConfig(max_workers=1, queue_limit=1)
        with fault_plan(plan):
            gateway = ServeGateway(engine, config)
            slow = gateway.submit({"id": 0, "features": _features(dataset)})
            rejected = gateway.submit({"id": 1, "features": _features(dataset)})
            response = rejected.result(timeout=0.1)  # resolved, no wait
            assert response["ok"] is False
            assert response["error"]["type"] == ERROR_OVERLOADED
            assert "back off" in response["error"]["message"]
            assert slow.result(timeout=5.0)["ok"] is True
            gateway.drain()
        assert gateway.counters.admitted == 1
        assert gateway.counters.overloaded == 1

    def test_batch_larger_than_queue_limit_is_fully_served(self, engine, dataset):
        # serve_batch throttles itself below the queue bound, so a batch
        # of any size never trips admission control against its own
        # requests — no slot may come back 'overloaded'.
        config = GatewayConfig(max_workers=2, queue_limit=2)
        batch = [{"id": i, "features": _features(dataset)} for i in range(9)]
        with ServeGateway(engine, config) as gateway:
            responses = gateway.serve_batch(batch)
        assert [r["id"] for r in responses] == list(range(9))
        assert all(r["ok"] for r in responses)
        assert gateway.counters.admitted == 9
        assert gateway.counters.overloaded == 0

    def test_submit_after_pool_shutdown_still_rejects_typed(self, engine, dataset):
        # White-box: the drain flag can be observed *after* the pool is
        # already shut down; submit must still return a typed rejection,
        # never raise, and must not leak a pending slot.
        gateway = ServeGateway(engine)
        gateway.drain()
        gateway._draining = False  # reopen the race window artificially
        response = gateway.submit({"id": 0, "features": _features(dataset)}).result()
        assert response["ok"] is False
        assert response["error"]["type"] == ERROR_OVERLOADED
        assert gateway.counters.admitted == 0
        assert gateway.counters.overloaded == 1
        assert gateway._pending == 0

    def test_deadline_enforced_in_queue_and_in_flight(self, engine, dataset):
        # Request 0 overruns its deadline *while computing*; request 1
        # exceeds it *waiting* behind 0 and must never reach the engine.
        plan = FaultPlan(rules=(FaultRule(op="serve.delay", match="0", delay_s=0.5),))
        config = GatewayConfig(max_workers=1, queue_limit=8, deadline_s=0.2)
        with fault_plan(plan):
            with ServeGateway(engine, config) as gateway:
                first = gateway.submit({"id": 0, "features": _features(dataset)})
                second = gateway.submit({"id": 1, "features": _features(dataset)})
                r0 = first.result(timeout=5.0)
                r1 = second.result(timeout=5.0)
        assert r0["error"]["type"] == ERROR_DEADLINE_EXCEEDED
        assert "completed in" in r0["error"]["message"]
        assert r1["error"]["type"] == ERROR_DEADLINE_EXCEEDED
        assert "waited" in r1["error"]["message"]
        assert gateway.counters.deadline_exceeded == 2

    def test_drained_gateway_refuses_new_work(self, engine, dataset):
        gateway = ServeGateway(engine)
        gateway.drain()
        response = gateway.submit({"id": 0, "features": _features(dataset)}).result()
        assert response["error"]["type"] == ERROR_OVERLOADED
        assert "draining" in response["error"]["message"]

    def test_injected_malformed_request_stays_typed(self, engine, dataset):
        plan = FaultPlan(rules=(FaultRule(op="serve.malformed", match="5"),))
        batch = [
            {"id": 5, "features": _features(dataset)},
            {"id": 6, "features": _features(dataset)},
        ]
        with fault_plan(plan):
            with ServeGateway(engine) as gateway:
                responses = gateway.serve_batch(batch)
        assert responses[0]["ok"] is False
        assert responses[0]["error"]["type"] == ERROR_MALFORMED_REQUEST
        assert responses[1]["ok"] is True

    def test_serve_lines_through_the_gateway(self, engine, dataset):
        import json

        lines = [
            json.dumps({"id": 0, "features": _features(dataset)}),
            "{torn",
            json.dumps({"id": 2, "features": _features(dataset, 1)}),
        ]
        with ServeGateway(engine) as gateway:
            responses = gateway.serve_lines(lines)
        assert [r["ok"] for r in responses] == [True, False, True]
        assert responses[1]["error"]["type"] == ERROR_INVALID_JSON


class TestLoader:
    def test_clean_load_is_not_a_fallback(self, tmp_path, artifact):
        path = artifact.save(tmp_path / "model.rma")
        loaded = load_serving_artifact(path)
        assert loaded.fallback is False
        assert loaded.path == path
        assert loaded.failures == ()

    def test_missing_requested_path_raises(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path)
        store.store("good", artifact)  # a fallback exists — and must NOT be used
        with pytest.raises(FileNotFoundError):
            load_serving_artifact(tmp_path / "typo.rma", store=store)

    def test_corrupt_requested_falls_back_to_last_good(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path)
        good = store.store("good", artifact)
        bad = store.store("bad", artifact)
        bad.write_bytes(b"this is not a model artifact")
        loaded = load_serving_artifact(bad, store=store)
        assert loaded.fallback is True
        assert loaded.path == good
        assert len(loaded.failures) == 1
        # The corrupt file was quarantined, not left live.
        assert not bad.exists()
        assert [p.name for p in store.quarantined()] == ["model_bad.rma.corrupt"]

    def test_corrupt_without_store_raises(self, tmp_path, artifact):
        path = artifact.save(tmp_path / "model.rma")
        path.write_bytes(b"garbage")
        with pytest.raises(ArtifactError, match="no servable model artifact"):
            load_serving_artifact(path)

    def test_every_candidate_corrupt_raises_with_the_trail(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path)
        a = store.store("a", artifact)
        b = store.store("b", artifact)
        a.write_bytes(b"rot")
        b.write_bytes(b"rot")
        with pytest.raises(ArtifactError, match="no servable model artifact"):
            load_serving_artifact(a, store=store)

    def test_newest_untried_candidate_wins(self, tmp_path, artifact):
        store = ArtifactStore(tmp_path)
        older = store.store("older", artifact)
        newer = store.store("newer", artifact)
        past = time.time() - 3600.0
        os.utime(older, (past, past))
        bad = store.store("bad", artifact)
        bad.write_bytes(b"rot")
        loaded = load_serving_artifact(bad, store=store)
        assert loaded.path == newer

    def test_injected_bitflip_exercises_the_whole_chain(self, tmp_path, artifact):
        from tests.test_resilience import corrupting_seed

        store = ArtifactStore(tmp_path)
        good = store.store("good", artifact)
        victim = store.store("victim", artifact)
        plan = FaultPlan(
            seed=corrupting_seed(victim),
            rules=(FaultRule(op="artifact.bitflip", match=victim.name),),
        )
        with fault_plan(plan):
            loaded = load_serving_artifact(victim, store=store)
        assert loaded.fallback is True
        assert loaded.path == good
        assert len(loaded.failures) == 1


class TestEngineBatchPath:
    """The vectorized ``handle_batch`` fast path must be answer-identical
    to per-request ``handle`` — same factors, same error taxonomy, same
    ordering — because the daemon swaps freely between them."""

    def _mixed(self, dataset, n=10):
        batch = []
        for i in range(n):
            if i % 5 == 3:
                batch.append({"id": i, "features": [1.0]})  # wrong width
            elif i % 5 == 4:
                batch.append({"id": i, "source": GOOD_SOURCE})
            else:
                classifier = "nn" if i % 2 else "svm"
                batch.append(
                    {
                        "id": i,
                        "features": _features(dataset, i % len(dataset)),
                        "classifier": classifier,
                    }
                )
        return batch

    def test_vectorized_matches_per_request(self, engine, dataset):
        batch = self._mixed(dataset)
        serial = [engine.handle(r) for r in batch]
        batched = engine.handle_batch(batch)
        assert [r["id"] for r in batched] == [r["id"] for r in serial]
        for a, b in zip(serial, batched):
            assert a["ok"] == b["ok"]
            assert a.get("factor") == b.get("factor")
            assert a.get("classifier") == b.get("classifier")
            if not a["ok"]:
                assert a["error"]["type"] == b["error"]["type"]

    def test_single_request_batch_uses_scalar_path(self, engine, dataset):
        [response] = engine.handle_batch([{"id": 0, "features": _features(dataset)}])
        assert response["ok"] is True

    def test_batch_with_fault_plan_keeps_injection_semantics(self, engine, dataset):
        plan = FaultPlan(rules=(FaultRule(op="serve.internal", match="1"),))
        batch = [
            {"id": 0, "features": _features(dataset)},
            {"id": 1, "features": _features(dataset)},
            {"id": 2, "features": _features(dataset)},
        ]
        with fault_plan(plan):
            responses = engine.handle_batch(batch)
        assert [r["ok"] for r in responses] == [True, False, True]
        assert responses[1]["error"]["type"] == ERROR_INTERNAL

    def test_batch_accounts_every_request_in_rollup(self, artifact, dataset):
        rollup = MeasurementRollup()
        engine = PredictionEngine(artifact, rollup=rollup)
        engine.handle_batch(self._mixed(dataset, n=10))
        assert rollup.n_units == 10

    def test_heuristics_cached_at_init(self, engine):
        # One resolved heuristic per classifier, reused across requests —
        # the per-call rebuild this replaced was pure overhead.
        assert set(engine._heuristics) == {"nn", "svm", "mlp", "forest", "ensemble"}
        assert engine._heuristics["svm"] is engine._heuristics["svm"]

    def test_batched_latency_clocks_own_group_only(self, engine, dataset, monkeypatch):
        # A vectorized member's latency_ms must reflect its group's own
        # stack+predict, not wall time spent scalar-handling unrelated
        # neighbours earlier in the batch — otherwise batched latencies
        # are inflated and non-comparable with the per-request path.
        slow_s = 0.25
        original = PredictionEngine.handle

        def slow_handle(self, request):
            import time

            time.sleep(slow_s)
            return original(self, request)

        monkeypatch.setattr(PredictionEngine, "handle", slow_handle)
        batch = [
            {"id": "scalar", "source": GOOD_SOURCE},  # non-vectorizable, slow
            {"id": 0, "features": _features(dataset, 0)},
            {"id": 1, "features": _features(dataset, 1)},
        ]
        responses = engine.handle_batch(batch)
        assert all(r["ok"] for r in responses)
        for response in responses[1:]:
            assert response["latency_ms"] < slow_s * 1e3 / 2


class TestGatewayBatchedExecution:
    def test_admit_then_execute_batch_resolves_all(self, engine, dataset):
        with ServeGateway(engine) as gateway:
            tokens = [
                gateway.admit({"id": i, "features": _features(dataset)})
                for i in range(5)
            ]
            assert all(t.admitted for t in tokens)
            gateway.execute_batch(tokens)
            responses = [t.future.result(timeout=5.0) for t in tokens]
        assert all(r["ok"] for r in responses)
        assert gateway.batch_stats.batches == 1
        assert gateway.batch_stats.batched_requests == 5
        assert gateway.batch_stats.max_batch == 5
        assert gateway.counters.balanced()

    def test_rejected_token_carries_resolved_future(self, engine, dataset):
        gateway = ServeGateway(engine)
        gateway.drain()
        token = gateway.admit({"id": 0, "features": _features(dataset)})
        assert token.admitted is False
        response = token.future.result(timeout=0.1)
        assert response["error"]["type"] == ERROR_OVERLOADED

    def test_execute_batch_after_shutdown_rolls_back(self, engine, dataset):
        # Same race as submit-after-shutdown, batch edition: tokens must
        # resolve typed and the admission bookkeeping must be undone.
        gateway = ServeGateway(engine)
        token = gateway.admit({"id": 0, "features": _features(dataset)}, client="c")
        gateway._pool.shutdown(wait=True)
        gateway.execute_batch([token])
        response = token.future.result(timeout=1.0)
        assert response["error"]["type"] == ERROR_OVERLOADED
        assert gateway.counters.admitted == 0
        assert gateway.counters.overloaded == 1
        assert gateway._pending == 0
        assert gateway._client_pending == {}

    def test_replicas_round_robin_and_swap(self, artifact, dataset):
        replicas = [PredictionEngine(artifact) for _ in range(2)]
        gateway = ServeGateway(replicas)
        assert gateway.engine is replicas[0]
        assert gateway.replicas == tuple(replicas)
        fresh = [PredictionEngine(artifact) for _ in range(3)]
        gateway.swap_replicas(fresh)
        assert gateway.replicas == tuple(fresh)
        with gateway:
            response = gateway.submit(
                {"id": 0, "features": _features(dataset)}
            ).result(timeout=5.0)
        assert response["ok"] is True

    def test_empty_replicas_rejected(self, engine):
        with pytest.raises(ValueError, match="replica"):
            ServeGateway([])
        gateway = ServeGateway(engine)
        with pytest.raises(ValueError, match="replica"):
            gateway.swap_replicas([])
        gateway.drain()


class TestHeadOfLineBlocking:
    def test_slow_request_does_not_idle_the_window(self, engine, dataset):
        # Regression: serve_batch used to wait on the *oldest* in-flight
        # future before submitting more.  With ids 0 and 2 slowed, the old
        # code serialized the two 0.4s sleeps (>= 0.8s wall); waiting on
        # *any* completion lets them overlap on the two workers (~0.4s).
        plan = FaultPlan(
            rules=(
                FaultRule(op="serve.delay", match="0", delay_s=0.4),
                FaultRule(op="serve.delay", match="2", delay_s=0.4),
            )
        )
        config = GatewayConfig(max_workers=2, queue_limit=2)
        batch = [{"id": i, "features": _features(dataset)} for i in range(4)]
        with fault_plan(plan):
            with ServeGateway(engine, config) as gateway:
                start = time.perf_counter()
                responses = gateway.serve_batch(batch)
                wall = time.perf_counter() - start
        assert all(r["ok"] for r in responses)
        assert [r["id"] for r in responses] == [0, 1, 2, 3]
        assert wall < 0.75, f"head-of-line blocking: batch took {wall:.3f}s"


class TestMultiClientFairness:
    def test_flooder_cannot_starve_a_second_client(self, engine, dataset):
        # Every request sleeps 0.3s, so admissions stay pending while both
        # clients burst 12 requests into a queue of 8.  Fair share caps
        # each client at queue_limit // 2 = 4 slots: the flooder's excess
        # is rejected while the second client's first 4 are admitted.
        plan = FaultPlan(
            rules=(FaultRule(op="serve.delay", match="*", times=0, delay_s=0.3),)
        )
        config = GatewayConfig(max_workers=2, queue_limit=8)
        with fault_plan(plan):
            gateway = ServeGateway(engine, config)
            futures = {"a": [], "b": []}
            for client in ("a", "b"):
                for i in range(12):
                    futures[client].append(
                        gateway.submit(
                            {"id": f"{client}-{i}", "features": _features(dataset)},
                            client=client,
                        )
                    )
            outcomes = {
                client: [f.result(timeout=10.0) for f in futures[client]]
                for client in futures
            }
            gateway.drain()

        served = {c: sum(1 for r in rs if r["ok"]) for c, rs in outcomes.items()}
        rejected = {c: sum(1 for r in rs if not r["ok"]) for c, rs in outcomes.items()}
        # Neither client observes all the rejections; both get served.
        assert served["a"] == 4 and served["b"] == 4
        assert rejected["a"] == 8 and rejected["b"] == 8
        for responses in outcomes.values():
            for response in responses:
                if not response["ok"]:
                    assert response["error"]["type"] == ERROR_OVERLOADED
        # The flooder's rejections are fair-share (the queue had room);
        # the second client's overflow hits the global bound.
        assert any(
            "fair share" in r["error"]["message"]
            for r in outcomes["a"]
            if not r["ok"]
        )
        # Counters sum correctly across clients.
        assert gateway.counters.admitted == served["a"] + served["b"]
        assert gateway.counters.overloaded == rejected["a"] + rejected["b"]
        assert gateway.counters.served_ok == gateway.counters.admitted
        assert gateway.counters.balanced()

    def test_untagged_requests_skip_fairness(self, engine, dataset):
        # No client identity -> only the global queue bound applies.
        config = GatewayConfig(max_workers=2, queue_limit=4)
        with ServeGateway(engine, config) as gateway:
            responses = gateway.serve_batch(
                [{"id": i, "features": _features(dataset)} for i in range(8)]
            )
        assert all(r["ok"] for r in responses)
        assert gateway.counters.overloaded == 0
