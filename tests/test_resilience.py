"""Fault tolerance, driven by deterministic fault injection.

Every recovery path is exercised by a real induced failure, not a mock:
retries with deterministic backoff, per-unit timeouts, quarantine instead
of abort, serial fallback after a worker death, checkpoint/resume, cache
corruption self-healing, and in-memory analysis-cache poisoning.  The
recurring invariant: however badly a run is abused, the table that comes
out is bit-identical to an untroubled run (or has NaN holes exactly where
units were quarantined).
"""

import dataclasses
import os
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.instrument import MeasurementRollup
from repro.ir.program import Suite
from repro.pipeline import (
    CacheStore,
    LabelingConfig,
    build_dedup_index,
    config_key,
    cached_measurements,
    measure_suite,
    measure_suite_pair,
)
from repro.resilience import (
    FAULT_PLAN_ENV,
    AbortRun,
    CheckpointJournal,
    FaultPlan,
    FaultRule,
    JournalError,
    ResilienceConfig,
    RetryPolicy,
    UnitFailedError,
    UnitTask,
    fault_plan,
    get_injector,
    install_fault_plan,
    run_units,
)
from repro.simulate import CostModel
from repro.simulate.noise import NoiseModel
from repro.workloads.generator import generate_benchmark
from repro.workloads.spec_names import ROSTER

#: Fast retries so failure-path tests never sleep for real.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.001, max_delay_s=0.005)
FAST = ResilienceConfig(retry=FAST_RETRY)


@pytest.fixture(scope="module")
def micro_suite() -> Suite:
    """Two tiny benchmarks — 16 work units — so resilience tests can
    re-measure the whole suite many times over."""
    picks = [ROSTER[1], ROSTER[0]]
    seeds = np.random.SeedSequence(4321).spawn(len(picks))
    benchmarks = tuple(
        generate_benchmark(info, np.random.default_rng(seed), loops_scale=0.05)
        for info, seed in zip(picks, seeds)
    )
    return Suite(name="micro", benchmarks=benchmarks)


@pytest.fixture(scope="module")
def micro_config() -> LabelingConfig:
    return LabelingConfig(
        seed=11,
        noise=NoiseModel(sigma=0.01, outlier_rate=0.0, counter_overhead=5),
        n_runs=3,
    )


@pytest.fixture(scope="module")
def baseline(micro_suite, micro_config):
    """The untroubled run every abused run must reproduce bit-for-bit."""
    return measure_suite(micro_suite, micro_config)


def _tables_identical(a, b) -> bool:
    return (
        a.measured.tobytes() == b.measured.tobytes()
        and a.true_cycles.tobytes() == b.true_cycles.tobytes()
    )


def corrupting_seed(path: Path) -> int:
    """A fault-plan seed whose deterministic byte-flip offset lands near the
    middle of ``path`` — inside array data, where corruption is guaranteed
    to be detected — rather than in tolerated zip-header slack."""
    size = path.stat().st_size
    target = size // 2
    return next(
        s
        for s in range(200_000)
        if abs((s * 2654435761 + size) % size - target) < max(1, size // 8)
    )


# ---------------------------------------------------------------------------
# Fault plans and the injector.
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_inline_json(self):
        plan = FaultPlan.parse(
            '{"seed": 3, "rules": [{"op": "unit.error", "match": "*#a0", "times": 2}]}'
        )
        assert plan.seed == 3
        assert plan.rules == (FaultRule(op="unit.error", match="*#a0", times=2),)

    def test_parse_file_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('{"rules": [{"op": "worker.kill"}]}')
        plan = FaultPlan.parse(str(path))
        assert plan.rules[0].op == "worker.kill"

    def test_round_trip_through_json(self):
        plan = FaultPlan(
            seed=9, rules=(FaultRule(op="unit.delay", match="x*", delay_s=0.5),)
        )
        assert FaultPlan.parse(plan.to_json()) == plan

    def test_unknown_rule_field_rejected(self):
        with pytest.raises(ValueError, match="unknown fault rule field"):
            FaultPlan.parse('{"rules": [{"op": "unit.error", "bogus": 1}]}')

    def test_negative_budgets_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            FaultRule(op="unit.error", times=-1)
        with pytest.raises(ValueError, match="op name"):
            FaultRule(op="")

    def test_non_object_plan_rejected(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text('["not", "a", "plan"]')
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.parse(str(path))


class TestInjector:
    def test_inactive_without_rules(self):
        with fault_plan(None) as injector:
            assert injector.active is False
            assert injector.fire("unit.error", "anything") is None

    def test_glob_matching_and_budget(self):
        from repro.resilience.faults import FaultInjector

        plan = FaultPlan(rules=(FaultRule(op="unit.error", match="gzip:*#a0", times=2),))
        injector = FaultInjector(plan)
        assert injector.fire("unit.error", "gzip:u1#a0") is not None
        assert injector.fire("unit.error", "swim:u1#a0") is None  # no match
        assert injector.fire("unit.error", "gzip:u2#a0") is not None
        assert injector.fire("unit.error", "gzip:u3#a0") is None  # budget spent
        assert injector.events == [
            ("unit.error", "gzip:u1#a0"),
            ("unit.error", "gzip:u2#a0"),
        ]

    def test_skip_selects_the_nth_match(self):
        from repro.resilience.faults import FaultInjector

        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(op="run.abort", match="*", skip=2),))
        )
        assert injector.fire("run.abort", "a") is None
        assert injector.fire("run.abort", "b") is None
        assert injector.fire("run.abort", "c") is not None

    def test_env_activation_and_restore(self):
        plan = FaultPlan(rules=(FaultRule(op="unit.error"),))
        before = os.environ.get(FAULT_PLAN_ENV)
        with fault_plan(plan):
            assert get_injector().active is True
        assert os.environ.get(FAULT_PLAN_ENV) == before
        install_fault_plan(None)
        assert get_injector().active is False

    def test_kill_is_inert_outside_pool_workers(self):
        from repro.resilience.faults import FaultInjector

        injector = FaultInjector(FaultPlan(rules=(FaultRule(op="worker.kill"),)))
        injector.kill("worker.kill", "x")  # must NOT take down this process
        assert injector.events == []

    def test_corrupt_file_flips_one_byte(self, tmp_path):
        from repro.resilience.faults import FaultInjector

        path = tmp_path / "victim.bin"
        original = bytes(range(64))
        path.write_bytes(original)
        injector = FaultInjector(
            FaultPlan(seed=7, rules=(FaultRule(op="cache.corrupt", match="k"),))
        )
        assert injector.corrupt_file("cache.corrupt", "k", path) is True
        damaged = path.read_bytes()
        assert len(damaged) == len(original)
        assert sum(a != b for a, b in zip(damaged, original)) == 1

    def test_mangle_only_when_fired(self):
        from repro.resilience.faults import FaultInjector

        injector = FaultInjector(
            FaultPlan(rules=(FaultRule(op="serve.malformed", match="2"),))
        )
        request = {"id": 1, "features": []}
        assert injector.mangle("serve.malformed", "1", request) is request
        mangled = injector.mangle("serve.malformed", "2", {"id": 2})
        assert mangled != {"id": 2}


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_delay_s=0.1, multiplier=2.0, max_delay_s=0.3, jitter=0.0)
        assert policy.backoff_s(1, None) == pytest.approx(0.1)
        assert policy.backoff_s(2, None) == pytest.approx(0.2)
        assert policy.backoff_s(5, None) == pytest.approx(0.3)  # capped

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.5)
        seed = np.random.SeedSequence(42)
        again = np.random.SeedSequence(42)
        other = np.random.SeedSequence(43)
        assert policy.backoff_s(1, seed) == policy.backoff_s(1, again)
        assert policy.backoff_s(1, seed) != policy.backoff_s(1, other)

    def test_jitter_never_consumes_the_measurement_stream(self):
        # The jitter draws from a spawn-key sibling, so the unit's own RNG
        # stream is untouched by however many retries happened.
        seed = np.random.SeedSequence(7)
        before = np.random.default_rng(seed).random(4)
        RetryPolicy().backoff_s(1, seed)
        RetryPolicy().backoff_s(2, seed)
        after = np.random.default_rng(seed).random(4)
        np.testing.assert_array_equal(before, after)


# ---------------------------------------------------------------------------
# The executor on toy units.
# ---------------------------------------------------------------------------


def _double(x):
    return x * 2


def _raise_timeout(x):
    raise TimeoutError("socket timed out inside the unit")


def _sleep_long(x):
    time.sleep(60)
    return x


class TestRunUnits:
    def _tasks(self, n=4):
        return [UnitTask(key=i, label=f"t{i}", fn=_double, args=(i,)) for i in range(n)]

    def test_serial_results_keyed(self):
        report = run_units(self._tasks(), config=FAST)
        assert report.results == {0: 0, 1: 2, 2: 4, 3: 6}
        assert report.events == []

    def test_retry_then_success(self):
        plan = FaultPlan(rules=(FaultRule(op="unit.error", match="t1#a0"),))
        with fault_plan(plan):
            report = run_units(self._tasks(), config=FAST)
        assert report.results == {0: 0, 1: 2, 2: 4, 3: 6}
        assert report.count("retry") == 1

    def test_quarantine_after_exhausted_retries(self):
        plan = FaultPlan(rules=(FaultRule(op="unit.error", match="t2#*", times=0),))
        with fault_plan(plan):
            report = run_units(self._tasks(), config=FAST)
        assert 2 not in report.results
        assert report.count("quarantine") == 1
        assert report.count("retry") == FAST_RETRY.max_attempts - 1
        assert report.quarantined[0].key == "t2"

    def test_quarantine_disabled_raises(self):
        plan = FaultPlan(rules=(FaultRule(op="unit.error", match="t2#*", times=0),))
        config = ResilienceConfig(retry=FAST_RETRY, quarantine=False)
        with fault_plan(plan):
            with pytest.raises(UnitFailedError, match="t2"):
                run_units(self._tasks(), config=config)

    def test_unit_raised_timeouterror_is_an_ordinary_failure(self):
        # On 3.11+ concurrent.futures.TimeoutError aliases builtins.
        # TimeoutError, so a unit raising it (e.g. a socket timeout) must
        # not be mistaken for a pool-level deadline — especially with no
        # deadline configured at all.
        tasks = [UnitTask(key=i, label=f"t{i}", fn=_raise_timeout, args=(i,))
                 for i in range(2)]
        report = run_units(tasks, jobs=2, config=FAST)
        assert report.count("timeout") == 0
        assert report.count("quarantine") == 2
        assert all("TimeoutError" in e.detail for e in report.quarantined)

    def test_hung_worker_does_not_block_pool_exit(self):
        # The whole point of unit_timeout_s: a permanently wedged worker
        # must not stall run_units at shutdown until its sleep finishes.
        config = ResilienceConfig(
            retry=RetryPolicy(max_attempts=1), unit_timeout_s=0.2
        )
        tasks = [UnitTask(key=0, label="t0", fn=_sleep_long, args=(0,))]
        start = time.monotonic()
        report = run_units(tasks, jobs=2, config=config)
        elapsed = time.monotonic() - start
        assert elapsed < 20  # the unit sleeps 60s; we must not wait for it
        assert report.count("timeout") == 1
        assert report.count("quarantine") == 1
        assert 0 not in report.results

    def test_hung_worker_does_not_block_interpreter_exit(self):
        # run_units returning promptly is not enough: concurrent.futures
        # joins the pool's management thread at interpreter exit, which
        # waits on live workers.  The hung worker must be terminated, or
        # the *process* hangs after the run finished.  Only observable
        # from outside, hence the subprocess.
        import subprocess
        import sys

        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.resilience import (ResilienceConfig, RetryPolicy,\n"
            "                              UnitTask, run_units)\n"
            "import time\n"
            "def sleep_long(x):\n"
            "    time.sleep(60)\n"
            "    return x\n"
            "config = ResilienceConfig(retry=RetryPolicy(max_attempts=1),\n"
            "                          unit_timeout_s=0.2)\n"
            "tasks = [UnitTask(key=0, label='t0', fn=sleep_long, args=(0,))]\n"
            "report = run_units(tasks, jobs=2, config=config)\n"
            "print('timeouts', report.count('timeout'))\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        done = subprocess.run(
            [sys.executable, "-c", script, src],
            capture_output=True,
            text=True,
            timeout=30,  # the wedged unit sleeps 60s; exit must not wait
        )
        assert done.returncode == 0, done.stderr
        assert "timeouts 1" in done.stdout

    def test_journal_commits_and_replays(self, tmp_path):
        journal = CheckpointJournal(tmp_path / "j.jsonl", run_key="toy")
        encode = lambda v: {"v": v}
        decode = lambda p: p["v"]
        report = run_units(
            self._tasks(), config=FAST, journal=journal, encode=encode, decode=decode
        )
        journal.close()
        assert report.results == {0: 0, 1: 2, 2: 4, 3: 6}

        replay = CheckpointJournal(tmp_path / "j.jsonl", run_key="toy")
        assert replay.load() == 4
        report = run_units(
            self._tasks(), config=FAST, journal=replay, encode=encode, decode=decode
        )
        replay.close()
        assert report.results == {0: 0, 1: 2, 2: 4, 3: 6}
        assert report.count("resume") == 4


# ---------------------------------------------------------------------------
# The journal file format.
# ---------------------------------------------------------------------------


class TestJournal:
    def test_load_missing_file_is_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "none.jsonl", run_key="k").load() == 0

    def test_torn_tail_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path, run_key="k")
        journal.commit("a", {"v": 1})
        journal.commit("b", {"v": 2})
        journal.close()
        with open(path, "a") as handle:
            handle.write('{"key": "c", "payl')  # the kill landed mid-write
        recovered = CheckpointJournal(path, run_key="k")
        assert recovered.load() == 2
        assert set(recovered.completed) == {"a", "b"}

    def test_foreign_run_key_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path, run_key="mine")
        journal.commit("a", {})
        journal.close()
        with pytest.raises(JournalError, match="belongs to run 'mine'"):
            CheckpointJournal(path, run_key="theirs").load()

    def test_garbage_header_rejected(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("definitely not json\n")
        with pytest.raises(JournalError, match="unreadable journal header"):
            CheckpointJournal(path, run_key="k").load()

    def test_discard_removes_the_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CheckpointJournal(path, run_key="k")
        journal.commit("a", {})
        journal.discard()
        assert not path.exists()


# ---------------------------------------------------------------------------
# The measurement pipeline under induced failures.
# ---------------------------------------------------------------------------


class TestPipelineFaults:
    def test_retried_run_is_bit_identical(self, micro_suite, micro_config, baseline):
        # Every unit's FIRST attempt fails; the run succeeds on retries and
        # must not perturb a single bit (jitter never touches the
        # measurement RNG).
        plan = FaultPlan(rules=(FaultRule(op="unit.error", match="*#a0", times=0),))
        rollup = MeasurementRollup()
        with fault_plan(plan):
            table = measure_suite(
                micro_suite, micro_config, rollup=rollup, resilience=FAST
            )
        assert _tables_identical(table, baseline)
        assert rollup.count("retry") == 16
        assert "retried" in rollup.summary()

    def test_quarantined_unit_leaves_nan_holes(self, micro_suite, micro_config, baseline):
        bench = micro_suite.benchmarks[0]
        plan = FaultPlan(
            rules=(FaultRule(op="unit.error", match=f"{bench.name}:u3#*", times=0),)
        )
        rollup = MeasurementRollup()
        with fault_plan(plan):
            table = measure_suite(
                micro_suite, micro_config, rollup=rollup, resilience=FAST
            )
        assert rollup.quarantined_units() == [f"{bench.name}:u3"]
        # The quarantined (benchmark, factor) cells are NaN...
        assert np.isnan(table.measured[: bench.n_loops, 2]).all()
        # ...and every other cell is untouched.
        mask = ~np.isnan(table.measured)
        assert np.array_equal(table.measured[mask], baseline.measured[mask])
        assert "quarantined" in rollup.resilience_summary()

    def test_worker_kill_falls_back_to_serial(self, micro_suite, micro_config, baseline):
        plan = FaultPlan(rules=(FaultRule(op="worker.kill", match="*:u2#a0"),))
        rollup = MeasurementRollup()
        with fault_plan(plan):
            table = measure_suite(micro_suite, micro_config, jobs=2, rollup=rollup)
        assert _tables_identical(table, baseline)
        assert rollup.count("broken-pool") == 1

    def test_timeout_retries_the_unit(self, micro_suite, micro_config, baseline):
        bench = micro_suite.benchmarks[1]
        plan = FaultPlan(
            rules=(
                FaultRule(op="unit.delay", match=f"{bench.name}:u1#a0", delay_s=1.5),
            )
        )
        config = ResilienceConfig(retry=FAST_RETRY, unit_timeout_s=0.5)
        rollup = MeasurementRollup()
        with fault_plan(plan):
            table = measure_suite(
                micro_suite, micro_config, jobs=2, rollup=rollup, resilience=config
            )
        assert _tables_identical(table, baseline)
        assert rollup.count("timeout") >= 1
        assert rollup.count("retry") >= 1

    def test_pair_fanout_shares_the_machinery(self, micro_suite, micro_config):
        off_base, on_base = measure_suite_pair(micro_suite, micro_config)
        plan = FaultPlan(rules=(FaultRule(op="unit.error", match="*#a0", times=0),))
        rollup_off = MeasurementRollup()
        rollup_on = MeasurementRollup()
        with fault_plan(plan):
            off, on = measure_suite_pair(
                micro_suite,
                micro_config,
                rollup_off=rollup_off,
                rollup_on=rollup_on,
                resilience=FAST,
            )
        assert _tables_identical(off, off_base)
        assert _tables_identical(on, on_base)
        # The fan-out is shared between regimes, so its events land on
        # exactly one rollup — aggregating both must not double-count.
        assert rollup_off.count("retry") == 16
        assert rollup_on.count("retry") == 0
        assert rollup_off.count("retry") + rollup_on.count("retry") == 16


class TestResume:
    @given(kill_after=st.integers(min_value=0, max_value=14))
    @settings(max_examples=8, deadline=None)
    def test_killed_and_resumed_run_is_bit_identical(
        self, micro_suite, micro_config, baseline, kill_after
    ):
        """THE resume property: kill the run at *any* unit boundary,
        resume it, and the final table is byte-identical to a run that was
        never interrupted."""
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "journal.jsonl"
            plan = FaultPlan(
                rules=(FaultRule(op="run.abort", match="*", skip=kill_after),)
            )
            with fault_plan(plan):
                journal = CheckpointJournal(path, run_key="prop")
                with pytest.raises(AbortRun):
                    measure_suite(micro_suite, micro_config, journal=journal)
                journal.close()

            resumed_journal = CheckpointJournal(path, run_key="prop")
            assert resumed_journal.load() == kill_after + 1
            rollup = MeasurementRollup()
            table = measure_suite(
                micro_suite, micro_config, rollup=rollup, journal=resumed_journal
            )
            resumed_journal.close()
            assert _tables_identical(table, baseline)
            assert rollup.count("resume") == kill_after + 1
            assert "resumed from journal" in rollup.resilience_summary()

    @given(kill_after=st.integers(min_value=0, max_value=13))
    @settings(max_examples=6, deadline=None)
    def test_dedup_resume_is_bit_identical(
        self, micro_suite, micro_config, baseline, kill_after
    ):
        """The resume property holds for dedup runs too, whose journal
        entries are keyed by the equivalence-class content key — so a
        resumed run can trust a checkpoint only for the exact loop content
        it was measured from."""
        config = dataclasses.replace(micro_config, dedup=True)
        n_units = build_dedup_index(micro_suite).stats.n_cost_classes
        kill_after %= n_units
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "journal.jsonl"
            plan = FaultPlan(
                rules=(FaultRule(op="run.abort", match="*", skip=kill_after),)
            )
            with fault_plan(plan):
                journal = CheckpointJournal(path, run_key="dedup-prop")
                with pytest.raises(AbortRun):
                    measure_suite(micro_suite, config, journal=journal)
                journal.close()

            resumed = CheckpointJournal(path, run_key="dedup-prop")
            assert resumed.load() == kill_after + 1
            # Every checkpoint is keyed by its class's content key.
            class_keys = {cls.key for cls in build_dedup_index(micro_suite).classes}
            labels = set(resumed.completed)
            assert all(label.startswith("class:") for label in labels)
            assert {label.removeprefix("class:") for label in labels} <= class_keys
            rollup = MeasurementRollup()
            table = measure_suite(micro_suite, config, rollup=rollup, journal=resumed)
            resumed.close()
            assert _tables_identical(table, baseline)
            assert rollup.count("resume") == kill_after + 1

    def test_parallel_resume_matches(self, micro_suite, micro_config, baseline, tmp_path):
        path = tmp_path / "journal.jsonl"
        plan = FaultPlan(rules=(FaultRule(op="run.abort", match="*", skip=5),))
        with fault_plan(plan):
            journal = CheckpointJournal(path, run_key="par")
            with pytest.raises(AbortRun):
                measure_suite(micro_suite, micro_config, jobs=2, journal=journal)
            journal.close()
        resumed = CheckpointJournal(path, run_key="par")
        assert resumed.load() == 6
        table = measure_suite(micro_suite, micro_config, jobs=2, journal=resumed)
        resumed.close()
        assert _tables_identical(table, baseline)


# ---------------------------------------------------------------------------
# Cache corruption, quarantine caps, analysis poisoning.
# ---------------------------------------------------------------------------


class TestCacheFaults:
    def test_injected_corruption_self_heals(self, tmp_path, baseline):
        store = CacheStore(tmp_path)
        path = store.store("k1", baseline)
        plan = FaultPlan(
            seed=corrupting_seed(path),
            rules=(FaultRule(op="cache.corrupt", match="k1"),),
        )
        with fault_plan(plan):
            assert store.load("k1") is None  # corrupt -> quarantined miss
        assert len(store.quarantined()) == 1
        store.store("k1", baseline)  # the re-measure path heals the store
        healed = store.load("k1")
        assert healed is not None
        assert healed.measured.tobytes() == baseline.measured.tobytes()

    def test_end_to_end_reload_despite_corruption(
        self, tmp_path, micro_suite, micro_config, baseline
    ):
        key = config_key(11, 1.0, micro_config)
        store = CacheStore(tmp_path)
        path = store.store(key, baseline)
        plan = FaultPlan(
            seed=corrupting_seed(path),
            rules=(FaultRule(op="cache.corrupt", match=key),),
        )
        with fault_plan(plan):
            table = cached_measurements(
                micro_suite, 11, 1.0, micro_config, cache_dir=tmp_path
            )
        assert table.measured.tobytes() == baseline.measured.tobytes()
        assert store.load(key) is not None  # re-written after the heal


class TestQuarantineCap:
    def _tombstone(self, root: Path, name: str, age_s: float = 0.0) -> Path:
        path = root / f"measurements_{name}.npz.corrupt"
        path.write_bytes(b"tombstone")
        if age_s:
            past = time.time() - age_s
            os.utime(path, (past, past))
        return path

    def test_count_cap_keeps_newest(self, tmp_path, baseline):
        store = CacheStore(tmp_path, quarantine_cap=2)
        for i in range(5):
            self._tombstone(tmp_path, f"q{i}", age_s=(5 - i) * 60.0)
        store.store("live", baseline)  # prune rides on the write
        survivors = {p.name for p in store.quarantined()}
        assert survivors == {
            "measurements_q3.npz.corrupt",
            "measurements_q4.npz.corrupt",
        }

    def test_age_cap_applies_below_count_cap(self, tmp_path, baseline):
        store = CacheStore(tmp_path, quarantine_cap=16, quarantine_max_age_s=3600.0)
        old = self._tombstone(tmp_path, "old", age_s=7200.0)
        fresh = self._tombstone(tmp_path, "fresh")
        store.store("live", baseline)
        assert not old.exists()
        assert fresh.exists()

    def test_prune_is_directly_callable(self, tmp_path):
        store = CacheStore(tmp_path, quarantine_cap=1)
        self._tombstone(tmp_path, "a", age_s=120.0)
        self._tombstone(tmp_path, "b")
        removed = store.prune_quarantined()
        assert [p.name for p in removed] == ["measurements_a.npz.corrupt"]

    def test_stats_surface_the_cap(self, tmp_path):
        store = CacheStore(tmp_path, quarantine_cap=4)
        stats = store.stats()
        assert stats.quarantine_cap == 4
        assert "(cap 4)" in stats.summary()


class TestAnalysisPoison:
    def test_poisoned_entry_is_rejected_and_recomputed(self, daxpy_loop):
        model = CostModel()
        clean = model.loop_cost(daxpy_loop, 4).total_cycles
        hits_before = model.analysis.hits
        misses_before = model.analysis.misses
        plan = FaultPlan(
            rules=(FaultRule(op="analysis.poison", match=f"{daxpy_loop.name}:f4"),)
        )
        with fault_plan(plan):
            poisoned = model.loop_cost(daxpy_loop, 4).total_cycles
        # The poisoned entry failed verification: a miss, not a hit — but
        # the recomputed cost is identical and the cache healed itself.
        assert poisoned == clean
        assert model.analysis.misses > misses_before
        assert model.loop_cost(daxpy_loop, 4).total_cycles == clean
        assert model.analysis.hits > hits_before
