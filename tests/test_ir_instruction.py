"""Unit tests for instruction construction and rewriting."""

import pytest

from repro.ir import instruction as ins
from repro.ir.instruction import Instruction
from repro.ir.types import CmpOp, DType, Opcode
from repro.ir.values import AffineIndex, Imm, MemRef, Reg

F0 = Reg("f0", DType.F64)
F1 = Reg("f1", DType.F64)
F2 = Reg("f2", DType.F64)
P0 = Reg("p0", DType.PRED)
R0 = Reg("r0", DType.I64)


class TestConstruction:
    def test_uids_are_unique(self):
        a = ins.binop(Opcode.FADD, F2, F0, F1)
        b = ins.binop(Opcode.FADD, F2, F0, F1)
        assert a.uid != b.uid

    def test_store_must_not_have_dest(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.STORE, dest=F0, srcs=(F1,), mem=MemRef("a"))

    def test_arith_requires_dest(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.FADD, srcs=(F0, F1))

    def test_memory_op_requires_memref(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.LOAD, dest=F0)

    def test_compare_requires_cmp_kind(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.CMP, dest=P0, srcs=(R0, Imm(1)))

    def test_compare_constructor(self):
        inst = ins.compare(P0, CmpOp.LT, R0, Imm(10))
        assert inst.cmp_op is CmpOp.LT
        assert inst.op is Opcode.CMP

    def test_fp_compare_constructor(self):
        assert ins.compare(P0, CmpOp.GT, F0, F1, fp=True).op is Opcode.FCMP


class TestOperandInspection:
    def test_reg_srcs_includes_predicate(self):
        inst = ins.binop(Opcode.FADD, F2, F0, F1, pred=P0)
        assert set(inst.reg_srcs()) == {F0, F1, P0}

    def test_reg_srcs_includes_indirect_index(self):
        mem = MemRef("a", indirect=True, index_reg=R0)
        inst = ins.load(F0, mem)
        assert R0 in set(inst.reg_srcs())

    def test_immediates_are_not_reg_srcs(self):
        inst = ins.binop(Opcode.FMUL, F2, F0, Imm(2.0, DType.F64))
        assert set(inst.reg_srcs()) == {F0}

    def test_n_operands_counts_everything(self):
        # dest + 2 srcs + pred + no mem = 4.
        inst = ins.binop(Opcode.FADD, F2, F0, F1, pred=P0)
        assert inst.n_operands == 4

    def test_n_operands_counts_memref(self):
        inst = ins.store(F0, MemRef("a"))
        assert inst.n_operands == 2  # value + memory reference


class TestRewriting:
    def test_with_renamed_regs_maps_all_positions(self):
        inst = ins.binop(Opcode.FADD, F2, F0, F1, pred=P0)
        mapping = {F0: Reg("fx", DType.F64), F2: Reg("fy", DType.F64)}
        out = inst.with_renamed_regs(mapping)
        assert out.dest.name == "fy"
        assert out.srcs[0].name == "fx"
        assert out.srcs[1] == F1
        assert out.uid != inst.uid

    def test_rewritten_applies_asymmetric_maps(self):
        # acc = acc + x: src map sends acc to the previous copy's name,
        # dest map to this copy's name.
        acc = Reg("acc", DType.F64)
        inst = ins.binop(Opcode.FADD, acc, acc, F0)
        out = inst.rewritten(
            src_map={acc: Reg("acc.0", DType.F64)},
            dest_map={acc: Reg("acc.1", DType.F64)},
        )
        assert out.dest.name == "acc.1"
        assert out.srcs[0].name == "acc.0"

    def test_rewritten_renames_indirect_index_as_source(self):
        mem = MemRef("a", indirect=True, index_reg=R0)
        inst = ins.load(F0, mem)
        out = inst.rewritten({R0: Reg("r9", DType.I64)}, {})
        assert out.mem.index_reg.name == "r9"

    def test_with_unrolled_mem_identity_for_rolled(self):
        inst = ins.load(F0, MemRef("a", AffineIndex(1, 0)))
        assert inst.with_unrolled_mem(1, 0, 0) is inst

    def test_with_unrolled_mem_retargets(self):
        inst = ins.load(F0, MemRef("a", AffineIndex(1, 1)))
        out = inst.with_unrolled_mem(4, 2, 0)
        assert out.mem.index.coeff == 4
        assert out.mem.index.offset == 3

    def test_clone_is_fresh_identity(self):
        inst = ins.mov(F0, Imm(1.0, DType.F64))
        clone = inst.clone()
        assert clone.uid != inst.uid
        assert clone.op is inst.op and clone.dest == inst.dest
