"""Structural tests for the unroller."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.types import DType, Opcode
from repro.ir.validate import validate_loop
from repro.transforms.unroll import unroll, unroll_all_factors
from repro.workloads.kernels import sentinel_search

from tests.strategies import awkward_trip_loops, early_exit_loops, predicated_loops


class TestFactorHandling:
    def test_factor_one_is_identity(self, daxpy_loop):
        result = unroll(daxpy_loop, 1)
        assert result.main is daxpy_loop
        assert result.remainder is None
        assert result.factor == 1

    def test_invalid_factors_rejected(self, daxpy_loop):
        with pytest.raises(ValueError):
            unroll(daxpy_loop, 0)
        with pytest.raises(ValueError):
            unroll(daxpy_loop, 9)

    def test_already_unrolled_loop_rejected(self, daxpy_loop):
        result = unroll(daxpy_loop, 2)
        with pytest.raises(ValueError, match="already unrolled"):
            unroll(result.main, 2)

    def test_factor_clamped_to_known_trip(self):
        builder = LoopBuilder("t", TripInfo(runtime=3, compile_time=3))
        builder.store(builder.load("a"), "out")
        loop = builder.build()
        result = unroll(loop, 8)
        assert result.factor == 3  # full unroll
        assert result.main.trip.runtime == 1
        assert result.remainder is None


class TestCountedUnroll:
    def test_trip_split_exact_division(self, daxpy_loop):
        # runtime trip 96, factor 4 -> 24 main trips, no remainder runs.
        result = unroll(daxpy_loop, 4)
        assert result.main.trip.runtime == 24
        assert result.main.unroll_factor == 4
        assert result.main.size == daxpy_loop.size * 4
        assert result.remainder is None
        # Unknown trip count: remainder code is still emitted.
        assert result.remainder_emitted
        assert result.needs_precondition

    def test_trip_split_with_leftover(self, daxpy_loop):
        result = unroll(daxpy_loop, 5)
        assert result.main.trip.runtime == 19
        assert result.remainder.trip.runtime == 1
        # Remainder starts where the main loop stopped: 95 iterations done.
        rem_load = result.remainder.body[0]
        assert rem_load.mem.index.offset == 95
        assert rem_load.mem.index.coeff == 1

    def test_known_trip_no_precondition(self):
        builder = LoopBuilder("t", TripInfo(runtime=10, compile_time=10))
        builder.store(builder.load("a"), "out")
        loop = builder.build()
        result = unroll(loop, 4)
        assert not result.needs_precondition
        assert result.remainder.trip.compile_time == 2
        assert result.remainder_emitted

    def test_known_trip_exact_division_emits_no_remainder(self):
        builder = LoopBuilder("t", TripInfo(runtime=8, compile_time=8))
        builder.store(builder.load("a"), "out")
        loop = builder.build()
        result = unroll(loop, 4)
        assert result.remainder is None
        assert not result.remainder_emitted
        assert result.emitted_size == result.main.size

    def test_memrefs_rescaled_per_copy(self, daxpy_loop):
        result = unroll(daxpy_loop, 4)
        loads_x = [i for i in result.main.body if i.mem is not None and i.mem.array == "x"]
        offsets = sorted(i.mem.index.offset for i in loads_x)
        assert offsets == [0, 1, 2, 3]
        assert all(i.mem.index.coeff == 4 for i in loads_x)

    def test_unrolled_body_is_valid(self, daxpy_loop):
        for factor in range(2, 9):
            result = unroll(daxpy_loop, factor)
            validate_loop(result.main)
            if result.remainder is not None:
                validate_loop(result.remainder)


class TestRecurrenceChaining:
    def test_carried_register_chains_through_copies(self, reduction_loop):
        loop, acc, _ = reduction_loop
        result = unroll(loop, 4)
        main = result.main
        # The unrolled loop still carries exactly one recurrence, under the
        # original register name (so the backedge and remainder see it).
        assert main.carried_regs() == {acc}
        # The adds form a serial chain: each copy's add reads the previous
        # copy's result.
        adds = [inst for inst in main.body if inst.op is Opcode.FADD]
        assert len(adds) == 4
        for earlier, later in zip(adds, adds[1:]):
            assert earlier.dest in set(later.reg_srcs())
        assert adds[-1].dest == acc

    def test_remainder_reads_main_loops_final_accumulator(self):
        builder = LoopBuilder("t", TripInfo(runtime=10, compile_time=10))
        acc = builder.carried(DType.F64, init=0.0)
        value = builder.load("a")
        builder.fp(Opcode.FADD, acc, value, dest=acc)
        loop = builder.build()
        result = unroll(loop, 4)
        assert acc in result.remainder.carried_regs()


class TestWhileUnroll:
    def test_exit_branch_duplicated_per_copy(self):
        loop = sentinel_search(trip=40, entries=1)
        result = unroll(loop, 4)
        exits = [i for i in result.main.body if i.op is Opcode.BR_EXIT]
        assert len(exits) == 4
        assert result.remainder is None
        assert not result.needs_precondition

    def test_while_bound_is_ceiling(self):
        loop = sentinel_search(trip=10, entries=1)
        result = unroll(loop, 4)
        assert result.main.trip.runtime == 3  # ceil(10 / 4)
        assert not result.main.trip.counted

    def test_non_counted_loop_without_exit_rejected(self, daxpy_loop):
        from dataclasses import replace

        broken = replace(daxpy_loop, trip=TripInfo(runtime=10, counted=False))
        with pytest.raises(ValueError, match="no exit branch"):
            unroll(broken, 2)


class TestSweep:
    def test_unroll_all_factors_covers_label_space(self, daxpy_loop):
        results = unroll_all_factors(daxpy_loop)
        assert sorted(results) == list(range(1, 9))
        assert all(results[u].requested_factor == u for u in results)


class TestGeneratedStructure:
    """Hypothesis-driven structural invariants on the new loop shapes."""

    @given(loop=predicated_loops(), factor=st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_predicates_replicated_per_copy(self, loop, factor):
        result = unroll(loop, factor)
        n_predicated = sum(1 for inst in loop.body if inst.pred is not None)
        if result.main is not None:
            main_predicated = sum(
                1 for inst in result.main.body if inst.pred is not None
            )
            assert main_predicated == n_predicated * result.factor
            # Each copy guards its chain with its own renamed predicate reg.
            preds = {inst.pred for inst in result.main.body if inst.pred is not None}
            assert len(preds) == result.factor
            validate_loop(result.main)
        if result.remainder is not None:
            validate_loop(result.remainder)

    @given(case=awkward_trip_loops(), factor=st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_awkward_trip_accounting(self, case, factor):
        loop, _ = case
        result = unroll(loop, factor)
        covered = 0
        if result.main is not None:
            covered += result.main.trip.runtime * result.factor
        if result.remainder is not None:
            covered += result.remainder.trip.runtime
        assert covered == loop.trip.runtime
        # Unknown trip counts always emit remainder code; known ones only
        # when the division is inexact.
        if loop.trip.compile_time is None:
            assert result.remainder_emitted
        else:
            assert result.remainder_emitted == (loop.trip.runtime % result.factor != 0)

    @given(case=early_exit_loops(), factor=st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_early_exit_structure(self, case, factor):
        loop, _, _ = case
        result = unroll(loop, factor)
        exits = [i for i in result.main.body if i.op is Opcode.BR_EXIT]
        assert len(exits) == result.factor
        assert result.remainder is None
        assert not result.needs_precondition
        assert not result.main.trip.counted
        # While-style bound is the ceiling of trip / factor.
        expected = -(-loop.trip.runtime // result.factor)
        assert result.main.trip.runtime == expected
        validate_loop(result.main)
