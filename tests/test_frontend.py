"""Unit tests for the textual loop language."""

import numpy as np
import pytest

from repro.frontend import LexError, ParseError, parse_loop, parse_program, tokenize
from repro.frontend.lexer import TokenKind
from repro.ir.interp import initial_state, run_loop
from repro.ir.types import DType, Language, Opcode


class TestLexer:
    def test_token_kinds(self):
        tokens = tokenize("%x = load a[i+1]  # comment\n")
        kinds = [t.kind for t in tokens]
        assert kinds == [
            TokenKind.REG, TokenKind.EQUALS, TokenKind.IDENT, TokenKind.IDENT,
            TokenKind.LBRACKET, TokenKind.IDENT, TokenKind.PLUS, TokenKind.NUMBER,
            TokenKind.RBRACKET, TokenKind.NEWLINE, TokenKind.EOF,
        ]

    def test_numbers(self):
        tokens = tokenize("1 -2 3.5 -0.25 1e-3")
        values = [t.text for t in tokens if t.kind is TokenKind.NUMBER]
        assert values == ["1", "-2", "3.5", "-0.25", "1e-3"]

    def test_positions_reported(self):
        tokens = tokenize("a\n  b")
        b = [t for t in tokens if t.text == "b"][0]
        assert (b.line, b.column) == (2, 3)

    def test_unknown_character_raises(self):
        with pytest.raises(LexError, match="line 1"):
            tokenize("%x = load a[i] @ oops")

    def test_blank_lines_collapse(self):
        tokens = tokenize("a\n\n\nb\n")
        newlines = sum(1 for t in tokens if t.kind is TokenKind.NEWLINE)
        assert newlines == 2


class TestParserBasics:
    def test_header_options(self):
        loop = parse_loop("loop t trip=128 known entries=7 nest=3 lang=f90\n"
                          "  %x = load a[i]\n  store %x -> o[i]\nend\n")
        assert loop.trip.compile_time == 128
        assert loop.entry_count == 7
        assert loop.nest_level == 3
        assert loop.language is Language.FORTRAN90

    def test_while_loop(self):
        loop = parse_loop(
            "loop t trip=32 while\n"
            "  %x = load a[i]\n"
            "  %p = fcmp.ge %x, 3.0\n"
            "  exit_if %p\n"
            "end\n"
        )
        assert not loop.trip.counted
        assert loop.has_early_exit

    def test_affine_forms(self):
        loop = parse_loop(
            "loop t trip=16\n"
            "  %a = load x[i]\n"
            "  %b = load x[3*i+2]\n"
            "  %c = load x[i-0]\n"
            "  %d = load x[5]\n"
            "  store %a -> o[i]\n"
            "end\n"
        )
        refs = [inst.mem.index for inst in loop.body if inst.op is Opcode.LOAD]
        assert (refs[0].coeff, refs[0].offset) == (1, 0)
        assert (refs[1].coeff, refs[1].offset) == (3, 2)
        assert (refs[2].coeff, refs[2].offset) == (1, 0)
        assert (refs[3].coeff, refs[3].offset) == (0, 5)

    def test_indirect_reference(self):
        loop = parse_loop(
            "loop t trip=16\n"
            "  %j = load.i idx[i]\n"
            "  %v = load data[%j]\n"
            "  store %v -> o[i]\n"
            "end\n"
        )
        gather = loop.body[1]
        assert gather.mem.indirect
        assert gather.mem.index_reg.dtype is DType.I64

    def test_carried_register_with_init(self):
        loop = parse_loop(
            "loop t trip=16\n"
            "  init %acc = 1.5\n"
            "  %x = load a[i]\n"
            "  %acc = fadd %acc, %x\n"
            "end\n"
        )
        carried = loop.carried_regs()
        assert {r.name for r in carried} == {"acc"}

    def test_predicated_statement(self):
        loop = parse_loop(
            "loop t trip=16\n"
            "  %x = load a[i]\n"
            "  %p = fcmp.gt %x, 0.0\n"
            "  (%p) store %x -> o[i]\n"
            "end\n"
        )
        assert loop.body[-1].pred is not None

    def test_ldpair(self):
        loop = parse_loop(
            "loop t trip=16\n"
            "  %a, %b = ldpair x[2*i]\n"
            "  store %a -> o1[i]\n"
            "  store %b -> o2[i]\n"
            "end\n"
        )
        assert loop.body[0].op is Opcode.LOAD_PAIR
        assert loop.body[0].mem.width == 2

    def test_multiple_loops_in_one_file(self):
        parsed = parse_program(
            "loop a trip=8\n  %x = load p[i]\n  store %x -> q[i]\nend\n"
            "loop b trip=8\n  %y = load r[i]\n  store %y -> s[i]\nend\n"
        )
        assert [p.loop.name for p in parsed] == ["a", "b"]


class TestParserErrors:
    def test_missing_end(self):
        with pytest.raises(ParseError, match="unterminated"):
            parse_loop("loop t trip=8\n  %x = load a[i]\n")

    def test_unknown_opcode(self):
        with pytest.raises(ParseError, match="unknown opcode"):
            parse_loop("loop t trip=8\n  %x = frobnicate a, b\nend\n")

    def test_unknown_option(self):
        with pytest.raises(ParseError, match="unknown loop option"):
            parse_loop("loop t speed=9\n  %x = load a[i]\nend\n")

    def test_type_conflict_reported(self):
        with pytest.raises(ParseError, match="redefined as"):
            parse_loop(
                "loop t trip=8\n"
                "  %x = load a[i]\n"       # f64
                "  %x = add 1, 2\n"        # i64 redefinition
                "end\n"
            )

    def test_empty_body_rejected(self):
        with pytest.raises(ParseError, match="empty body"):
            parse_loop("loop t trip=8\nend\n")

    def test_bad_comparison(self):
        with pytest.raises(ParseError, match="unknown comparison"):
            parse_loop("loop t trip=8\n  %p = fcmp.zz 1.0, 2.0\nend\n")


class TestParsedSemantics:
    def test_parsed_loop_is_executable(self):
        loop = parse_loop(
            "loop t trip=10 known\n"
            "  %x = load a[i]\n"
            "  %y = fmul %x, 3.0\n"
            "  store %y -> out[i]\n"
            "end\n"
        )
        state = initial_state(loop, seed=1)
        source = state.arrays["a"].copy()
        run_loop(loop, state)
        np.testing.assert_allclose(state.arrays["out"][:10], source[:10] * 3.0)

    def test_parsed_loop_unrolls_correctly(self):
        from repro.ir.interp import run_unrolled
        from repro.transforms import unroll

        loop = parse_loop(
            "loop t trip=23\n"
            "  init %acc = 0.0\n"
            "  %x = load a[i]\n"
            "  %acc = fadd %acc, %x\n"
            "  store %acc -> running[i]\n"
            "end\n"
        )
        for factor in (2, 3, 8):
            rolled = initial_state(loop, seed=2, carried_inits={})
            unrolled_state = rolled.copy()
            run_loop(loop, rolled)
            run_unrolled(unroll(loop, factor), unrolled_state)
            for key, value in rolled.observable(loop).items():
                np.testing.assert_allclose(unrolled_state.observable(loop)[key], value)

    def test_parsed_loop_feeds_the_predictor(self, mini_dataset):
        from repro.heuristics import train_nn_heuristic

        loop = parse_loop(
            "loop t trip=100 entries=50\n"
            "  %x = load a[i]\n"
            "  %y = load b[i]\n"
            "  %z = fma %x, %y, %x\n"
            "  store %z -> c[i]\n"
            "end\n"
        )
        heuristic = train_nn_heuristic(mini_dataset)
        assert 1 <= heuristic.predict_loop(loop) <= 8


class TestUnparser:
    def _assert_round_trip(self, loop, carried_inits=None):
        from repro.frontend import parse_loop, to_source

        source = to_source(loop, carried_inits)
        rebuilt = parse_loop(source)
        assert rebuilt.size == loop.size
        assert rebuilt.trip == loop.trip
        assert rebuilt.entry_count == loop.entry_count
        assert rebuilt.nest_level == loop.nest_level
        assert rebuilt.language == loop.language
        for a, b in zip(loop.body, rebuilt.body):
            assert a.op is b.op
            assert (a.dest is None) == (b.dest is None)
            assert a.cmp_op == b.cmp_op
            if a.mem is not None:
                assert b.mem is not None
                assert a.mem.array == b.mem.array
                assert a.mem.indirect == b.mem.indirect
                if not a.mem.indirect:
                    assert a.mem.index == b.mem.index
        assert {r.name for r in rebuilt.carried_regs()} == {
            r.name for r in loop.carried_regs()
        }
        return rebuilt

    @pytest.mark.parametrize(
        "kernel",
        ["daxpy", "dot", "stencil3", "vsum", "gather", "cond_update", "cmul",
         "search", "int_hash", "linrec", "matvec_row", "scatter"],
    )
    def test_kernels_round_trip(self, kernel):
        from repro.workloads.kernels import KERNELS

        self._assert_round_trip(KERNELS[kernel]())

    def test_round_trip_preserves_semantics(self):
        from repro.frontend import parse_loop, to_source
        from repro.workloads.kernels import stencil3

        loop = stencil3(trip=20, entries=1)
        rebuilt = parse_loop(to_source(loop))
        state_a = initial_state(loop, seed=3)
        # Rebuilt loop has the same array names/sizes; run on cloned data.
        state_b = state_a.copy()
        run_loop(loop, state_a)
        run_loop(rebuilt, state_b)
        np.testing.assert_allclose(state_b.arrays["out"], state_a.arrays["out"])

    def test_generated_loops_round_trip(self):
        from repro.workloads import generate_suite

        suite = generate_suite(seed=12, loops_scale=0.05)
        for loop in list(suite.all_loops())[:30]:
            self._assert_round_trip(loop)
