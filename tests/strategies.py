"""Shared hypothesis strategies for the property-based suites."""

import numpy as np
from hypothesis import strategies as st

from repro.features.catalog import N_FEATURES
from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.types import MAX_UNROLL, CmpOp, DType, Opcode
from repro.pipeline.measurements import MeasurementTable

FP_OPS = [Opcode.FADD, Opcode.FSUB, Opcode.FMUL]


def assert_tables_bit_identical(a: MeasurementTable, b: MeasurementTable) -> None:
    """Assert two measurement tables are byte-for-byte the same.

    ``tobytes`` comparison on the float columns is deliberately stricter
    than ``allclose`` *and* than ``array_equal``: it distinguishes
    ``-0.0`` from ``0.0`` and treats NaN holes (quarantined units) as
    values that must match positionally.  Provenance columns are compared
    element-wise so a mismatch names the first offending row.
    """
    assert a.swp == b.swp, f"swp regime differs: {a.swp} vs {b.swp}"
    assert len(a) == len(b), f"row count differs: {len(a)} vs {len(b)}"
    for column in ("loop_names", "benchmarks", "suites", "languages"):
        lhs, rhs = getattr(a, column), getattr(b, column)
        if not np.array_equal(lhs, rhs):
            row = int(np.flatnonzero(lhs != rhs)[0])
            raise AssertionError(
                f"{column} differ at row {row}: {lhs[row]!r} vs {rhs[row]!r}"
            )
    for column in ("X", "measured", "true_cycles", "entry_counts"):
        lhs, rhs = getattr(a, column), getattr(b, column)
        if lhs.tobytes() != rhs.tobytes():
            diff = lhs != rhs
            if np.issubdtype(lhs.dtype, np.floating):
                diff &= ~(np.isnan(lhs) & np.isnan(rhs))
            rows = np.unique(np.argwhere(diff)[:, 0])[:5]
            raise AssertionError(
                f"{column} are not bit-identical; differing rows "
                f"{rows.tolist()} ({a.loop_names[rows].tolist()})"
            )

#: Names as they appear on disk: any unicode except surrogates and NUL
#: (numpy's fixed-width unicode arrays cannot represent either faithfully).
_NAME_ALPHABET = st.characters(
    blacklist_categories=("Cs",), blacklist_characters="\x00"
)
_NAMES = st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=16)

_CYCLES = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)


@st.composite
def measurement_tables(draw):
    """An arbitrary (but shape-consistent) :class:`MeasurementTable`:
    any number of rows, unicode provenance strings, either SWP regime."""
    n = draw(st.integers(min_value=1, max_value=6))

    def names():
        return np.array(
            draw(st.lists(_NAMES, min_size=n, max_size=n)), dtype=str
        )

    def cycles_matrix():
        rows = draw(
            st.lists(
                st.lists(_CYCLES, min_size=MAX_UNROLL, max_size=MAX_UNROLL),
                min_size=n,
                max_size=n,
            )
        )
        return np.array(rows, dtype=np.float64)

    features = draw(
        st.lists(
            st.lists(_CYCLES, min_size=N_FEATURES, max_size=N_FEATURES),
            min_size=n,
            max_size=n,
        )
    )
    return MeasurementTable(
        X=np.array(features, dtype=np.float64),
        measured=cycles_matrix(),
        true_cycles=cycles_matrix(),
        loop_names=names(),
        benchmarks=names(),
        suites=names(),
        languages=names(),
        entry_counts=np.array(
            draw(st.lists(st.integers(1, 10**9), min_size=n, max_size=n)),
            dtype=np.int64,
        ),
        swp=draw(st.booleans()),
    )


@st.composite
def labelled_datasets(draw):
    """A small, well-formed :class:`LoopDataset` for classifier
    differential tests: 2..4 factor classes with class-separable feature
    clusters (so every family has signal to learn), either SWP regime,
    seeded through hypothesis so shrinking stays deterministic."""
    from repro.ml.dataset import LoopDataset

    n_classes = draw(st.integers(min_value=2, max_value=4))
    per_class = draw(st.integers(min_value=3, max_value=6))
    seed = draw(st.integers(min_value=0, max_value=2**16 - 1))
    separation = draw(st.floats(min_value=0.6, max_value=2.0))
    swp = draw(st.booleans())

    rng = np.random.default_rng(seed)
    factors = np.sort(
        rng.choice(np.arange(1, MAX_UNROLL + 1), size=n_classes, replace=False)
    )
    n = n_classes * per_class
    labels = np.repeat(factors, per_class).astype(np.int64)
    X = rng.normal(size=(n, N_FEATURES)) + labels[:, None] * separation
    cycles = rng.uniform(1e4, 1e6, size=(n, MAX_UNROLL))
    return LoopDataset(
        X=X,
        labels=labels,
        cycles=cycles,
        true_cycles=cycles * 1.01,
        loop_names=np.array([f"bench{i % 3}/loop{i}" for i in range(n)]),
        benchmarks=np.array([f"bench{i % 3}" for i in range(n)]),
        suites=np.array(["s"] * n),
        languages=np.array(["C"] * n),
        swp=swp,
    )


@st.composite
def random_loops(draw):
    """A random but well-formed counted loop built through the DSL."""
    trip = draw(st.integers(min_value=1, max_value=40))
    known = draw(st.booleans())
    builder = LoopBuilder(
        "prop",
        TripInfo(runtime=trip, compile_time=trip if known else None),
    )
    values = []
    n_strands = draw(st.integers(min_value=1, max_value=3))
    for strand in range(n_strands):
        kind = draw(st.sampled_from(["map", "reduce", "stencil", "carried_store"]))
        if kind == "map":
            value = builder.load(f"in{strand}", offset=draw(st.integers(0, 2)))
            op = draw(st.sampled_from(FP_OPS))
            result = builder.fp(op, value, builder.fconst(draw(st.floats(0.5, 2.0))))
            builder.store(result, f"out{strand}")
            values.append(result)
        elif kind == "reduce":
            acc = builder.carried(DType.F64, init=0.0)
            value = builder.load(f"r{strand}")
            builder.fp(Opcode.FADD, acc, value, dest=acc)
        elif kind == "stencil":
            a = builder.load(f"s{strand}", offset=0)
            b = builder.load(f"s{strand}", offset=draw(st.integers(1, 3)))
            builder.store(builder.fp(Opcode.FADD, a, b), f"sout{strand}")
        else:
            value = builder.load(f"c{strand}", offset=0)
            scaled = builder.fp(Opcode.FMUL, value, builder.fconst(0.75))
            builder.store(scaled, f"c{strand}", offset=draw(st.integers(1, 4)))
    if draw(st.booleans()) and values:
        # Optionally a predicated consumer of an earlier value.
        pred = builder.cmp(CmpOp.GT, values[0], builder.fconst(0.0), fp=True)
        builder.store(values[0], "pred_out", pred=pred)
    return builder.build()


#: Trip counts that stress the remainder machinery: nothing a factor in
#: 2..8 divides cleanly, plus the degenerate 1..3 range where the main
#: loop may not run at all.
AWKWARD_TRIPS = st.sampled_from([1, 2, 3, 5, 7, 11, 13, 17, 23, 29, 37, 41, 65, 97])


@st.composite
def awkward_trip_loops(draw):
    """A well-formed counted loop whose trip count is deliberately not a
    multiple (nor usually a power) of two — every unroll factor in 2..8
    leaves a remainder, and tiny trips force the factor-clamping path."""
    trip = draw(AWKWARD_TRIPS)
    known = draw(st.booleans())
    builder = LoopBuilder(
        "awkward",
        TripInfo(runtime=trip, compile_time=trip if known else None),
    )
    acc = builder.carried(DType.F64, init=draw(st.floats(-1.0, 1.0)))
    value = builder.load("a", offset=draw(st.integers(0, 2)))
    builder.fp(draw(st.sampled_from(FP_OPS)), acc, value, dest=acc)
    if draw(st.booleans()):
        builder.store(acc, "out")
    return builder.build(), builder.carried_inits


@st.composite
def predicated_loops(draw):
    """A loop whose body is dominated by predicated execution: a compare
    guards an FP op and a store (the ``conditional_update`` idiom), with an
    optional predicated load on the same predicate."""
    trip = draw(st.integers(min_value=1, max_value=48))
    known = draw(st.booleans())
    builder = LoopBuilder(
        "predicated",
        TripInfo(runtime=trip, compile_time=trip if known else None),
    )
    value = builder.load("a", offset=draw(st.integers(0, 1)))
    threshold = builder.fconst(draw(st.floats(-0.5, 0.5)))
    above = builder.cmp(draw(st.sampled_from([CmpOp.GT, CmpOp.LT, CmpOp.GE])),
                        value, threshold, fp=True)
    scaled = builder.fp(
        draw(st.sampled_from(FP_OPS)),
        value,
        builder.fconst(draw(st.floats(0.5, 2.0))),
        pred=above,
    )
    builder.store(scaled, "out", pred=above)
    if draw(st.booleans()):
        # A predicated load consumed under the same predicate: the whole
        # chain is dead on false predicates, so per-copy renaming in the
        # unroller must keep each copy's chain on its own predicate.
        extra = builder.load("b", pred=above)
        builder.store(extra, "bout", pred=above)
    return builder.build()


@st.composite
def early_exit_loops(draw):
    """A while-style sentinel search plus where its exit fires.

    Returns ``(loop, key_reg, exit_at)``: the loop exits when ``a[i]``
    equals the invariant ``key_reg``; tests plant the key at index
    ``exit_at`` (always < trip, so strict-exit runs terminate) and may
    also zero the rest of ``a`` to keep the sentinel unique."""
    trip = draw(st.integers(min_value=2, max_value=40))
    exit_at = draw(st.integers(min_value=0, max_value=trip - 1))
    builder = LoopBuilder(
        "early-exit",
        TripInfo(runtime=trip, compile_time=None, counted=False),
    )
    key = builder.reg(DType.F64)  # invariant live-in: the searched-for value
    value = builder.load("a")
    found = builder.cmp(CmpOp.EQ, value, key, fp=True)
    builder.exit_if(found)
    running = builder.carried(DType.F64, init=0.0)
    builder.fp(Opcode.FADD, running, value, dest=running)
    if draw(st.booleans()):
        builder.store(running, "partial")
    return builder.build(), key, exit_at
