"""Shared hypothesis strategies for the property-based suites."""

from hypothesis import strategies as st

from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.types import CmpOp, DType, Opcode

from hypothesis import strategies as st

from repro.ir.types import CmpOp, Opcode

FP_OPS = [Opcode.FADD, Opcode.FSUB, Opcode.FMUL]


@st.composite
def random_loops(draw):
    """A random but well-formed counted loop built through the DSL."""
    trip = draw(st.integers(min_value=1, max_value=40))
    known = draw(st.booleans())
    builder = LoopBuilder(
        "prop",
        TripInfo(runtime=trip, compile_time=trip if known else None),
    )
    values = []
    n_strands = draw(st.integers(min_value=1, max_value=3))
    for strand in range(n_strands):
        kind = draw(st.sampled_from(["map", "reduce", "stencil", "carried_store"]))
        if kind == "map":
            value = builder.load(f"in{strand}", offset=draw(st.integers(0, 2)))
            op = draw(st.sampled_from(FP_OPS))
            result = builder.fp(op, value, builder.fconst(draw(st.floats(0.5, 2.0))))
            builder.store(result, f"out{strand}")
            values.append(result)
        elif kind == "reduce":
            acc = builder.carried(DType.F64, init=0.0)
            value = builder.load(f"r{strand}")
            builder.fp(Opcode.FADD, acc, value, dest=acc)
        elif kind == "stencil":
            a = builder.load(f"s{strand}", offset=0)
            b = builder.load(f"s{strand}", offset=draw(st.integers(1, 3)))
            builder.store(builder.fp(Opcode.FADD, a, b), f"sout{strand}")
        else:
            value = builder.load(f"c{strand}", offset=0)
            scaled = builder.fp(Opcode.FMUL, value, builder.fconst(0.75))
            builder.store(scaled, f"c{strand}", offset=draw(st.integers(1, 4)))
    if draw(st.booleans()) and values:
        # Optionally a predicated consumer of an earlier value.
        pred = builder.cmp(CmpOp.GT, values[0], builder.fconst(0.0), fp=True)
        builder.store(values[0], "pred_out", pred=pred)
    return builder.build()
