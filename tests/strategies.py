"""Shared hypothesis strategies for the property-based suites."""

import numpy as np
from hypothesis import strategies as st

from repro.features.catalog import N_FEATURES
from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.types import MAX_UNROLL, CmpOp, DType, Opcode
from repro.pipeline.measurements import MeasurementTable

FP_OPS = [Opcode.FADD, Opcode.FSUB, Opcode.FMUL]

#: Names as they appear on disk: any unicode except surrogates and NUL
#: (numpy's fixed-width unicode arrays cannot represent either faithfully).
_NAME_ALPHABET = st.characters(
    blacklist_categories=("Cs",), blacklist_characters="\x00"
)
_NAMES = st.text(alphabet=_NAME_ALPHABET, min_size=1, max_size=16)

_CYCLES = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)


@st.composite
def measurement_tables(draw):
    """An arbitrary (but shape-consistent) :class:`MeasurementTable`:
    any number of rows, unicode provenance strings, either SWP regime."""
    n = draw(st.integers(min_value=1, max_value=6))

    def names():
        return np.array(
            draw(st.lists(_NAMES, min_size=n, max_size=n)), dtype=str
        )

    def cycles_matrix():
        rows = draw(
            st.lists(
                st.lists(_CYCLES, min_size=MAX_UNROLL, max_size=MAX_UNROLL),
                min_size=n,
                max_size=n,
            )
        )
        return np.array(rows, dtype=np.float64)

    features = draw(
        st.lists(
            st.lists(_CYCLES, min_size=N_FEATURES, max_size=N_FEATURES),
            min_size=n,
            max_size=n,
        )
    )
    return MeasurementTable(
        X=np.array(features, dtype=np.float64),
        measured=cycles_matrix(),
        true_cycles=cycles_matrix(),
        loop_names=names(),
        benchmarks=names(),
        suites=names(),
        languages=names(),
        entry_counts=np.array(
            draw(st.lists(st.integers(1, 10**9), min_size=n, max_size=n)),
            dtype=np.int64,
        ),
        swp=draw(st.booleans()),
    )


@st.composite
def random_loops(draw):
    """A random but well-formed counted loop built through the DSL."""
    trip = draw(st.integers(min_value=1, max_value=40))
    known = draw(st.booleans())
    builder = LoopBuilder(
        "prop",
        TripInfo(runtime=trip, compile_time=trip if known else None),
    )
    values = []
    n_strands = draw(st.integers(min_value=1, max_value=3))
    for strand in range(n_strands):
        kind = draw(st.sampled_from(["map", "reduce", "stencil", "carried_store"]))
        if kind == "map":
            value = builder.load(f"in{strand}", offset=draw(st.integers(0, 2)))
            op = draw(st.sampled_from(FP_OPS))
            result = builder.fp(op, value, builder.fconst(draw(st.floats(0.5, 2.0))))
            builder.store(result, f"out{strand}")
            values.append(result)
        elif kind == "reduce":
            acc = builder.carried(DType.F64, init=0.0)
            value = builder.load(f"r{strand}")
            builder.fp(Opcode.FADD, acc, value, dest=acc)
        elif kind == "stencil":
            a = builder.load(f"s{strand}", offset=0)
            b = builder.load(f"s{strand}", offset=draw(st.integers(1, 3)))
            builder.store(builder.fp(Opcode.FADD, a, b), f"sout{strand}")
        else:
            value = builder.load(f"c{strand}", offset=0)
            scaled = builder.fp(Opcode.FMUL, value, builder.fconst(0.75))
            builder.store(scaled, f"c{strand}", offset=draw(st.integers(1, 4)))
    if draw(st.booleans()) and values:
        # Optionally a predicated consumer of an earlier value.
        pred = builder.cmp(CmpOp.GT, values[0], builder.fconst(0.0), fp=True)
        builder.store(values[0], "pred_out", pred=pred)
    return builder.build()
