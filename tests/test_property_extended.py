"""Extended property-based tests: pipeliner legality, pass idempotence,
frontend round-trips, and noise statistics on randomised inputs."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.ir.dependence import analyze_dependences, edge_latency
from repro.ir.interp import initial_state, run_loop
from repro.ir.validate import validate_loop
from repro.machine import ITANIUM2, NARROW
from repro.sched.modulo import ModuloScheduleError, modulo_schedule, recurrence_mii, resource_mii
from repro.transforms.coalesce import coalesce_loads
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.scalar_replacement import scalar_replace
from repro.transforms.unroll import unroll

# Reuse the random loop strategy shared via conftest.
from tests.strategies import random_loops


class TestModuloScheduleProperties:
    @given(loop=random_loops(), factor=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_kernel_respects_modulo_constraints(self, loop, factor):
        part = unroll(loop, factor).main
        if part is None or not part.swp_eligible:
            return
        deps = analyze_dependences(part)
        try:
            kernel = modulo_schedule(deps, ITANIUM2)
        except ModuloScheduleError:
            return  # budget exhausted is acceptable; wrongness is not
        for edge in deps.edges:
            lat = edge_latency(edge, deps.body, ITANIUM2)
            assert (
                kernel.start[edge.dst] + kernel.ii * edge.distance
                >= kernel.start[edge.src] + lat
            )

    @given(loop=random_loops())
    @settings(max_examples=30, deadline=None)
    def test_ii_at_least_both_lower_bounds(self, loop):
        if not loop.swp_eligible:
            return
        deps = analyze_dependences(loop)
        try:
            kernel = modulo_schedule(deps, ITANIUM2)
        except ModuloScheduleError:
            return
        assert kernel.ii >= recurrence_mii(deps, ITANIUM2)
        assert kernel.ii + 1e-9 >= resource_mii(deps, ITANIUM2)

    @given(loop=random_loops())
    @settings(max_examples=20, deadline=None)
    def test_narrow_machine_never_beats_wide_on_bounds(self, loop):
        deps = analyze_dependences(loop)
        assert resource_mii(deps, NARROW) >= resource_mii(deps, ITANIUM2) - 1e-9


class TestPassProperties:
    @given(loop=random_loops(), factor=st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_scalar_replacement_is_idempotent(self, loop, factor):
        main = unroll(loop, factor).main
        if main is None:
            return
        once = scalar_replace(main)
        twice = scalar_replace(once)
        assert [i.op for i in twice.body] == [i.op for i in once.body]

    @given(loop=random_loops(), factor=st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_coalescing_is_idempotent_and_valid(self, loop, factor):
        main = unroll(loop, factor).main
        if main is None:
            return
        once = coalesce_loads(main)
        validate_loop(once)
        twice = coalesce_loads(once)
        assert [i.op for i in twice.body] == [i.op for i in once.body]

    @given(loop=random_loops())
    @settings(max_examples=30, deadline=None)
    def test_dce_is_idempotent_and_semantics_preserving(self, loop):
        cleaned = eliminate_dead_code(loop)
        assert eliminate_dead_code(cleaned).size == cleaned.size
        a = initial_state(loop, seed=4)
        b = a.copy()
        run_loop(loop, a)
        run_loop(cleaned, b)
        for key, value in a.observable(loop).items():
            if key.startswith("%"):
                continue  # dead carried scalars may legitimately differ? no:
            np.testing.assert_allclose(b.observable(loop)[key], value)

    @given(loop=random_loops(), factor=st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_passes_never_add_memory_traffic(self, loop, factor):
        main = unroll(loop, factor).main
        if main is None:
            return
        def mem_elements(body):
            total = 0
            for inst in body:
                if inst.op.is_memory and inst.mem is not None:
                    total += inst.mem.width
            return total

        replaced = scalar_replace(main)
        merged = coalesce_loads(replaced)
        assert mem_elements(replaced.body) <= mem_elements(main.body)
        assert mem_elements(merged.body) <= mem_elements(replaced.body) + 0


class TestFrontendRoundTripProperty:
    @given(loop=random_loops())
    @settings(max_examples=30, deadline=None)
    def test_parse_unparse_round_trip(self, loop):
        from repro.frontend import parse_loop, to_source

        rebuilt = parse_loop(to_source(loop))
        assert rebuilt.size == loop.size
        assert rebuilt.trip == loop.trip
        for a, b in zip(loop.body, rebuilt.body):
            assert a.op is b.op
            if a.mem is not None and not a.mem.indirect:
                assert a.mem.index == b.mem.index

    @given(loop=random_loops(), seed=st.integers(0, 5))
    @settings(max_examples=20, deadline=None)
    def test_round_trip_preserves_execution(self, loop, seed):
        from repro.frontend import parse_loop, to_source

        rebuilt = parse_loop(to_source(loop))
        a = initial_state(loop, seed=seed)
        b = a.copy()
        run_loop(loop, a)
        run_loop(rebuilt, b)
        for name in loop.arrays:
            np.testing.assert_allclose(b.arrays[name], a.arrays[name])


class TestNoiseStatistics:
    @given(
        sigma=st.floats(0.001, 0.1),
        cycles=st.floats(1e4, 1e8),
        entries=st.integers(1, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_median_within_noise_envelope(self, sigma, cycles, entries):
        from repro.simulate import NoiseModel

        noise = NoiseModel(sigma=sigma, outlier_rate=0.0, counter_overhead=9)
        rng = np.random.default_rng(0)
        median = noise.median_measurement(cycles, entries, rng, n=31)
        base = cycles + entries * 9
        assert base * np.exp(-4 * sigma) <= median <= base * np.exp(4 * sigma)

    @given(sigma=st.floats(0.0, 0.05))
    @settings(max_examples=20, deadline=None)
    def test_samples_always_positive(self, sigma):
        from repro.simulate import NoiseModel

        noise = NoiseModel(sigma=sigma, outlier_rate=0.1)
        rng = np.random.default_rng(1)
        samples = noise.samples(1000.0, 3, rng, n=50)
        assert (samples > 0).all()
