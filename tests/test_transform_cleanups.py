"""Unit tests for scalar replacement, coalescing, and DCE."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.types import CmpOp, DType, Opcode
from repro.transforms.coalesce import coalesce_loads
from repro.transforms.dce import eliminate_dead_code
from repro.transforms.scalar_replacement import scalar_replace
from repro.transforms.unroll import unroll


def _count(loop, op):
    return sum(1 for inst in loop.body if inst.op is op)


class TestScalarReplacement:
    def test_redundant_load_becomes_move(self, stencil_loop):
        unrolled = unroll(stencil_loop, 2).main
        # Copy 0 loads a[i], a[i+1], a[i+2]; copy 1 loads a[i+1], a[i+2],
        # a[i+3]: two of copy 1's loads are redundant.
        replaced = scalar_replace(unrolled)
        assert _count(unrolled, Opcode.LOAD) == 6
        assert _count(replaced, Opcode.LOAD) == 4
        assert _count(replaced, Opcode.MOV) == 2

    def test_store_to_load_forwarding(self):
        builder = LoopBuilder("t", TripInfo(runtime=16))
        value = builder.load("a")
        builder.store(value, "b")
        reloaded = builder.load("b")  # same address as the store
        builder.store(reloaded, "c")
        loop = builder.build()
        replaced = scalar_replace(loop)
        assert _count(replaced, Opcode.LOAD) == 1

    def test_intervening_may_alias_store_blocks_forwarding(self):
        builder = LoopBuilder("t", TripInfo(runtime=16))
        first = builder.load("a", offset=0)
        builder.store(first, "b")
        # Indirect store to 'a' may hit any element: kills availability.
        index = builder.mov(builder.iconst(3), dtype=DType.I64)
        builder.store_indirect(first, "a", index)
        second = builder.load("a", offset=0)
        builder.store(second, "c")
        loop = builder.build()
        replaced = scalar_replace(loop)
        assert _count(replaced, Opcode.LOAD) == 2  # nothing forwarded

    def test_same_stride_distinct_offset_store_does_not_kill(self):
        builder = LoopBuilder("t", TripInfo(runtime=16))
        first = builder.load("a", offset=0)
        builder.store(first, "a", offset=4)  # provably distinct element
        second = builder.load("a", offset=0)
        builder.store(second, "b")
        loop = builder.build()
        replaced = scalar_replace(loop)
        assert _count(replaced, Opcode.LOAD) == 1

    def test_predicated_loads_left_alone(self):
        builder = LoopBuilder("t", TripInfo(runtime=16))
        guard_val = builder.load("g")
        pred = builder.cmp(CmpOp.GT, guard_val, builder.fconst(0.0), fp=True)
        first = builder.load("a", pred=pred)
        builder.store(first, "out", pred=pred)
        second = builder.load("a")
        builder.store(second, "out2")
        loop = builder.build()
        replaced = scalar_replace(loop)
        # The predicated load neither provides nor consumes availability.
        assert _count(replaced, Opcode.LOAD) == 3


class TestCoalescing:
    def test_even_stride_adjacent_pair_merges(self):
        from repro.workloads.kernels import complex_multiply

        loop = complex_multiply(trip=16, entries=1)
        merged = coalesce_loads(loop)
        assert _count(merged, Opcode.LOAD_PAIR) == 2  # (re, im) of a and b
        assert _count(merged, Opcode.LOAD) == 0

    def test_odd_stride_never_merges(self, stencil_loop):
        # Rolled stencil: stride 1 (odd) — alignment cannot be guaranteed.
        merged = coalesce_loads(stencil_loop)
        assert _count(merged, Opcode.LOAD_PAIR) == 0

    def test_unrolled_even_factor_merges(self, daxpy_loop):
        unrolled = unroll(daxpy_loop, 4).main  # stride becomes 4
        merged = coalesce_loads(unrolled)
        # x and y each have offsets {0,1,2,3}: four pairs.
        assert _count(merged, Opcode.LOAD_PAIR) == 4
        assert _count(merged, Opcode.LOAD) == 0

    def test_unrolled_odd_factor_does_not_merge(self, daxpy_loop):
        unrolled = unroll(daxpy_loop, 3).main  # stride 3: odd
        merged = coalesce_loads(unrolled)
        assert _count(merged, Opcode.LOAD_PAIR) == 0

    def test_store_to_later_element_blocks_merge(self):
        builder = LoopBuilder("t", TripInfo(runtime=16))
        lo = builder.load("a", stride=2, offset=0)
        builder.store(lo, "a", stride=2, offset=1)  # clobbers the pair's 2nd elem
        hi = builder.load("a", stride=2, offset=1)
        builder.store(hi, "out")
        loop = builder.build()
        merged = coalesce_loads(loop)
        assert _count(merged, Opcode.LOAD_PAIR) == 0

    def test_store_to_earlier_element_does_not_block(self):
        # The pair issues at the earlier load's position, before the store,
        # exactly like the original first load did — merging stays legal.
        builder = LoopBuilder("t", TripInfo(runtime=16))
        lo = builder.load("a", stride=2, offset=0)
        builder.store(lo, "a", stride=2, offset=0)
        hi = builder.load("a", stride=2, offset=1)
        builder.store(hi, "out")
        loop = builder.build()
        merged = coalesce_loads(loop)
        assert _count(merged, Opcode.LOAD_PAIR) == 1

    def test_pair_must_start_even(self):
        builder = LoopBuilder("t", TripInfo(runtime=16))
        a = builder.load("a", stride=4, offset=1)
        b = builder.load("a", stride=4, offset=2)
        builder.store(builder.fp(Opcode.FADD, a, b), "out")
        loop = builder.build()
        merged = coalesce_loads(loop)
        # Offsets 1,2 are adjacent but start odd: no merge.
        assert _count(merged, Opcode.LOAD_PAIR) == 0


class TestDeadCodeElimination:
    def test_unused_computation_removed(self):
        builder = LoopBuilder("t", TripInfo(runtime=8))
        value = builder.load("a")
        builder.fp(Opcode.FMUL, value, builder.fconst(2.0))  # dead
        builder.store(value, "out")
        loop = builder.build()
        cleaned = eliminate_dead_code(loop)
        assert cleaned.size == 2

    def test_transitively_dead_chain_removed(self):
        builder = LoopBuilder("t", TripInfo(runtime=8))
        value = builder.load("a")
        t1 = builder.fp(Opcode.FMUL, value, builder.fconst(2.0))
        builder.fp(Opcode.FADD, t1, builder.fconst(1.0))  # dead, kills t1 too
        builder.store(value, "out")
        loop = builder.build()
        cleaned = eliminate_dead_code(loop)
        assert cleaned.size == 2

    def test_carried_values_are_never_dead(self, reduction_loop):
        loop, _, _ = reduction_loop
        cleaned = eliminate_dead_code(loop)
        assert cleaned.size == loop.size

    def test_stores_and_branches_kept(self):
        from repro.workloads.kernels import sentinel_search

        loop = sentinel_search(trip=16, entries=1)
        cleaned = eliminate_dead_code(loop)
        assert _count(cleaned, Opcode.BR_EXIT) == 1

    def test_all_dead_body_raises(self):
        builder = LoopBuilder("t", TripInfo(runtime=8))
        value = builder.load("a")
        builder.fp(Opcode.FMUL, value, builder.fconst(2.0))
        loop = builder.build()
        with pytest.raises(ValueError, match="entire body"):
            eliminate_dead_code(loop)
