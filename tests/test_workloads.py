"""Unit tests for kernels, patterns, and the suite generator."""

import numpy as np
import pytest

from repro.ir.types import MAX_UNROLL, Language
from repro.ir.validate import validate_loop
from repro.workloads import (
    ARCHETYPES,
    PATTERNS,
    ROSTER,
    SPEC2000_FP_NAMES,
    SPEC2000_NAMES,
    generate_benchmark,
    generate_loop,
    generate_suite,
)
from repro.workloads.kernels import KERNELS


class TestKernels:
    @pytest.mark.parametrize("name", sorted(KERNELS))
    def test_every_kernel_is_valid(self, name):
        loop = KERNELS[name]()
        validate_loop(loop)
        assert loop.size >= 1

    def test_kernels_are_parameterised(self):
        small = KERNELS["daxpy"](trip=32, entries=2)
        large = KERNELS["daxpy"](trip=4096, entries=2)
        assert small.trip.runtime == 32 and large.trip.runtime == 4096

    def test_search_kernel_is_while_style(self):
        loop = KERNELS["search"](trip=64)
        assert not loop.trip.counted
        assert loop.has_early_exit

    def test_gather_kernel_has_indirect_ref(self):
        loop = KERNELS["gather"]()
        assert any(i.mem is not None and i.mem.indirect for i in loop.body)


class TestPatterns:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_every_pattern_emits_valid_ir(self, name):
        from repro.ir.builder import LoopBuilder
        from repro.ir.loop import TripInfo

        rng = np.random.default_rng(5)
        for trial in range(5):
            builder = LoopBuilder(f"t{trial}", TripInfo(runtime=64, counted=name != "search_exit"))
            if name == "search_exit":
                PATTERNS[name](builder, rng, tag="p0")
                PATTERNS["stream_map"](builder, rng, tag="p1")
            else:
                PATTERNS[name](builder, rng, tag="p0")
            validate_loop(builder.build(validate=False))


class TestRoster:
    def test_roster_has_72_benchmarks(self):
        assert len(ROSTER) == 72

    def test_spec2000_names_match_the_paper(self):
        assert len(SPEC2000_NAMES) == 24
        assert SPEC2000_NAMES[0] == "164.gzip"
        assert SPEC2000_NAMES[-1] == "301.apsi"
        assert "252.eon" not in SPEC2000_NAMES  # C++, excluded by the paper
        assert "191.fma3d" not in SPEC2000_NAMES  # miscompiled, excluded
        assert len(SPEC2000_FP_NAMES) == 13

    def test_roster_names_unique(self):
        names = [info.name for info in ROSTER]
        assert len(set(names)) == len(names)

    def test_three_languages_present(self):
        langs = {info.language for info in ROSTER}
        assert langs == {Language.C, Language.FORTRAN, Language.FORTRAN90}

    def test_every_archetype_known(self):
        assert {info.archetype for info in ROSTER} <= set(ARCHETYPES)


class TestGenerator:
    def test_suite_is_deterministic(self):
        a = generate_suite(seed=9, loops_scale=0.05)
        b = generate_suite(seed=9, loops_scale=0.05)
        assert a.n_loops == b.n_loops
        for loop_a, loop_b in zip(a.all_loops(), b.all_loops()):
            assert loop_a.name == loop_b.name
            assert loop_a.size == loop_b.size
            assert loop_a.trip.runtime == loop_b.trip.runtime

    def test_different_seeds_differ(self):
        a = generate_suite(seed=9, loops_scale=0.05)
        b = generate_suite(seed=10, loops_scale=0.05)
        sizes_a = [l.size for l in a.all_loops()[:50]]
        sizes_b = [l.size for l in b.all_loops()[:50]]
        assert sizes_a != sizes_b

    def test_all_generated_loops_valid(self):
        suite = generate_suite(seed=3, loops_scale=0.05)
        for loop in suite.all_loops():
            validate_loop(loop)

    def test_loops_scale_controls_size(self):
        small = generate_suite(seed=1, loops_scale=0.05)
        large = generate_suite(seed=1, loops_scale=0.2)
        assert large.n_loops > small.n_loops

    def test_while_loops_have_exits(self):
        suite = generate_suite(seed=4, loops_scale=0.1)
        for loop in suite.all_loops():
            if not loop.trip.counted:
                assert loop.has_early_exit

    def test_unrollable_at_every_factor(self):
        from repro.transforms import unroll

        suite = generate_suite(seed=2, loops_scale=0.05)
        for loop in list(suite.all_loops())[:40]:
            for factor in range(1, MAX_UNROLL + 1):
                result = unroll(loop, factor)
                if result.main is not None:
                    validate_loop(result.main)

    def test_benchmark_generation_metadata(self):
        rng = np.random.default_rng(0)
        bench = generate_benchmark(ROSTER[0], rng, loops_scale=0.2)
        assert bench.name == ROSTER[0].name
        assert 0.0 < bench.loop_fraction <= 1.0
        assert all(l.benchmark == bench.name for l in bench.loops)

    def test_archetypes_shape_their_loops(self):
        rng = np.random.default_rng(1)
        fp_loops = [
            generate_loop(rng, ARCHETYPES["spec-fp"], f"a{i}", "b", Language.FORTRAN)
            for i in range(60)
        ]
        int_loops = [
            generate_loop(rng, ARCHETYPES["spec-int"], f"c{i}", "d", Language.C)
            for i in range(60)
        ]
        fp_exit_rate = np.mean([l.has_early_exit for l in fp_loops])
        int_exit_rate = np.mean([l.has_early_exit for l in int_loops])
        assert int_exit_rate > fp_exit_rate
        fp_trip = np.median([l.trip.runtime for l in fp_loops])
        int_trip = np.median([l.trip.runtime for l in int_loops])
        assert fp_trip > int_trip
