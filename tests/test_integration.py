"""End-to-end integration tests on the mini pipeline.

These are the "does the whole paper loop hold together" checks: generate,
measure, filter, label, select features, train, cross-validate, evaluate —
asserting the qualitative relationships the full-scale benches assert at
paper scale.
"""

import numpy as np
import pytest

from repro.heuristics import (
    FixedFactorHeuristic,
    ORCHeuristic,
    OracleHeuristic,
    train_nn_heuristic,
    train_svm_heuristic,
)
from repro.ml import (
    accuracy,
    loocv_nn,
    loocv_tuned_svm,
    mean_cost_ratio,
    rank_distribution,
    selected_feature_union,
)
from repro.pipeline import EvaluationConfig, evaluate_speedups


@pytest.fixture(scope="module")
def selected(mini_dataset):
    return selected_feature_union(
        mini_dataset.X, mini_dataset.labels, subsample=150
    )


class TestLearnability:
    def test_classifiers_beat_majority_class(self, mini_dataset, selected):
        majority = np.bincount(mini_dataset.labels, minlength=9)[1:].max() / len(
            mini_dataset
        )
        nn_acc = accuracy(mini_dataset, loocv_nn(mini_dataset, selected))
        svm_acc = accuracy(mini_dataset, loocv_tuned_svm(mini_dataset, selected))
        assert nn_acc > majority + 0.05
        assert svm_acc > majority + 0.05

    def test_classifiers_beat_orc(self, mini_suite, mini_dataset, selected):
        loops = {l.name: l for b in mini_suite.benchmarks for l in b.loops}
        orc = ORCHeuristic(swp=False)
        orc_predictions = np.array(
            [orc.predict_loop(loops[str(n)]) for n in mini_dataset.loop_names]
        )
        orc_acc = accuracy(mini_dataset, orc_predictions)
        nn_acc = accuracy(mini_dataset, loocv_nn(mini_dataset, selected))
        assert nn_acc > orc_acc

    def test_learned_cost_close_to_optimal(self, mini_dataset, selected):
        predictions = loocv_nn(mini_dataset, selected)
        assert mean_cost_ratio(mini_dataset, predictions) < 1.25

    def test_rank_distribution_mass_near_top(self, mini_dataset, selected):
        predictions = loocv_tuned_svm(mini_dataset, selected)
        distribution = rank_distribution(mini_dataset, predictions)
        assert distribution.near_optimal > 0.5


class TestDeployment:
    def test_trained_heuristics_agree_with_their_classifier(
        self, mini_suite, mini_dataset, selected
    ):
        heuristic = train_nn_heuristic(mini_dataset, feature_indices=selected)
        loops = {l.name: l for b in mini_suite.benchmarks for l in b.loops}
        batch = heuristic.predict_features(mini_dataset.X[:10])
        singles = [
            heuristic.predict_loop(loops[str(mini_dataset.loop_names[i])])
            for i in range(10)
        ]
        np.testing.assert_array_equal(batch, singles)

    def test_speedup_pipeline_orders_heuristics(
        self, mini_suite, mini_table, mini_dataset, selected
    ):
        names = tuple(b.name for b in mini_suite.benchmarks)
        report = evaluate_speedups(
            mini_suite,
            mini_table,
            mini_dataset,
            EvaluationConfig(swp=False, benchmarks=names, feature_indices=selected),
        )
        oracle_mean = report.mean_improvement("oracle")
        svm_mean = report.mean_improvement("svm")
        # The oracle never trails a learner by more than measurement noise.
        assert oracle_mean >= svm_mean - 0.01

    def test_fixed_factor_strawman_loses_to_oracle(self, mini_dataset):
        oracle = OracleHeuristic.from_dataset(mini_dataset)
        always8 = np.full(len(mini_dataset), 8)
        oracle_pred = np.array(
            [oracle.measured_best[str(n)] for n in mini_dataset.loop_names]
        )
        assert mean_cost_ratio(mini_dataset, oracle_pred) <= mean_cost_ratio(
            mini_dataset, always8
        )

    def test_svm_heuristic_handles_novel_kernels(self, mini_dataset, selected):
        from repro.workloads.kernels import KERNELS

        heuristic = train_svm_heuristic(mini_dataset, feature_indices=selected)
        for name in ("daxpy", "dot", "search", "gather", "cmul"):
            factor = heuristic.predict_loop(KERNELS[name]())
            assert 1 <= factor <= 8
