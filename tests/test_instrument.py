"""Unit tests for the instrumentation library and raw-data export."""

import numpy as np
import pytest

from repro.instrument import (
    LoopRecord,
    LoopTimerBank,
    measure_benchmark,
    measure_loop,
    read_records,
    write_records,
)
from repro.simulate import CostModel, NOISELESS, NoiseModel
from repro.workloads.kernels import daxpy


class TestTimerBank:
    def test_accumulates_per_loop(self):
        bank = LoopTimerBank()
        bank.record("a", 100.0)
        bank.record("a", 50.0)
        bank.record("b", 7.0)
        assert bank.report() == {"a": 150.0, "b": 7.0}

    def test_report_is_a_copy(self):
        bank = LoopTimerBank()
        bank.record("a", 1.0)
        report = bank.report()
        report["a"] = 999.0
        assert bank.report()["a"] == 1.0


class TestMeasurement:
    def test_noiseless_measurement_equals_cost_model(self):
        loop = daxpy(trip=256, entries=8)
        model = CostModel()
        rng = np.random.default_rng(0)
        measurement = measure_loop(loop, 2, model, rng, noise=NOISELESS, n_runs=5)
        assert measurement.median_cycles == model.loop_cost(loop, 2).total_cycles
        assert measurement.n_runs == 5

    def test_median_of_thirty_default(self):
        loop = daxpy(trip=256, entries=8)
        rng = np.random.default_rng(1)
        measurement = measure_loop(loop, 1, CostModel(), rng)
        assert measurement.n_runs == 30

    def test_benchmark_measurement_covers_all_loops(self, mini_suite, mini_config):
        bench = mini_suite.benchmarks[0]
        rng = np.random.default_rng(2)
        results = measure_benchmark(
            bench, 4, CostModel(), rng, noise=mini_config.noise, n_runs=3
        )
        assert set(results) == {loop.name for loop in bench.loops}

    def test_noise_does_not_bias_the_median_much(self):
        loop = daxpy(trip=512, entries=16)
        model = CostModel()
        truth = model.loop_cost(loop, 1).total_cycles
        noise = NoiseModel(sigma=0.02, outlier_rate=0.02, counter_overhead=0)
        rng = np.random.default_rng(3)
        medians = [
            measure_loop(loop, 1, model, rng, noise=noise).median_cycles
            for _ in range(10)
        ]
        assert abs(np.mean(medians) / truth - 1.0) < 0.02


class TestRawDataRelease:
    def _records(self, dataset, limit=10):
        return [
            LoopRecord(
                loop_name=str(dataset.loop_names[i]),
                benchmark=str(dataset.benchmarks[i]),
                suite=str(dataset.suites[i]),
                language=str(dataset.languages[i]),
                features=tuple(float(v) for v in dataset.X[i]),
                median_cycles=tuple(float(v) for v in dataset.cycles[i]),
            )
            for i in range(min(limit, len(dataset)))
        ]

    def test_round_trip(self, mini_dataset, tmp_path):
        records = self._records(mini_dataset)
        path = tmp_path / "loops.jsonl"
        count = write_records(records, path)
        loaded = read_records(path)
        assert count == len(loaded) == len(records)
        for original, restored in zip(records, loaded):
            assert restored == original

    def test_best_factor_property(self, mini_dataset, tmp_path):
        records = self._records(mini_dataset, limit=5)
        for i, record in enumerate(records):
            assert record.best_factor == int(mini_dataset.labels[i])

    def test_header_mismatch_detected(self, mini_dataset, tmp_path):
        path = tmp_path / "loops.jsonl"
        write_records(self._records(mini_dataset, 2), path)
        content = path.read_text().splitlines()
        content[0] = content[0].replace("nest_level", "bogus_feature")
        path.write_text("\n".join(content) + "\n")
        with pytest.raises(ValueError, match="catalog mismatch"):
            read_records(path)

    def test_version_mismatch_detected(self, mini_dataset, tmp_path):
        path = tmp_path / "loops.jsonl"
        write_records(self._records(mini_dataset, 2), path)
        content = path.read_text().splitlines()
        content[0] = content[0].replace('"format_version": 1', '"format_version": 99')
        path.write_text("\n".join(content) + "\n")
        with pytest.raises(ValueError, match="unsupported"):
            read_records(path)
