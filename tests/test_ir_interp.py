"""Unit tests for the reference interpreter."""

import numpy as np
import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.interp import InterpreterError, initial_state, run_loop
from repro.ir.loop import TripInfo
from repro.ir.types import CmpOp, DType, Opcode


def _single_op_loop(op, srcs, dtype=DType.I64):
    builder = LoopBuilder("t", TripInfo(runtime=1))
    builder.intop(op, *srcs) if dtype is DType.I64 else builder.fp(op, *srcs)
    dest = builder._body[-1].dest
    builder.store(dest, "out")
    return builder.build(), dest


class TestArithmetic:
    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            (Opcode.ADD, 3, 4, 7),
            (Opcode.SUB, 3, 4, -1),
            (Opcode.MUL, 3, 4, 12),
            (Opcode.DIV, 7, 2, 3),
            (Opcode.DIV, -7, 2, -3),  # truncated, not floored
            (Opcode.DIV, 7, 0, 0),  # totalised division
            (Opcode.REM, 7, 2, 1),
            (Opcode.REM, 7, 0, 0),
            (Opcode.SHL, 3, 2, 12),
            (Opcode.SHR, 12, 2, 3),
            (Opcode.AND, 0b1100, 0b1010, 0b1000),
            (Opcode.OR, 0b1100, 0b1010, 0b1110),
            (Opcode.XOR, 0b1100, 0b1010, 0b0110),
        ],
    )
    def test_integer_ops(self, op, a, b, expected):
        builder = LoopBuilder("t", TripInfo(runtime=1))
        result = builder.intop(op, builder.iconst(a), builder.iconst(b))
        builder.store(result, "out")
        loop = builder.build()
        state = initial_state(loop)
        run_loop(loop, state)
        assert state.arrays["out"][0] == expected

    @pytest.mark.parametrize(
        "op, a, b, expected",
        [
            (Opcode.FADD, 1.5, 2.25, 3.75),
            (Opcode.FSUB, 1.5, 2.25, -0.75),
            (Opcode.FMUL, 1.5, 2.0, 3.0),
            (Opcode.FDIV, 3.0, 2.0, 1.5),
            (Opcode.FDIV, 3.0, 0.0, 0.0),  # totalised
        ],
    )
    def test_fp_ops(self, op, a, b, expected):
        builder = LoopBuilder("t", TripInfo(runtime=1))
        result = builder.fp(op, builder.fconst(a), builder.fconst(b))
        builder.store(result, "out")
        loop = builder.build()
        state = initial_state(loop)
        run_loop(loop, state)
        assert state.arrays["out"][0] == pytest.approx(expected)

    def test_fma(self):
        builder = LoopBuilder("t", TripInfo(runtime=1))
        result = builder.fp(Opcode.FMA, builder.fconst(2.0), builder.fconst(3.0), builder.fconst(1.0))
        builder.store(result, "out")
        loop = builder.build()
        state = initial_state(loop)
        run_loop(loop, state)
        assert state.arrays["out"][0] == 7.0

    def test_shift_amount_clamped(self):
        builder = LoopBuilder("t", TripInfo(runtime=1))
        result = builder.intop(Opcode.SHL, builder.iconst(1), builder.iconst(200))
        builder.store(result, "out")
        loop = builder.build()
        state = initial_state(loop)
        run_loop(loop, state)
        assert state.arrays["out"][0] == float(1 << 63)


class TestMemorySemantics:
    def test_affine_load_store_round_trip(self, daxpy_loop):
        state = initial_state(daxpy_loop, seed=3)
        x = state.arrays["x"].copy()
        y = state.arrays["y"].copy()
        run_loop(daxpy_loop, state)
        trips = daxpy_loop.trip.runtime
        expected = y.copy()
        expected[:trips] = x[:trips] * 2.5 + y[:trips]
        np.testing.assert_allclose(state.arrays["y"], expected)

    def test_indirect_index_wraps(self):
        builder = LoopBuilder("t", TripInfo(runtime=1))
        builder.array("data", 10)
        big = builder.mov(builder.iconst(1007), dtype=DType.I64)
        value = builder.load_indirect("data", big)
        builder.store(value, "out")
        loop = builder.build()
        state = initial_state(loop)
        run_loop(loop, state)
        assert state.arrays["out"][0] == state.arrays["data"][1007 % 10]

    def test_out_of_bounds_affine_access_raises(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        builder.store(builder.fconst(1.0), "out")
        loop = builder.build()
        loop = loop.with_body(loop.body, arrays={"out": 2})  # shrink the array
        state = initial_state(loop)
        with pytest.raises(InterpreterError, match="out of bounds"):
            run_loop(loop, state)


class TestControlSemantics:
    def test_early_exit_stops_iteration(self):
        builder = LoopBuilder("t", TripInfo(runtime=10, counted=False))
        value = builder.load("a")
        hit = builder.cmp(CmpOp.GT, value, builder.fconst(100.0), fp=True)
        builder.exit_if(hit)
        counter = builder.carried(DType.F64, init=0.0)
        builder.fp(Opcode.FADD, counter, builder.fconst(1.0), dest=counter)
        loop = builder.build()
        state = initial_state(loop, carried_inits=builder.carried_inits)
        state.arrays["a"][:] = 0.0
        state.arrays["a"][4] = 500.0  # sentinel at iteration 4
        result = run_loop(loop, state)
        assert result.exited_early
        assert result.iterations == 5
        assert state.regs[counter] == 4.0  # increment skipped on exit iteration

    def test_while_loop_without_exit_raises_in_strict_mode(self):
        builder = LoopBuilder("t", TripInfo(runtime=6, counted=False))
        value = builder.load("a")
        hit = builder.cmp(CmpOp.GT, value, builder.fconst(1e9), fp=True)
        builder.exit_if(hit)
        builder.store(value, "out")
        loop = builder.build()
        state = initial_state(loop)
        with pytest.raises(InterpreterError, match="without taking its exit"):
            run_loop(loop, state, strict_exit=True)

    def test_predicated_store_skipped_when_false(self):
        builder = LoopBuilder("t", TripInfo(runtime=4))
        value = builder.load("a")
        above = builder.cmp(CmpOp.GT, value, builder.fconst(1e9), fp=True)
        builder.store(builder.fconst(7.0), "out", pred=above)
        loop = builder.build()
        state = initial_state(loop, seed=5)
        before = state.arrays["out"].copy()
        run_loop(loop, state)
        np.testing.assert_array_equal(state.arrays["out"], before)

    def test_select_chooses_by_predicate(self):
        builder = LoopBuilder("t", TripInfo(runtime=1))
        pred = builder.cmp(CmpOp.LT, builder.iconst(1), builder.iconst(2))
        chosen = builder.select(pred, builder.fconst(10.0), builder.fconst(20.0))
        builder.store(chosen, "out")
        loop = builder.build()
        state = initial_state(loop)
        run_loop(loop, state)
        assert state.arrays["out"][0] == 10.0


class TestCarriedValues:
    def test_reduction_accumulates(self, reduction_loop):
        loop, acc, inits = reduction_loop
        state = initial_state(loop, seed=11, carried_inits=inits)
        values = state.arrays["a"].copy()
        run_loop(loop, state)
        assert state.regs[acc] == pytest.approx(values[: loop.trip.runtime].sum())

    def test_undefined_register_read_raises(self):
        from repro.ir.instruction import store as mk_store
        from repro.ir.loop import Loop
        from repro.ir.values import MemRef, Reg

        ghost = Reg("ghost", DType.F64)
        loop = Loop(
            name="t",
            body=(mk_store(ghost, MemRef("out")),),
            trip=TripInfo(runtime=1),
            arrays={"out": 8},
        )
        state = initial_state(loop)
        state.regs.pop(ghost, None)
        with pytest.raises(InterpreterError, match="undefined register"):
            run_loop(loop, state)
