"""Unit tests for output-code and pairwise multi-class wrappers."""

import numpy as np
import pytest

from repro.ml.multiclass import (
    OutputCodeClassifier,
    exhaustive_code,
    identity_code,
    random_code,
)
from repro.ml.pairwise import PairwiseLSSVM, make_tuned_pairwise_svm


def _four_clusters(seed=0, n_per=30):
    rng = np.random.default_rng(seed)
    centers = {1: (0, 0), 2: (6, 0), 4: (0, 6), 8: (6, 6)}
    X, y = [], []
    for label, center in centers.items():
        X.append(rng.normal(loc=center, scale=0.5, size=(n_per, 2)))
        y.extend([label] * n_per)
    return np.vstack(X), np.array(y)


class TestCodeMatrices:
    def test_identity_code_shape(self):
        code = identity_code(8)
        assert code.shape == (8, 8)
        assert (code.sum(axis=1) == 1).all()

    def test_exhaustive_code_properties(self):
        code = exhaustive_code(5)
        assert code.shape == (5, 2**4 - 1)
        # Columns are distinct, non-constant splits.
        columns = {tuple(code[:, b]) for b in range(code.shape[1])}
        assert len(columns) == code.shape[1]
        assert all(0 < code[:, b].sum() < 5 for b in range(code.shape[1]))
        # Rows (codewords) are distinct.
        assert len({tuple(row) for row in code}) == 5

    def test_exhaustive_code_rejects_large_class_counts(self):
        with pytest.raises(ValueError):
            exhaustive_code(12)

    def test_random_code_valid(self):
        code = random_code(8, 15, seed=3)
        assert code.shape == (8, 15)
        assert len({tuple(row) for row in code}) == 8
        assert all(0 < code[:, b].sum() < 8 for b in range(15))


class TestOutputCodeClassifier:
    @pytest.mark.parametrize("decode", ["hamming", "margin"])
    def test_clusters_classified(self, decode):
        X, y = _four_clusters()
        model = OutputCodeClassifier(
            classes=(1, 2, 4, 8), C=10.0, sigma=0.4, decode=decode
        ).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.97

    def test_exhaustive_code_also_works(self):
        X, y = _four_clusters(seed=2)
        model = OutputCodeClassifier(
            classes=(1, 2, 4, 8), code=exhaustive_code(4), C=10.0, sigma=0.4
        ).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.97

    def test_labels_outside_classes_rejected(self):
        X, y = _four_clusters()
        model = OutputCodeClassifier(classes=(1, 2))
        with pytest.raises(ValueError, match="outside"):
            model.fit(X, y)

    def test_mismatched_code_rejected(self):
        with pytest.raises(ValueError, match="one row per class"):
            OutputCodeClassifier(classes=(1, 2, 3), code=identity_code(8))

    def test_unknown_decode_rejected(self):
        with pytest.raises(ValueError):
            OutputCodeClassifier(decode="bayes")

    def test_loocv_predictions_reasonable(self):
        X, y = _four_clusters(n_per=20)
        model = OutputCodeClassifier(classes=(1, 2, 4, 8), C=10.0, sigma=0.4).fit(X, y)
        assert (model.loocv_predictions() == y).mean() > 0.9


class TestPairwiseLSSVM:
    def test_clusters_classified(self):
        X, y = _four_clusters(seed=5)
        model = PairwiseLSSVM(classes=(1, 2, 4, 8), C=10.0, sigma=0.4).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.97

    def test_absent_classes_are_skipped(self):
        X, y = _four_clusters(seed=6)
        model = PairwiseLSSVM(classes=tuple(range(1, 9)), C=10.0, sigma=0.4).fit(X, y)
        assert len(model._machines) == 6  # C(4, 2) pairs actually present
        assert set(model.predict(X)) <= {1, 2, 4, 8}

    def test_loocv_matches_naive_refit(self):
        X, y = _four_clusters(n_per=10, seed=7)
        params = dict(classes=(1, 2, 4, 8), C=5.0, sigma=0.5)
        model = PairwiseLSSVM(**params).fit(X, y)
        fast = model.loocv_predictions()
        naive = np.empty_like(fast)
        for i in range(len(y)):
            mask = np.ones(len(y), dtype=bool)
            mask[i] = False
            refit = PairwiseLSSVM(**params).fit(X[mask], y[mask])
            naive[i] = refit.predict(X[i : i + 1])[0]
        # Normalisation differs microscopically between fast and naive
        # (the held-out row no longer shapes min/max), so demand near-total
        # rather than bitwise agreement.
        assert (fast == naive).mean() >= 0.95

    def test_tuned_factory_configuration(self):
        from repro.ml.svm import TUNED_SVM_PARAMS

        model = make_tuned_pairwise_svm()
        assert model.kernel == TUNED_SVM_PARAMS["kernel"]
        assert model.C == TUNED_SVM_PARAMS["C"]
        assert model.sigma == TUNED_SVM_PARAMS["sigma"]

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            PairwiseLSSVM().predict(np.zeros((1, 2)))
