"""Unit tests for the cycle simulator: caches, noise, cost model."""

import numpy as np
import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.loop import TripInfo
from repro.ir.types import DType, Opcode
from repro.machine import ITANIUM2
from repro.simulate import CostModel, NoiseModel
from repro.simulate.cache import (
    bandwidth_floor_per_iteration,
    effective_load_latency,
    icache_entry_penalty,
)
from repro.workloads import kernels


class TestDataCacheModel:
    def _streaming_loop(self, trip, stride=1):
        builder = LoopBuilder("t", TripInfo(runtime=trip))
        value = builder.load("a", stride=stride)
        builder.store(value, "out", stride=1)
        return builder.build()

    def test_small_footprint_pays_base_latency(self):
        loop = self._streaming_loop(trip=64)
        assert effective_load_latency(loop, ITANIUM2) == ITANIUM2.load_latency

    def test_l2_footprint_raises_latency(self):
        loop = self._streaming_loop(trip=8192)  # ~64 KiB x 2 arrays
        assert effective_load_latency(loop, ITANIUM2) > ITANIUM2.load_latency

    def test_larger_strides_miss_more(self):
        unit = self._streaming_loop(trip=8192, stride=1)
        strided = self._streaming_loop(trip=8192, stride=8)
        assert effective_load_latency(strided, ITANIUM2) >= effective_load_latency(
            unit, ITANIUM2
        )

    def test_no_loads_means_base_latency(self):
        builder = LoopBuilder("t", TripInfo(runtime=64))
        builder.store(builder.fconst(1.0), "out")
        assert effective_load_latency(builder.build(), ITANIUM2) == ITANIUM2.load_latency

    def test_bandwidth_floor_zero_when_l1_resident(self):
        loop = self._streaming_loop(trip=64)
        assert bandwidth_floor_per_iteration(loop, ITANIUM2) == 0.0

    def test_bandwidth_floor_grows_with_footprint(self):
        l2 = bandwidth_floor_per_iteration(self._streaming_loop(trip=8192), ITANIUM2)
        mem = bandwidth_floor_per_iteration(self._streaming_loop(trip=1 << 19), ITANIUM2)
        assert 0.0 < l2 < mem

    def test_invariant_scalar_accesses_are_free(self):
        builder = LoopBuilder("t", TripInfo(runtime=1 << 19))
        value = builder.load("scalar", stride=0)
        builder.store(value, "out", stride=1)
        loop = builder.build()
        floor_with = bandwidth_floor_per_iteration(loop, ITANIUM2)
        # Only the streaming store contributes.
        assert floor_with == pytest.approx(8.0 / ITANIUM2.dcache.memory_bandwidth)


class TestICacheModel:
    def test_small_code_is_free(self):
        assert icache_entry_penalty(30, ITANIUM2) == 0

    def test_overflow_charged_per_line(self):
        budget_instrs = int(ITANIUM2.icache.loop_budget_bytes / ITANIUM2.bytes_per_instr)
        penalty = icache_entry_penalty(budget_instrs * 3, ITANIUM2)
        assert penalty > 0
        assert penalty % ITANIUM2.icache.miss_penalty == 0

    def test_penalty_monotone_in_code_size(self):
        sizes = [50, 200, 400, 800]
        penalties = [icache_entry_penalty(s, ITANIUM2) for s in sizes]
        assert penalties == sorted(penalties)


class TestNoiseModel:
    def test_noiseless_model_is_exact(self):
        from repro.simulate import NOISELESS

        rng = np.random.default_rng(0)
        assert NOISELESS.median_measurement(12345.0, 10, rng) == 12345.0

    def test_counter_overhead_scales_with_entries(self):
        noise = NoiseModel(sigma=0.0, outlier_rate=0.0, counter_overhead=9)
        rng = np.random.default_rng(0)
        assert noise.median_measurement(1000.0, 100, rng) == 1000.0 + 900.0

    def test_median_tames_outliers(self):
        noise = NoiseModel(sigma=0.0, outlier_rate=0.3, outlier_scale=0.5, counter_overhead=0)
        rng = np.random.default_rng(1)
        median = noise.median_measurement(1000.0, 1, rng, n=31)
        assert median <= 1000.0 * 1.25

    def test_samples_reproducible_under_seed(self):
        noise = NoiseModel()
        a = noise.samples(5000.0, 4, np.random.default_rng(7), n=10)
        b = noise.samples(5000.0, 4, np.random.default_rng(7), n=10)
        np.testing.assert_array_equal(a, b)

    def test_sigma_widens_spread(self):
        rng = np.random.default_rng(3)
        tight = NoiseModel(sigma=0.001, outlier_rate=0.0).samples(1e6, 1, rng, n=200)
        rng = np.random.default_rng(3)
        wide = NoiseModel(sigma=0.1, outlier_rate=0.0).samples(1e6, 1, rng, n=200)
        assert wide.std() > tight.std() * 10


class TestCostModel:
    def test_total_scales_with_entry_count(self):
        few = kernels.daxpy(trip=256, entries=2)
        many = kernels.daxpy(trip=256, entries=20, name="kernel/daxpy10")
        model = CostModel()
        cost_few = model.loop_cost(few, 1).total_cycles
        cost_many = model.loop_cost(many, 1).total_cycles
        assert cost_many == pytest.approx(10 * cost_few)

    def test_unrolling_helps_a_parallel_loop(self):
        loop = kernels.daxpy(trip=512, entries=4)
        sweep = CostModel().sweep(loop)
        assert sweep[4].total_cycles < sweep[1].total_cycles

    def test_unrolling_cannot_beat_a_pointer_chase(self):
        builder = LoopBuilder("t", TripInfo(runtime=256), entry_count=4)
        builder.array("next", 64)
        pointer = builder.carried(DType.I64, init=0)
        raw = builder.load_indirect("next", pointer, dtype=DType.I64)
        builder.intop(Opcode.SXT, raw, dest=pointer)
        loop = builder.build()
        sweep = CostModel().sweep(loop)
        # Per-iteration cost is recurrence-bound: bigger factors never win
        # meaningfully, and code growth must not make them better.
        assert sweep[8].total_cycles >= sweep[1].total_cycles * 0.98

    def test_swp_is_faster_than_acyclic_for_clean_loops(self):
        loop = kernels.daxpy(trip=512, entries=4)
        no_swp = CostModel(swp=False).loop_cost(loop, 1)
        with_swp = CostModel(swp=True).loop_cost(loop, 1)
        assert with_swp.swp_used
        assert with_swp.total_cycles < no_swp.total_cycles

    def test_swp_refuses_early_exit_loops(self):
        loop = kernels.sentinel_search(trip=64, entries=8)
        cost = CostModel(swp=True).loop_cost(loop, 2)
        assert not cost.swp_used

    def test_full_unroll_of_tiny_known_trip(self):
        loop = kernels.vector_scale(trip=4, entries=5000, known=True)
        sweep = CostModel().sweep(loop)
        # Factors >= trip collapse to the same full unroll.
        assert sweep[4].total_cycles == sweep[8].total_cycles

    def test_nonpow2_precondition_surcharge(self):
        loop = kernels.daxpy(trip=1024, entries=16, known=False)
        model = CostModel()
        c3 = model.loop_cost(loop, 3)
        c4 = model.loop_cost(loop, 4)
        assert c3.precondition_penalty > c4.precondition_penalty

    def test_early_exit_overshoot_grows_with_factor(self):
        loop = kernels.sentinel_search(trip=48, entries=100)
        model = CostModel()
        sweep = model.sweep(loop)
        # Overshoot + per-copy exits: u=8 must not beat u=2 on this trip.
        assert sweep[8].total_cycles > sweep[2].total_cycles * 0.9
