"""The multi-process serve tier: SO_REUSEPORT sharding, the balancer
fallback, supervisor restarts, aggregated healthz, the adaptive batch
window, and the served-request log.

The wire-protocol tests are *inherited* from ``tests.test_daemon`` — the
same test bodies that validate the single-process daemon run here against
a live 2-worker cluster, once in ``reuseport`` mode (kernel connection
sharding) and once in ``balancer`` mode (the asyncio front-end forced via
``REPRO_NO_REUSEPORT=1``).  Cluster spin-up costs real fork/exec time, so
the protocol suites share one module-scoped cluster per mode.
"""

import os
import signal
import threading
import time
from contextlib import contextmanager

import pytest

from repro.registry import ArtifactStore, train_model_artifact
from repro.serve import (
    NO_REUSEPORT_ENV,
    BackgroundDaemon,
    ClusterConfig,
    DaemonConfig,
    RequestLog,
    ServeCluster,
    ServeDaemon,
    WindowController,
    WorkerStartupError,
    features_checksum,
    merge_worker_health,
    probe_healthz,
    read_request_log,
    reuseport_available,
)

from tests import test_daemon as daemon_tests
from tests.test_daemon import _Client, _features
from tests.test_model_artifacts import synthetic_dataset


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset()


@pytest.fixture(scope="module")
def artifact(dataset):
    return train_model_artifact(dataset)


@pytest.fixture(scope="module")
def model_dir(tmp_path_factory, artifact):
    root = tmp_path_factory.mktemp("cluster-store")
    store = ArtifactStore(root)
    path = store.store("base", artifact)
    return root, path


@pytest.fixture
def store(model_dir):
    # The inherited wire tests take a ``store`` fixture; the cluster
    # harness ignores it (the cluster is already serving the artifact).
    root, _ = model_dir
    return ArtifactStore(root)


def _start_cluster(model_dir, config, force_balancer=False):
    """Start a cluster, forcing balancer mode via the env override for
    exactly the duration of the mode decision."""
    root, path = model_dir
    cluster = ServeCluster(path, config, store_root=root)
    previous = os.environ.get(NO_REUSEPORT_ENV)
    if force_balancer:
        os.environ[NO_REUSEPORT_ENV] = "1"
    try:
        cluster.start()
    finally:
        if force_balancer:
            if previous is None:
                os.environ.pop(NO_REUSEPORT_ENV, None)
            else:
                os.environ[NO_REUSEPORT_ENV] = previous
    return cluster


@pytest.fixture(scope="module")
def shared_clusters(model_dir):
    """Lazily-started module clusters, one per sharding mode."""
    started = {}

    def get(mode):
        if mode == "reuseport" and not reuseport_available():
            pytest.skip("SO_REUSEPORT unavailable on this platform")
        if mode not in started:
            config = ClusterConfig(
                workers=2,
                daemon=DaemonConfig(batch_window_ms=2.0, replicas=2),
            )
            cluster = _start_cluster(
                model_dir, config, force_balancer=mode == "balancer"
            )
            assert cluster.mode == mode
            started[mode] = cluster
        return started[mode]

    yield get
    for cluster in started.values():
        cluster.stop()


class _ClusterCounters:
    """``gateway.counters``-shaped view over aggregated cluster health,
    so inherited assertions like ``daemon.gateway.counters.balanced()``
    check the merged per-worker identity."""

    def __init__(self, cluster):
        self._cluster = cluster

    def balanced(self) -> bool:
        return bool(self._cluster.healthz()["balanced"])


class _ClusterGateway:
    def __init__(self, cluster):
        self.counters = _ClusterCounters(cluster)


class _ClusterServer:
    """What the inherited tests see as "the daemon": the cluster's public
    address plus an aggregated counters shim."""

    def __init__(self, cluster):
        self.address = cluster.address
        self.gateway = _ClusterGateway(cluster)


class _ClusterHarness(daemon_tests.DaemonHarness):
    mode = None

    @pytest.fixture(autouse=True)
    def _attach_cluster(self, shared_clusters):
        self._cluster = shared_clusters(self.mode)

    @contextmanager
    def _run(self, store, config=None, **kwargs):
        # Config knobs are ignored: the shared cluster serves with its own
        # settings.  The inherited tests only assert wire behavior.
        yield _ClusterServer(self._cluster)


class TestReuseportProtocol(_ClusterHarness, daemon_tests.TestProtocol):
    """The daemon protocol suite against kernel-sharded workers."""

    mode = "reuseport"


class TestReuseportFamilies(_ClusterHarness, daemon_tests.TestClassifierFamilies):
    mode = "reuseport"


class TestBalancerProtocol(_ClusterHarness, daemon_tests.TestProtocol):
    """The same suite through the asyncio front-end balancer, forced via
    ``REPRO_NO_REUSEPORT=1`` (the satellite's fallback coverage)."""

    mode = "balancer"


class TestBalancerFamilies(_ClusterHarness, daemon_tests.TestClassifierFamilies):
    mode = "balancer"


class TestClusterHealth:
    @pytest.mark.parametrize("mode", ["reuseport", "balancer"])
    def test_connections_shard_across_workers(self, shared_clusters, mode, dataset):
        cluster = shared_clusters(mode)
        seen = set()
        deadline = time.time() + 30.0
        while len(seen) < 2 and time.time() < deadline:
            client = _Client(cluster.address)
            health = client.ask({"healthz": True})["healthz"]
            seen.add((health["worker"], health["pid"]))
            client.close()
        assert {worker for worker, _ in seen} == {0, 1}
        assert len({pid for _, pid in seen}) == 2

    @pytest.mark.parametrize("mode", ["reuseport", "balancer"])
    def test_wire_aggregate_healthz_merges_all_workers(
        self, shared_clusters, mode, dataset
    ):
        cluster = shared_clusters(mode)
        client = _Client(cluster.address)
        client.ask({"id": 0, "features": _features(dataset)})
        merged = client.ask({"healthz": True, "aggregate": True, "id": "agg"})
        client.close()
        assert merged["ok"] is True
        assert merged["id"] == "agg"
        health = merged["healthz"]
        assert health["aggregate"] is True
        assert health["cluster_size"] == 2
        assert health["workers_alive"] == 2
        assert health["balanced"] is True
        assert {w["worker"] for w in health["workers"]} == {0, 1}
        assert health["gateway"]["admitted"] >= 1

    def test_supervisor_healthz_matches_wire_aggregate(self, shared_clusters):
        cluster = shared_clusters("reuseport")
        supervisor = cluster.healthz()
        assert supervisor["aggregate"] is True
        assert supervisor["cluster_size"] == 2
        assert supervisor["workers_alive"] == 2
        assert supervisor["mode"] == "reuseport"
        assert "restarts" in supervisor
        assert "worker(s)" in cluster.summary()

    def test_worker_healthz_carries_identity(self, shared_clusters):
        cluster = shared_clusters("reuseport")
        handle = cluster.workers[0]
        health = probe_healthz(*handle.control_address)
        assert health["worker"] == handle.worker_id
        assert health["pid"] == handle.pid
        assert health["cluster_peers"] == 2


class TestSupervisorRestart:
    @pytest.mark.parametrize("force_balancer", [False, True])
    def test_kill_nine_survivors_keep_answering(
        self, model_dir, dataset, force_balancer
    ):
        """Chaos scenario 6's in-suite twin: kill -9 one worker; the
        survivor keeps answering through the shared port while the
        supervisor respawns the dead slot, and the healed cluster's
        aggregated counters balance."""
        if not force_balancer and not reuseport_available():
            pytest.skip("SO_REUSEPORT unavailable on this platform")
        # A 1s backoff leaves a real outage window: the survivors answer
        # while the dead slot is still down, *before* the replacement's
        # spawn (imports, artifact load) starts competing for the CPU.
        config = ClusterConfig(
            workers=2,
            restart_backoff_s=1.0,
            daemon=DaemonConfig(batch_window_ms=1.0),
        )
        cluster = _start_cluster(model_dir, config, force_balancer=force_balancer)
        events = []
        cluster.on_event = events.append
        try:
            victim = cluster.workers[0]
            os.kill(victim.pid, signal.SIGKILL)
            answered = 0
            deadline = time.time() + 30.0
            while answered < 5 and time.time() < deadline:
                try:
                    client = _Client(cluster.address)
                    # Keep one stalled ask from eating the whole deadline.
                    client.sock.settimeout(5)
                    response = client.ask({"id": answered, "features": _features(dataset)})
                    client.close()
                    if response.get("ok"):
                        answered += 1
                except (OSError, ValueError):
                    # Kernel-sharded connections can land on the corpse
                    # until the supervisor reaps it; retry is the contract.
                    continue
            assert answered >= 5, "survivor stopped answering during the outage"
            deadline = time.time() + 30.0
            while cluster.restarts < 1 and time.time() < deadline:
                time.sleep(0.02)
            assert cluster.restarts >= 1
            deadline = time.time() + 30.0
            while time.time() < deadline:
                health = cluster.healthz()
                if health["workers_alive"] == 2:
                    break
                time.sleep(0.05)
            assert health["workers_alive"] == 2
            assert health["balanced"] is True
            replacement = cluster.workers[0]
            assert replacement.worker_id == victim.worker_id
            assert replacement.pid != victim.pid
            assert any("died" in event for event in events)
            assert any("restarted" in event for event in events)
            # The peer rebroadcast reached the survivors: a wire-level
            # aggregate probe sees both workers again.
            client = _Client(cluster.address)
            merged = client.ask({"healthz": True, "aggregate": True})["healthz"]
            client.close()
            assert merged["workers_alive"] == 2
        finally:
            cluster.stop()

    def test_worker_startup_failure_is_reported(self, tmp_path):
        with pytest.raises((WorkerStartupError, FileNotFoundError)):
            cluster = ServeCluster(
                tmp_path / "nope.rma",
                ClusterConfig(workers=1, ready_timeout_s=60.0),
            )
            cluster.start()
            cluster.stop()

    def test_cluster_config_validation(self):
        with pytest.raises(ValueError, match="workers"):
            ClusterConfig(workers=0)
        with pytest.raises(ValueError, match="restart_backoff_s"):
            ClusterConfig(restart_backoff_s=0.0)


class TestModeSelection:
    def test_env_override_forces_balancer(self, model_dir, monkeypatch):
        if not reuseport_available():
            pytest.skip("SO_REUSEPORT unavailable on this platform")
        monkeypatch.setenv(NO_REUSEPORT_ENV, "1")
        assert reuseport_available() is False
        cluster = ServeCluster(
            model_dir[1],
            ClusterConfig(workers=1),
            store_root=model_dir[0],
        )
        with cluster:
            assert cluster.mode == "balancer"
            assert cluster.address is not None

    def test_env_override_zero_means_off(self, monkeypatch):
        monkeypatch.delenv(NO_REUSEPORT_ENV, raising=False)
        baseline = reuseport_available()
        monkeypatch.setenv(NO_REUSEPORT_ENV, "0")
        assert reuseport_available() == baseline

    def test_run_serves_until_sigterm(self, model_dir, dataset):
        """The CLI path: ``run()`` announces readiness, serves, drains on
        SIGTERM, and restores the previous signal handlers."""
        cluster = ServeCluster(
            model_dir[1],
            ClusterConfig(workers=1),
            store_root=model_dir[0],
        )
        events = []
        cluster.on_event = events.append
        before_term = signal.getsignal(signal.SIGTERM)

        probe_ok = []

        def probe_then_kill():
            # ``address`` appears as soon as the port is pinned, before the
            # worker listens — so the probe retries until a worker answers.
            deadline = time.time() + 60.0
            while time.time() < deadline:
                if cluster.address is None:
                    time.sleep(0.02)
                    continue
                try:
                    client = _Client(cluster.address)
                    response = client.ask({"id": 0, "features": _features(dataset)})
                    client.close()
                except (OSError, ValueError):
                    time.sleep(0.02)
                    continue
                if response.get("ok"):
                    probe_ok.append(response)
                    break
            os.kill(os.getpid(), signal.SIGTERM)

        killer = threading.Thread(target=probe_then_kill)
        killer.start()
        cluster.run()
        killer.join()
        assert probe_ok, "no prediction was served before the SIGTERM"
        assert signal.getsignal(signal.SIGTERM) is before_term
        assert any(event.startswith("daemon listening on ") for event in events)
        assert any("worker 0 pid" in event and "ready" in event for event in events)


class TestMergeWorkerHealth:
    def _worker(self, worker, admitted=4, ok=3, error=1, records=2):
        return {
            "worker": worker,
            "gateway": {
                "admitted": admitted,
                "served_ok": ok,
                "served_error": error,
                "overloaded": 1,
                "deadline_exceeded": 0,
            },
            "batching": {"batches": 2, "batched_requests": admitted, "max_batch": 3},
            "request_log": {"records": records, "write_errors": 0},
            "uptime_s": 1.0,
        }

    def test_counters_sum_and_balance(self):
        merged = merge_worker_health([self._worker(0), self._worker(1)])
        assert merged["cluster_size"] == 2
        assert merged["workers_alive"] == 2
        assert merged["gateway"]["admitted"] == 8
        assert merged["gateway"]["served_ok"] == 6
        assert merged["gateway"]["overloaded"] == 2
        assert merged["batching"]["batched_requests"] == 8
        assert merged["batching"]["max_batch"] == 3
        assert merged["request_log_records"] == 4
        assert merged["balanced"] is True

    def test_unbalanced_worker_breaks_the_identity(self):
        lopsided = self._worker(1, admitted=5, ok=3, error=1)
        merged = merge_worker_health([self._worker(0), lopsided])
        assert merged["balanced"] is False
        by_worker = {w["worker"]: w for w in merged["workers"]}
        assert by_worker[0]["balanced"] is True
        assert by_worker[1]["balanced"] is False

    def test_dead_worker_stub_forces_unbalanced(self):
        merged = merge_worker_health(
            [self._worker(0), {"worker": 1, "alive": False}]
        )
        assert merged["workers_alive"] == 1
        assert merged["balanced"] is False
        assert {w["worker"] for w in merged["workers"]} == {0, 1}


class TestAdaptiveWindow:
    def test_controller_shrinks_under_trickle(self):
        controller = WindowController(base_ms=4.0, max_batch=32)
        for _ in range(40):
            controller.observe(batch_size=1, queue_depth=0)
        assert controller.window_ms == 0.0
        assert controller.shrinks > 0
        stats = controller.stats()
        assert stats["enabled"] is True
        assert stats["current_window_ms"] == 0.0
        assert stats["base_window_ms"] == 4.0

    def test_controller_grows_under_pressure(self):
        controller = WindowController(base_ms=4.0, max_batch=8)
        for _ in range(40):
            controller.observe(batch_size=1, queue_depth=0)
        assert controller.window_ms == 0.0
        for _ in range(40):
            controller.observe(batch_size=8, queue_depth=4)
        assert controller.window_ms == 4.0  # grown back to the ceiling
        assert controller.grows > 0

    def test_controller_hysteresis_ignores_single_observations(self):
        controller = WindowController(base_ms=4.0, max_batch=32)
        controller.observe(batch_size=1, queue_depth=0)
        assert controller.window_ms == 4.0  # one idle batch is not a trend
        controller.observe(batch_size=16, queue_depth=0)  # mid-band resets
        controller.observe(batch_size=1, queue_depth=0)
        assert controller.window_ms == 4.0

    def test_controller_disabled_without_batching(self):
        for base, max_batch in ((0.0, 32), (4.0, 1)):
            controller = WindowController(base_ms=base, max_batch=max_batch)
            assert controller.enabled is False
            assert controller.observe(1, 0) == base
            assert controller.stats()["enabled"] is False

    def test_daemon_window_shrinks_under_trickle_traffic(self, store, dataset):
        """Acceptance: strictly sequential requests (every batch closes
        with one request, queue empty) drive the live window toward zero,
        and the decision is visible in BatchStats and healthz."""
        config = DaemonConfig(batch_window_ms=4.0, max_batch=32)
        daemon = ServeDaemon(store.path_for("base"), config, store=store)
        with BackgroundDaemon(daemon) as server:
            client = _Client(server.address)
            for i in range(24):
                client.ask({"id": i, "features": _features(dataset)})
            health = client.ask({"healthz": True})["healthz"]
            client.close()
        assert daemon.window.window_ms < 4.0
        assert daemon.window.shrinks > 0
        stats = daemon.gateway.batch_stats
        assert stats.window_ms < 4.0
        assert stats.window_shrinks > 0
        adaptive = health["batching"]["adaptive"]
        assert adaptive["enabled"] is True
        assert adaptive["current_window_ms"] < 4.0
        assert adaptive["shrinks"] > 0
        # The configured base stays reported for operators.
        assert health["batching"]["window_ms"] == 4.0

    def test_daemon_window_grows_back_under_flood(self, store, dataset):
        """Acceptance: after a trickle has shrunk the window, a pipelined
        flood (batches close full, queue stays deep) grows it back."""
        config = DaemonConfig(batch_window_ms=4.0, max_batch=4, queue_limit=2000)
        daemon = ServeDaemon(store.path_for("base"), config, store=store)
        with BackgroundDaemon(daemon) as server:
            client = _Client(server.address)
            for i in range(24):
                client.ask({"id": i, "features": _features(dataset)})
            shrunk_to = daemon.window.window_ms
            n = 400
            def pump():
                for i in range(n):
                    client.send({"id": f"f{i}", "features": _features(dataset)})
            pumper = threading.Thread(target=pump)
            pumper.start()
            responses = [client.recv() for _ in range(n)]
            pumper.join()
            client.close()
        assert shrunk_to < 4.0
        assert all(r["ok"] for r in responses)
        assert daemon.window.grows > 0
        assert daemon.window.window_ms > shrunk_to
        assert daemon.gateway.batch_stats.window_grows > 0

    def test_adaptive_disabled_pins_configured_window(self, store, dataset):
        config = DaemonConfig(batch_window_ms=4.0, adaptive_window=False)
        daemon = ServeDaemon(store.path_for("base"), config, store=store)
        with BackgroundDaemon(daemon) as server:
            client = _Client(server.address)
            for i in range(12):
                client.ask({"id": i, "features": _features(dataset)})
            client.close()
        assert daemon.window.window_ms == 4.0
        assert daemon.window.shrinks == 0


class TestRequestLog:
    def test_features_checksum_is_format_insensitive(self):
        a = features_checksum({"features": [1.0, 2.0]})
        b = features_checksum({"features": [1.00, 2.00], "id": "ignored"})
        assert a == b
        assert features_checksum({"features": [1.0, 2.5]}) != a
        assert features_checksum({"source": "for i in 0..4 { }"}) is not None
        assert features_checksum({"healthz": True}) is None
        assert features_checksum("not a dict") is None

    def test_record_and_read_round_trip(self, tmp_path):
        path = tmp_path / "requests.jsonl"
        log = RequestLog(path, worker=3)
        for i in range(5):
            log.record({"id": i, "worker": log.worker})
        log.close()
        records = read_request_log(path)
        assert [r["id"] for r in records] == list(range(5))
        assert log.records == 5
        stats = log.stats()
        assert stats["path"] == str(path)
        assert stats["records"] == 5
        assert stats["write_errors"] == 0
        assert stats["rotations"] == 0
        # Operators alarm on log stall via bytes written vs file size:
        # with a single writer they agree exactly.
        assert stats["bytes_written"] > 0
        assert stats["file_bytes"] == stats["bytes_written"]

    def test_records_after_close_are_dropped(self, tmp_path):
        log = RequestLog(tmp_path / "requests.jsonl")
        log.record({"id": 0})
        log.close()
        log.record({"id": 1})
        log.close()  # idempotent
        assert [r["id"] for r in read_request_log(log.path)] == [0]

    def test_append_mode_interleaves_writers(self, tmp_path):
        """Two logs on one path — the multi-process arrangement — append
        whole lines without tearing each other."""
        path = tmp_path / "shared.jsonl"
        first, second = RequestLog(path, worker=0), RequestLog(path, worker=1)
        for i in range(50):
            first.record({"worker": 0, "id": i})
            second.record({"worker": 1, "id": i})
        first.close()
        second.close()
        records = read_request_log(path)
        assert len(records) == 100
        by_worker = {0: [], 1: []}
        for record in records:
            by_worker[record["worker"]].append(record["id"])
        assert by_worker[0] == list(range(50))
        assert by_worker[1] == list(range(50))

    def test_daemon_records_served_requests(self, store, dataset, tmp_path):
        path = tmp_path / "served.jsonl"
        config = DaemonConfig(request_log=str(path), worker_id=5)
        daemon = ServeDaemon(store.path_for("base"), config, store=store)
        with BackgroundDaemon(daemon) as server:
            client = _Client(server.address)
            ok = client.ask({"id": "good", "features": _features(dataset)})
            ensemble = client.ask(
                {"id": "conf", "classifier": "ensemble", "features": _features(dataset)}
            )
            bad = client.ask({"id": "bad", "features": [1.0]})
            health = client.ask({"healthz": True})["healthz"]
            client.close()
        records = {r["id"]: r for r in read_request_log(path)}
        assert set(records) == {"good", "conf", "bad"}
        good = records["good"]
        assert good["ok"] is True
        assert good["worker"] == 5
        assert good["factor"] == ok["factor"]
        assert good["classifier"] == "svm"
        assert good["features_sha256"] == features_checksum(
            {"features": _features(dataset)}
        )
        assert good["latency_ms"] >= 0.0
        assert good["ts"] > 0
        conf = records["conf"]
        assert conf["classifier"] == "ensemble"
        assert conf["confidence"] == ensemble["confidence"]
        failed = records["bad"]
        assert failed["ok"] is False
        assert failed["factor"] is None
        assert failed["error_type"] == bad["error"]["type"]
        # healthz surfaces the log's counters (records are written by a
        # background thread; the daemon drain seals the log, so by the
        # time we read the file all three are durable).
        assert health["request_log"]["path"] == str(path)

    def test_cluster_workers_share_one_log(self, model_dir, dataset, tmp_path):
        """Every worker appends to the same path; lines interleave at
        record granularity and carry the writing worker's id."""
        path = tmp_path / "cluster.jsonl"
        config = ClusterConfig(
            workers=2,
            daemon=DaemonConfig(batch_window_ms=1.0, request_log=str(path)),
        )
        root, model = model_dir
        n = 40
        with ServeCluster(model, config, store_root=root) as cluster:
            for i in range(n):
                client = _Client(cluster.address)
                response = client.ask({"id": i, "features": _features(dataset)})
                assert response["ok"] is True
                client.close()
        records = read_request_log(path)
        assert len(records) == n
        assert sorted(r["id"] for r in records) == list(range(n))
        workers_seen = {r["worker"] for r in records}
        assert workers_seen <= {0, 1}
        assert len(workers_seen) == 2, "both workers should have served traffic"
        assert all(r["features_sha256"] for r in records)
