"""The from-scratch MLP: seeded determinism, early stopping, calibration
of its probability head, and bit-identical state round-trips.

Property-based where the contract is a property (probabilities are a
distribution, restore is the identity on predictions); example-based where
the contract is a mechanism (the early-stopping bookkeeping).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings

from repro.ml.mlp import MLPClassifier, softmax
from tests.strategies import labelled_datasets

_PROPERTY_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _separable(n=40, n_classes=4, seed=0):
    rng = np.random.default_rng(seed)
    labels = (np.arange(n) % n_classes) + 1
    X = rng.normal(size=(n, 6)) + labels[:, None] * 1.2
    return X, labels.astype(np.int64)


def _fit(seed=0, **kwargs):
    X, y = _separable()
    mlp = MLPClassifier(hidden=(16,), seed=seed, max_epochs=120, **kwargs)
    mlp.fit(X, y)
    return mlp, X, y


class TestDeterminism:
    def test_same_seed_same_model(self):
        a, X, _ = _fit(seed=3)
        b, _, _ = _fit(seed=3)
        for wa, wb in zip(a._weights, b._weights):
            np.testing.assert_array_equal(wa, wb)
        np.testing.assert_array_equal(a.predict_proba(X), b.predict_proba(X))
        assert a.best_epoch_ == b.best_epoch_
        np.testing.assert_array_equal(a.validation_curve_, b.validation_curve_)

    def test_learns_separable_data(self):
        mlp, X, y = _fit()
        assert float(np.mean(mlp.predict(X) == y)) >= 0.8


class TestEarlyStopping:
    def test_best_epoch_minimises_the_curve(self):
        mlp, _, _ = _fit()
        curve = np.asarray(mlp.validation_curve_)
        assert curve[mlp.best_epoch_] == curve.min()

    def test_stops_within_patience_of_the_best_epoch(self):
        mlp, _, _ = _fit()
        n_epochs = len(mlp.validation_curve_)
        assert n_epochs - 1 - mlp.best_epoch_ <= mlp.patience

    def test_running_best_is_monotone_non_increasing(self):
        mlp, _, _ = _fit()
        running = np.minimum.accumulate(np.asarray(mlp.validation_curve_))
        assert np.all(np.diff(running) <= 0.0 + 1e-15)

    def test_tiny_dataset_falls_back_to_train_validation(self):
        # Too few rows to carve out a held-out fold: the fit must still
        # converge (validating on train) rather than crash.
        X, y = _separable(n=2, n_classes=2)
        mlp = MLPClassifier(hidden=(4,), seed=0, max_epochs=60)
        mlp.fit(X, y)
        assert len(mlp.validation_curve_) >= 1
        assert set(np.unique(mlp.predict(X))) <= {1, 2}


class TestProbabilities:
    def test_softmax_rows_are_distributions(self):
        rng = np.random.default_rng(0)
        probs = softmax(rng.normal(scale=10.0, size=(32, 5)))
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-12)

    def test_predict_is_argmax_of_proba(self):
        mlp, X, _ = _fit()
        proba = mlp.predict_proba(X)
        np.testing.assert_array_equal(
            mlp.predict(X), mlp.classes_[np.argmax(proba, axis=1)]
        )

    @_PROPERTY_SETTINGS
    @given(dataset=labelled_datasets())
    def test_proba_is_a_distribution_on_any_dataset(self, dataset):
        mlp = MLPClassifier(hidden=(8,), seed=0, max_epochs=40)
        mlp.fit(dataset.X, dataset.labels)
        proba = mlp.predict_proba(dataset.X)
        assert np.all(proba >= 0.0) and np.all(proba <= 1.0)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)
        assert proba.shape == (len(dataset), len(mlp.classes_))


class TestStateRoundTrip:
    def test_restore_is_bit_identical(self):
        mlp, X, _ = _fit()
        restored = MLPClassifier.from_state(mlp.get_state())
        np.testing.assert_array_equal(restored.predict_proba(X), mlp.predict_proba(X))
        np.testing.assert_array_equal(restored.predict(X), mlp.predict(X))
        np.testing.assert_array_equal(restored.classes_, mlp.classes_)
        assert restored.best_epoch_ == mlp.best_epoch_

    @_PROPERTY_SETTINGS
    @given(dataset=labelled_datasets())
    def test_restore_identity_on_any_dataset(self, dataset):
        mlp = MLPClassifier(hidden=(8,), seed=1, max_epochs=40)
        mlp.fit(dataset.X, dataset.labels)
        restored = MLPClassifier.from_state(mlp.get_state())
        np.testing.assert_array_equal(
            restored.predict_proba(dataset.X), mlp.predict_proba(dataset.X)
        )

    def test_unfitted_state_is_an_error(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            MLPClassifier().get_state()

    def test_bad_hyperparameters_are_rejected(self):
        with pytest.raises(ValueError, match="one or two"):
            MLPClassifier(hidden=(8, 8, 8))
        with pytest.raises(ValueError, match="val_fraction"):
            MLPClassifier(val_fraction=0.9)
