"""Tests for the command-line interface.

The CLI drives the full-scale pipeline by default; to keep these tests
fast they run at a tiny suite scale and relaxed filters are unnecessary
because the generator's work-floor bias keeps enough loops above 50k
cycles even at small scales.
"""

import json
import re

import pytest

from repro.cli import main

SCALE = ["--scale", "0.05", "--seed", "99"]

VALID_LOOP = (
    "loop cli_test trip=512 entries=8\n"
    "  %x = load a[i]\n"
    "  %y = fmul %x, 2.0\n"
    "  store %y -> b[i]\n"
    "end\n"
)


@pytest.fixture(scope="module", autouse=True)
def warm_cache():
    """Build the tiny dataset once so individual commands are quick."""
    assert main(["build-data", *SCALE]) == 0


class TestCommands:
    def test_build_data_reports_counts(self, capsys):
        assert main(["build-data", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "loops measured" in out
        assert "dataset rows" in out

    def test_build_data_accepts_jobs_flag(self, capsys):
        assert main(["build-data", *SCALE, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "dataset rows" in out

    def test_cache_stats_on_active_cache(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out

    def test_histogram(self, capsys):
        assert main(["histogram", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "u=1" in out and "u=8" in out

    def test_table2(self, capsys):
        assert main(["table2", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "Optimal unroll factor" in out
        assert "Worst unroll factor" in out

    def test_features(self, capsys):
        assert main(["features", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "mutual information" in out.lower()
        assert "Greedy forward selection for NN" in out

    def test_predict_known_kernel(self, capsys):
        assert main(["predict", "daxpy", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "predicts unroll factor" in out
        assert "simulator-optimal factor" in out

    def test_predict_unknown_kernel(self, capsys):
        assert main(["predict", "nonesuch", *SCALE]) == 2
        assert "unknown kernel" in capsys.readouterr().out

    def test_export_round_trips(self, tmp_path, capsys):
        target = tmp_path / "loops.jsonl"
        assert main(["export", str(target), *SCALE]) == 0
        from repro.instrument import read_records

        records = read_records(target)
        assert len(records) > 0
        assert all(1 <= r.best_factor <= 8 for r in records)

    def test_predict_file(self, tmp_path, capsys):
        source = tmp_path / "loops.rul"
        source.write_text(VALID_LOOP)
        assert main(["predict-file", str(source), *SCALE]) == 0
        out = capsys.readouterr().out
        assert "cli_test: predicted u=" in out

    def test_predict_file_reports_parse_errors(self, tmp_path, capsys):
        source = tmp_path / "bad.rul"
        source.write_text("loop broken trip=8\n  %x = frobnicate 1, 2\nend\n")
        assert main(["predict-file", str(source), *SCALE]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_suite_stats(self, capsys):
        assert main(["suite-stats", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "72 benchmarks" in out
        assert "loops per language" in out
        assert "scalar recurrences" in out

    def test_speedups_small(self, capsys):
        assert main(["speedups", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "mean svm" in out
        assert "164.gzip" in out


@pytest.fixture(scope="module")
def model_path(tmp_path_factory):
    """One trained artifact for the whole module (training rides on the
    module's warm measurement cache)."""
    path = tmp_path_factory.mktemp("model") / "model.rma"
    assert main(["train", *SCALE, "--out", str(path)]) == 0
    return path


def _predicted_factor(out: str) -> int:
    match = re.search(r"predicts unroll factor (\d+)", out)
    assert match, out
    return int(match.group(1))


class TestModelCommands:
    def test_train_reports_what_it_wrote(self, model_path, tmp_path, capsys):
        target = tmp_path / "again.rma"
        assert main(["train", *SCALE, "--out", str(target)]) == 0
        out = capsys.readouterr().out
        assert "selected features" in out
        assert "wrote model artifact" in out
        # Determinism end to end: retraining on the cached dataset writes
        # the same bytes.
        assert target.read_bytes() == model_path.read_bytes()

    def test_predict_from_model_matches_in_process_train(self, model_path, capsys):
        """Acceptance: serving from the artifact is bit-identical to the
        retrain-per-invocation path it replaces."""
        assert main(["predict", "daxpy", *SCALE, "--model", str(model_path)]) == 0
        from_model = _predicted_factor(capsys.readouterr().out)
        assert main(["predict", "daxpy", *SCALE]) == 0
        from_scratch = _predicted_factor(capsys.readouterr().out)
        assert from_model == from_scratch

    def test_predict_missing_model_file(self, tmp_path, capsys):
        assert (
            main(["predict", "daxpy", *SCALE, "--model", str(tmp_path / "no.rma")]) == 2
        )
        assert "no such file" in capsys.readouterr().out

    def test_predict_corrupt_model_quarantines(self, tmp_path, capsys):
        bad = tmp_path / "bad.rma"
        bad.write_bytes(b"rotten to the core")
        assert main(["predict", "daxpy", *SCALE, "--model", str(bad)]) == 2
        assert "corrupt model artifact" in capsys.readouterr().out
        assert not bad.exists()
        assert (tmp_path / "bad.rma.corrupt").exists()

    def test_predict_stale_model_schema(self, model_path, tmp_path, capsys):
        from repro.registry import ARTIFACT_SCHEMA_VERSION
        from tests.test_model_artifacts import _rewrite_with_manifest

        old = tmp_path / "old.rma"

        def bump(manifest):
            manifest["schema_version"] = ARTIFACT_SCHEMA_VERSION + 1

        _rewrite_with_manifest(model_path, old, bump)
        assert main(["predict", "daxpy", *SCALE, "--model", str(old)]) == 2
        assert "stale model artifact" in capsys.readouterr().out
        assert old.exists()  # stale files are never quarantined

    def test_predict_file_with_model(self, model_path, tmp_path, capsys):
        source = tmp_path / "loops.rul"
        source.write_text(VALID_LOOP)
        assert (
            main(["predict-file", str(source), *SCALE, "--model", str(model_path)]) == 0
        )
        assert "cli_test: predicted u=" in capsys.readouterr().out

    def test_predict_file_missing_file(self, tmp_path, capsys):
        assert main(["predict-file", str(tmp_path / "none.rul"), *SCALE]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_predict_file_no_unrollable_loop(self, model_path, tmp_path, capsys):
        # A while-style loop with no exit branch parses and validates but
        # cannot be unrolled; with nothing advisable the command fails.
        source = tmp_path / "stuck.rul"
        source.write_text(
            "loop stuck trip=8 while\n  %x = load a[i]\n  store %x -> b[i]\nend\n"
        )
        assert (
            main(["predict-file", str(source), *SCALE, "--model", str(model_path)]) == 2
        )
        out = capsys.readouterr().out
        assert "stuck: not unrollable" in out
        assert "no unrollable loop" in out


class TestServeCommand:
    def _serve(self, model_path, tmp_path, lines, extra=()):
        requests = tmp_path / "requests.jsonl"
        requests.write_text("\n".join(lines) + "\n")
        return main(
            ["serve", "--model", str(model_path), "--input", str(requests), *extra]
        )

    def test_serve_batch_from_file(self, model_path, tmp_path, capsys):
        lines = [
            json.dumps({"id": 0, "source": VALID_LOOP}),
            "{definitely not json",
            json.dumps({"id": 2}),
        ]
        assert self._serve(model_path, tmp_path, lines) == 0
        captured = capsys.readouterr()
        responses = [json.loads(line) for line in captured.out.splitlines()]
        assert [r["ok"] for r in responses] == [True, False, False]
        assert responses[0]["id"] == 0
        assert 1 <= responses[0]["factor"] <= 8
        assert responses[1]["error"]["type"] == "invalid-json"
        assert responses[2]["error"]["type"] == "malformed-request"
        assert "latency p50" in captured.err
        assert "2/3 request(s) failed" in captured.err

    def test_serve_reads_stdin_by_default(self, model_path, capsys, monkeypatch):
        import io

        monkeypatch.setattr(
            "sys.stdin", io.StringIO(json.dumps({"id": 5, "source": VALID_LOOP}))
        )
        assert main(["serve", "--model", str(model_path), "--workers", "1"]) == 0
        [response] = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert response["id"] == 5 and response["ok"] is True

    def test_serve_missing_model(self, tmp_path, capsys):
        assert (
            self._serve(tmp_path / "ghost.rma", tmp_path, [json.dumps({"id": 0})]) == 2
        )
        assert "no such file" in capsys.readouterr().out


class TestServeGatewayFlags:
    def _serve(self, model_path, tmp_path, lines, extra=()):
        requests = tmp_path / "requests.jsonl"
        requests.write_text("\n".join(lines) + "\n")
        return main(
            ["serve", "--model", str(model_path), "--input", str(requests), *extra]
        )

    def test_gateway_knobs_and_counters_line(self, model_path, tmp_path, capsys):
        lines = [json.dumps({"id": 0, "source": VALID_LOOP})]
        extra = ["--queue-limit", "8", "--deadline-ms", "5000", "--workers", "2"]
        assert self._serve(model_path, tmp_path, lines, extra) == 0
        captured = capsys.readouterr()
        assert "gateway: 1 admitted, 1 ok" in captured.err

    def test_fault_plan_hook_reaches_the_engine(self, model_path, tmp_path, capsys):
        from repro.resilience import install_fault_plan

        plan = '{"rules": [{"op": "serve.internal", "match": "0"}]}'
        lines = [json.dumps({"id": 0, "source": VALID_LOOP})]
        try:
            rc = self._serve(model_path, tmp_path, lines, ["--fault-plan", plan])
        finally:
            install_fault_plan(None)
        assert rc == 0
        captured = capsys.readouterr()
        [response] = [json.loads(line) for line in captured.out.splitlines()]
        assert response["ok"] is False
        assert response["error"]["type"] == "internal-error"

    def test_corrupt_model_falls_back_to_registry(self, model_path, tmp_path, capsys):
        from repro.registry import ArtifactStore, load_artifact

        ArtifactStore().store("cli_fallback", load_artifact(model_path))
        rotten = tmp_path / "rotten.rma"
        rotten.write_bytes(b"this artifact has rotted on disk")
        lines = [json.dumps({"id": 0, "source": VALID_LOOP})]
        assert self._serve(rotten, tmp_path, lines) == 0
        captured = capsys.readouterr()
        assert "WARNING: serving last-good artifact" in captured.err
        [response] = [json.loads(line) for line in captured.out.splitlines()]
        assert response["ok"] is True


class TestMeasureCommand:
    MEASURE = ["measure", "--scale", "0.02", "--seed", "123"]

    def test_abort_resume_and_cache_journey(self, tmp_path, capsys):
        """One run through the whole operational story: a fault plan kills
        the run mid-measurement (rc 3), ``--resume`` finishes it from the
        journal, and a rerun is a pure cache hit."""
        from repro.resilience import install_fault_plan

        cache = ["--cache-dir", str(tmp_path)]
        plan = '{"rules": [{"op": "run.abort", "skip": 9}]}'
        try:
            assert main([*self.MEASURE, *cache, "--fault-plan", plan]) == 3
        finally:
            install_fault_plan(None)
        out = capsys.readouterr().out
        assert "run aborted" in out
        assert "--resume" in out
        assert (tmp_path / "journal_").parent.exists()  # journal lives in the store

        assert main([*self.MEASURE, *cache, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resuming from" in out
        assert "10 unit(s) committed" in out
        assert "wrote table" in out
        assert not list(tmp_path.glob("journal_*"))  # discarded once durable

        assert main([*self.MEASURE, *cache]) == 0
        assert "already cached" in capsys.readouterr().out


class TestServeDaemonFlags:
    def test_parse_listen_forms(self):
        from repro.cli import _parse_listen

        assert _parse_listen("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert _parse_listen(":0") == ("127.0.0.1", 0)
        assert _parse_listen("0.0.0.0:80") == ("0.0.0.0", 80)

    def test_parse_listen_ipv6(self):
        import pytest

        from repro.cli import _parse_listen

        # Bracketed literals parse to the bare address getaddrinfo wants.
        assert _parse_listen("[::1]:8080") == ("::1", 8080)
        assert _parse_listen("[fe80::1]:0") == ("fe80::1", 0)
        # Unbracketed/portless IPv6 is ambiguous on ':' — clear error, not
        # a mis-split host like ':' or an unresolvable '[::1]'.
        with pytest.raises(ValueError, match="bracketed"):
            _parse_listen("::1")
        with pytest.raises(ValueError, match="bracketed"):
            _parse_listen("[::1]")
        with pytest.raises(ValueError, match="empty"):
            _parse_listen("[]:8080")

    def test_parse_listen_rejects_garbage(self):
        import pytest

        from repro.cli import _parse_listen

        with pytest.raises(ValueError, match="HOST:PORT"):
            _parse_listen("9000")
        with pytest.raises(ValueError, match="integer"):
            _parse_listen("localhost:http")
        with pytest.raises(ValueError, match="out of range"):
            _parse_listen("localhost:70000")

    def test_listen_with_bad_address_fails_fast(self, model_path, capsys):
        rc = main(["serve", "--model", str(model_path), "--listen", "nonsense"])
        assert rc == 2
        assert "HOST:PORT" in capsys.readouterr().out

    def test_listen_with_missing_model_fails_fast(self, tmp_path, capsys):
        rc = main(
            ["serve", "--model", str(tmp_path / "ghost.rma"), "--listen", ":0"]
        )
        assert rc == 2
        assert "no such file" in capsys.readouterr().out
