"""Tests for the command-line interface.

The CLI drives the full-scale pipeline by default; to keep these tests
fast they run at a tiny suite scale and relaxed filters are unnecessary
because the generator's work-floor bias keeps enough loops above 50k
cycles even at small scales.
"""

import pytest

from repro.cli import main

SCALE = ["--scale", "0.05", "--seed", "99"]


@pytest.fixture(scope="module", autouse=True)
def warm_cache():
    """Build the tiny dataset once so individual commands are quick."""
    assert main(["build-data", *SCALE]) == 0


class TestCommands:
    def test_build_data_reports_counts(self, capsys):
        assert main(["build-data", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "loops measured" in out
        assert "dataset rows" in out

    def test_build_data_accepts_jobs_flag(self, capsys):
        assert main(["build-data", *SCALE, "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "dataset rows" in out

    def test_cache_stats_on_active_cache(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out

    def test_histogram(self, capsys):
        assert main(["histogram", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "u=1" in out and "u=8" in out

    def test_table2(self, capsys):
        assert main(["table2", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "Optimal unroll factor" in out
        assert "Worst unroll factor" in out

    def test_features(self, capsys):
        assert main(["features", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "mutual information" in out.lower()
        assert "Greedy forward selection for NN" in out

    def test_predict_known_kernel(self, capsys):
        assert main(["predict", "daxpy", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "predicts unroll factor" in out
        assert "simulator-optimal factor" in out

    def test_predict_unknown_kernel(self, capsys):
        assert main(["predict", "nonesuch", *SCALE]) == 2
        assert "unknown kernel" in capsys.readouterr().out

    def test_export_round_trips(self, tmp_path, capsys):
        target = tmp_path / "loops.jsonl"
        assert main(["export", str(target), *SCALE]) == 0
        from repro.instrument import read_records

        records = read_records(target)
        assert len(records) > 0
        assert all(1 <= r.best_factor <= 8 for r in records)

    def test_predict_file(self, tmp_path, capsys):
        source = tmp_path / "loops.rul"
        source.write_text(
            "loop cli_test trip=512 entries=8\n"
            "  %x = load a[i]\n"
            "  %y = fmul %x, 2.0\n"
            "  store %y -> b[i]\n"
            "end\n"
        )
        assert main(["predict-file", str(source), *SCALE]) == 0
        out = capsys.readouterr().out
        assert "cli_test: predicted u=" in out

    def test_predict_file_reports_parse_errors(self, tmp_path, capsys):
        source = tmp_path / "bad.rul"
        source.write_text("loop broken trip=8\n  %x = frobnicate 1, 2\nend\n")
        assert main(["predict-file", str(source), *SCALE]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_suite_stats(self, capsys):
        assert main(["suite-stats", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "72 benchmarks" in out
        assert "loops per language" in out
        assert "scalar recurrences" in out

    def test_speedups_small(self, capsys):
        assert main(["speedups", *SCALE]) == 0
        out = capsys.readouterr().out
        assert "mean svm" in out
        assert "164.gzip" in out
