"""Content-addressed measurement dedup and the incremental engine.

Three layers of guarantees, each with its own tier here:

* **Canonical keys** (property tests): alpha-renaming of registers and
  arrays, benign statement reordering, and uniform even offset shifts all
  preserve the keys; semantic perturbations (opcode, memref stride or
  offset parity, trip count) change them; canonicalization is idempotent
  and the keys are stable across processes.
* **Differential bit-identity**: measuring with ``dedup=True`` (one
  representative per cost-key class, fanned back out to every member) and
  measuring with the incremental engine both produce tables byte-identical
  to the plain paths, across seeds, scales, both SWP regimes, and job
  counts.
* **The dedup plan**: the index is a pure function of the suite, merges
  real duplicates, confines quarantine NaN holes to the class's members,
  and reports honest statistics (including the optional LSH diagnostics).
"""

from __future__ import annotations

import dataclasses
import functools
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.instrument import DedupStats, MeasurementRollup
from repro.ir.builder import LoopBuilder
from repro.ir.canonical import (
    canonical_form,
    canonical_key,
    canonicalize,
    cost_key,
    structural_key,
)
from repro.ir.loop import TripInfo
from repro.ir.program import Suite
from repro.ir.types import MAX_UNROLL, Opcode
from repro.ir.values import Reg
from repro.machine.itanium2 import ITANIUM2
from repro.pipeline import (
    LabelingConfig,
    build_dedup_index,
    lsh_candidate_pairs,
    measure_suite,
    measure_suite_pair,
)
from repro.resilience import FaultPlan, FaultRule, ResilienceConfig, RetryPolicy, fault_plan
from repro.simulate import CostModel
from repro.simulate.noise import NoiseModel
from repro.workloads.generator import generate_benchmark
from repro.workloads.spec_names import ROSTER
from tests.strategies import (
    assert_tables_bit_identical,
    awkward_trip_loops,
    early_exit_loops,
    measurement_tables,
    predicated_loops,
    random_loops,
)

QUIET = NoiseModel(sigma=0.01, outlier_rate=0.0, counter_overhead=5)
FAST = ResilienceConfig(
    retry=RetryPolicy(max_attempts=3, base_delay_s=0.001, max_delay_s=0.005)
)


def make_suite(seed: int, scale: float = 0.04, picks: tuple[int, ...] = (1, 0)) -> Suite:
    infos = [ROSTER[i] for i in picks]
    seeds = np.random.SeedSequence(seed).spawn(len(infos))
    benchmarks = tuple(
        generate_benchmark(info, np.random.default_rng(child), loops_scale=scale)
        for info, child in zip(infos, seeds)
    )
    return Suite(name=f"dedup{seed}", benchmarks=benchmarks)


def make_config(seed: int, **overrides) -> LabelingConfig:
    return LabelingConfig(seed=seed, noise=QUIET, n_runs=3, **overrides)


@functools.lru_cache(maxsize=None)
def plain_pair(seed: int, scale: float):
    """Serial, dedup-off, fast-engine baseline for one (seed, scale).

    Cached because several differential tests compare against the same
    baseline; the baseline itself is jobs-invariant (pinned separately by
    the resilience suite), so dedup/incremental runs at any job count may
    be compared against this serial table.
    """
    suite = make_suite(seed, scale)
    off, on = measure_suite_pair(suite, make_config(seed))
    return suite, off, on


@pytest.fixture(scope="module")
def dup_suite() -> Suite:
    """A suite with guaranteed cross-benchmark duplicates: one benchmark
    plus a clone of it under another name."""
    base = make_suite(91, scale=0.05, picks=(1,))
    bench = base.benchmarks[0]
    clone = dataclasses.replace(bench, name=f"{bench.name}-clone")
    return Suite(name="dup", benchmarks=(bench, clone))


def _flat_row(suite: Suite, coord: tuple[int, int]) -> int:
    bi, li = coord
    return sum(bench.n_loops for bench in suite.benchmarks[:bi]) + li


# ---------------------------------------------------------------------------
# The bit-identity helper itself.
# ---------------------------------------------------------------------------


class TestAssertHelper:
    @given(table=measurement_tables())
    @settings(max_examples=20, deadline=None)
    def test_accepts_a_table_against_itself(self, table):
        assert_tables_bit_identical(table, table)

    @given(table=measurement_tables())
    @settings(max_examples=20, deadline=None)
    def test_rejects_any_float_perturbation(self, table):
        measured = table.measured.copy()
        # Flip the sign bit of one cell: even -0.0 vs 0.0 must be caught.
        measured.view(np.uint64)[0, 0] ^= np.uint64(1 << 63)
        other = dataclasses.replace(table, measured=measured)
        with pytest.raises(AssertionError, match="measured"):
            assert_tables_bit_identical(table, other)

    @given(table=measurement_tables())
    @settings(max_examples=20, deadline=None)
    def test_rejects_a_provenance_mismatch(self, table):
        names = table.loop_names.copy().astype(object)
        names[0] = str(names[0]) + "x"
        other = dataclasses.replace(table, loop_names=names.astype(str))
        with pytest.raises(AssertionError, match="loop_names"):
            assert_tables_bit_identical(table, other)

    def test_nan_holes_must_match_positionally(self):
        base = make_suite(3, 0.04)
        table = measure_suite(base, make_config(3))
        holed = table.measured.copy()
        holed[0, 0] = np.nan
        other = dataclasses.replace(table, measured=holed)
        assert_tables_bit_identical(other, dataclasses.replace(other))
        with pytest.raises(AssertionError):
            assert_tables_bit_identical(table, other)


# ---------------------------------------------------------------------------
# Canonical-key properties.
# ---------------------------------------------------------------------------


def _daxpy(op: Opcode = Opcode.FMUL, stride: int = 1, offset: int = 0, trip: int = 96):
    builder = LoopBuilder("t/daxpy", trip=TripInfo(runtime=trip))
    x = builder.load("x", stride=stride, offset=offset)
    y = builder.load("y")
    builder.store(builder.fp(op, x, y), "y")
    return builder.build()


def _two_strands(a_first: bool, arrays: tuple[str, str, str, str] = ("a", "b", "c", "d")):
    """Two independent strands, emitted in either order: the orders are
    benign reorderings of one another (and, with different array name
    tuples, alpha-renamings too — register names also shift with order)."""
    src_a, dst_a, src_b, dst_b = arrays
    builder = LoopBuilder("t/strands", trip=TripInfo(runtime=64))

    def strand_a():
        value = builder.load(src_a)
        builder.store(builder.fp(Opcode.FADD, value, builder.fconst(1.0)), dst_a)

    def strand_b():
        value = builder.load(src_b)
        builder.store(builder.fp(Opcode.FMUL, value, builder.fconst(2.0)), dst_b)

    strand_a() if a_first else strand_b()
    strand_b() if a_first else strand_a()
    return builder.build()


def _all_regs(loop):
    regs = {}
    for inst in loop.body:
        for reg in (inst.dest, inst.dest2, inst.pred):
            if reg is not None:
                regs[reg] = None
        for src in inst.srcs:
            if isinstance(src, Reg):
                regs[src] = None
        if inst.mem is not None and inst.mem.index_reg is not None:
            regs[inst.mem.index_reg] = None
    return list(regs)


class TestCanonicalKeys:
    @given(loop=random_loops())
    @settings(max_examples=25, deadline=None)
    def test_register_renaming_preserves_every_key(self, loop):
        mapping = {
            reg: Reg(f"zz{i}", reg.dtype) for i, reg in enumerate(_all_regs(loop))
        }
        renamed = loop.with_body(
            tuple(inst.rewritten(mapping, mapping) for inst in loop.body)
        )
        assert canonical_form(renamed) == canonical_form(loop)

    def test_benign_reordering_and_array_renaming_share_a_key(self):
        ab = _two_strands(a_first=True)
        ba = _two_strands(a_first=False)
        renamed = _two_strands(a_first=False, arrays=("p", "q", "r", "s"))
        for other in (ba, renamed):
            assert structural_key(other) == structural_key(ab)
            assert canonical_key(other) == canonical_key(ab)

    def test_uniform_even_offset_shift_is_normalized_away(self):
        assert canonical_form(_daxpy(offset=2)) == canonical_form(_daxpy(offset=0))

    def test_semantic_perturbations_change_the_keys(self):
        base = _daxpy()
        for perturbed in (
            _daxpy(op=Opcode.FADD),  # different operation
            _daxpy(stride=2),  # different memref stride
            _daxpy(offset=1),  # odd offset: a real dependence change
        ):
            assert cost_key(perturbed) != cost_key(base)
            assert structural_key(perturbed) != structural_key(base)
            assert canonical_key(perturbed) != canonical_key(base)

    @given(loop=random_loops(), trip=st.integers(min_value=1, max_value=4096))
    @settings(max_examples=25, deadline=None)
    def test_trip_count_splits_canonical_but_not_structural(self, loop, trip):
        other = dataclasses.replace(loop, trip=TripInfo(runtime=trip))
        assert structural_key(other) == structural_key(loop)
        same_trip = other.trip == loop.trip
        assert (canonical_key(other) == canonical_key(loop)) == same_trip
        assert (cost_key(other) == cost_key(loop)) == same_trip

    @given(loop=random_loops())
    @settings(max_examples=25, deadline=None)
    def test_canonicalize_is_idempotent_and_key_preserving(self, loop):
        canon = canonicalize(loop)
        assert structural_key(canon) == structural_key(loop)
        assert canonical_key(canon) == canonical_key(loop)
        again = canonicalize(canon)
        assert canonical_form(again) == canonical_form(canon)
        assert cost_key(again) == cost_key(canon)  # a true fixed point

    def test_keys_are_stable_across_processes(self):
        loop = _daxpy()
        form = canonical_form(loop)
        script = (
            "from repro.ir.builder import LoopBuilder\n"
            "from repro.ir.loop import TripInfo\n"
            "from repro.ir.types import Opcode\n"
            "from repro.ir.canonical import canonical_form\n"
            "b = LoopBuilder('t/daxpy', trip=TripInfo(runtime=96))\n"
            "x = b.load('x')\n"
            "y = b.load('y')\n"
            "b.store(b.fp(Opcode.FMUL, x, y), 'y')\n"
            "f = canonical_form(b.build())\n"
            "print(f.cost_key, f.structural_key, f.canonical_key)\n"
        )
        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        assert out.stdout.split() == [
            form.cost_key,
            form.structural_key,
            form.canonical_key,
        ]


# ---------------------------------------------------------------------------
# Incremental engine == reference engine, factor by factor.
# ---------------------------------------------------------------------------


def _assert_engines_agree(loop, evict_at: int | None = None):
    for swp in (False, True):
        reference = CostModel(machine=ITANIUM2, swp=swp, engine="reference")
        incremental = CostModel(machine=ITANIUM2, swp=swp, engine="incremental")
        for factor in range(1, MAX_UNROLL + 1):
            if factor == evict_at:
                # Mid-sequence eviction: the engine must rebuild, not
                # assume factor f-1 state is still resident.
                incremental.analysis.clear()
                incremental._stores.clear()
            got = incremental.loop_cost(loop, factor)
            want = reference.loop_cost(loop, factor)
            assert got == want, f"swp={swp} factor={factor}: {got} != {want}"


class TestIncrementalEngine:
    @given(loop=predicated_loops())
    @settings(max_examples=10, deadline=None)
    def test_predicated_loops(self, loop):
        _assert_engines_agree(loop)

    @given(pair=early_exit_loops())
    @settings(max_examples=10, deadline=None)
    def test_early_exit_loops(self, pair):
        _assert_engines_agree(pair[0])

    @given(pair=awkward_trip_loops(), evict_at=st.integers(min_value=2, max_value=MAX_UNROLL))
    @settings(max_examples=10, deadline=None)
    def test_awkward_trips_survive_mid_sequence_eviction(self, pair, evict_at):
        _assert_engines_agree(pair[0], evict_at=evict_at)

    @given(loop=random_loops(), evict_at=st.integers(min_value=2, max_value=MAX_UNROLL))
    @settings(max_examples=10, deadline=None)
    def test_random_loops_survive_mid_sequence_eviction(self, loop, evict_at):
        _assert_engines_agree(loop, evict_at=evict_at)


# ---------------------------------------------------------------------------
# Differential bit-identity at the pipeline level.
# ---------------------------------------------------------------------------


class TestDifferentialMeasurement:
    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("seed,scale", [(3, 0.04), (17, 0.08)])
    def test_dedup_pair_is_bit_identical(self, seed, scale, jobs):
        suite, off, on = plain_pair(seed, scale)
        config = make_config(seed, dedup=True)
        dedup_off, dedup_on = measure_suite_pair(suite, config, jobs=jobs)
        assert_tables_bit_identical(dedup_off, off)
        assert_tables_bit_identical(dedup_on, on)

    @pytest.mark.parametrize("swp", [False, True])
    def test_dedup_single_regime_is_bit_identical(self, swp):
        suite, off, on = plain_pair(3, 0.04)
        table = measure_suite(suite, make_config(3, swp=swp, dedup=True))
        assert_tables_bit_identical(table, on if swp else off)

    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("swp", [False, True])
    def test_incremental_and_reference_match_the_fast_engine(self, swp, jobs):
        suite, off, on = plain_pair(3, 0.04)
        baseline = on if swp else off
        for engine in ("reference", "incremental"):
            table = measure_suite(
                suite, make_config(3, swp=swp, engine=engine), jobs=jobs
            )
            assert_tables_bit_identical(table, baseline)

    def test_dedup_composes_with_the_incremental_and_reference_engines(self):
        suite, off, _ = plain_pair(3, 0.04)
        for engine in ("incremental", "reference"):
            table = measure_suite(suite, make_config(3, dedup=True, engine=engine))
            assert_tables_bit_identical(table, off)


# ---------------------------------------------------------------------------
# The dedup plan: merges, statistics, rollup wiring, quarantine.
# ---------------------------------------------------------------------------


class TestDedupIndex:
    def test_index_is_a_pure_function_of_the_suite(self):
        suite = make_suite(3, 0.04)
        first = build_dedup_index(suite)
        second = build_dedup_index(suite)
        assert first.classes == second.classes
        assert first.class_of == second.class_of
        assert first.stats == second.stats

    def test_classes_partition_the_suite(self):
        suite = make_suite(17, 0.08)
        index = build_dedup_index(suite)
        coords = [
            (bi, li)
            for bi, bench in enumerate(suite.benchmarks)
            for li in range(bench.n_loops)
        ]
        members = [coord for cls in index.classes for coord in cls.members]
        assert sorted(members) == coords
        assert set(index.class_of) == set(coords)
        for ci, cls in enumerate(index.classes):
            assert cls.representative == cls.members[0]
            rep = index.representative_loop(suite, ci)
            assert cost_key(rep) == cls.key
            for coord in cls.members:
                assert index.class_of[coord] == ci
        assert index.stats.n_loops == suite.n_loops
        assert index.stats.cost_merges == suite.n_loops - len(index.classes)

    def test_empty_suite(self):
        index = build_dedup_index(Suite(name="empty"), use_lsh=True)
        assert index.classes == ()
        assert index.stats == DedupStats(
            n_loops=0,
            n_cost_classes=0,
            n_structural_classes=0,
            class_merges=0,
            cost_merges=0,
        )

    def test_duplicates_merge_and_measurement_stays_bit_identical(self, dup_suite):
        index = build_dedup_index(dup_suite)
        n_dupes = dup_suite.benchmarks[0].n_loops
        assert index.stats.cost_merges == n_dupes
        assert index.stats.class_merges >= n_dupes
        assert all(len(cls.members) >= 2 for cls in index.classes)

        plain = measure_suite(dup_suite, make_config(5))
        rollup = MeasurementRollup()
        table = measure_suite(dup_suite, make_config(5, dedup=True), rollup=rollup)
        assert_tables_bit_identical(table, plain)

        # The rollup carries the dedup statistics and per-class timings.
        assert rollup.dedup is not None
        assert rollup.dedup.n_loops == dup_suite.n_loops
        assert rollup.dedup.cost_merges == n_dupes
        assert rollup.dedup.incremental_hits + rollup.dedup.incremental_misses > 0
        assert 0.0 <= rollup.dedup.incremental_hit_rate() <= 1.0
        assert rollup.n_units == len(index.classes)
        assert all(t.benchmark.startswith("class:") for t in rollup.timings)
        assert "dedup:" in rollup.summary()
        assert "dedup:" in rollup.dedup.summary()

    def test_quarantined_class_holes_cover_exactly_its_members(self, dup_suite):
        index = build_dedup_index(dup_suite)
        cls = index.classes[0]
        plan = FaultPlan(
            rules=(FaultRule(op="unit.error", match=f"class:{cls.key}#*", times=0),)
        )
        rollup = MeasurementRollup()
        with fault_plan(plan):
            table = measure_suite(
                dup_suite, make_config(5, dedup=True), rollup=rollup, resilience=FAST
            )
        assert rollup.quarantined_units() == [f"class:{cls.key}"]
        rows = [_flat_row(dup_suite, coord) for coord in cls.members]
        assert len(rows) >= 2  # the hole fans out to every member
        assert np.isnan(table.measured[rows]).all()
        assert np.isnan(table.true_cycles[rows]).all()
        # Every other row is untouched, bit for bit.
        plain = measure_suite(dup_suite, make_config(5))
        mask = ~np.isnan(table.measured)
        assert np.array_equal(table.measured[mask], plain.measured[mask])


class TestLSHDiagnostics:
    def test_candidate_pairs_are_ordered_flat_indices(self, dup_suite):
        pairs = lsh_candidate_pairs(dup_suite)
        n = dup_suite.n_loops
        assert all(0 <= a < b < n for a, b in pairs)

    def test_singleton_buckets_produce_no_pairs(self):
        # A one-loop suite can only hash into singleton buckets, which are
        # skipped during pair enumeration.
        suite = Suite(
            name="solo",
            benchmarks=(
                dataclasses.replace(
                    make_suite(7, 0.04, picks=(0,)).benchmarks[0],
                    loops=make_suite(7, 0.04, picks=(0,)).benchmarks[0].loops[:1],
                ),
            ),
        )
        assert suite.n_loops == 1
        assert lsh_candidate_pairs(suite) == set()

    def test_exact_duplicates_are_flagged_and_confirmed(self, dup_suite):
        # Identical loops have identical feature vectors, so every clone
        # pair shares every bucket: LSH must flag them all, and the exact
        # structural check must confirm them all.
        index = build_dedup_index(dup_suite, use_lsh=True)
        n_dupes = dup_suite.benchmarks[0].n_loops
        assert index.stats.lsh_candidate_pairs >= index.stats.lsh_confirmed_pairs
        assert index.stats.lsh_confirmed_pairs >= n_dupes
        # The LSH numbers are diagnostics: the classes themselves must be
        # unchanged by turning the flagging on.
        assert index.classes == build_dedup_index(dup_suite).classes
