"""Unit tests for the extension classifiers: trees, LSH, regression."""

import numpy as np
import pytest

from repro.ml.lsh import LSHNearNeighbor
from repro.ml.near_neighbor import NearNeighborClassifier
from repro.ml.regression import KernelRidgeRegressor, loocv_regression_predictions
from repro.ml.trees import BoostedTrees, DecisionTree, binary_unroll_labels


def _axis_problem(n=200, seed=0):
    """Labels determined by thresholds on two features."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(0, 1, size=(n, 5))
    y = 1 + (X[:, 1] > 0.5).astype(int) * 2 + (X[:, 3] > 0.3).astype(int)
    return X, y


class TestDecisionTree:
    def test_fits_axis_aligned_structure(self):
        X, y = _axis_problem()
        tree = DecisionTree(max_depth=4, min_leaf=2).fit(X, y)
        assert (tree.predict(X) == y).mean() > 0.95

    def test_depth_limits_capacity(self):
        X, y = _axis_problem()
        stump = DecisionTree(max_depth=1, min_leaf=2).fit(X, y)
        deep = DecisionTree(max_depth=5, min_leaf=2).fit(X, y)
        assert (deep.predict(X) == y).mean() > (stump.predict(X) == y).mean()

    def test_sample_weights_steer_the_tree(self):
        X, y = _axis_problem(n=120, seed=1)
        weight = np.where(X[:, 1] > 0.5, 10.0, 0.01)
        weight /= weight.sum()
        tree = DecisionTree(max_depth=2, min_leaf=2).fit(X, y, sample_weight=weight)
        heavy = X[:, 1] > 0.5
        acc_heavy = (tree.predict(X[heavy]) == y[heavy]).mean()
        assert acc_heavy > 0.9

    def test_predict_proba_is_distribution(self):
        X, y = _axis_problem(n=80, seed=2)
        tree = DecisionTree(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X[:7])
        np.testing.assert_allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 3)))


class TestBoosting:
    def test_boosting_beats_a_single_stump_binary(self):
        # Binary target needing two thresholds: a single stump cannot
        # express it, boosted stumps can (the Monsifrot-baseline setting).
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, size=(300, 4))
        y = np.where((X[:, 0] > 0.5) ^ (X[:, 2] > 0.5), 2, 1)
        stump = DecisionTree(max_depth=1, min_leaf=2).fit(X, y)
        boosted = BoostedTrees(n_rounds=40, max_depth=2, min_leaf=2).fit(X, y)
        assert (boosted.predict(X) == y).mean() > (stump.predict(X) == y).mean()
        assert boosted.n_stages > 1

    def test_binary_unroll_labels(self):
        labels = np.array([1, 2, 4, 8, 1, 3])
        np.testing.assert_array_equal(binary_unroll_labels(labels), [1, 2, 2, 2, 1, 2])

    def test_binary_boosting_on_dataset(self, mini_dataset):
        X = mini_dataset.X
        y = binary_unroll_labels(mini_dataset.labels)
        if len(np.unique(y)) < 2:
            pytest.skip("mini dataset has a single binary class")
        model = BoostedTrees(n_rounds=10, max_depth=2).fit(X, y)
        majority = max(np.mean(y == 1), np.mean(y == 2))
        assert (model.predict(X) == y).mean() >= majority


class TestLSH:
    def test_matches_exact_nn_closely(self, mini_dataset):
        X, y = mini_dataset.X, mini_dataset.labels
        exact = NearNeighborClassifier().fit(X, y)
        approx = LSHNearNeighbor(n_tables=12, n_bits=4).fit(X, y)
        sample = X[:: max(1, len(X) // 60)]
        agreement = float(np.mean(exact.predict(sample) == approx.predict(sample)))
        assert agreement >= 0.8

    def test_candidate_fraction_is_sublinear(self, mini_dataset):
        X, y = mini_dataset.X, mini_dataset.labels
        approx = LSHNearNeighbor(n_tables=6, n_bits=8).fit(X, y)
        fraction = approx.mean_candidate_fraction(X[:40])
        assert fraction < 0.9  # inspects a strict subset on average

    def test_empty_database_rejected(self):
        with pytest.raises(ValueError):
            LSHNearNeighbor().fit(np.zeros((0, 3)), np.zeros(0))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LSHNearNeighbor().predict_one(np.zeros(3))


class TestRegression:
    def test_recovers_smooth_function(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(0, 1, size=(150, 3))
        y = 2.0 + 4.0 * X[:, 0]
        reg = KernelRidgeRegressor(ridge=1e-4, sigma=0.3).fit(X, y)
        predictions = reg.predict_value(X)
        assert np.abs(predictions - y).mean() < 0.2

    def test_predictions_clamped_into_factor_range(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(0, 1, size=(60, 2))
        y = rng.uniform(1, 8, size=60)
        reg = KernelRidgeRegressor().fit(X, y)
        factors = reg.predict(X)
        assert factors.min() >= 1 and factors.max() <= 8

    def test_raw_values_can_leave_label_range(self):
        # The paper's extrapolation point: regression is not confined to
        # the trained label range.
        X = np.linspace(0, 1, 40)[:, None]
        y = 1.0 + 7.0 * X[:, 0]  # labels 1..8 on the training interval
        reg = KernelRidgeRegressor(ridge=1e-6, sigma=0.2, kernel="rbf").fit(X, y)
        raw = reg.predict_value(np.array([[1.6]]))
        # Outside the data the RBF prediction decays toward the mean: the
        # important property is that it is *not* snapped to {1..8}.
        assert raw.dtype == np.float64
        assert not float(raw[0]).is_integer()

    def test_loocv_regression_reasonable(self, mini_dataset):
        predictions = loocv_regression_predictions(
            mini_dataset.X, mini_dataset.labels
        )
        assert predictions.shape == (len(mini_dataset),)
        assert set(np.unique(predictions)) <= set(range(1, 9))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            KernelRidgeRegressor(ridge=0.0)
        with pytest.raises(ValueError):
            KernelRidgeRegressor(kernel="linear")
