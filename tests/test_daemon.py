"""The serve daemon: protocol over real sockets, micro-batching, hot
reload, healthz, and drain-shaped shutdown.

Every test runs a real asyncio TCP server on an ephemeral port via
:class:`BackgroundDaemon` and talks to it with plain blocking sockets —
the same way an external client would.
"""

import dataclasses
import json
import socket
import threading
import time

import pytest

from repro.registry import ArtifactStore, train_model_artifact
from repro.serve import (
    ERROR_BAD_FEATURE_VECTOR,
    ERROR_INVALID_JSON,
    ERROR_MALFORMED_REQUEST,
    ERROR_OVERLOADED,
    BackgroundDaemon,
    DaemonConfig,
    ServeDaemon,
)

from tests.test_model_artifacts import synthetic_dataset


@pytest.fixture(scope="module")
def dataset():
    return synthetic_dataset()


@pytest.fixture(scope="module")
def artifact(dataset):
    return train_model_artifact(dataset)


@pytest.fixture
def store(tmp_path, artifact):
    store = ArtifactStore(tmp_path)
    store.store("base", artifact)
    return store


def _features(dataset, row=0):
    return [float(v) for v in dataset.X[row]]


class _Client:
    """A blocking JSON-lines client for one daemon connection."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=30)
        self.stream = self.sock.makefile("rw", encoding="utf-8", newline="\n")

    def send(self, request: dict) -> None:
        self.stream.write(json.dumps(request) + "\n")
        self.stream.flush()

    def send_raw(self, line: str) -> None:
        self.stream.write(line + "\n")
        self.stream.flush()

    def recv(self) -> dict:
        return json.loads(self.stream.readline())

    def ask(self, request: dict) -> dict:
        self.send(request)
        return self.recv()

    def close(self) -> None:
        self.sock.close()


def _run(store, config=None, **kwargs):
    daemon = ServeDaemon(
        store.path_for("base"), config or DaemonConfig(**kwargs), store=store
    )
    return BackgroundDaemon(daemon)


class DaemonHarness:
    """The server factory behind the wire-protocol tests.

    ``self._run(store, ...)`` yields a server object exposing at least
    ``address`` (and for the classes below, ``gateway.counters``).  The
    multi-process suite subclasses the test classes with a harness whose
    ``_run`` points the same tests at a running worker cluster instead —
    same wire contract, different server shape.
    """

    def _run(self, store, config=None, **kwargs):
        return _run(store, config, **kwargs)


class TestProtocol(DaemonHarness):
    def test_feature_request_round_trip(self, store, dataset):
        with self._run(store) as daemon:
            client = _Client(daemon.address)
            response = client.ask({"id": 1, "features": _features(dataset)})
            client.close()
        assert response["ok"] is True
        assert response["id"] == 1
        assert 1 <= response["factor"] <= 8

    def test_error_taxonomy_over_the_wire(self, store, dataset):
        with self._run(store) as daemon:
            client = _Client(daemon.address)
            client.send_raw("{torn json")
            invalid = client.recv()
            bad = client.ask({"id": 2, "features": [1.0]})
            client.close()
        assert invalid["ok"] is False
        assert invalid["error"]["type"] == ERROR_INVALID_JSON
        assert bad["ok"] is False
        assert bad["error"]["type"] == ERROR_BAD_FEATURE_VECTOR
        assert bad["id"] == 2

    def test_blank_lines_are_skipped(self, store, dataset):
        with self._run(store) as daemon:
            client = _Client(daemon.address)
            client.send_raw("")
            response = client.ask({"id": 3, "features": _features(dataset)})
            client.close()
        assert response["id"] == 3

    def test_pipelined_requests_all_answered(self, store, dataset):
        n = 40
        with self._run(store) as daemon:
            client = _Client(daemon.address)
            for i in range(n):
                client.send({"id": i, "features": _features(dataset, i % 40)})
            responses = [client.recv() for _ in range(n)]
            client.close()
        # Completion-ordered, id-matched: every id exactly once, all ok.
        assert sorted(r["id"] for r in responses) == list(range(n))
        assert all(r["ok"] for r in responses)


class TestMicroBatching:
    def test_concurrent_clients_coalesce_into_batches(self, store, dataset):
        n_clients, per_client = 4, 25
        with _run(store, batch_window_ms=5.0, max_batch=32) as daemon:
            barrier = threading.Barrier(n_clients)
            failures = []

            def client_thread(index):
                try:
                    client = _Client(daemon.address)
                    barrier.wait()
                    for i in range(per_client):
                        client.send(
                            {
                                "id": index * per_client + i,
                                "features": _features(dataset, i % 40),
                            }
                        )
                    responses = [client.recv() for _ in range(per_client)]
                    assert all(r["ok"] for r in responses)
                    client.close()
                except Exception as error:  # pragma: no cover - diagnostic
                    failures.append(error)

            threads = [
                threading.Thread(target=client_thread, args=(i,))
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = daemon.gateway.batch_stats
        assert not failures
        total = n_clients * per_client
        assert stats.batched_requests == total
        # Coalescing happened: far fewer engine batches than requests.
        assert stats.batches < total
        assert stats.max_batch > 1
        assert daemon.gateway.counters.balanced()

    def test_max_batch_one_serves_per_request(self, store, dataset):
        with _run(store, batch_window_ms=0.0, max_batch=1) as daemon:
            client = _Client(daemon.address)
            for i in range(8):
                client.send({"id": i, "features": _features(dataset)})
            responses = [client.recv() for _ in range(8)]
            client.close()
            stats = daemon.gateway.batch_stats
        assert all(r["ok"] for r in responses)
        assert stats.max_batch == 1
        assert stats.batches == 8

    def test_flooding_client_gets_typed_overloaded(self, store, dataset):
        # Queue of 8, one client blasting 200 pipelined requests: the
        # excess must come back as typed overloaded errors, never a hang
        # or a closed connection.
        with _run(store, queue_limit=8, batch_window_ms=0.0) as daemon:
            client = _Client(daemon.address)
            n = 200
            def pump():
                for i in range(n):
                    client.send({"id": i, "features": _features(dataset)})
            pumper = threading.Thread(target=pump)
            pumper.start()
            responses = [client.recv() for _ in range(n)]
            pumper.join()
            client.close()
        assert sorted(r["id"] for r in responses) == list(range(n))
        rejected = [r for r in responses if not r["ok"]]
        for response in rejected:
            assert response["error"]["type"] == ERROR_OVERLOADED
        assert daemon.gateway.counters.balanced()


class TestClassifierFamilies(DaemonHarness):
    """The multi-family wire contract: every classifier — the calibrated
    ensemble included — is addressable per request over the socket."""

    def test_ensemble_request_carries_confidence_and_votes(self, store, dataset):
        with self._run(store) as daemon:
            client = _Client(daemon.address)
            response = client.ask(
                {"id": 1, "classifier": "ensemble", "features": _features(dataset)}
            )
            client.close()
        assert response["ok"] is True
        assert response["classifier"] == "ensemble"
        assert 1 <= response["factor"] <= 8
        assert 0.0 <= response["confidence"] <= 1.0
        assert set(response["votes"]) == {"nn", "svm", "mlp", "forest"}
        for factor in response["votes"].values():
            assert 1 <= factor <= 8

    def test_every_family_answers_over_the_wire(self, store, dataset):
        with self._run(store) as daemon:
            client = _Client(daemon.address)
            responses = {
                name: client.ask(
                    {"id": name, "classifier": name, "features": _features(dataset)}
                )
                for name in ("nn", "svm", "mlp", "forest", "ensemble")
            }
            client.close()
        for name, response in responses.items():
            assert response["ok"] is True, name
            assert response["classifier"] == name
            assert 1 <= response["factor"] <= 8

    def test_mixed_classifier_micro_batch_groups_correctly(self, store, dataset):
        """Pipelined requests alternating classifiers coalesce into
        micro-batches, yet every response matches its request's family and
        equals the per-request answer."""
        names = ("nn", "svm", "mlp", "forest", "ensemble")
        n = 30
        with self._run(store, batch_window_ms=5.0, max_batch=32) as daemon:
            client = _Client(daemon.address)
            scalar = {
                name: client.ask(
                    {"id": f"ref-{name}", "classifier": name,
                     "features": _features(dataset, 0)}
                )
                for name in names
            }
            for i in range(n):
                client.send(
                    {
                        "id": i,
                        "classifier": names[i % len(names)],
                        "features": _features(dataset, 0),
                    }
                )
            responses = [client.recv() for _ in range(n)]
            client.close()
        assert all(r["ok"] for r in responses)
        for response in responses:
            name = names[response["id"] % len(names)]
            assert response["classifier"] == name
            assert response["factor"] == scalar[name]["factor"]
            if name == "ensemble":
                assert response["confidence"] == scalar[name]["confidence"]
                assert response["votes"] == scalar[name]["votes"]
        assert daemon.gateway.counters.balanced()

    def test_unknown_family_is_a_typed_error_over_the_wire(self, store, dataset):
        with self._run(store) as daemon:
            client = _Client(daemon.address)
            response = client.ask(
                {"id": 9, "classifier": "xgboost", "features": _features(dataset)}
            )
            client.close()
        assert response["ok"] is False
        assert response["id"] == 9
        assert response["error"]["type"] == ERROR_MALFORMED_REQUEST
        assert "xgboost" in response["error"]["message"]


class TestHealthz:
    def test_healthz_reports_state(self, store, dataset):
        with _run(store, replicas=3) as daemon:
            client = _Client(daemon.address)
            client.ask({"id": 0, "features": _features(dataset)})
            response = client.ask({"healthz": True, "id": "probe"})
            client.close()
        assert response["ok"] is True
        assert response["id"] == "probe"
        health = response["healthz"]
        assert health["replicas"] == 3
        assert health["artifact"]["checksum"] == daemon.checksum
        assert health["artifact"]["fallback"] is False
        assert health["artifact"]["reloads"] == 0
        assert health["artifact"]["families"] == {
            name: True for name in ("nn", "svm", "mlp", "forest", "ensemble")
        }
        assert health["gateway"]["admitted"] >= 1
        assert health["batching"]["window_ms"] == 2.0
        assert health["uptime_s"] >= 0.0

    def test_healthz_is_never_queued(self, store):
        # healthz answers inline even when the queue is saturated.
        with _run(store, queue_limit=1) as daemon:
            client = _Client(daemon.address)
            response = client.ask({"healthz": True})
            client.close()
        assert response["ok"] is True


class TestHotReload:
    def _tweaked(self, artifact, tag):
        return dataclasses.replace(
            artifact, provenance={**artifact.provenance, "reload": tag}
        )

    def test_reload_swaps_newer_artifact(self, store, artifact, dataset):
        with _run(store) as daemon:
            client = _Client(daemon.address)
            before = client.ask({"id": 0, "features": _features(dataset)})
            checksum_before = daemon.checksum
            time.sleep(0.02)  # newer mtime beyond fs granularity
            store.store("newer", self._tweaked(artifact, 1))
            assert daemon.maybe_reload() is True
            after = client.ask({"id": 1, "features": _features(dataset)})
            client.close()
        assert daemon.reloads == 1
        assert daemon.checksum != checksum_before
        assert daemon.loaded.path.name == "model_newer.rma"
        # Weight-identical retrain: answers must not change.
        assert before["factor"] == after["factor"]

    def test_reload_skips_when_nothing_newer(self, store):
        with _run(store) as daemon:
            assert daemon.maybe_reload() is False
            assert daemon.reloads == 0

    def test_reload_skips_identical_bytes(self, store, artifact):
        with _run(store) as daemon:
            time.sleep(0.02)
            store.store("copy", artifact)  # deterministic bytes: same checksum
            assert daemon.maybe_reload() is False
            assert daemon.reloads == 0

    def test_corrupt_newer_artifact_is_not_swapped_in(self, store, artifact, dataset):
        with _run(store) as daemon:
            time.sleep(0.02)
            bad = store.store("bad", self._tweaked(artifact, 2))
            bad.write_bytes(b"rotten bytes")
            assert daemon.maybe_reload() is False
            client = _Client(daemon.address)
            response = client.ask({"id": 0, "features": _features(dataset)})
            client.close()
        assert response["ok"] is True
        assert daemon.loaded.path.name == "model_base.rma"

    def test_watcher_reloads_without_being_asked(self, store, artifact):
        with _run(store, reload_poll_s=0.05) as daemon:
            time.sleep(0.02)
            store.store("watched", self._tweaked(artifact, 3))
            deadline = time.time() + 5.0
            while daemon.reloads == 0 and time.time() < deadline:
                time.sleep(0.02)
        assert daemon.reloads == 1

    def test_reload_under_live_traffic_drops_nothing(self, store, artifact, dataset):
        n = 120
        with _run(store, batch_window_ms=1.0) as daemon:
            client = _Client(daemon.address)
            received = []

            def reader():
                received.extend(client.recv() for _ in range(n))

            reading = threading.Thread(target=reader)
            reading.start()
            for i in range(n):
                client.send({"id": i, "features": _features(dataset, i % 40)})
                if i == n // 3:
                    time.sleep(0.02)
                    store.store("live", self._tweaked(artifact, 4))
                    assert daemon.maybe_reload() is True
            reading.join()
            client.close()
        assert len(received) == n
        assert all(r["ok"] for r in received)
        assert daemon.reloads == 1
        assert daemon.gateway.counters.balanced()


class TestLifecycle:
    def test_shutdown_answers_everything_admitted(self, store, dataset):
        # Close the daemon while responses may still be in flight: the
        # counters must balance — nothing admitted goes unanswered.
        with _run(store) as daemon:
            client = _Client(daemon.address)
            for i in range(30):
                client.send({"id": i, "features": _features(dataset)})
            responses = [client.recv() for _ in range(30)]
            client.close()
        counters = daemon.gateway.counters
        assert counters.balanced()
        assert len(responses) == 30

    def test_request_during_shutdown_gets_typed_rejection(self, store, dataset):
        # Once stop() has begun, the batch loop is gone: a request read
        # after that moment must be refused with a typed overloaded error
        # — admitting it would strand a token behind the sentinel with a
        # future nothing resolves, deadlocking stop() on its deliveries.
        with _run(store) as daemon:
            client = _Client(daemon.address)
            ok = client.ask({"id": 0, "features": _features(dataset)})
            daemon._closing = True  # stop() in progress, handler still alive
            rejected = client.ask({"id": 1, "features": _features(dataset)})
            client.close()
        assert ok["ok"] is True
        assert rejected["ok"] is False
        assert rejected["id"] == 1
        assert rejected["error"]["type"] == ERROR_OVERLOADED
        assert daemon.gateway.counters.overloaded >= 1
        assert daemon.gateway.counters.balanced()

    def test_shutdown_under_live_traffic_never_hangs(self, store, dataset):
        # Clients keep sending while stop() runs.  Every response that
        # arrives must be ok or a typed error, counters must balance, and
        # stop() must return — the shutdown race left tokens queued behind
        # the sentinel and hung forever on their deliveries.
        stop_flag = threading.Event()
        responses: list[dict] = []
        failures: list[Exception] = []

        def pump(address):
            try:
                client = _Client(address)
                try:
                    i = 0
                    while not stop_flag.is_set():
                        client.send({"id": i, "features": _features(dataset, i % 40)})
                        responses.append(client.recv())
                        i += 1
                finally:
                    client.close()
            except (OSError, ValueError):
                pass  # connection torn down mid-exchange by shutdown
            except Exception as error:  # pragma: no cover - diagnostic
                failures.append(error)

        start = time.time()
        with _run(store, batch_window_ms=1.0) as daemon:
            threads = [
                threading.Thread(target=pump, args=(daemon.address,))
                for _ in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.3)  # traffic flowing; exit triggers stop() under it
        stop_flag.set()
        for thread in threads:
            thread.join(timeout=30)
        assert time.time() - start < 30.0
        assert not failures
        for response in responses:
            assert response["ok"] or response["error"]["type"]
        assert daemon.gateway.counters.balanced()

    def test_idle_connection_does_not_block_shutdown(self, store):
        start = time.time()
        with _run(store) as daemon:
            idle = socket.create_connection(daemon.address, timeout=10)
        assert time.time() - start < 10.0
        idle.close()

    def test_config_validation(self):
        with pytest.raises(ValueError, match="batch_window_ms"):
            DaemonConfig(batch_window_ms=-1.0)
        with pytest.raises(ValueError, match="max_batch"):
            DaemonConfig(max_batch=0)
        with pytest.raises(ValueError, match="replicas"):
            DaemonConfig(replicas=0)

    def test_replicas_share_one_artifact_object(self, store):
        daemon = ServeDaemon(store.path_for("base"), DaemonConfig(replicas=4), store=store)
        engines = daemon.gateway.replicas
        assert len(engines) == 4
        assert all(e.artifact is engines[0].artifact for e in engines)
        daemon.gateway.drain()
