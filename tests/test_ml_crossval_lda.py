"""Unit tests for cross-validation protocols and LDA."""

import numpy as np
import pytest

from repro.ml import (
    OutputCodeClassifier,
    accuracy,
    fit_lda,
    leave_one_benchmark_out,
    loocv_nn,
    loocv_svm,
    loocv_tuned_svm,
)
from repro.ml.near_neighbor import NearNeighborClassifier


class TestLOOCV:
    def test_nn_loocv_shape(self, mini_dataset):
        predictions = loocv_nn(mini_dataset)
        assert predictions.shape == (len(mini_dataset),)
        assert set(np.unique(predictions)) <= set(range(1, 9))

    def test_svm_loocv_shape(self, mini_dataset):
        predictions = loocv_svm(mini_dataset)
        assert predictions.shape == (len(mini_dataset),)

    def test_tuned_svm_beats_chance(self, mini_dataset):
        predictions = loocv_tuned_svm(mini_dataset)
        majority = np.bincount(mini_dataset.labels, minlength=9)[1:].max() / len(mini_dataset)
        assert accuracy(mini_dataset, predictions) > majority - 0.05

    def test_feature_subset_is_respected(self, mini_dataset):
        full = loocv_nn(mini_dataset)
        subset = loocv_nn(mini_dataset, np.array([1, 2, 4, 19]))
        # Different feature views generally give different predictions.
        assert full.shape == subset.shape

    def test_svm_loocv_matches_naive_refit(self, mini_dataset):
        from repro.ml.crossval import loocv_naive

        limit = min(40, len(mini_dataset))
        fast = loocv_svm(mini_dataset, C=10.0, sigma=0.3)[:limit]
        naive = loocv_naive(
            mini_dataset,
            factory=lambda: OutputCodeClassifier(C=10.0, sigma=0.3),
            limit=limit,
        )
        assert float(np.mean(fast == naive)) >= 0.9


class TestLeaveOneBenchmarkOut:
    def test_every_row_predicted(self, mini_dataset):
        predictions = leave_one_benchmark_out(
            mini_dataset, factory=lambda: NearNeighborClassifier()
        )
        assert predictions.shape == (len(mini_dataset),)
        assert set(np.unique(predictions)) <= set(range(1, 9))

    def test_training_never_sees_own_benchmark(self, mini_dataset):
        """Poison one benchmark's labels; held-out predictions for that
        benchmark must not echo the poison (they never saw it)."""
        from dataclasses import replace

        target = mini_dataset.benchmark_names()[0]
        mask = mini_dataset.benchmarks == target
        poisoned_labels = mini_dataset.labels.copy()
        # Give the target benchmark's loops an otherwise-unused label.
        unused = next(c for c in range(1, 9) if not np.any(mini_dataset.labels == c))
        poisoned_labels[mask] = unused
        poisoned = replace(mini_dataset, labels=poisoned_labels)
        predictions = leave_one_benchmark_out(
            poisoned, factory=lambda: NearNeighborClassifier()
        )
        assert not np.any(predictions[mask] == unused)


class TestLDA:
    def test_projection_shape(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(0, 1, (40, 6)), rng.normal(4, 1, (40, 6))])
        y = np.array([0] * 40 + [1] * 40)
        projection = fit_lda(X, y, n_components=1)
        assert projection.transform(X).shape == (80, 1)

    def test_separates_gaussian_classes(self):
        rng = np.random.default_rng(1)
        X = np.vstack([rng.normal(0, 1, (60, 5)), rng.normal(3, 1, (60, 5))])
        y = np.array([0] * 60 + [1] * 60)
        points = fit_lda(X, y, 1).transform(X)[:, 0]
        threshold = points.mean()
        split = (points > threshold).astype(int)
        agreement = max((split == y).mean(), (split != y).mean())
        assert agreement > 0.95

    def test_component_count_bounded_by_classes(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(30, 8))
        y = np.array([0, 1] * 15)
        with pytest.raises(ValueError, match="discriminants"):
            fit_lda(X, y, n_components=2)  # 2 classes -> 1 discriminant max

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="two classes"):
            fit_lda(np.ones((10, 3)), np.zeros(10), 1)

    def test_collinear_features_tolerated(self):
        rng = np.random.default_rng(3)
        base = rng.normal(size=(50, 2))
        X = np.hstack([base, base[:, :1] * 2.0])  # exactly collinear column
        y = (base[:, 0] > 0).astype(int)
        projection = fit_lda(X, y, 1)
        assert np.isfinite(projection.transform(X)).all()

    def test_mini_dataset_projection_orders_classes(self, mini_dataset):
        X, y = mini_dataset.X, mini_dataset.labels
        if len(np.unique(y)) < 3:
            pytest.skip("mini dataset degenerate")
        projection = fit_lda(X, y, 2)
        points = projection.transform(X)
        assert points.shape == (len(X), 2)
        assert np.isfinite(points).all()
