"""Unit tests for loops, trip info, and register classification."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop, TripInfo
from repro.ir.types import DType, Opcode


class TestTripInfo:
    def test_known_implies_counted(self):
        with pytest.raises(ValueError):
            TripInfo(runtime=10, compile_time=10, counted=False)

    def test_compile_time_must_match_runtime(self):
        with pytest.raises(ValueError):
            TripInfo(runtime=10, compile_time=12)

    def test_runtime_must_be_positive(self):
        with pytest.raises(ValueError):
            TripInfo(runtime=0)

    def test_known_property(self):
        assert TripInfo(runtime=8, compile_time=8).known
        assert not TripInfo(runtime=8).known


class TestRegisterClassification:
    def test_carried_register_detection(self):
        builder = LoopBuilder("t", TripInfo(runtime=10))
        acc = builder.carried(DType.F64, init=0.0)
        value = builder.load("a")
        builder.fp(Opcode.FADD, acc, value, dest=acc)
        loop = builder.build()
        assert loop.carried_regs() == {acc}
        assert acc in loop.live_in_regs()
        assert acc not in loop.invariant_regs()

    def test_invariant_register_detection(self):
        builder = LoopBuilder("t", TripInfo(runtime=10))
        scale = builder.reg(DType.F64)  # never defined in the body
        value = builder.load("a")
        builder.store(builder.fp(Opcode.FMUL, value, scale), "out")
        loop = builder.build()
        assert loop.invariant_regs() == {scale}
        assert loop.carried_regs() == set()

    def test_plain_temporaries_are_neither(self):
        builder = LoopBuilder("t", TripInfo(runtime=10))
        value = builder.load("a")
        builder.store(value, "out")
        loop = builder.build()
        assert value in loop.defined_regs()
        assert value not in loop.live_in_regs()


class TestLoopProperties:
    def test_early_exit_detection(self, daxpy_loop):
        assert not daxpy_loop.has_early_exit
        assert daxpy_loop.swp_eligible

    def test_while_loop_blocks_swp(self):
        from repro.workloads.kernels import sentinel_search

        loop = sentinel_search(trip=32, entries=2)
        assert loop.has_early_exit
        assert not loop.swp_eligible

    def test_referenced_arrays(self, daxpy_loop):
        assert daxpy_loop.referenced_arrays() == {"x", "y"}

    def test_empty_body_rejected(self):
        with pytest.raises(ValueError):
            Loop(name="t", body=(), trip=TripInfo(runtime=4))

    def test_duplicate_loop_names_rejected_in_benchmark(self, daxpy_loop):
        from repro.ir.program import Benchmark
        from repro.ir.types import Language

        with pytest.raises(ValueError):
            Benchmark(
                name="b",
                suite="s",
                language=Language.C,
                loops=(daxpy_loop, daxpy_loop),
            )

    def test_with_body_replaces_and_keeps_rest(self, daxpy_loop):
        new = daxpy_loop.with_body(daxpy_loop.body[:2], name="other")
        assert new.size == 2
        assert new.name == "other"
        assert new.trip == daxpy_loop.trip
