"""Quickstart: predict an unroll factor for a loop you wrote yourself.

Builds a small FP loop with the IR DSL, trains the paper's SVM classifier on
the (cached) labelled dataset, asks it for an unroll factor, and checks the
advice against the cycle simulator's full sweep.

Run:  python examples/quickstart.py [--scale 0.25] [--swp]
"""

from __future__ import annotations

import argparse

from repro.heuristics import ORCHeuristic, train_svm_heuristic
from repro.ir import LoopBuilder, Opcode, TripInfo
from repro.ml import selected_feature_union
from repro.pipeline import build_artifacts
from repro.simulate import CostModel


def build_my_loop():
    """A 5-point weighted stencil over a long unknown-trip stream."""
    b = LoopBuilder("example/my_stencil", trip=TripInfo(runtime=2000), entry_count=40)
    acc = None
    for k, weight in enumerate((0.1, 0.2, 0.4, 0.2, 0.1)):
        value = b.load("signal", offset=k)
        acc = (
            b.fp(Opcode.FMUL, value, b.fconst(weight))
            if acc is None
            else b.fp(Opcode.FMA, value, b.fconst(weight), acc)
        )
    b.store(acc, "smoothed")
    return b.build()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--swp", action="store_true")
    args = parser.parse_args()

    loop = build_my_loop()
    print("The loop under consideration:\n")
    print(loop)

    print("\nBuilding / loading the labelled dataset "
          f"(scale={args.scale}, swp={args.swp}) ...")
    artifacts = build_artifacts(loops_scale=args.scale, swp=args.swp)
    dataset = artifacts.dataset
    print(f"  {len(dataset)} labelled loops")

    indices = selected_feature_union(dataset.X, dataset.labels, subsample=400)
    svm = train_svm_heuristic(dataset, feature_indices=indices)
    predicted = svm.predict_loop(loop)
    orc = ORCHeuristic(swp=args.swp).predict_loop(loop)

    print(f"\nSVM-predicted unroll factor : {predicted}")
    print(f"ORC hand heuristic says     : {orc}")

    print("\nGround truth from the cycle simulator:")
    sweep = CostModel(swp=args.swp).sweep(loop)
    best = min(sweep, key=lambda u: sweep[u].total_cycles)
    for factor in range(1, 9):
        cost = sweep[factor]
        marks = "".join(
            tag
            for tag, cond in (
                (" <- optimal", factor == best),
                (" <- SVM", factor == predicted),
                (" <- ORC", factor == orc),
            )
            if cond
        )
        print(f"  u={factor}:  {cost.total_cycles:12,.0f} cycles{marks}")
    ratio = sweep[predicted].total_cycles / sweep[best].total_cycles
    print(f"\nThe SVM's pick is within {ratio - 1:.1%} of optimal.")


if __name__ == "__main__":
    main()
