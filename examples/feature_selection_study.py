"""Feature-selection study: what actually predicts the best unroll factor?

Reproduces the paper's Section 7 analysis: score all 38 features by mutual
information with the label (Table 3), run greedy forward selection for each
classifier (Table 4), and show the punchline the paper highlights — the
body's raw instruction count, "the de facto standard when discussing
unrolling heuristics", is *not* among the most informative features.

Run:  python examples/feature_selection_study.py [--scale 0.25]
"""

from __future__ import annotations

import argparse

from repro.ml import (
    accuracy,
    greedy_forward_selection,
    loocv_nn,
    rank_by_mutual_information,
    selected_feature_union,
)
from repro.pipeline import build_artifacts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--subsample", type=int, default=400)
    args = parser.parse_args()

    artifacts = build_artifacts(loops_scale=args.scale, swp=False)
    dataset = artifacts.dataset
    X, y = dataset.X, dataset.labels

    print(f"Dataset: {len(dataset)} loops x {dataset.n_features} features\n")

    ranked = rank_by_mutual_information(X, y)
    print("Mutual information score, top 5 (the paper's Table 3):")
    for position, scored in enumerate(ranked[:5], start=1):
        print(f"  {position}. {scored.name:26s} MIS={scored.score:.3f}")

    ops_rank = next(i for i, s in enumerate(ranked, start=1) if s.name == "num_ops")
    print(
        f"\n'num_ops' — the de facto standard unrolling signal — ranks "
        f"only #{ops_rank} of {len(ranked)}."
    )

    for classifier in ("nn", "svm"):
        print(f"\nGreedy forward selection for {classifier.upper()} (the paper's Table 4):")
        chosen = greedy_forward_selection(
            X, y, classifier, n_features=5, subsample=args.subsample
        )
        for position, scored in enumerate(chosen, start=1):
            print(f"  {position}. {scored.name:26s} training error={scored.score:.2f}")

    union = selected_feature_union(X, y, subsample=args.subsample)
    print(f"\nThe Section 6 working set is the union of those lists "
          f"({len(union)} features):")
    print("  " + ", ".join(dataset.feature_names[i] for i in union))

    all_acc = accuracy(dataset, loocv_nn(dataset))
    sub_acc = accuracy(dataset, loocv_nn(dataset, union))
    print(
        f"\nNN LOOCV accuracy: {all_acc:.1%} with all 38 features, "
        f"{sub_acc:.1%} with the selected subset — "
        + ("the subset wins, as Section 7 claims." if sub_acc >= all_acc else "no gain here.")
    )


if __name__ == "__main__":
    main()
