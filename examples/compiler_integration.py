"""Compile a whole benchmark with a learned unrolling heuristic.

This is the paper's deployment scenario (Section 6.1): pick a benchmark,
train the classifiers on every *other* benchmark's loops, compile each of
its loops with the predicted factor, and compare whole-program runtimes
against ORC's hand heuristic and the measured oracle.

Run:  python examples/compiler_integration.py [--benchmark 179.art] [--scale 0.25]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.heuristics import ORCHeuristic, OracleHeuristic, train_nn_heuristic, train_svm_heuristic
from repro.ml import selected_feature_union
from repro.pipeline import build_artifacts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="179.art")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--swp", action="store_true")
    args = parser.parse_args()

    artifacts = build_artifacts(loops_scale=args.scale, swp=args.swp)
    suite, table, dataset = artifacts.suite, artifacts.table, artifacts.dataset
    benchmark = suite.benchmark_by_name(args.benchmark)
    rows = table.rows_for_benchmark(args.benchmark)
    print(f"{benchmark.name}: {benchmark.n_loops} innermost loops "
          f"({benchmark.suite}, {benchmark.language.name})")

    # Leave-one-benchmark-out training, exactly like the paper.
    train = dataset.exclude_benchmark(args.benchmark)
    indices = selected_feature_union(train.X, train.labels, subsample=400)
    heuristics = {
        "orc": ORCHeuristic(swp=args.swp),
        "nn": train_nn_heuristic(train, feature_indices=indices),
        "svm": train_svm_heuristic(train, feature_indices=indices),
        "oracle": OracleHeuristic.from_dataset(dataset),
    }

    print(f"\n{'loop':28s} {'orc':>4s} {'nn':>4s} {'svm':>4s} {'oracle':>6s} {'best':>5s}")
    totals = dict.fromkeys(heuristics, 0.0)
    for row in rows:
        loop = benchmark.loop_by_name(str(table.loop_names[row]))
        picks = {name: h.predict_loop(loop) for name, h in heuristics.items()}
        best = int(np.argmin(table.true_cycles[row])) + 1
        for name, factor in picks.items():
            totals[name] += table.true_cycles[row, factor - 1]
        short = loop.name.split("/")[-1]
        print(f"{short:28s} {picks['orc']:4d} {picks['nn']:4d} {picks['svm']:4d}"
              f" {picks['oracle']:6d} {best:5d}")

    serial = totals["orc"] * (1 - benchmark.loop_fraction) / benchmark.loop_fraction
    print("\nWhole-program runtime (cycles) and improvement over ORC:")
    orc_total = totals["orc"] + serial
    for name in ("orc", "nn", "svm", "oracle"):
        runtime = totals[name] + serial
        gain = orc_total / runtime - 1.0
        print(f"  {name:7s} {runtime:14,.0f}   {gain:+7.2%}")


if __name__ == "__main__":
    main()
