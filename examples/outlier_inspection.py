"""Outlier inspection with near-neighbor confidence.

The paper's Section 5.1 sketches a tool: "Near neighbors can be used to
assign a confidence to a query. ... One can imagine a tool that
automatically detects outliers by setting low confidence examples aside. An
engineer could then visually inspect outlier loops to determine why they are
hard to classify."  This example is that tool: it ranks the labelled loops
by neighbor confidence and prints the hardest ones with their IR, so a
compiler engineer can see *which kinds of loops* the training set covers
poorly.

Run:  python examples/outlier_inspection.py [--scale 0.25] [--show 3]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.ml import NearNeighborClassifier, selected_feature_union
from repro.pipeline import build_artifacts


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--show", type=int, default=3, help="outlier loops to print")
    args = parser.parse_args()

    artifacts = build_artifacts(loops_scale=args.scale, swp=False)
    dataset = artifacts.dataset
    indices = selected_feature_union(dataset.X, dataset.labels, subsample=400)
    X = dataset.X[:, indices]

    model = NearNeighborClassifier().fit(X, dataset.labels)
    print(f"Scoring {len(dataset)} loops by neighbor confidence ...")
    predictions = [model.predict_one(x) for x in X]

    confidence = np.array([p.confidence for p in predictions])
    n_neighbors = np.array([p.n_neighbors for p in predictions])
    fallbacks = np.array([p.used_fallback for p in predictions])

    print(f"  mean confidence        : {confidence.mean():.2f}")
    print(f"  queries with no neighbor: {(n_neighbors == 0).sum()}")
    print(f"  1-NN fallbacks          : {fallbacks.sum()}")

    # Confidence correlates with being right — the signal that makes the
    # outlier tool useful.
    predicted = np.array([p.label for p in predictions])
    confident = confidence >= 0.8
    if confident.any() and (~confident).any():
        acc_hi = float(np.mean(predicted[confident] == dataset.labels[confident]))
        acc_lo = float(np.mean(predicted[~confident] == dataset.labels[~confident]))
        print(f"  accuracy at confidence >= 0.8 : {acc_hi:.2f}")
        print(f"  accuracy below 0.8            : {acc_lo:.2f}")

    order = np.argsort(confidence)
    loops = {l.name: l for b in artifacts.suite.benchmarks for l in b.loops}
    print(f"\nThe {args.show} least-confident loops (hardest to classify):")
    for row in order[: args.show]:
        name = str(dataset.loop_names[row])
        print(
            f"\n--- {name}  confidence={confidence[row]:.2f} "
            f"neighbors={n_neighbors[row]} label=u{dataset.labels[row]} "
            f"predicted=u{predicted[row]} ---"
        )
        print(loops[name])


if __name__ == "__main__":
    main()
