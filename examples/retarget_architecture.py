"""Retargeting: retune the unrolling heuristic for a new machine overnight.

The paper's Section 4.5 pitch: "quickly retuning the unrolling heuristic to
match architectural changes will be trivial. We will simply have to collect
a new labeled dataset, which is a fully automated process, and then we can
apply the learning algorithm of our choice."

This example does exactly that: it relabels the same 72-benchmark suite on
a *narrow* 3-issue machine and on a *wide* 8-issue machine, trains one SVM
per machine, and shows how the learned advice shifts — no heuristic code was
edited anywhere.

Run:  python examples/retarget_architecture.py [--scale 0.15]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.heuristics import train_svm_heuristic
from repro.machine import ITANIUM2, NARROW, WIDE
from repro.ml import selected_feature_union
from repro.pipeline import LabelingConfig, build_artifacts
from repro.workloads import kernels

PROBE_KERNELS = ("daxpy", "stencil3", "triad", "dot", "int_hash", "cmul")


def heuristic_for(machine, scale):
    config = LabelingConfig(swp=False, machine=machine)
    artifacts = build_artifacts(loops_scale=scale, config=config)
    dataset = artifacts.dataset
    indices = selected_feature_union(dataset.X, dataset.labels, subsample=400)
    histogram = dataset.label_histogram()
    return (
        train_svm_heuristic(dataset, feature_indices=indices, machine=machine),
        histogram,
        len(dataset),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    args = parser.parse_args()

    machines = (NARROW, ITANIUM2, WIDE)
    trained = {}
    for machine in machines:
        print(f"Relabelling the suite on {machine.name} "
              f"(issue width {machine.issue_width}) ...")
        trained[machine.name] = heuristic_for(machine, args.scale)

    print("\nOptimal-factor histograms per machine (labels shift with the target):")
    print(f"{'machine':18s}" + "".join(f"  u={u}" for u in range(1, 9)))
    for machine in machines:
        _, histogram, n = trained[machine.name]
        row = "".join(f" {v:4.0%}" for v in histogram)
        print(f"{machine.name:18s}{row}   ({n} loops)")

    print("\nPer-kernel advice from each machine's freshly trained SVM:")
    print(f"{'kernel':14s}" + "".join(f" {m.name:>16s}" for m in machines))
    for name in PROBE_KERNELS:
        loop = kernels.KERNELS[name]()
        picks = [trained[m.name][0].predict_loop(loop) for m in machines]
        print(f"{name:14s}" + "".join(f" {p:16d}" for p in picks))

    mean_pick = {
        m.name: float(np.mean([trained[m.name][0].predict_loop(kernels.KERNELS[k]())
                               for k in PROBE_KERNELS]))
        for m in machines
    }
    print(
        "\nWider machines reward bigger factors: mean advice "
        + " -> ".join(f"{m.name}={mean_pick[m.name]:.1f}" for m in machines)
    )


if __name__ == "__main__":
    main()
