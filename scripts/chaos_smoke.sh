#!/usr/bin/env bash
# Chaos smoke: drive the CLI through real induced failures and gate on
# clean recovery.  Runs in CI (the chaos-smoke job) and locally:
#
#   PYTHONPATH=src bash scripts/chaos_smoke.sh
#
# Seven scenarios, each a hard gate (set -e): a worker kill must fall back
# to serial and still produce a table; a kill at a checkpoint must resume;
# a corrupted cache entry must self-heal; a bit-flipped model artifact
# must be quarantined and served from the registry's last good; a serve
# daemon killed -9 under concurrent clients must leave every client with
# typed responses only (no hangs, no untyped crashes) and come back clean;
# a multi-process cluster must survive a worker kill -9 — survivors keep
# answering while the supervisor respawns the dead slot; and the closed
# lifecycle loop (drift scan over the rotated request log, retrain,
# canary, promotion) must survive a kill at a checkpoint, resume
# bit-identically, and end in a promotion the live cluster hot-reloads —
# or a clean rollback to last-good — with balanced healthz either way.
set -euo pipefail

export REPRO_CACHE_DIR="$(mktemp -d)"
export REPRO_ARTIFACT_DIR="$(mktemp -d)"
WORK="$(mktemp -d)"
DAEMON_PID=""
trap 'test -n "$DAEMON_PID" && kill -9 "$DAEMON_PID" 2>/dev/null; rm -rf "$REPRO_CACHE_DIR" "$REPRO_ARTIFACT_DIR" "$WORK"' EXIT
SCALE=(--scale 0.02 --seed 123)

# A fault-plan seed whose byte-flip offset lands mid-file (array data,
# where corruption is guaranteed to be detected, not zip-header slack).
corrupting_plan() {  # $1 = file to target, $2 = op
  python - "$1" "$2" <<'EOF'
import json, sys
from pathlib import Path
size = Path(sys.argv[1]).stat().st_size
target = size // 2
seed = next(s for s in range(200_000)
            if abs((s * 2654435761 + size) % size - target) < max(1, size // 8))
print(json.dumps({"seed": seed, "rules": [{"op": sys.argv[2]}]}))
EOF
}

echo "== 1. worker kill -> broken-pool serial fallback =="
out=$(python -m repro measure "${SCALE[@]}" --jobs 2 --fault-plan \
  '{"rules": [{"op": "worker.kill", "match": "*:u2#a0", "times": 1}]}')
echo "$out"
grep -q "broken-pool fallback" <<<"$out"
grep -q "wrote table" <<<"$out"
python -m repro cache clear >/dev/null

echo "== 2. kill at a checkpoint boundary, then --resume =="
rc=0
out=$(python -m repro measure "${SCALE[@]}" --fault-plan \
  '{"rules": [{"op": "run.abort", "skip": 14}]}') || rc=$?
echo "$out"
test "$rc" -eq 3
out=$(python -m repro measure "${SCALE[@]}" --resume)
echo "$out"
grep -q "resuming from" <<<"$out"
grep -q "15 unit(s) committed" <<<"$out"
grep -q "wrote table" <<<"$out"

echo "== 3. cache corruption -> quarantine + re-measure =="
entry=$(ls "$REPRO_CACHE_DIR"/measurements_*.npz)
plan=$(corrupting_plan "$entry" cache.corrupt)
out=$(python -m repro measure "${SCALE[@]}" --fault-plan "$plan")
echo "$out"
grep -q "wrote table" <<<"$out"
out=$(python -m repro cache stats)
echo "$out"
grep -q "1 quarantined" <<<"$out"

echo "== 4. artifact bit-flip -> quarantine + last-good fallback =="
python -m repro train "${SCALE[@]}" --out "$REPRO_ARTIFACT_DIR/model_good.rma" >/dev/null
python -m repro train "${SCALE[@]}" --out "$REPRO_ARTIFACT_DIR/model_victim.rma" >/dev/null
python - "$WORK/requests.jsonl" <<'EOF'
import json, sys
source = "loop chaos trip=64 entries=4\n  %x = load a[i]\n  store %x -> b[i]\nend\n"
with open(sys.argv[1], "w") as handle:
    handle.write(json.dumps({"id": 0, "source": source}) + "\n")
EOF
plan=$(corrupting_plan "$REPRO_ARTIFACT_DIR/model_victim.rma" artifact.bitflip)
out=$(python -m repro serve --model "$REPRO_ARTIFACT_DIR/model_victim.rma" \
  --input "$WORK/requests.jsonl" --fault-plan "$plan" 2>"$WORK/serve.err")
echo "$out"; cat "$WORK/serve.err"
grep -q "WARNING: serving last-good artifact model_good.rma" "$WORK/serve.err"
grep -q '"ok": true' <<<"$out"
test -f "$REPRO_ARTIFACT_DIR/model_victim.rma.corrupt"

echo "== 5. daemon kill -9 under concurrent clients -> typed recovery =="
start_daemon() {  # starts the daemon on an ephemeral port; sets DAEMON_PID/PORT
  python -m repro serve --model "$REPRO_ARTIFACT_DIR/model_good.rma" \
    --listen 127.0.0.1:0 >"$WORK/daemon.out" 2>"$WORK/daemon.err" &
  DAEMON_PID=$!
  for _ in $(seq 1 100); do
    grep -q "daemon listening on" "$WORK/daemon.out" 2>/dev/null && break
    sleep 0.1
  done
  grep -q "daemon listening on" "$WORK/daemon.out"
  PORT=$(sed -n 's/.*daemon listening on .*:\([0-9]*\)$/\1/p' "$WORK/daemon.out")
}

start_daemon
echo "daemon up on port $PORT (pid $DAEMON_PID)"
# Three concurrent clients stream requests; the daemon is shot mid-traffic.
# --expect-kill: transport failure is a recoverable outcome, hangs and
# untyped output are not.
client_pids=()
for i in 1 2 3; do
  python scripts/daemon_chaos_client.py 127.0.0.1 "$PORT" 2000 --expect-kill \
    >"$WORK/client$i.out" 2>&1 &
  client_pids+=($!)
done
sleep 0.5
kill -9 "$DAEMON_PID"
rc=0
for pid in "${client_pids[@]}"; do wait "$pid" || rc=$?; done
cat "$WORK"/client[123].out
test "$rc" -eq 0
DAEMON_PID=""

# Restart: the daemon must come back clean and serve typed responses,
# and answer a healthz probe with balanced gateway state.
start_daemon
echo "daemon restarted on port $PORT"
python scripts/daemon_chaos_client.py 127.0.0.1 "$PORT" 200
python - 127.0.0.1 "$PORT" <<'EOF'
import json, socket, sys
with socket.create_connection((sys.argv[1], int(sys.argv[2])), timeout=15) as sock:
    stream = sock.makefile("rw", encoding="utf-8", newline="\n")
    stream.write(json.dumps({"healthz": True}) + "\n")
    stream.flush()
    health = json.loads(stream.readline())["healthz"]
counters = health["gateway"]
assert counters["admitted"] == (
    counters["served_ok"] + counters["served_error"] + counters["deadline_exceeded"]
), counters
assert health["batching"]["batched_requests"] == counters["admitted"], health
print(f"healthz: {counters['admitted']} admitted, {counters['served_ok']} ok, "
      f"{health['batching']['batches']} batch(es), checksum {health['artifact']['checksum'][:12]}")
EOF
kill "$DAEMON_PID" && wait "$DAEMON_PID" || true
DAEMON_PID=""

echo "== 6. cluster worker kill -9 -> survivors answer, supervisor restarts =="
# A 2-worker cluster behind one port.  Shoot one worker: the survivor
# must keep answering through the shared port while the supervisor
# respawns the dead slot, and the healed cluster's aggregated healthz
# must balance.
python -m repro serve --model "$REPRO_ARTIFACT_DIR/model_good.rma" \
  --listen 127.0.0.1:0 --workers 2 \
  --request-log "$WORK/cluster_requests.jsonl" \
  >"$WORK/cluster.out" 2>"$WORK/cluster.err" &
DAEMON_PID=$!
# Worker spawn is import-heavy; give startup a generous window.
for _ in $(seq 1 300); do
  grep -q "daemon listening on" "$WORK/cluster.out" 2>/dev/null && break
  sleep 0.2
done
grep -q "daemon listening on" "$WORK/cluster.out"
PORT=$(sed -n 's/.*daemon listening on .*:\([0-9]*\) workers=.*/\1/p' "$WORK/cluster.out")
for _ in $(seq 1 300); do
  test "$(grep -c " ready on " "$WORK/cluster.out" 2>/dev/null)" -ge 2 && break
  sleep 0.2
done
mapfile -t worker_pids < <(sed -n 's/^worker [0-9]* pid \([0-9]*\) ready on .*/\1/p' "$WORK/cluster.out")
echo "cluster up on port $PORT (supervisor $DAEMON_PID, workers ${worker_pids[*]})"
test "${#worker_pids[@]}" -ge 2

kill -9 "${worker_pids[0]}"
# New connections land on the survivor (the kernel stops routing to a
# dead listener); every request must get a typed answer — no --expect-kill.
python scripts/daemon_chaos_client.py 127.0.0.1 "$PORT" 200
for _ in $(seq 1 300); do
  grep -q " restarted on " "$WORK/cluster.out" 2>/dev/null && break
  sleep 0.2
done
grep -q " restarted on " "$WORK/cluster.out"
python - 127.0.0.1 "$PORT" <<'EOF'
import json, socket, sys, time
deadline = time.time() + 30
while True:
    with socket.create_connection((sys.argv[1], int(sys.argv[2])), timeout=15) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        stream.write(json.dumps({"healthz": True, "aggregate": True}) + "\n")
        stream.flush()
        health = json.loads(stream.readline())["healthz"]
    if health["workers_alive"] == 2 or time.time() > deadline:
        break
    time.sleep(0.5)
assert health["workers_alive"] == 2, health
assert health["balanced"] is True, health
assert health["gateway"]["admitted"] >= 200, health["gateway"]
print(f"aggregate healthz: {health['workers_alive']}/{health['cluster_size']} alive, "
      f"{health['gateway']['admitted']} admitted, balanced={health['balanced']}")
EOF
kill "$DAEMON_PID" && wait "$DAEMON_PID" || true
DAEMON_PID=""
grep -q "cluster stopped: 1 worker restart(s)" "$WORK/cluster.err"
python - "$WORK/cluster_requests.jsonl" <<'EOF'
import json, sys
records = [json.loads(line) for line in open(sys.argv[1]) if line.strip()]
assert len(records) >= 200, len(records)
assert all(r["worker"] in (0, 1) for r in records)
assert all(r["features_sha256"] for r in records if r["ok"])
print(f"request log: {len(records)} records from workers "
      f"{sorted({r['worker'] for r in records})}")
EOF

echo "== 7. closed lifecycle loop: kill at a checkpoint, resume, promote =="
# A 2-worker cluster writes a size-rotated request log; traffic drifts
# (the chaos client's constant feature vectors are nothing like the
# training distribution), the lifecycle run is shot at a checkpoint via
# the fault plan, and the resumed run must carry the loop to a terminal
# outcome: promotion (picked up by the live cluster's hot-reload
# watcher) or a clean rollback to last-good.  Never a torn registry.
python -m repro train "${SCALE[@]}" --out "$REPRO_ARTIFACT_DIR/model_base.rma" >/dev/null
LIFECYCLE_LOG="$WORK/lifecycle_requests.jsonl"
python -m repro serve --model "$REPRO_ARTIFACT_DIR/model_base.rma" \
  --listen 127.0.0.1:0 --workers 2 --reload-poll-s 0.2 \
  --request-log "$LIFECYCLE_LOG" --request-log-max-bytes 20000 \
  >"$WORK/lifecycle.out" 2>"$WORK/lifecycle.err" &
DAEMON_PID=$!
for _ in $(seq 1 300); do
  grep -q "daemon listening on" "$WORK/lifecycle.out" 2>/dev/null && break
  sleep 0.2
done
grep -q "daemon listening on" "$WORK/lifecycle.out"
PORT=$(sed -n 's/.*daemon listening on .*:\([0-9]*\) workers=.*/\1/p' "$WORK/lifecycle.out")
for _ in $(seq 1 300); do
  test "$(grep -c " ready on " "$WORK/lifecycle.out" 2>/dev/null)" -ge 2 && break
  sleep 0.2
done
echo "lifecycle cluster up on port $PORT"
python scripts/daemon_chaos_client.py 127.0.0.1 "$PORT" 200

# The log writer batches; wait for every served request to land, walking
# the rotated segment chain the same way the lifecycle replay will.
python - "$LIFECYCLE_LOG" <<'EOF'
import sys, time
from repro.serve import iter_request_log
deadline = time.time() + 30
while True:
    n = sum(1 for _ in iter_request_log(sys.argv[1]))
    if n >= 200 or time.time() > deadline:
        break
    time.sleep(0.2)
assert n >= 200, f"request log drained only {n}/200 records"
print(f"request log drained: {n} records")
EOF
test -f "$LIFECYCLE_LOG.1"  # 200 records at 20 KB/segment must rotate

# Kill the lifecycle run at its 4th checkpoint: replay, drift, retrain
# and the canary verdict are committed, the promotion never starts.
rc=0
out=$(python -m repro lifecycle run "${SCALE[@]}" --log "$LIFECYCLE_LOG" \
  --force --window 16 \
  --fault-plan '{"rules": [{"op": "run.abort", "skip": 3}]}') || rc=$?
echo "$out"
test "$rc" -eq 3
out=$(python -m repro lifecycle status)
echo "$out"
grep -q '"in_progress": true' <<<"$out"

out=$(python -m repro lifecycle run "${SCALE[@]}" --log "$LIFECYCLE_LOG" \
  --force --window 16 --resume)
echo "$out"
grep -q "resuming from" <<<"$out"
outcome=$(sed -n 's/^lifecycle outcome: //p' <<<"$out")
case "$outcome" in
  promoted|rolled-back) echo "lifecycle terminal outcome: $outcome" ;;
  *) echo "unexpected lifecycle outcome: '$outcome'"; exit 1 ;;
esac
# Terminal outcome: the journal is consumed and the registry is whole.
test ! -f "$REPRO_ARTIFACT_DIR/lifecycle_base.journal.jsonl"
test -f "$REPRO_ARTIFACT_DIR/model_base.rma"
test ! -f "$REPRO_ARTIFACT_DIR/model_base.rma.staged"

if [ "$outcome" = "promoted" ]; then
  test -f "$REPRO_ARTIFACT_DIR/model_base.rma.lastgood"
  checksum12=$(sed -n 's/^promoted \([0-9a-f]*\) over.*/\1/p' <<<"$out")
  test -n "$checksum12"
  # Both workers hot-reload the promoted artifact with zero downtime.
  python - 127.0.0.1 "$PORT" "$checksum12" <<'EOF'
import json, socket, sys, time
deadline = time.time() + 30
seen = set()
while time.time() < deadline and len(seen) < 2:
    with socket.create_connection((sys.argv[1], int(sys.argv[2])), timeout=15) as sock:
        stream = sock.makefile("rw", encoding="utf-8", newline="\n")
        stream.write(json.dumps({"healthz": True}) + "\n")
        stream.flush()
        health = json.loads(stream.readline())["healthz"]
    if health["artifact"]["checksum"].startswith(sys.argv[3]):
        seen.add(health["worker"])
    else:
        time.sleep(0.2)
assert len(seen) == 2, f"workers serving the promotion: {sorted(seen)}"
print(f"hot reload: workers {sorted(seen)} now serve {sys.argv[3]}")
EOF
fi

# The cluster survived the whole loop: fresh traffic is all typed, both
# workers are alive, and the aggregated counters balance.
python scripts/daemon_chaos_client.py 127.0.0.1 "$PORT" 100
python - 127.0.0.1 "$PORT" <<'EOF'
import json, socket, sys
with socket.create_connection((sys.argv[1], int(sys.argv[2])), timeout=15) as sock:
    stream = sock.makefile("rw", encoding="utf-8", newline="\n")
    stream.write(json.dumps({"healthz": True, "aggregate": True}) + "\n")
    stream.flush()
    health = json.loads(stream.readline())["healthz"]
assert health["workers_alive"] == 2, health
assert health["balanced"] is True, health
assert health["gateway"]["admitted"] >= 300, health["gateway"]
# The log writer is asynchronous: the first 200 records were drained
# above, the last 100 may still be queued at probe time.
assert health["request_log_bytes"] > 0, health
assert health["request_log_records"] >= 200, health
print(f"aggregate healthz: {health['workers_alive']}/{health['cluster_size']} alive, "
      f"{health['gateway']['admitted']} admitted, balanced={health['balanced']}, "
      f"request log {health['request_log_records']} records / "
      f"{health['request_log_bytes']} bytes")
EOF
kill "$DAEMON_PID" && wait "$DAEMON_PID" || true
DAEMON_PID=""

echo "chaos smoke: all scenarios recovered"
