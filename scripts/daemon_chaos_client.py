#!/usr/bin/env python
"""Chaos-smoke client for the serve daemon.

Streams feature requests at a daemon and validates the failure contract:
every line received must be valid JSON that is either ``ok: true`` or a
*typed* error from the serve taxonomy — never an untyped crash dump — and
no read may hang (socket timeout).  With ``--expect-kill`` the daemon is
allowed to die mid-traffic: transport failures (reset, EOF, timeout) are
then *recoverable* outcomes and exit 0; without it they fail the run.

    python scripts/daemon_chaos_client.py HOST PORT N [--expect-kill]
"""

import json
import socket
import sys

TYPED_ERRORS = {
    "invalid-json",
    "malformed-request",
    "bad-feature-vector",
    "unparseable-loop",
    "internal-error",
    "overloaded",
    "deadline-exceeded",
}


def main(argv) -> int:
    host, port, n = argv[1], int(argv[2]), int(argv[3])
    expect_kill = "--expect-kill" in argv[4:]
    ok = typed = 0
    try:
        with socket.create_connection((host, port), timeout=15) as sock:
            sock.settimeout(15)  # a hung read is always a failure
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            for i in range(n):
                request = {"id": i, "features": [float(i % 7)] * 38}
                if i % 9 == 5:
                    request["features"] = [1.0]  # typed-error fodder
                stream.write(json.dumps(request) + "\n")
                stream.flush()
                line = stream.readline()
                if not line:
                    raise ConnectionError("daemon closed the connection")
                response = json.loads(line)  # non-JSON output = hard fail
                if response.get("ok"):
                    ok += 1
                elif response.get("error", {}).get("type") in TYPED_ERRORS:
                    typed += 1
                else:
                    print(f"UNTYPED response: {line.strip()}", file=sys.stderr)
                    return 1
    except (ConnectionError, socket.timeout, OSError) as error:
        if expect_kill:
            print(f"client: daemon died as expected after {ok} ok "
                  f"({type(error).__name__}); recovered cleanly")
            return 0
        print(f"client: unexpected transport failure: {error}", file=sys.stderr)
        return 1
    print(f"client: {ok} ok, {typed} typed error(s), no hangs")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
