"""Performance benchmarking: the measure -> label -> select trajectory.

``repro-unroll bench`` times the pipeline's expensive stages twice — once
through the seed's reference implementations, once through the optimized
engines — and emits a ``BENCH_<date>.json`` report so every PR leaves a
perf data point behind.
"""

from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    SCHEMA_VERSION,
    BenchConfig,
    BenchReport,
    StageTiming,
    run_bench,
    write_report,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "SCHEMA_VERSION",
    "BenchConfig",
    "BenchReport",
    "StageTiming",
    "run_bench",
    "write_report",
]
