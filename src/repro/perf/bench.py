"""The ``repro bench`` harness: time measure -> dedup -> label -> select
-> serve.

Every stage is timed through two implementations:

* **reference** — the seed's code paths, kept verbatim behind
  ``engine="reference"`` switches (from-scratch loop analysis per regime,
  per-loop scalar noise draws, from-scratch NN/SVM refits per candidate
  feature subset);
* **optimized** — the current defaults (two-stage cost model with the
  shared analysis cache, batched noise, incremental Gram/distance
  workspaces, artifact-served batch prediction).

The report is written as ``BENCH_<date>.json`` (schema below, versioned by
:data:`BENCH_SCHEMA_VERSION`) so the repository accumulates a perf
trajectory one data point per PR.  See ``docs/architecture.md`` for the
schema documentation.
"""

from __future__ import annotations

import dataclasses
import datetime
import json
import platform
import time
from pathlib import Path

import numpy as np

#: Version of the BENCH_<date>.json schema; bump on layout changes.
#: v2: added the ``serve`` stage (retrain-per-request vs artifact-served
#: batch prediction) and its sizing knobs in ``config``.
#: v3: added the ``dedup`` stage (content-addressed class-level
#: measurement + incremental cross-factor analysis vs the seed's
#: measurement path; ``reference_seconds`` is shared with the ``measure``
#: stage and marked ``reference_reused_from_measure`` in its detail).
#: v4: added the ``daemon`` stage (concurrent clients against the serve
#: daemon over real sockets: per-request serving as the reference side,
#: coalesced vectorized micro-batching as the optimized side, plus a hot
#: artifact reload performed under the batched run's live traffic).
#: v5: added the ``families`` stage (every predictor family — NN, SVM,
#: MLP, random forest, and the calibrated ensemble — scalar per-request
#: prediction as the reference side vs one vectorized batch as the
#: optimized side, with a differential ``predictions_match`` check:
#: scalar == batched per family, the single-family-restricted ensemble
#: agrees with each member, and a save/load registry round trip answers
#: bit-identically) and its ``families_rows`` sizing knob in ``config``.
#: v6: added the ``multiproc`` stage (the multi-process serve tier driven
#: over real sockets at each worker count in ``multiproc_workers``:
#: per-count wall/throughput/p95/p99, throughput scaling relative to one
#: worker, the sharding mode actually used, ``cpus`` — scaling is
#: physically bounded by the cores available — a cross-worker-count
#: ``predictions_match`` differential, and aggregated-healthz counter
#: balance after each run) plus its ``multiproc_*`` sizing knobs in
#: ``config``.
#: v7: added the ``lifecycle`` stage (the closed serve→train→promote
#: loop's hot paths: drift-scanning a synthetic request log row-at-a-time
#: as the reference side vs one vectorized ``scan_drift`` replay as the
#: optimized side, the canary gate's replay cost, a
#: ``promotion_atomic`` differential — the two-phase registry promotion
#: killed at every checkpoint and resumed, asserting the live artifact is
#: always whole old bytes or whole new bytes — and ``rollback_ok``: the
#: last-good restore returns the registry to the incumbent's exact
#: checksum) plus its ``lifecycle_rows`` sizing knob in ``config``.
BENCH_SCHEMA_VERSION = 7

#: Importable alias: CI's bench-smoke compares emitted reports against
#: this name (``from repro.perf.bench import SCHEMA_VERSION``).
SCHEMA_VERSION = BENCH_SCHEMA_VERSION


@dataclasses.dataclass(frozen=True)
class BenchConfig:
    """What the bench runs.

    ``loops_scale`` controls suite size (the default is large enough that
    stage times dwarf timer noise); ``subsample`` bounds the greedy
    selection rows exactly like ``selected_feature_union`` does.
    """

    suite_seed: int = 20050320
    loops_scale: float = 0.35
    subsample: int = 600
    n_greedy: int = 5
    serve_requests: int = 64
    serve_retrains: int = 3
    daemon_clients: int = 8
    daemon_requests: int = 48
    daemon_replicas: int = 2
    families_rows: int = 192
    multiproc_workers: tuple[int, ...] = (1, 2, 4)
    multiproc_clients: int = 8
    multiproc_requests: int = 64
    lifecycle_rows: int = 256
    quick: bool = False

    @classmethod
    def quick_config(cls) -> "BenchConfig":
        """A CI-smoke-sized bench (small suite, small subsample)."""
        return cls(
            loops_scale=0.08,
            subsample=200,
            serve_requests=16,
            serve_retrains=2,
            daemon_clients=4,
            daemon_requests=16,
            families_rows=64,
            multiproc_workers=(1, 2),
            multiproc_clients=4,
            multiproc_requests=24,
            lifecycle_rows=96,
            quick=True,
        )


@dataclasses.dataclass(frozen=True)
class StageTiming:
    """One stage's reference-vs-optimized wall-clock comparison."""

    stage: str
    reference_seconds: float
    optimized_seconds: float
    detail: dict

    @property
    def speedup(self) -> float:
        if self.optimized_seconds <= 0.0:
            return float("inf")
        return self.reference_seconds / self.optimized_seconds

    def to_json(self) -> dict:
        return {
            "stage": self.stage,
            "reference_seconds": round(self.reference_seconds, 4),
            "optimized_seconds": round(self.optimized_seconds, 4),
            "speedup": round(self.speedup, 3),
            "detail": self.detail,
        }


@dataclasses.dataclass(frozen=True)
class BenchReport:
    """The full bench result: config, environment, per-stage timings."""

    config: BenchConfig
    date: str
    stages: tuple[StageTiming, ...]

    def stage(self, name: str) -> StageTiming:
        for timing in self.stages:
            if timing.stage == name:
                return timing
        raise KeyError(name)

    def to_json(self) -> dict:
        return {
            "bench_schema_version": BENCH_SCHEMA_VERSION,
            "date": self.date,
            "config": dataclasses.asdict(self.config),
            "environment": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
            },
            "stages": [timing.to_json() for timing in self.stages],
        }

    def summary(self) -> str:
        lines = [f"bench {self.date} (scale={self.config.loops_scale}, "
                 f"subsample={self.config.subsample})"]
        for timing in self.stages:
            lines.append(
                f"  {timing.stage:8s} reference {timing.reference_seconds:8.2f}s"
                f"  optimized {timing.optimized_seconds:8.2f}s"
                f"  speedup {timing.speedup:5.2f}x"
            )
        return "\n".join(lines)


def _bench_measure(suite, config: BenchConfig) -> tuple[StageTiming, object, object]:
    """Time serial suite measurement, both SWP regimes combined.

    Reference: two standalone :func:`measure_suite` runs through the
    seed's cost model and per-loop scalar noise.  Optimized: one
    :func:`measure_suite_pair` run sharing loop analyses across regimes.
    Returns the timing and both optimized tables (the SWP-off table feeds
    the label stage; both are the dedup stage's bit-identity baseline).
    """
    from repro.instrument import MeasurementRollup
    from repro.pipeline import LabelingConfig, measure_suite, measure_suite_pair

    reference_off = LabelingConfig(
        seed=config.suite_seed, swp=False, engine="reference", batched_noise=False
    )
    reference_on = dataclasses.replace(reference_off, swp=True)
    start = time.perf_counter()
    measure_suite(suite, reference_off)
    measure_suite(suite, reference_on)
    reference_seconds = time.perf_counter() - start

    optimized = LabelingConfig(seed=config.suite_seed)
    rollup_off, rollup_on = MeasurementRollup(), MeasurementRollup()
    start = time.perf_counter()
    table_off, table_on = measure_suite_pair(
        suite, optimized, rollup_off=rollup_off, rollup_on=rollup_on
    )
    optimized_seconds = time.perf_counter() - start

    hits = rollup_off.analysis_hits() + rollup_on.analysis_hits()
    misses = rollup_off.analysis_misses() + rollup_on.analysis_misses()
    timing = StageTiming(
        stage="measure",
        reference_seconds=reference_seconds,
        optimized_seconds=optimized_seconds,
        detail={
            "n_benchmarks": len(suite.benchmarks),
            "n_loops": suite.n_loops,
            "analysis_hits": hits,
            "analysis_misses": misses,
            "analysis_hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        },
    )
    return timing, table_off, table_on


def _bench_dedup(
    suite, config: BenchConfig, measure_timing: StageTiming, table_off, table_on
) -> StageTiming:
    """Time the content-addressed measurement path against the seed's.

    Reference: the seed measurement path — identical to the ``measure``
    stage's reference side, so its wall clock is *reused*, not re-run
    (``reference_reused_from_measure`` in the detail).  Optimized: one
    dedup-enabled :func:`measure_suite_pair` — one work unit per cost-key
    equivalence class, swept across factors by the incremental engine and
    fanned back out to every member.  ``picks_match`` asserts the dedup
    tables are bit-identical to the measure stage's optimized tables;
    ``speedup_vs_fast`` is the honest marginal over the already-optimized
    dedup-off pair (the headline speedup is over the seed path, like
    every other stage).
    """
    from repro.instrument import MeasurementRollup
    from repro.pipeline import LabelingConfig, measure_suite_pair

    dedup_config = LabelingConfig(seed=config.suite_seed, dedup=True)
    rollup_off, rollup_on = MeasurementRollup(), MeasurementRollup()
    start = time.perf_counter()
    dedup_off, dedup_on = measure_suite_pair(
        suite, dedup_config, rollup_off=rollup_off, rollup_on=rollup_on
    )
    optimized_seconds = time.perf_counter() - start

    def identical(a, b) -> bool:
        return (
            a.measured.tobytes() == b.measured.tobytes()
            and a.true_cycles.tobytes() == b.true_cycles.tobytes()
        )

    picks_match = identical(dedup_off, table_off) and identical(dedup_on, table_on)
    stats = rollup_off.dedup
    inc_hits = rollup_off.dedup.incremental_hits + rollup_on.dedup.incremental_hits
    inc_misses = (
        rollup_off.dedup.incremental_misses + rollup_on.dedup.incremental_misses
    )
    return StageTiming(
        stage="dedup",
        reference_seconds=measure_timing.reference_seconds,
        optimized_seconds=optimized_seconds,
        detail={
            "n_loops": stats.n_loops,
            "n_cost_classes": stats.n_cost_classes,
            "n_structural_classes": stats.n_structural_classes,
            "class_merges": stats.class_merges,
            "cost_merges": stats.cost_merges,
            "incremental_hits": inc_hits,
            "incremental_misses": inc_misses,
            "incremental_hit_rate": (
                round(inc_hits / (inc_hits + inc_misses), 4)
                if inc_hits + inc_misses
                else 0.0
            ),
            "picks_match": bool(picks_match),
            "reference_reused_from_measure": True,
            "speedup_vs_fast": round(
                measure_timing.optimized_seconds / optimized_seconds, 3
            ),
        },
    )


def _bench_label(table, config: BenchConfig) -> tuple[StageTiming, object]:
    """Time dataset construction (filter + label).  No fast/reference
    duality exists here; the stage is reported for trajectory only."""
    from repro.pipeline import LabelingConfig

    defaults = LabelingConfig()
    start = time.perf_counter()
    dataset = table.to_dataset(defaults.min_cycles, defaults.min_benefit)
    seconds = time.perf_counter() - start
    timing = StageTiming(
        stage="label",
        reference_seconds=seconds,
        optimized_seconds=seconds,
        detail={"rows": len(dataset)},
    )
    return timing, dataset


def _bench_select(dataset, config: BenchConfig) -> StageTiming:
    """Time feature selection: MIS ranking plus greedy forward selection
    for both classifiers, fast engines vs the seed's from-scratch refits."""
    from repro.ml import (
        greedy_forward_selection,
        mutual_information_score_reference,
        rank_by_mutual_information,
    )

    X, y = dataset.X, dataset.labels
    detail: dict = {"rows": int(min(len(y), config.subsample))}
    picks_match = True

    start = time.perf_counter()
    ranked = rank_by_mutual_information(X, y)
    mis_fast = time.perf_counter() - start
    start = time.perf_counter()
    reference_scores = [
        mutual_information_score_reference(X[:, j], y) for j in range(X.shape[1])
    ]
    mis_reference = time.perf_counter() - start
    detail["mis"] = {
        "reference_seconds": round(mis_reference, 4),
        "optimized_seconds": round(mis_fast, 4),
    }
    by_index = sorted(ranked, key=lambda s: s.index)
    picks_match &= all(
        abs(by_index[j].score - reference_scores[j]) < 1e-9 for j in range(X.shape[1])
    )

    fast_total, reference_total = mis_fast, mis_reference
    for classifier in ("nn", "svm"):
        start = time.perf_counter()
        fast = greedy_forward_selection(
            X, y, classifier, config.n_greedy, config.subsample, engine="fast"
        )
        fast_seconds = time.perf_counter() - start
        start = time.perf_counter()
        reference = greedy_forward_selection(
            X, y, classifier, config.n_greedy, config.subsample, engine="reference"
        )
        reference_seconds = time.perf_counter() - start
        picks_match &= [s.index for s in fast] == [s.index for s in reference]
        detail[f"greedy_{classifier}"] = {
            "reference_seconds": round(reference_seconds, 4),
            "optimized_seconds": round(fast_seconds, 4),
            "speedup": round(reference_seconds / fast_seconds, 3),
            "picks": [s.index for s in fast],
        }
        fast_total += fast_seconds
        reference_total += reference_seconds

    detail["picks_match"] = bool(picks_match)
    return StageTiming(
        stage="select",
        reference_seconds=reference_total,
        optimized_seconds=fast_total,
        detail=detail,
    )


def _bench_serve(dataset, artifact, config: BenchConfig) -> StageTiming:
    """Time the deployment path: retrain-per-request (how ``repro predict``
    worked before model artifacts existed) against a served batch through
    a saved-then-loaded artifact and the prediction engine.

    The reference side retrains the SVM for ``serve_retrains`` requests
    and extrapolates to the batch size (retraining is uniform per
    request); the optimized side times the *whole* serve path — artifact
    load, engine construction, and the full concurrent batch.
    """
    import tempfile
    from pathlib import Path

    from repro.heuristics import train_svm_heuristic
    from repro.registry import load_artifact
    from repro.serve import PredictionEngine

    n_requests = config.serve_requests
    rows = dataset.X[np.arange(n_requests) % len(dataset)]

    start = time.perf_counter()
    reference_predictions = []
    for i in range(config.serve_retrains):
        heuristic = train_svm_heuristic(dataset)
        reference_predictions.append(int(heuristic.predict_features(rows[i][None, :])[0]))
    reference_timed = time.perf_counter() - start
    per_request_reference = reference_timed / config.serve_retrains
    reference_seconds = per_request_reference * n_requests

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench-model.rma"
        artifact.save(path)
        requests = [
            {"id": i, "features": [float(v) for v in rows[i]]} for i in range(n_requests)
        ]
        start = time.perf_counter()
        served = PredictionEngine(load_artifact(path), classifier="svm")
        responses = served.serve_batch(requests, max_workers=4)
        optimized_seconds = time.perf_counter() - start

    served_predictions = [r["factor"] for r in responses if r["ok"]]
    predictions_match = (
        len(served_predictions) == n_requests
        and served_predictions[: len(reference_predictions)] == reference_predictions
    )
    per_request_served = optimized_seconds / n_requests
    return StageTiming(
        stage="serve",
        reference_seconds=reference_seconds,
        optimized_seconds=optimized_seconds,
        detail={
            "n_requests": n_requests,
            "reference_requests_timed": config.serve_retrains,
            "reference_ms_per_request": round(per_request_reference * 1e3, 3),
            "served_ms_per_request": round(per_request_served * 1e3, 3),
            "reference_extrapolated": True,
            "predictions_match": bool(predictions_match),
        },
    )


def _daemon_traffic(address, config: BenchConfig, rows) -> dict:
    """Drive ``daemon_clients`` concurrent pipelining clients at a running
    daemon; returns wall, per-request p95, and the id -> factor map."""
    import json as json_mod
    import socket
    import threading

    host, port = address
    per_client = config.daemon_requests
    results: dict[int, dict] = {}
    latencies: list[float] = []
    lock = threading.Lock()
    progress = {"received": 0}
    barrier = threading.Barrier(config.daemon_clients + 1)

    def client(client_index: int) -> None:
        ids = [client_index * per_client + i for i in range(per_client)]
        with socket.create_connection((host, port), timeout=60) as sock:
            stream = sock.makefile("rw", encoding="utf-8", newline="\n")
            barrier.wait()
            sent = {}
            for request_id in ids:
                payload = {
                    "id": request_id,
                    "features": [float(v) for v in rows[request_id]],
                }
                sent[request_id] = time.perf_counter()
                stream.write(json_mod.dumps(payload) + "\n")
            stream.flush()
            for _ in ids:
                response = json_mod.loads(stream.readline())
                received = time.perf_counter()
                with lock:
                    results[response["id"]] = response
                    latencies.append(received - sent[response["id"]])
                    progress["received"] += 1

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(config.daemon_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    n_requests = config.daemon_clients * per_client
    latencies.sort()
    p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))] if latencies else 0.0
    p99 = latencies[min(len(latencies) - 1, int(0.99 * len(latencies)))] if latencies else 0.0
    return {
        "wall_s": wall,
        "n_requests": n_requests,
        "received": progress["received"],
        "throughput_rps": n_requests / wall if wall > 0 else 0.0,
        "p95_ms": p95 * 1e3,
        "p99_ms": p99 * 1e3,
        "responses": results,
    }


def _bench_daemon(dataset, artifact, config: BenchConfig) -> StageTiming:
    """Time the network serve tier over real sockets, per-request vs
    coalesced micro-batches, with a hot reload under the batched run.

    Both sides are the same daemon and the same concurrent pipelining
    clients; only the coalescing differs.  Reference: ``max_batch=1``,
    window 0 — every request is its own gateway batch (the scalar engine
    path).  Optimized: the default adaptive window, so concurrent clients'
    requests merge into vectorized ``(B, width)`` predictions.  During the
    batched run a provenance-tweaked copy of the artifact is stored and
    hot-swapped in mid-traffic; the detail records that no accepted
    request was dropped (``responses_dropped``, ``counters_balanced``) and
    that every batched factor equals its per-request counterpart
    (``predictions_match`` — the tweaked artifact trains to identical
    weights, so a reload must not change answers).
    """
    import dataclasses as dc
    import tempfile
    from pathlib import Path

    from repro.registry import ArtifactStore
    from repro.serve import BackgroundDaemon, DaemonConfig, ServeDaemon

    n_requests = config.daemon_clients * config.daemon_requests
    rows = dataset.X[np.arange(n_requests) % len(dataset)]
    queue_limit = 2 * n_requests

    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(Path(tmp))
        path = store.store("bench", artifact)

        per_request_config = DaemonConfig(
            batch_window_ms=0.0,
            max_batch=1,
            replicas=config.daemon_replicas,
            queue_limit=queue_limit,
        )
        with BackgroundDaemon(
            ServeDaemon(path, per_request_config, store=store)
        ) as daemon:
            per_request = _daemon_traffic(daemon.address, config, rows)
        per_request_ok = all(r.get("ok") for r in per_request["responses"].values())

        batched_config = DaemonConfig(
            replicas=config.daemon_replicas, queue_limit=queue_limit
        )
        reload_result = {"reloaded": False}

        batched_daemon = ServeDaemon(path, batched_config, store=store)
        checksum_before = batched_daemon.checksum

        def reload_midway() -> None:
            # Wait for the run to be genuinely live, then swap in a
            # provenance-tweaked (bit-different, weight-identical) artifact.
            target = max(1, n_requests // 4)
            live = batched_daemon.gateway.counters
            while (
                live.served_ok < target
                and live.served_ok + live.served_error + live.deadline_exceeded
                < n_requests
            ):
                time.sleep(0.001)
            tweaked = dc.replace(
                artifact,
                provenance={**artifact.provenance, "bench_reload": True},
            )
            store.store("bench-reload", tweaked)
            reload_result["reloaded"] = batched_daemon.maybe_reload()

        import threading

        with BackgroundDaemon(batched_daemon) as daemon:
            reloader = threading.Thread(target=reload_midway)
            reloader.start()
            batched = _daemon_traffic(daemon.address, config, rows)
            reloader.join()
        counters = batched_daemon.gateway.counters
        batch_stats = batched_daemon.gateway.batch_stats

    predictions_match = (
        per_request_ok
        and all(r.get("ok") for r in batched["responses"].values())
        and len(per_request["responses"]) == n_requests
        and len(batched["responses"]) == n_requests
        and all(
            per_request["responses"][i]["factor"] == batched["responses"][i]["factor"]
            for i in range(n_requests)
        )
    )
    return StageTiming(
        stage="daemon",
        reference_seconds=per_request["wall_s"],
        optimized_seconds=batched["wall_s"],
        detail={
            "n_clients": config.daemon_clients,
            "requests_per_client": config.daemon_requests,
            "n_requests": n_requests,
            "replicas": config.daemon_replicas,
            "per_request": {
                "wall_s": round(per_request["wall_s"], 4),
                "throughput_rps": round(per_request["throughput_rps"], 1),
                "p95_ms": round(per_request["p95_ms"], 3),
            },
            "batched": {
                "wall_s": round(batched["wall_s"], 4),
                "throughput_rps": round(batched["throughput_rps"], 1),
                "p95_ms": round(batched["p95_ms"], 3),
                "batches": batch_stats.batches,
                "mean_batch": round(batch_stats.mean_batch(), 2),
                "max_batch": batch_stats.max_batch,
            },
            "batched_speedup": round(
                per_request["wall_s"] / batched["wall_s"], 3
            ) if batched["wall_s"] > 0 else float("inf"),
            "predictions_match": bool(predictions_match),
            "reload": {
                "reloaded": bool(reload_result["reloaded"]),
                "checksum_before": checksum_before,
                "checksum_after": batched_daemon.checksum,
                "responses_dropped": n_requests - batched["received"],
                "counters_balanced": bool(counters.balanced()),
                "counters": dc.asdict(counters),
            },
        },
    )


def _bench_families(dataset, artifact, config: BenchConfig) -> StageTiming:
    """Time every predictor family (NN, SVM, MLP, forest, and the
    calibrated ensemble) scalar-per-request vs one vectorized batch, and
    run the differential checks that make the stage trustworthy.

    Reference: each of ``families_rows`` feature rows predicted through a
    separate single-row call per family — the per-request path a compiler
    without batching would take.  Optimized: the same rows as one
    ``(B, width)`` matrix per family.  ``predictions_match`` is the AND of
    three bit-exactness properties: scalar == batched for every family,
    the single-family-restricted ensemble agrees with each member, and an
    artifact save/load round trip answers identically for every family.
    """
    import tempfile
    from pathlib import Path

    from repro.heuristics import EnsembleHeuristic
    from repro.registry import load_artifact

    n_rows = config.families_rows
    rows = dataset.X[np.arange(n_rows) % len(dataset)]
    families = artifact.families

    reference_seconds = 0.0
    scalar_predictions: dict[str, list[int]] = {}
    for name in families:
        heuristic = artifact.heuristic(name)
        start = time.perf_counter()
        scalar_predictions[name] = [
            int(heuristic.predict_features(rows[i][None, :])[0]) for i in range(n_rows)
        ]
        reference_seconds += time.perf_counter() - start

    optimized_seconds = 0.0
    batched_predictions: dict[str, np.ndarray] = {}
    for name in families:
        heuristic = artifact.heuristic(name)
        start = time.perf_counter()
        batched_predictions[name] = heuristic.predict_features(rows)
        optimized_seconds += time.perf_counter() - start

    scalar_match = all(
        scalar_predictions[name] == [int(v) for v in batched_predictions[name]]
        for name in families
    )

    # Differential: restricting the ensemble to one member must reproduce
    # that member's own predictions exactly (same tie-break paths).
    ensemble = artifact.ensemble
    restricted_match = all(
        np.array_equal(
            EnsembleHeuristic(
                ensemble.classifier.restrict((name,)),
                feature_indices=ensemble.feature_indices,
                machine=ensemble.machine,
            ).predict_features(rows),
            batched_predictions[name],
        )
        for name in families
        if name != "ensemble"
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "bench-families.rma"
        artifact.save(path)
        reloaded = load_artifact(path)
        roundtrip_match = all(
            np.array_equal(
                reloaded.heuristic(name).predict_features(rows),
                batched_predictions[name],
            )
            for name in families
        )

    accuracies = {
        name: round(
            float(
                np.mean(
                    artifact.heuristic(name).predict_features(dataset.X)
                    == dataset.labels
                )
            ),
            4,
        )
        for name in families
    }
    ensemble_detail = artifact.ensemble.predict_detail(rows)

    return StageTiming(
        stage="families",
        reference_seconds=reference_seconds,
        optimized_seconds=optimized_seconds,
        detail={
            "n_rows": n_rows,
            "families": list(families),
            "train_accuracy": accuracies,
            "ensemble_mean_confidence": round(
                float(np.mean(ensemble_detail.confidence)), 4
            ),
            "scalar_batched_match": bool(scalar_match),
            "restricted_ensemble_match": bool(restricted_match),
            "roundtrip_match": bool(roundtrip_match),
            "predictions_match": bool(
                scalar_match and restricted_match and roundtrip_match
            ),
        },
    )


def _bench_multiproc(dataset, artifact, config: BenchConfig) -> StageTiming:
    """Time the multi-process serve tier at each worker count over real
    sockets: the same concurrent pipelining clients as the ``daemon``
    stage, against a full :class:`~repro.serve.ServeCluster` (supervisor,
    ``SO_REUSEPORT`` sharding or the balancer fallback, per-worker
    adaptive batch windows).

    Reference: ``workers=1`` (one process — PR 7's daemon with a
    supervisor in front).  Optimized: the largest worker count.  The
    detail records every count's wall/throughput/p95/p99, throughput
    scaling relative to one worker, and ``cpus`` — on a single-core host
    the workload is CPU-bound and no multi-process speedup is physically
    possible, so scaling numbers must always be read against the core
    count.  ``predictions_match`` asserts every worker count answered
    every request with the same factor; ``balanced`` asserts each run's
    aggregated healthz counters balanced across all workers.
    """
    import dataclasses as dc
    import os
    import tempfile
    from pathlib import Path

    from repro.registry import ArtifactStore
    from repro.serve import ClusterConfig, DaemonConfig, ServeCluster

    traffic_config = dc.replace(
        config,
        daemon_clients=config.multiproc_clients,
        daemon_requests=config.multiproc_requests,
    )
    warmup_config = dc.replace(
        traffic_config,
        daemon_requests=max(1, config.multiproc_requests // 8),
    )
    n_requests = config.multiproc_clients * config.multiproc_requests
    rows = dataset.X[np.arange(n_requests) % len(dataset)]
    queue_limit = 2 * n_requests
    cpus = (
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1)
    )

    runs: dict[int, dict] = {}
    factors: dict[int, dict] = {}
    mode = None
    with tempfile.TemporaryDirectory() as tmp:
        store_root = Path(tmp)
        store = ArtifactStore(store_root)
        path = store.store("bench", artifact)
        for workers in config.multiproc_workers:
            daemon_config = DaemonConfig(
                replicas=config.daemon_replicas, queue_limit=queue_limit
            )
            cluster_config = ClusterConfig(workers=workers, daemon=daemon_config)
            with ServeCluster(path, cluster_config, store_root=store_root) as cluster:
                mode = cluster.mode
                # Warm every worker (artifact deserialization, first-call
                # numpy paths) before the timed run.
                _daemon_traffic(cluster.address, warmup_config, rows)
                result = _daemon_traffic(cluster.address, traffic_config, rows)
                health = cluster.healthz()
            factors[workers] = {
                i: r.get("factor")
                for i, r in result["responses"].items()
                if r.get("ok")
            }
            runs[workers] = {
                "wall_s": round(result["wall_s"], 4),
                "throughput_rps": round(result["throughput_rps"], 1),
                "p95_ms": round(result["p95_ms"], 3),
                "p99_ms": round(result["p99_ms"], 3),
                "received": result["received"],
                "workers_alive": health["workers_alive"],
                "balanced": bool(health["balanced"]),
                "restarts": cluster.restarts,
            }

    counts = sorted(runs)
    base = counts[0]
    base_rps = runs[base]["throughput_rps"]
    predictions_match = all(
        len(factors[w]) == n_requests and factors[w] == factors[base] for w in counts
    )
    balanced = all(runs[w]["balanced"] for w in counts)
    return StageTiming(
        stage="multiproc",
        reference_seconds=runs[base]["wall_s"],
        optimized_seconds=runs[counts[-1]]["wall_s"],
        detail={
            "n_clients": config.multiproc_clients,
            "requests_per_client": config.multiproc_requests,
            "n_requests": n_requests,
            "replicas": config.daemon_replicas,
            "worker_counts": list(counts),
            "cpus": cpus,
            "mode": mode,
            "runs": {str(w): runs[w] for w in counts},
            "scaling": {
                str(w): round(runs[w]["throughput_rps"] / base_rps, 3)
                if base_rps > 0
                else 0.0
                for w in counts
            },
            "predictions_match": bool(predictions_match),
            "balanced": bool(balanced),
        },
    )


def _bench_lifecycle(dataset, artifact, config: BenchConfig) -> StageTiming:
    """Time the closed-loop lifecycle's hot paths against a synthetic
    request log built from dataset rows (back half shifted off the
    training distribution so the scan has real drift to find).

    Reference: the drift monitor replaying the log one record at a time
    (one ``predict_detail`` call per row — what a naive tail-follower
    would do).  Optimized: one vectorized :func:`scan_drift` over the
    whole snapshot.  The detail also records the canary gate's replay
    cost and two correctness differentials no timing can substitute for:
    ``promotion_atomic`` — the two-phase registry promotion is killed at
    every checkpoint and resumed, and the live artifact must be whole old
    bytes or whole new bytes at every step — and ``rollback_ok`` — the
    last-good restore returns the registry to the incumbent's exact
    checksum.
    """
    import dataclasses as dc
    import hashlib
    import tempfile
    from pathlib import Path

    from repro.lifecycle import (
        DriftConfig,
        evaluate_canary,
        file_checksum,
        promote_artifact,
        rollback_artifact,
        scan_drift,
    )
    from repro.registry import ArtifactStore, save_artifact
    from repro.resilience import (
        AbortRun,
        CheckpointJournal,
        FaultPlan,
        FaultRule,
        fault_plan,
    )

    n_rows = config.lifecycle_rows
    rows = np.asarray(
        dataset.X[np.arange(n_rows) % len(dataset)], dtype=np.float64
    ).copy()
    rows[n_rows // 2 :] += 25.0  # covariate shift the scan must catch
    records = [
        {
            "id": i,
            "ok": True,
            "features_sha256": hashlib.sha256(row.tobytes()).hexdigest(),
            "features": [float(value) for value in row],
            "confidence": 0.9,
        }
        for i, row in enumerate(rows)
    ]
    drift_config = DriftConfig(window=32)

    start = time.perf_counter()
    for record in records:
        scan_drift([record], artifact, DriftConfig(window=1))
    reference_seconds = time.perf_counter() - start

    start = time.perf_counter()
    report = scan_drift(records, artifact, drift_config)
    optimized_seconds = time.perf_counter() - start

    start = time.perf_counter()
    canary = evaluate_canary(artifact, artifact, rows)
    canary_seconds = time.perf_counter() - start

    # A candidate with different bytes but identical behaviour: the
    # promotion machinery only cares about the files.
    candidate = dc.replace(
        artifact, provenance={**artifact.provenance, "bench": "lifecycle"}
    )
    promotion_atomic = True
    rollback_ok = False
    with tempfile.TemporaryDirectory() as tmp:
        store = ArtifactStore(Path(tmp))
        live = store.path_for("bench")
        save_artifact(artifact, live)
        incumbent_checksum = file_checksum(live)
        journal_path = Path(tmp) / "promote.journal.jsonl"
        candidate_checksum = None
        for kill_at in range(4):  # 3 checkpoints + one uninterrupted pass
            save_artifact(artifact, live)
            CheckpointJournal(journal_path, run_key="bench-promote").discard()
            plan = FaultPlan(
                rules=(FaultRule(op="run.abort", match="*", skip=kill_at),)
            )
            try:
                with fault_plan(plan):
                    with CheckpointJournal(
                        journal_path, run_key="bench-promote"
                    ) as journal:
                        result = promote_artifact(store, "bench", candidate, journal)
            except AbortRun:
                promotion_atomic &= file_checksum(live) == incumbent_checksum or (
                    candidate_checksum is not None
                    and file_checksum(live) == candidate_checksum
                )
                with CheckpointJournal(
                    journal_path, run_key="bench-promote"
                ) as journal:
                    journal.load()
                    result = promote_artifact(store, "bench", candidate, journal)
            candidate_checksum = result.candidate_checksum
            promotion_atomic &= file_checksum(live) == candidate_checksum
        with CheckpointJournal(journal_path, run_key="bench-rollback") as journal:
            rollback = rollback_artifact(store, "bench", journal)
        rollback_ok = (
            rollback["restored_checksum"] == incumbent_checksum
            and file_checksum(live) == incumbent_checksum
        )

    drifted = sum(1 for window in report.windows if window.drifted)
    return StageTiming(
        stage="lifecycle",
        reference_seconds=reference_seconds,
        optimized_seconds=optimized_seconds,
        detail={
            "n_records": n_rows,
            "drift_lines_per_s": round(n_rows / optimized_seconds, 1)
            if optimized_seconds > 0
            else float("inf"),
            "reference_lines_per_s": round(n_rows / reference_seconds, 1)
            if reference_seconds > 0
            else float("inf"),
            "n_windows": len(report.windows),
            "drifted_windows": drifted,
            "flagged": len(report.flagged),
            "has_fingerprint": bool(report.has_fingerprint),
            "canary_replay_s": round(canary_seconds, 4),
            "canary_accepted": bool(canary.accepted),
            "promotion_atomic": bool(promotion_atomic),
            "rollback_ok": bool(rollback_ok),
        },
    )


def run_bench(config: BenchConfig | None = None) -> BenchReport:
    """Run the full measure -> dedup -> label -> select -> serve ->
    daemon -> families -> multiproc -> lifecycle bench, serially."""
    from repro.registry import train_model_artifact
    from repro.workloads import generate_suite

    config = config or BenchConfig()
    suite = generate_suite(seed=config.suite_seed, loops_scale=config.loops_scale)
    measure_timing, table_off, table_on = _bench_measure(suite, config)
    dedup_timing = _bench_dedup(suite, config, measure_timing, table_off, table_on)
    label_timing, dataset = _bench_label(table_off, config)
    select_timing = _bench_select(dataset, config)
    artifact = train_model_artifact(dataset)  # offline: not part of any stage
    serve_timing = _bench_serve(dataset, artifact, config)
    daemon_timing = _bench_daemon(dataset, artifact, config)
    families_timing = _bench_families(dataset, artifact, config)
    multiproc_timing = _bench_multiproc(dataset, artifact, config)
    lifecycle_timing = _bench_lifecycle(dataset, artifact, config)
    return BenchReport(
        config=config,
        date=datetime.date.today().isoformat(),
        stages=(
            measure_timing,
            dedup_timing,
            label_timing,
            select_timing,
            serve_timing,
            daemon_timing,
            families_timing,
            multiproc_timing,
            lifecycle_timing,
        ),
    )


def write_report(report: BenchReport, directory: str | Path = ".") -> Path:
    """Write ``BENCH_<date>.json`` into ``directory``; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{report.date}.json"
    path.write_text(json.dumps(report.to_json(), indent=2) + "\n")
    return path
