"""Classic loop kernels, parameterised.

These are the idioms the paper's motivation section talks about — streaming
maps, reductions, stencils, searches, gathers, linear recurrences — written
against the :class:`~repro.ir.builder.LoopBuilder` DSL.  They serve three
audiences: the examples (readable, recognisable loops), the tests (known
structure in, known behaviour out), and the workload generator (which
instantiates randomised variants of the same shapes).

Every kernel takes ``trip`` (iterations per entry), ``entries`` (loop entries
per program run) and ``known`` (whether the trip count is a compile-time
constant), so callers control the measurement-scale knobs the labelling
pipeline filters on.
"""

from __future__ import annotations

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop, TripInfo
from repro.ir.types import CmpOp, DType, Language, Opcode


def _trip(trip: int, known: bool, counted: bool = True) -> TripInfo:
    return TripInfo(runtime=trip, compile_time=trip if known else None, counted=counted)


def daxpy(
    trip: int = 1024,
    entries: int = 64,
    known: bool = False,
    alpha: float = 2.5,
    name: str = "kernel/daxpy",
    language: Language = Language.FORTRAN,
) -> Loop:
    """``y[i] += alpha * x[i]`` — the canonical streaming FP kernel."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    x = b.load("x")
    y = b.load("y")
    scaled = b.fp(Opcode.FMA, x, b.fconst(alpha), y)
    b.store(scaled, "y")
    return b.build()


def dot_product(
    trip: int = 2048,
    entries: int = 32,
    known: bool = False,
    name: str = "kernel/dot",
    language: Language = Language.FORTRAN,
) -> Loop:
    """``acc += x[i] * y[i]`` — a serial FP reduction."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    acc = b.carried(DType.F64, init=0.0)
    x = b.load("x")
    y = b.load("y")
    b.fp(Opcode.FMA, x, y, acc, dest=acc)
    return b.build()


def stencil3(
    trip: int = 1024,
    entries: int = 48,
    known: bool = False,
    name: str = "kernel/stencil3",
    language: Language = Language.FORTRAN,
) -> Loop:
    """3-point stencil ``out[i] = w0*a[i] + w1*a[i+1] + w2*a[i+2]`` —
    scalar replacement across unrolled copies shines here."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    a0 = b.load("a", offset=0)
    a1 = b.load("a", offset=1)
    a2 = b.load("a", offset=2)
    t0 = b.fp(Opcode.FMUL, a0, b.fconst(0.25))
    t1 = b.fp(Opcode.FMA, a1, b.fconst(0.5), t0)
    t2 = b.fp(Opcode.FMA, a2, b.fconst(0.25), t1)
    b.store(t2, "out")
    return b.build()


def vector_scale(
    trip: int = 512,
    entries: int = 100,
    known: bool = True,
    name: str = "kernel/scale",
    language: Language = Language.C,
) -> Loop:
    """``out[i] = s * a[i]`` with a loop-invariant scalar."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    s = b.reg(DType.F64)  # invariant live-in
    a = b.load("a")
    b.store(b.fp(Opcode.FMUL, a, s), "out")
    return b.build()


def triad(
    trip: int = 4096,
    entries: int = 16,
    known: bool = False,
    name: str = "kernel/triad",
    language: Language = Language.FORTRAN,
) -> Loop:
    """STREAM triad: ``a[i] = b[i] + q * c[i]`` — memory-port bound."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    bv = b.load("b")
    cv = b.load("c")
    b.store(b.fp(Opcode.FMA, cv, b.fconst(3.0), bv), "a")
    return b.build()


def sum_reduction(
    trip: int = 1000,
    entries: int = 60,
    known: bool = False,
    name: str = "kernel/vsum",
    language: Language = Language.C,
) -> Loop:
    """``acc += a[i]`` — latency-bound serial recurrence."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    acc = b.carried(DType.F64, init=0.0)
    a = b.load("a")
    b.fp(Opcode.FADD, acc, a, dest=acc)
    return b.build()


def max_reduction(
    trip: int = 800,
    entries: int = 50,
    known: bool = False,
    name: str = "kernel/vmax",
    language: Language = Language.C,
) -> Loop:
    """``m = max(m, a[i])`` via compare + select."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    m = b.carried(DType.F64, init=-1e30)
    a = b.load("a")
    greater = b.cmp(CmpOp.GT, a, m, fp=True)
    selected = b.select(greater, a, m, dtype=DType.F64)
    b.mov(selected, dest=m)
    return b.build()


def fir_filter(
    taps: int = 4,
    trip: int = 1024,
    entries: int = 40,
    known: bool = False,
    name: str = "kernel/fir",
    language: Language = Language.C,
) -> Loop:
    """``out[i] = sum_k w_k * x[i+k]`` — a small FIR with compile-time taps."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    acc = None
    for k in range(taps):
        xv = b.load("x", offset=k)
        weight = b.fconst(1.0 / (k + 1))
        acc = b.fp(Opcode.FMUL, xv, weight) if acc is None else b.fp(Opcode.FMA, xv, weight, acc)
    b.store(acc, "out")
    return b.build()


def strided_copy(
    stride: int = 2,
    trip: int = 512,
    entries: int = 80,
    known: bool = False,
    name: str = "kernel/strided_copy",
    language: Language = Language.FORTRAN,
) -> Loop:
    """``out[i] = a[stride*i]`` — a non-unit-stride (cache-hostile) read."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    a = b.load("a", stride=stride)
    b.store(a, "out", stride=1)
    return b.build()


def sentinel_search(
    trip: int = 600,
    entries: int = 70,
    name: str = "kernel/search",
    language: Language = Language.C,
) -> Loop:
    """A while-style sentinel search: exit when ``a[i]`` matches the key.

    Callers (and the interpreter's strict mode) rely on the data containing
    the key by iteration ``trip - 1`` — plant it with
    :func:`plant_sentinel`.
    """
    b = LoopBuilder(
        name,
        TripInfo(runtime=trip, compile_time=None, counted=False),
        language=language,
        entry_count=entries,
    )
    key = b.reg(DType.F64)  # invariant live-in: the searched-for value
    a = b.load("a")
    found = b.cmp(CmpOp.EQ, a, key, fp=True)
    b.exit_if(found)
    running = b.carried(DType.F64, init=0.0)
    b.fp(Opcode.FADD, running, a, dest=running)
    return b.build()


def plant_sentinel(state, loop: Loop, key_reg, position: int | None = None) -> None:
    """Make a :func:`sentinel_search` loop's exit fire by iteration
    ``position`` (default: the last legal one)."""
    if position is None:
        position = loop.trip.runtime - 1
    state.arrays["a"][position] = state.regs[key_reg]


def gather_accumulate(
    trip: int = 512,
    entries: int = 30,
    known: bool = False,
    name: str = "kernel/gather",
    language: Language = Language.C,
) -> Loop:
    """``acc += data[idx[i]]`` — indirect access defeating exact analysis."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    b.array("data", trip + 8)
    raw = b.load("idx", dtype=DType.I64)
    index = b.intop(Opcode.SXT, raw)
    value = b.load_indirect("data", index)
    acc = b.carried(DType.F64, init=0.0)
    b.fp(Opcode.FADD, acc, value, dest=acc)
    return b.build()


def linear_recurrence(
    trip: int = 900,
    entries: int = 45,
    known: bool = False,
    name: str = "kernel/linrec",
    language: Language = Language.FORTRAN,
) -> Loop:
    """``s = alpha * s + a[i]`` — an unbreakable serial FP recurrence;
    unrolling cannot speed this up (and code growth makes it worse)."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    s = b.carried(DType.F64, init=1.0)
    a = b.load("a")
    b.fp(Opcode.FMA, s, b.fconst(0.99), a, dest=s)
    return b.build()


def int_hash(
    trip: int = 1500,
    entries: int = 55,
    known: bool = False,
    name: str = "kernel/int_hash",
    language: Language = Language.C,
) -> Loop:
    """An integer mixing kernel: ``h[i] = mix(k[i])`` with shifts and xors."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    k = b.load("k", dtype=DType.I64)
    h1 = b.intop(Opcode.SHL, k, b.iconst(13))
    h2 = b.intop(Opcode.XOR, k, h1)
    h3 = b.intop(Opcode.SHR, h2, b.iconst(7))
    h4 = b.intop(Opcode.XOR, h2, h3)
    h5 = b.intop(Opcode.MUL, h4, b.iconst(0x27D4EB2F))
    b.store(h5, "h")
    return b.build()


def conditional_update(
    trip: int = 700,
    entries: int = 65,
    known: bool = False,
    name: str = "kernel/cond_update",
    language: Language = Language.C,
) -> Loop:
    """``if (a[i] > t) out[i] = a[i] * w`` — predicated internal control."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    a = b.load("a")
    above = b.cmp(CmpOp.GT, a, b.fconst(0.0), fp=True)
    scaled = b.fp(Opcode.FMUL, a, b.fconst(1.5), pred=above)
    b.store(scaled, "out", pred=above)
    return b.build()


def matvec_row(
    trip: int = 256,
    entries: int = 256,
    known: bool = True,
    name: str = "kernel/matvec_row",
    language: Language = Language.FORTRAN,
) -> Loop:
    """One row of a matrix-vector product: ``acc += m[i] * v[i]`` where the
    loop is entered once per row (high entry count, known trip)."""
    b = LoopBuilder(
        name,
        _trip(trip, known),
        nest_level=2,
        language=language,
        entry_count=entries,
    )
    acc = b.carried(DType.F64, init=0.0)
    m = b.load("m")
    v = b.load("v")
    b.fp(Opcode.FMA, m, v, acc, dest=acc)
    return b.build()


def l2_norm(
    trip: int = 1200,
    entries: int = 35,
    known: bool = False,
    name: str = "kernel/l2norm",
    language: Language = Language.C,
) -> Loop:
    """``acc += a[i] * a[i]``."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    acc = b.carried(DType.F64, init=0.0)
    a = b.load("a")
    b.fp(Opcode.FMA, a, a, acc, dest=acc)
    return b.build()


def complex_multiply(
    trip: int = 640,
    entries: int = 42,
    known: bool = False,
    name: str = "kernel/cmul",
    language: Language = Language.FORTRAN90,
) -> Loop:
    """Interleaved complex multiply: reads pairs ``(re, im)`` at stride 2 —
    a coalescing showcase."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    ar = b.load("a", stride=2, offset=0)
    ai = b.load("a", stride=2, offset=1)
    br = b.load("b", stride=2, offset=0)
    bi = b.load("b", stride=2, offset=1)
    rr = b.fp(Opcode.FMUL, ar, br)
    ii = b.fp(Opcode.FMUL, ai, bi)
    ri = b.fp(Opcode.FMUL, ar, bi)
    ir = b.fp(Opcode.FMUL, ai, br)
    re = b.fp(Opcode.FSUB, rr, ii)
    im = b.fp(Opcode.FADD, ri, ir)
    b.store(re, "out", stride=2, offset=0)
    b.store(im, "out", stride=2, offset=1)
    return b.build()


def scatter_increment(
    trip: int = 400,
    entries: int = 25,
    known: bool = False,
    name: str = "kernel/scatter",
    language: Language = Language.C,
) -> Loop:
    """Histogram-style scatter: ``bins[idx[i]] += 1.0`` — an indirect store
    that serialises memory dependence analysis."""
    b = LoopBuilder(name, _trip(trip, known), language=language, entry_count=entries)
    b.array("bins", 64)
    raw = b.load("idx", dtype=DType.I64)
    index = b.intop(Opcode.SXT, raw)
    current_mem = b.load_indirect("bins", index)
    bumped = b.fp(Opcode.FADD, current_mem, b.fconst(1.0))
    b.store_indirect(bumped, "bins", index)
    return b.build()


#: All kernels by short name (examples and tests index this).
KERNELS = {
    "daxpy": daxpy,
    "dot": dot_product,
    "stencil3": stencil3,
    "scale": vector_scale,
    "triad": triad,
    "vsum": sum_reduction,
    "vmax": max_reduction,
    "fir": fir_filter,
    "strided_copy": strided_copy,
    "search": sentinel_search,
    "gather": gather_accumulate,
    "linrec": linear_recurrence,
    "int_hash": int_hash,
    "cond_update": conditional_update,
    "matvec_row": matvec_row,
    "l2norm": l2_norm,
    "cmul": complex_multiply,
    "scatter": scatter_increment,
}
