"""Randomised loop-body patterns.

The workload generator composes loop bodies out of these emitters, each of
which writes one "computation" (in the paper's Table 1 sense: an
independently schedulable dataflow strand) into a :class:`LoopBuilder`.
Patterns are parameterised by an explicit ``numpy.random.Generator`` so the
whole suite is reproducible, and each pattern namespaces its arrays with a
``tag`` so strands only alias when a pattern wants them to.

The pattern inventory mirrors the loop idioms of the paper's training suites
(SPEC fp/int, Mediabench, Perfect, kernels): streaming maps, reductions,
stencils, strided and indirect accesses, predicated conditionals, integer
mixing, serial recurrences, and early-exit searches.
"""

from __future__ import annotations

import numpy as np

from repro.ir.builder import LoopBuilder
from repro.ir.types import CmpOp, DType, Opcode
from repro.ir.values import Operand

_FP_OPS = (Opcode.FADD, Opcode.FSUB, Opcode.FMUL)
_INT_OPS = (Opcode.ADD, Opcode.SUB, Opcode.AND, Opcode.OR, Opcode.XOR, Opcode.SHL, Opcode.SHR)


def _random_fp_expr(b: LoopBuilder, rng: np.random.Generator, leaves: list[Operand], depth: int) -> Operand:
    """A random FP expression tree over ``leaves``; returns the root value."""
    if depth <= 0 or len(leaves) == 1:
        return leaves[int(rng.integers(len(leaves)))]
    lhs = _random_fp_expr(b, rng, leaves, depth - 1)
    rhs = _random_fp_expr(b, rng, leaves, depth - 1)
    roll = rng.random()
    if roll < 0.15 and len(leaves) >= 2:
        third = leaves[int(rng.integers(len(leaves)))]
        return b.fp(Opcode.FMA, lhs, rhs, third)
    if roll < 0.18:
        return b.fp(Opcode.FDIV, lhs, rhs)
    op = _FP_OPS[int(rng.integers(len(_FP_OPS)))]
    return b.fp(op, lhs, rhs)


def emit_stream_map(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """``out[i] = f(a[i], b[i], ...)`` — an embarrassingly parallel map."""
    n_inputs = int(rng.integers(1, 4))
    depth = int(rng.integers(1, 4))
    leaves: list[Operand] = [b.load(f"{tag}_in{k}") for k in range(n_inputs)]
    if rng.random() < 0.4:
        leaves.append(b.fconst(float(rng.uniform(0.5, 4.0))))
    root = _random_fp_expr(b, rng, leaves, depth)
    if not hasattr(root, "dtype") or root.dtype is not DType.F64:
        root = b.fp(Opcode.FMUL, root, b.fconst(1.0))
    b.store(root, f"{tag}_out")


def emit_reduction(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """A serial FP reduction (sum / dot / norm / max)."""
    kind = rng.choice(["sum", "dot", "norm", "max"])
    acc = b.carried(DType.F64, init=0.0)
    a = b.load(f"{tag}_a")
    if kind == "sum":
        b.fp(Opcode.FADD, acc, a, dest=acc)
    elif kind == "dot":
        other = b.load(f"{tag}_b")
        b.fp(Opcode.FMA, a, other, acc, dest=acc)
    elif kind == "norm":
        b.fp(Opcode.FMA, a, a, acc, dest=acc)
    else:
        bigger = b.cmp(CmpOp.GT, a, acc, fp=True)
        chosen = b.select(bigger, a, acc, dtype=DType.F64)
        b.mov(chosen, dest=acc)


def emit_stencil(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """``out[i] = sum_k w_k * a[i+k]`` for 2-5 points — rich cross-copy
    reuse for scalar replacement after unrolling."""
    points = int(rng.integers(2, 6))
    acc = None
    for k in range(points):
        val = b.load(f"{tag}_a", offset=k)
        weight = b.fconst(float(rng.uniform(0.1, 1.0)))
        acc = b.fp(Opcode.FMUL, val, weight) if acc is None else b.fp(Opcode.FMA, val, weight, acc)
    b.store(acc, f"{tag}_out")


def emit_strided_stream(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """A non-unit-stride read-modify-write (interleaved/column access)."""
    stride = int(rng.choice([2, 2, 3, 4]))
    a = b.load(f"{tag}_a", stride=stride)
    scaled = b.fp(Opcode.FMUL, a, b.fconst(float(rng.uniform(0.5, 2.0))))
    b.store(scaled, f"{tag}_out", stride=1)


def emit_gather(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """Indirect read: ``acc += data[idx[i]]``."""
    table = f"{tag}_table"
    b.array(table, int(rng.integers(64, 1024)))
    raw = b.load(f"{tag}_idx", dtype=DType.I64)
    index = b.intop(Opcode.SXT, raw)
    value = b.load_indirect(table, index)
    acc = b.carried(DType.F64, init=0.0)
    b.fp(Opcode.FADD, acc, value, dest=acc)


def emit_scatter(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """Indirect update: ``bins[idx[i]] += a[i]`` (histogram)."""
    bins = f"{tag}_bins"
    b.array(bins, int(rng.integers(32, 256)))
    raw = b.load(f"{tag}_idx", dtype=DType.I64)
    index = b.intop(Opcode.SXT, raw)
    a = b.load(f"{tag}_a")
    current = b.load_indirect(bins, index)
    b.store_indirect(b.fp(Opcode.FADD, current, a), bins, index)


def emit_int_mix(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """An integer mixing chain (hashing / bit manipulation / address math)."""
    length = int(rng.integers(2, 7))
    value = b.load(f"{tag}_k", dtype=DType.I64)
    for _ in range(length):
        op = _INT_OPS[int(rng.integers(len(_INT_OPS)))]
        if op in (Opcode.SHL, Opcode.SHR):
            operand = b.iconst(int(rng.integers(1, 24)))
        else:
            operand = b.iconst(int(rng.integers(1, 1 << 16)))
        value = b.intop(op, value, operand)
    if rng.random() < 0.3:
        value = b.intop(Opcode.MUL, value, b.iconst(0x9E3779B1))
    b.store(value, f"{tag}_h")


def emit_conditional(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """A predicated update: ``if (a[i] > t) out[i] = g(a[i])``."""
    a = b.load(f"{tag}_a")
    threshold = b.fconst(float(rng.uniform(-1.0, 1.0)))
    above = b.cmp(CmpOp.GT, a, threshold, fp=True)
    if rng.random() < 0.5:
        scaled = b.fp(Opcode.FMUL, a, b.fconst(float(rng.uniform(0.5, 3.0))), pred=above)
        b.store(scaled, f"{tag}_out", pred=above)
    else:
        alt = b.load(f"{tag}_b")
        chosen = b.select(above, a, alt, dtype=DType.F64)
        b.store(chosen, f"{tag}_out")


def emit_recurrence(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """A serial linear recurrence ``s = alpha*s + a[i]`` — unrolling-proof."""
    s = b.carried(DType.F64, init=1.0)
    a = b.load(f"{tag}_a")
    b.fp(Opcode.FMA, s, b.fconst(float(rng.uniform(0.9, 0.999))), a, dest=s)


def emit_invariant_expr(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """A map using loop-invariant scalars (live-in registers)."""
    scale = b.reg(DType.F64)  # invariant live-in
    shift = b.reg(DType.F64)  # invariant live-in
    a = b.load(f"{tag}_a")
    b.store(b.fp(Opcode.FMA, a, scale, shift), f"{tag}_out")


def emit_search_exit(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """A data-dependent early exit (the defining pattern of while-style
    loops, also appearing as ``break`` in counted loops)."""
    a = b.load(f"{tag}_scan")
    key = b.reg(DType.F64)  # invariant live-in: the searched value
    kind = CmpOp.GE if rng.random() < 0.5 else CmpOp.EQ
    hit = b.cmp(kind, a, key, fp=True)
    b.exit_if(hit)


def emit_pointer_chase(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """A linked-list walk: ``p = next[p]`` plus a little work on the node.

    The address of each iteration's load depends on the previous
    iteration's load — a loop-carried dependence *through memory* that no
    amount of unrolling can break.  This is the classic pointer-chasing
    idiom of integer codes (and why their unrolling headroom is small).
    """
    table = f"{tag}_next"
    b.array(table, int(rng.integers(64, 512)))
    pointer = b.carried(DType.I64, init=0)
    raw = b.load_indirect(table, pointer, dtype=DType.I64)
    b.intop(Opcode.SXT, raw, dest=pointer)
    payload = b.load_indirect(f"{tag}_data", pointer)
    acc = b.carried(DType.F64, init=0.0)
    b.fp(Opcode.FADD, acc, payload, dest=acc)


def emit_cross_iteration_store(b: LoopBuilder, rng: np.random.Generator, tag: str) -> None:
    """``a[i+d] = f(a[i])`` — a genuine loop-carried memory dependence with
    distance ``d``, which caps the software pipeliner's RecMII."""
    distance = int(rng.integers(1, 5))
    a = b.load(f"{tag}_a", offset=0)
    value = b.fp(Opcode.FMUL, a, b.fconst(float(rng.uniform(0.8, 1.2))))
    b.store(value, f"{tag}_a", offset=distance)


#: Pattern registry: name -> emitter.
PATTERNS = {
    "stream_map": emit_stream_map,
    "reduction": emit_reduction,
    "stencil": emit_stencil,
    "strided": emit_strided_stream,
    "gather": emit_gather,
    "scatter": emit_scatter,
    "int_mix": emit_int_mix,
    "conditional": emit_conditional,
    "pointer_chase": emit_pointer_chase,
    "recurrence": emit_recurrence,
    "invariant": emit_invariant_expr,
    "search_exit": emit_search_exit,
    "carried_store": emit_cross_iteration_store,
}
