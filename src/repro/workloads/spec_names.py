"""The benchmark roster: 72 named benchmarks across five suite archetypes.

Mirrors the paper's training population (Section 4.6): the 24 SPEC CPU2000
benchmarks it evaluates (all of CINT2000 and CFP2000 except 252.eon, which
is C++, and 191.fma3d, which miscompiled under their instrumentation), plus
SPEC '95 and SPEC '92 programs (newest-version-only for duplicates such as
swim), Mediabench applications, Perfect-suite programs, and a handful of
kernels — 72 benchmarks in all, spanning C, Fortran, and Fortran 90.

Only the names and archetype assignments are "real"; loop contents are
generated synthetically per archetype (see ``generator.py``), since we do
not have SPEC sources — what the classifiers consume is the (features,
label) population, and the archetypes control its composition.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.types import Language


@dataclass(frozen=True)
class BenchmarkInfo:
    """Static description of one roster entry."""

    name: str
    suite: str
    archetype: str
    language: Language


def _entry(name: str, suite: str, archetype: str, language: Language) -> BenchmarkInfo:
    return BenchmarkInfo(name, suite, archetype, language)


#: The 24 SPEC CPU2000 benchmarks of Figures 4 and 5, in the paper's order.
SPEC2000: tuple[BenchmarkInfo, ...] = (
    _entry("164.gzip", "spec2000-int", "spec-int", Language.C),
    _entry("168.wupwise", "spec2000-fp", "spec-fp", Language.FORTRAN),
    _entry("171.swim", "spec2000-fp", "spec-fp", Language.FORTRAN),
    _entry("172.mgrid", "spec2000-fp", "spec-fp", Language.FORTRAN),
    _entry("173.applu", "spec2000-fp", "spec-fp", Language.FORTRAN),
    _entry("175.vpr", "spec2000-int", "spec-int", Language.C),
    _entry("176.gcc", "spec2000-int", "spec-int", Language.C),
    _entry("177.mesa", "spec2000-fp", "spec-fp", Language.C),
    _entry("178.galgel", "spec2000-fp", "spec-fp", Language.FORTRAN90),
    _entry("179.art", "spec2000-fp", "spec-fp", Language.C),
    _entry("181.mcf", "spec2000-int", "spec-int", Language.C),
    _entry("183.equake", "spec2000-fp", "spec-fp", Language.C),
    _entry("186.crafty", "spec2000-int", "spec-int", Language.C),
    _entry("187.facerec", "spec2000-fp", "spec-fp", Language.FORTRAN90),
    _entry("188.ammp", "spec2000-fp", "spec-fp", Language.C),
    _entry("189.lucas", "spec2000-fp", "spec-fp", Language.FORTRAN90),
    _entry("197.parser", "spec2000-int", "spec-int", Language.C),
    _entry("200.sixtrack", "spec2000-fp", "spec-fp", Language.FORTRAN),
    _entry("253.perlbmk", "spec2000-int", "spec-int", Language.C),
    _entry("254.gap", "spec2000-int", "spec-int", Language.C),
    _entry("255.vortex", "spec2000-int", "spec-int", Language.C),
    _entry("256.bzip2", "spec2000-int", "spec-int", Language.C),
    _entry("300.twolf", "spec2000-int", "spec-int", Language.C),
    _entry("301.apsi", "spec2000-fp", "spec-fp", Language.FORTRAN),
)

#: SPEC '95 programs whose newest version is the '95 one (no CPU2000 twin).
SPEC95: tuple[BenchmarkInfo, ...] = (
    _entry("101.tomcatv", "spec95-fp", "spec-fp", Language.FORTRAN),
    _entry("103.su2cor", "spec95-fp", "spec-fp", Language.FORTRAN),
    _entry("104.hydro2d", "spec95-fp", "spec-fp", Language.FORTRAN),
    _entry("107.mgrid95", "spec95-fp", "spec-fp", Language.FORTRAN),
    _entry("110.applu95", "spec95-fp", "spec-fp", Language.FORTRAN),
    _entry("125.turb3d", "spec95-fp", "spec-fp", Language.FORTRAN),
    _entry("141.apsi95", "spec95-fp", "spec-fp", Language.FORTRAN),
    _entry("145.fpppp", "spec95-fp", "spec-fp", Language.FORTRAN),
    _entry("099.go", "spec95-int", "spec-int", Language.C),
    _entry("124.m88ksim", "spec95-int", "spec-int", Language.C),
    _entry("129.compress", "spec95-int", "spec-int", Language.C),
    _entry("132.ijpeg", "spec95-int", "spec-int", Language.C),
)

#: SPEC '92 stragglers.
SPEC92: tuple[BenchmarkInfo, ...] = (
    _entry("013.spice2g6", "spec92-fp", "spec-fp", Language.FORTRAN),
    _entry("015.doduc", "spec92-fp", "spec-fp", Language.FORTRAN),
    _entry("034.mdljdp2", "spec92-fp", "spec-fp", Language.FORTRAN),
    _entry("039.wave5", "spec92-fp", "spec-fp", Language.FORTRAN),
    _entry("047.tomcatv92", "spec92-fp", "spec-fp", Language.FORTRAN),
    _entry("008.espresso", "spec92-int", "spec-int", Language.C),
    _entry("022.li", "spec92-int", "spec-int", Language.C),
    _entry("023.eqntott", "spec92-int", "spec-int", Language.C),
)

#: Mediabench applications.
MEDIABENCH: tuple[BenchmarkInfo, ...] = (
    _entry("adpcm", "mediabench", "media", Language.C),
    _entry("epic", "mediabench", "media", Language.C),
    _entry("g721", "mediabench", "media", Language.C),
    _entry("gsm", "mediabench", "media", Language.C),
    _entry("jpeg", "mediabench", "media", Language.C),
    _entry("mpeg2dec", "mediabench", "media", Language.C),
    _entry("mpeg2enc", "mediabench", "media", Language.C),
    _entry("pegwit", "mediabench", "media", Language.C),
    _entry("pgp", "mediabench", "media", Language.C),
    _entry("rasta", "mediabench", "media", Language.C),
    _entry("mesa-texgen", "mediabench", "media", Language.C),
    _entry("ghostscript", "mediabench", "media", Language.C),
)

#: Perfect-suite programs.
PERFECT: tuple[BenchmarkInfo, ...] = (
    _entry("perfect-adm", "perfect", "perfect", Language.FORTRAN),
    _entry("perfect-arc2d", "perfect", "perfect", Language.FORTRAN),
    _entry("perfect-bdna", "perfect", "perfect", Language.FORTRAN),
    _entry("perfect-dyfesm", "perfect", "perfect", Language.FORTRAN),
    _entry("perfect-flo52", "perfect", "perfect", Language.FORTRAN),
    _entry("perfect-mdg", "perfect", "perfect", Language.FORTRAN),
    _entry("perfect-ocean", "perfect", "perfect", Language.FORTRAN),
    _entry("perfect-qcd", "perfect", "perfect", Language.FORTRAN),
)

#: Hand-written kernels.
KERNELS: tuple[BenchmarkInfo, ...] = (
    _entry("kernels-blas1", "kernels", "kernel", Language.FORTRAN),
    _entry("kernels-stencil", "kernels", "kernel", Language.C),
    _entry("kernels-stream", "kernels", "kernel", Language.C),
    _entry("kernels-livermore", "kernels", "kernel", Language.FORTRAN),
    _entry("kernels-dsp", "kernels", "kernel", Language.C),
    _entry("kernels-crypto", "kernels", "kernel", Language.C),
    _entry("kernels-sort", "kernels", "kernel", Language.C),
    _entry("kernels-linpack", "kernels", "kernel", Language.FORTRAN),
)

#: The full 72-benchmark roster, in stable order.
ROSTER: tuple[BenchmarkInfo, ...] = (
    SPEC2000 + SPEC95 + SPEC92 + MEDIABENCH + PERFECT + KERNELS
)
assert len(ROSTER) == 72, "the roster must contain exactly 72 benchmarks"

#: Names of the SPEC 2000 floating-point benchmarks (Figure 4's 9% subset).
SPEC2000_FP_NAMES: tuple[str, ...] = tuple(
    info.name for info in SPEC2000 if info.suite == "spec2000-fp"
)

#: Names of all 24 evaluated SPEC 2000 benchmarks, in figure order.
SPEC2000_NAMES: tuple[str, ...] = tuple(info.name for info in SPEC2000)
