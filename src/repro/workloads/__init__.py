"""Workloads: kernels, body patterns, and the 72-benchmark synthetic suite."""

from repro.workloads.generator import (
    ARCHETYPES,
    Archetype,
    generate_benchmark,
    generate_loop,
    generate_suite,
)
from repro.workloads.kernels import KERNELS
from repro.workloads.patterns import PATTERNS
from repro.workloads.spec_names import (
    ROSTER,
    SPEC2000,
    SPEC2000_FP_NAMES,
    SPEC2000_NAMES,
    BenchmarkInfo,
)

__all__ = [
    "ARCHETYPES",
    "Archetype",
    "BenchmarkInfo",
    "KERNELS",
    "PATTERNS",
    "ROSTER",
    "SPEC2000",
    "SPEC2000_FP_NAMES",
    "SPEC2000_NAMES",
    "generate_benchmark",
    "generate_loop",
    "generate_suite",
]
