"""Synthetic benchmark generation.

Builds the training population: 72 benchmarks whose innermost loops are
composed from the pattern library according to per-archetype mixes.  The
archetypes encode the folklore the paper's benchmark choice embodies —
floating-point SPEC codes are stencil/reduction-heavy Fortran with long
trips, integer SPEC codes are control- and pointer-heavy C with short trips
and early exits, Mediabench kernels have small compile-time-known trip
counts, and so on.  Everything is driven by ``numpy.random.SeedSequence``
spawning, so the entire 72-benchmark suite is a pure function of one root
seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop, TripInfo
from repro.ir.program import Benchmark, Suite
from repro.ir.types import Language
from repro.ir.validate import validate_loop
from repro.workloads.patterns import PATTERNS
from repro.workloads.spec_names import ROSTER, BenchmarkInfo


@dataclass(frozen=True)
class Archetype:
    """Per-suite-style generation parameters."""

    name: str
    pattern_weights: dict[str, float]
    extra_patterns: tuple[int, int]  # min/max patterns beyond the first
    trip_log2: tuple[float, float]
    known_prob: float
    small_known_prob: float
    while_prob: float
    entries_log2: tuple[float, float]
    loop_fraction: tuple[float, float]
    n_loops: tuple[int, int]
    fat_prob: float = 0.10
    while_trip_log2: tuple[float, float] = (3.0, 6.5)
    #: Probability of a huge streaming trip count (working set beyond L3 —
    #: a swim/art-style benchmark sweep); unrolling cannot beat memory
    #: bandwidth there.
    huge_trip_prob: float = 0.0
    huge_trip_log2: tuple[float, float] = (15.0, 18.0)


ARCHETYPES: dict[str, Archetype] = {
    "spec-fp": Archetype(
        name="spec-fp",
        pattern_weights={
            "stream_map": 3.0,
            "stencil": 2.5,
            "reduction": 2.0,
            "strided": 1.5,
            "carried_store": 1.0,
            "invariant": 1.0,
            "recurrence": 0.8,
            "conditional": 0.5,
            "gather": 0.3,
        },
        extra_patterns=(1, 4),
        trip_log2=(5.0, 14.5),
        known_prob=0.25,
        small_known_prob=0.08,
        while_prob=0.03,
        entries_log2=(2.0, 8.0),
        loop_fraction=(0.70, 0.92),
        n_loops=(40, 70),
        fat_prob=0.22,
        huge_trip_prob=0.10,
    ),
    "spec-int": Archetype(
        name="spec-int",
        pattern_weights={
            "int_mix": 3.0,
            "conditional": 2.0,
            "pointer_chase": 2.0,
            "gather": 1.5,
            "stream_map": 1.2,
            "scatter": 1.0,
            "search_exit": 1.0,
            "reduction": 0.8,
            "invariant": 0.6,
            "recurrence": 0.4,
        },
        extra_patterns=(1, 3),
        trip_log2=(2.5, 8.0),
        known_prob=0.30,
        small_known_prob=0.15,
        while_prob=0.30,
        entries_log2=(3.0, 9.0),
        loop_fraction=(0.25, 0.55),
        n_loops=(25, 50),
        fat_prob=0.18,
    ),
    "media": Archetype(
        name="media",
        pattern_weights={
            "stream_map": 2.5,
            "int_mix": 2.0,
            "stencil": 1.5,
            "conditional": 1.5,
            "strided": 1.0,
            "reduction": 1.0,
            "invariant": 0.8,
        },
        extra_patterns=(1, 2),
        trip_log2=(2.5, 7.0),
        known_prob=0.45,
        small_known_prob=0.30,
        while_prob=0.10,
        entries_log2=(4.0, 10.0),
        loop_fraction=(0.50, 0.80),
        n_loops=(20, 40),
        fat_prob=0.08,
    ),
    "perfect": Archetype(
        name="perfect",
        pattern_weights={
            "stencil": 2.5,
            "stream_map": 2.0,
            "strided": 2.0,
            "reduction": 1.5,
            "carried_store": 1.2,
            "invariant": 1.0,
            "recurrence": 0.8,
        },
        extra_patterns=(2, 4),
        trip_log2=(5.0, 13.0),
        known_prob=0.35,
        small_known_prob=0.05,
        while_prob=0.02,
        entries_log2=(2.0, 7.0),
        loop_fraction=(0.65, 0.90),
        n_loops=(30, 50),
        fat_prob=0.28,
        huge_trip_prob=0.10,
    ),
    "kernel": Archetype(
        name="kernel",
        pattern_weights={name: 1.0 for name in PATTERNS if name != "search_exit"},
        extra_patterns=(0, 1),
        trip_log2=(6.0, 14.0),
        known_prob=0.40,
        small_known_prob=0.10,
        while_prob=0.05,
        entries_log2=(1.0, 6.0),
        loop_fraction=(0.80, 0.95),
        n_loops=(15, 30),
        huge_trip_prob=0.12,
    ),
}

#: Trip*entries below which a loop will likely fail the 50k-cycle filter.
_MIN_WORK = 12_000

#: Bumped whenever generation logic or archetype parameters change, so that
#: cached measurement tables keyed on it can never go stale.
WORKLOADS_VERSION = 3


def generate_loop(
    rng: np.random.Generator,
    archetype: Archetype,
    name: str,
    benchmark: str,
    language: Language,
) -> Loop:
    """Generate one innermost loop of the given archetype."""
    is_while = rng.random() < archetype.while_prob
    entries: int | None = None

    if is_while:
        # Search-style loops exit early, so their effective trips are short;
        # an unrolled copy's overshoot is then a real fraction of the work.
        lo, hi = archetype.while_trip_log2
        trip = int(round(2.0 ** rng.uniform(lo, hi)))
        known = False  # a while loop's bound is never a compile-time constant
    elif rng.random() < archetype.huge_trip_prob:
        lo, hi = archetype.huge_trip_log2
        trip = int(round(2.0 ** rng.uniform(lo, hi)))
        known = False  # huge sweeps run over runtime-sized arrays
        entries = int(rng.integers(1, 9))  # a whole-array pass runs few times
    elif rng.random() < archetype.small_known_prob:
        trip = int(rng.choice([4, 6, 8, 8, 12, 16]))
        known = True
    else:
        lo, hi = archetype.trip_log2
        trip = int(round(2.0 ** rng.uniform(lo, hi)))
        known = rng.random() < archetype.known_prob

    if entries is None:
        lo, hi = archetype.entries_log2
        entries = int(round(2.0 ** rng.uniform(lo, hi)))
        # Bias most loops over the measurement floor so the 50k-cycle filter
        # trims a realistic minority rather than the bulk of the population.
        if rng.random() < 0.85 and trip * entries < _MIN_WORK:
            entries = max(entries, -(-_MIN_WORK // trip))

    is_fat = rng.random() < archetype.fat_prob
    if is_fat:
        # Fat bodies are common in the population but rarely on the hot
        # path (setup/epilogue-style code), so they run far fewer entries
        # than the streaming kernels that dominate runtime.
        entries = max(1, entries // 6)

    nest_level = 1 + int(rng.random() < 0.55) + int(rng.random() < 0.20)

    builder = LoopBuilder(
        name,
        TripInfo(runtime=trip, compile_time=trip if known else None, counted=not is_while),
        nest_level=nest_level,
        language=language,
        entry_count=entries,
        benchmark=benchmark,
    )

    names = [n for n in archetype.pattern_weights if n != "search_exit"]
    weights = np.array([archetype.pattern_weights[n] for n in names], dtype=float)
    weights /= weights.sum()
    extra_lo, extra_hi = archetype.extra_patterns
    if is_fat:
        # A "fat" body — hand-unrolled legacy code or a fused megaloop.
        # Unrolling these blows registers and the I-cache almost at once.
        n_patterns = int(rng.integers(5, 10))
    else:
        n_patterns = 1 + int(rng.integers(extra_lo, extra_hi + 1))
    chosen = list(rng.choice(names, size=n_patterns, p=weights))
    if is_while:
        chosen.insert(0, "search_exit")
    elif "search_exit" in archetype.pattern_weights and rng.random() < 0.06:
        chosen.append("search_exit")  # a 'break' inside a counted loop

    for tag_index, pattern_name in enumerate(chosen):
        PATTERNS[pattern_name](builder, rng, tag=f"p{tag_index}")

    loop = builder.build(validate=False)
    validate_loop(loop)
    return loop


def generate_benchmark(
    info: BenchmarkInfo,
    rng: np.random.Generator,
    loops_scale: float = 1.0,
) -> Benchmark:
    """Generate all loops of one roster benchmark."""
    archetype = ARCHETYPES[info.archetype]
    lo, hi = archetype.n_loops
    n_loops = max(3, int(round(rng.integers(lo, hi + 1) * loops_scale)))
    loops = tuple(
        generate_loop(
            rng,
            archetype,
            name=f"{info.name}/loop_{index:03d}",
            benchmark=info.name,
            language=info.language,
        )
        for index in range(n_loops)
    )
    frac_lo, frac_hi = archetype.loop_fraction
    loop_fraction = float(rng.uniform(frac_lo, frac_hi))
    return Benchmark(
        name=info.name,
        suite=info.suite,
        language=info.language,
        loops=loops,
        loop_fraction=loop_fraction,
    )


def generate_suite(
    seed: int = 20050320,
    roster: tuple[BenchmarkInfo, ...] = ROSTER,
    loops_scale: float = 1.0,
) -> Suite:
    """Generate the full training suite (72 benchmarks by default).

    The suite is a pure function of ``seed``: each benchmark gets an
    independent child generator via ``SeedSequence.spawn``, so adding or
    reordering benchmarks never perturbs the others.
    """
    children = np.random.SeedSequence(seed).spawn(len(roster))
    benchmarks = tuple(
        generate_benchmark(info, np.random.default_rng(child), loops_scale)
        for info, child in zip(roster, children)
    )
    return Suite(name=f"metaopt-suite-{seed}", benchmarks=benchmarks)
