"""Fault tolerance for long-running measurement and serving workloads.

Three pieces, used together by the pipeline, the serve path, and CI:

* :mod:`repro.resilience.executor` — retries, per-unit timeouts, quarantine,
  broken-pool fallback, and checkpoint/resume for fan-outs of independent
  work units;
* :mod:`repro.resilience.journal` — the durable commit log that makes
  ``repro-unroll measure --resume`` bit-identical to an uninterrupted run;
* :mod:`repro.resilience.faults` — deterministic, seedable fault injection
  (never on by default) so every recovery path above is exercised by real
  induced failures rather than mocks.
"""

from repro.resilience.executor import (
    DEFAULT_RESILIENCE,
    ResilienceConfig,
    RunReport,
    UnitFailedError,
    UnitTask,
    run_units,
)
from repro.resilience.faults import (
    FAULT_PLAN_ENV,
    KILL_EXIT_CODE,
    AbortRun,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    fault_plan,
    get_injector,
    in_pool_worker,
    install_fault_plan,
    mark_pool_worker,
)
from repro.resilience.journal import CheckpointJournal, JournalError
from repro.resilience.retry import RetryPolicy

__all__ = [
    "AbortRun",
    "CheckpointJournal",
    "DEFAULT_RESILIENCE",
    "FAULT_PLAN_ENV",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "JournalError",
    "KILL_EXIT_CODE",
    "ResilienceConfig",
    "RetryPolicy",
    "RunReport",
    "UnitFailedError",
    "UnitTask",
    "fault_plan",
    "get_injector",
    "in_pool_worker",
    "install_fault_plan",
    "mark_pool_worker",
    "run_units",
]
