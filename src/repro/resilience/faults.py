"""Deterministic fault injection: the test harness for every recovery path.

A :class:`FaultPlan` is a seedable, declarative list of faults to inject at
named operation sites (kill a pool worker, delay a work unit past its
timeout, corrupt a cache entry, bit-flip a model artifact, mangle a serve
request, abort a run at a unit boundary).  Injection is **never on by
default**: a plan activates only through the ``REPRO_FAULT_PLAN``
environment variable (inline JSON or a path to a JSON file) or the CLI's
``--fault-plan`` test hook, both of which feed :func:`install_fault_plan`.
Worker processes inherit the environment variable, so one plan governs the
whole process tree.

Determinism comes from *matching*, not randomness: every injection site
reports an ``(op, key)`` pair — e.g. ``("unit.error", "cg:u3#a0")`` for
benchmark ``cg`` at unroll factor 3 on attempt 0 — and a rule fires only
when its glob pattern matches.  The same plan against the same run injects
the same faults at the same places, in every process, regardless of worker
scheduling.

Injection sites wired through the stack:

========================  ===================================================
op                        effect at the site
========================  ===================================================
``worker.kill``           ``os._exit`` inside a pool worker (ignored outside
                          one) — induces ``BrokenProcessPool`` in the parent
``unit.delay``            sleep ``delay_s`` before running a work unit
``unit.error``            raise :class:`InjectedFault` in a work unit
``run.abort``             raise :class:`AbortRun` after a unit commits — a
                          simulated kill at a checkpoint boundary
``analysis.poison``       corrupt an in-memory analysis-cache entry so the
                          structural verification must reject it
``cache.corrupt``         flip one byte of a measurement-cache file before
                          it is read
``artifact.bitflip``      flip one byte of a model artifact before it is
                          loaded
``serve.delay``           sleep ``delay_s`` while handling a serve request
``serve.internal``        raise :class:`InjectedFault` inside the engine's
                          dispatch (exercises the ``internal-error`` path)
``serve.malformed``       replace a serve request with garbage
========================  ===================================================
"""

from __future__ import annotations

import contextlib
import dataclasses
import fnmatch
import json
import os
import threading
import time
from pathlib import Path

#: Environment variable carrying the active plan (inline JSON or file path).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit code a worker dies with under ``worker.kill`` (recognisable in CI
#: logs as an induced death, not an organic crash).
KILL_EXIT_CODE = 87


class InjectedFault(RuntimeError):
    """An error raised on purpose by the fault injector."""


class AbortRun(RuntimeError):
    """An injected simulation of a killed run (e.g. SIGKILL between two
    checkpointed work units).  Never caught by the retry machinery — the
    point is to die and test the resume path."""


@dataclasses.dataclass(frozen=True)
class FaultRule:
    """One fault to inject: fire at site ``op`` when the event key matches.

    Attributes:
        op: injection-site name (see the module table).
        match: glob pattern over the site's event key.  Unit-level keys end
            in ``#a<attempt>``, so ``"*#a0"`` means "first attempts only".
        times: maximum firings (0 = unlimited).
        skip: matching events to let pass before the first firing (``skip=3``
            fires on the fourth match — how ``run.abort`` picks a kill point).
        delay_s: sleep duration for the delay-flavoured ops.
    """

    op: str
    match: str = "*"
    times: int = 1
    skip: int = 0
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.op:
            raise ValueError("fault rule needs an op name")
        if self.times < 0 or self.skip < 0 or self.delay_s < 0:
            raise ValueError(f"negative times/skip/delay in fault rule for {self.op!r}")

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultRule":
        unknown = set(payload) - {f.name for f in dataclasses.fields(cls)}
        if unknown:
            raise ValueError(f"unknown fault rule field(s): {', '.join(sorted(unknown))}")
        return cls(**payload)


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A seed plus an ordered list of :class:`FaultRule` entries."""

    seed: int = 0
    rules: tuple[FaultRule, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Parse inline JSON, or read the JSON file ``text`` points at."""
        text = text.strip()
        if not text.startswith("{"):
            text = Path(text).read_text()
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("fault plan must be a JSON object")
        rules = tuple(FaultRule.from_dict(rule) for rule in payload.get("rules", ()))
        return cls(seed=int(payload.get("seed", 0)), rules=rules)

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [dataclasses.asdict(rule) for rule in self.rules],
            },
            sort_keys=True,
        )


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at the injection sites.

    Thread-safe; one injector per process (workers build their own from the
    inherited environment).  ``events`` records every firing as an
    ``(op, key)`` pair so tests can assert exactly which faults landed.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.events: list[tuple[str, str]] = []
        self._lock = threading.Lock()
        self._seen = [0] * len(plan.rules)
        self._fired = [0] * len(plan.rules)
        self._by_op: dict[str, list[int]] = {}
        for index, rule in enumerate(plan.rules):
            self._by_op.setdefault(rule.op, []).append(index)

    @property
    def active(self) -> bool:
        """Whether the plan has any rules at all (the common-case fast path
        checks this once and skips the per-site bookkeeping)."""
        return bool(self.plan.rules)

    def fire(self, op: str, key: str = "") -> FaultRule | None:
        """The rule that fires for this event, if any (consumes budget)."""
        indices = self._by_op.get(op)
        if not indices:
            return None
        with self._lock:
            for index in indices:
                rule = self.plan.rules[index]
                if not fnmatch.fnmatchcase(key, rule.match):
                    continue
                seen = self._seen[index]
                self._seen[index] += 1
                if seen < rule.skip:
                    continue
                if rule.times and self._fired[index] >= rule.times:
                    continue
                self._fired[index] += 1
                self.events.append((op, key))
                return rule
        return None

    # ------------------------------------------------------------------
    # Site-flavoured helpers (each a no-op unless a rule fires).
    # ------------------------------------------------------------------

    def kill(self, op: str, key: str = "") -> None:
        """Die instantly — but only inside a pool worker, so a plan written
        for parallel runs can never take down the parent process."""
        if in_pool_worker() and self.fire(op, key) is not None:
            os._exit(KILL_EXIT_CODE)

    def delay(self, op: str, key: str = "") -> None:
        rule = self.fire(op, key)
        if rule is not None and rule.delay_s > 0:
            time.sleep(rule.delay_s)

    def raise_fault(self, op: str, key: str = "") -> None:
        if self.fire(op, key) is not None:
            raise InjectedFault(f"injected {op} fault at {key!r}")

    def abort(self, op: str, key: str = "") -> None:
        if self.fire(op, key) is not None:
            raise AbortRun(f"injected {op} at {key!r} (simulated kill)")

    def corrupt_file(self, op: str, key: str, path: str | Path) -> bool:
        """Flip one byte of ``path`` in place (deterministic offset drawn
        from the plan seed and file size).  Returns whether it fired."""
        if self.fire(op, key) is None:
            return False
        path = Path(path)
        size = path.stat().st_size
        if size == 0:
            return False
        offset = (self.plan.seed * 2654435761 + size) % size
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
        return True

    def mangle(self, op: str, key: str, request):
        """Replace a serve request with structurally-invalid garbage."""
        if self.fire(op, key) is not None:
            return ["__injected_malformed_request__", key]
        return request


# ---------------------------------------------------------------------------
# Process-global activation.
# ---------------------------------------------------------------------------

_EMPTY_PLAN = FaultPlan()
_cached: tuple[str, FaultInjector] | None = None

_IN_POOL_WORKER = False


def mark_pool_worker() -> None:
    """Flag this process as a pool worker (called by the executor's pool
    initializer); gates the ``worker.kill`` site."""
    global _IN_POOL_WORKER
    _IN_POOL_WORKER = True


def in_pool_worker() -> bool:
    """Whether this process was flagged as a pool worker."""
    return _IN_POOL_WORKER


def get_injector() -> FaultInjector:
    """The process-wide injector for the currently-installed plan.

    With no plan installed this returns an inert injector whose ``active``
    is false — call sites stay branch-cheap in production.  The injector is
    rebuilt (with fresh budgets) whenever the installed plan text changes.
    """
    global _cached
    text = os.environ.get(FAULT_PLAN_ENV, "").strip()
    if _cached is not None and _cached[0] == text:
        return _cached[1]
    plan = FaultPlan.parse(text) if text else _EMPTY_PLAN
    injector = FaultInjector(plan)
    _cached = (text, injector)
    return injector


def install_fault_plan(plan: FaultPlan | str | None) -> None:
    """Install (or, with ``None``, clear) the process-wide fault plan.

    The plan is stored in ``REPRO_FAULT_PLAN`` so that worker processes
    spawned afterwards inherit it.  Strings pass through verbatim (inline
    JSON or a file path); plans are serialised.
    """
    global _cached
    _cached = None
    if plan is None:
        os.environ.pop(FAULT_PLAN_ENV, None)
    elif isinstance(plan, str):
        os.environ[FAULT_PLAN_ENV] = plan
    else:
        os.environ[FAULT_PLAN_ENV] = plan.to_json()


@contextlib.contextmanager
def fault_plan(plan: FaultPlan | str | None):
    """Context manager used by tests: install a plan, yield the injector,
    restore whatever was installed before."""
    previous = os.environ.get(FAULT_PLAN_ENV)
    install_fault_plan(plan)
    try:
        yield get_injector()
    finally:
        install_fault_plan(previous)
