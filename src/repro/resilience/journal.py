"""Checkpoint journal: resume a killed measurement run where it stopped.

A journal is an append-only JSON-lines file.  The first line is a header
binding it to one run (a ``run_key`` — the measurement cache key, which
pins every input that determines the results); each subsequent line commits
one completed work unit as ``{"key": <unit label>, "payload": {...}}``.
Commits are flushed and fsynced, so a process killed mid-run loses at most
the unit it was writing — and a torn final line (the kill landed mid-write)
is detected and dropped on load rather than poisoning the resume.

Because every work unit derives its RNG from its own seed child, replaying
the journal and re-executing only the missing units reproduces the
uninterrupted run bit-for-bit; payload floats round-trip exactly through
JSON (``repr`` shortest-float semantics).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Format tag + version written into every journal header.
JOURNAL_FORMAT = "repro-checkpoint-journal"
JOURNAL_VERSION = 1


class JournalError(RuntimeError):
    """The journal cannot serve this run: wrong format, version, or run key.

    Raised instead of silently resuming from foreign state — a journal for a
    different config would corrupt the resumed table."""


class CheckpointJournal:
    """Commit log of completed work units for one measurement run."""

    def __init__(self, path: str | Path, run_key: str):
        self.path = Path(path)
        self.run_key = run_key
        self.completed: dict[str, dict] = {}
        self._handle = None

    # ------------------------------------------------------------------

    def load(self) -> int:
        """Read committed units from an existing journal file.

        Returns the number of units recovered (0 when the file does not
        exist).  A torn trailing line is dropped; a header that does not
        match this run's key raises :class:`JournalError`.
        """
        if not self.path.exists():
            return 0
        with open(self.path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return 0
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as error:
            raise JournalError(f"{self.path}: unreadable journal header: {error}") from None
        if (
            not isinstance(header, dict)
            or header.get("format") != JOURNAL_FORMAT
            or header.get("version") != JOURNAL_VERSION
        ):
            raise JournalError(f"{self.path}: not a v{JOURNAL_VERSION} checkpoint journal")
        if header.get("run_key") != self.run_key:
            raise JournalError(
                f"{self.path}: journal belongs to run {header.get('run_key')!r}, "
                f"not {self.run_key!r}; delete it or start without --resume"
            )
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail: the writer died mid-line; drop it
            if not isinstance(entry, dict) or "key" not in entry:
                break
            self.completed[entry["key"]] = entry.get("payload", {})
        return len(self.completed)

    # ------------------------------------------------------------------

    def _open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.path.exists() or self.path.stat().st_size == 0
            self._handle = open(self.path, "a", encoding="utf-8")
            if fresh:
                header = {
                    "format": JOURNAL_FORMAT,
                    "version": JOURNAL_VERSION,
                    "run_key": self.run_key,
                }
                self._handle.write(json.dumps(header, sort_keys=True) + "\n")
                self._flush()
        return self._handle

    def _flush(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def commit(self, key: str, payload: dict) -> None:
        """Durably append one completed unit."""
        handle = self._open()
        handle.write(json.dumps({"key": key, "payload": payload}, sort_keys=True) + "\n")
        self._flush()
        self.completed[key] = payload

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def discard(self) -> None:
        """Close and delete the journal (the run committed elsewhere, or the
        operator chose a fresh start)."""
        self.close()
        self.path.unlink(missing_ok=True)

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
