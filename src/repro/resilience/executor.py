"""Fault-tolerant fan-out of independent work units.

:func:`run_units` is the resilient core both measurement fan-outs sit on:
it runs a list of :class:`UnitTask` items serially or over a
``ProcessPoolExecutor``, and survives the failure modes a long measurement
campaign actually hits:

* **Per-unit timeouts** — a unit that overruns ``unit_timeout_s`` is
  treated as failed and retried; the stuck worker keeps its slot until the
  run ends (process tasks cannot be preempted), its eventual result is
  discarded, and if any unit timed out the pool is torn down without
  waiting — hung workers are terminated rather than allowed to block the
  run at pool exit.
* **Retries with deterministic backoff** — failures are retried up to
  ``RetryPolicy.max_attempts`` times with exponential backoff whose jitter
  derives from the unit's own seed child, so a retried run is bit-identical
  to an untroubled one (the measurement RNG is never touched).
* **Quarantine instead of abort** — a unit that fails every attempt is
  recorded as a :class:`~repro.instrument.report.ResilienceEvent` and
  omitted from the results; the caller degrades (NaN-fills the rows)
  rather than losing the whole run.
* **Worker death** — ``BrokenProcessPool`` (a worker was OOM-killed,
  segfaulted, or fault-injected) falls back to serial re-execution of every
  unit not yet committed, keeping all completed work.
* **Checkpoint/resume** — with a :class:`~repro.resilience.journal.
  CheckpointJournal`, every completed unit is durably committed; a resumed
  run replays committed units from the journal and only executes the rest.

Results are keyed, never ordered by completion, so all of the above is
invisible to the deterministic merge that consumes them.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.instrument.report import ResilienceEvent
from repro.resilience.faults import AbortRun, get_injector, mark_pool_worker
from repro.resilience.journal import CheckpointJournal
from repro.resilience.retry import RetryPolicy


@dataclass(frozen=True)
class ResilienceConfig:
    """Fault-tolerance knobs for a measurement run.

    ``quarantine=False`` turns exhausted retries back into a hard error
    (:class:`UnitFailedError`) for callers that must not degrade.
    """

    retry: RetryPolicy = RetryPolicy()
    unit_timeout_s: float | None = None
    quarantine: bool = True


DEFAULT_RESILIENCE = ResilienceConfig()


class UnitFailedError(RuntimeError):
    """A work unit failed every attempt and quarantine is disabled."""


@dataclass(frozen=True)
class UnitTask:
    """One schedulable work unit.

    ``fn``/``args`` must be picklable (the pool path ships them to
    workers); ``serial_call``, when given, is the closure the serial path
    uses instead — it may capture unpicklable state such as a shared cost
    model.  ``label`` doubles as the journal key and the fault-match key.
    """

    key: Any
    label: str
    fn: Callable
    args: tuple
    seed: np.random.SeedSequence | None = None
    serial_call: Callable[[], Any] | None = None


@dataclass
class RunReport:
    """What the executor did: keyed results plus every resilience event."""

    results: dict = field(default_factory=dict)
    events: list[ResilienceEvent] = field(default_factory=list)

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    @property
    def quarantined(self) -> list[ResilienceEvent]:
        return [event for event in self.events if event.kind == "quarantine"]


def _pool_init(initializer: Callable | None) -> None:
    """Pool initializer: flag the process as a worker (arms ``worker.kill``)
    and run the caller's own initializer."""
    mark_pool_worker()
    if initializer is not None:
        initializer()


def _run_unit(fn: Callable, args: tuple, label: str, attempt: int):
    """Pool-side unit entry point: apply worker-scoped faults, then run."""
    injector = get_injector()
    if injector.active:
        key = f"{label}#a{attempt}"
        injector.kill("worker.kill", key)
        injector.delay("unit.delay", key)
        injector.raise_fault("unit.error", key)
    return fn(*args)


def _call_serial(task: UnitTask, attempt: int):
    """Parent-side unit execution (serial mode and broken-pool fallback).
    Worker-kill faults do not apply here — there is no worker to kill."""
    injector = get_injector()
    if injector.active:
        key = f"{task.label}#a{attempt}"
        injector.delay("unit.delay", key)
        injector.raise_fault("unit.error", key)
    if task.serial_call is not None:
        return task.serial_call()
    return task.fn(*task.args)


def run_units(
    tasks: list[UnitTask],
    jobs: int = 1,
    config: ResilienceConfig | None = None,
    journal: CheckpointJournal | None = None,
    encode: Callable[[Any], dict] | None = None,
    decode: Callable[[dict], Any] | None = None,
    initializer: Callable | None = None,
) -> RunReport:
    """Run every task, tolerating unit failures, and report what happened.

    Args:
        tasks: the work units; results land in ``report.results[task.key]``.
        jobs: worker processes (1 = in-process serial execution).
        config: retry/timeout/quarantine policy.
        journal: checkpoint journal; units already committed there are
            replayed (``decode``), fresh completions are committed
            (``encode``).  Both codecs must be given to use a journal.
        initializer: per-worker-process initializer for the pool path.
    """
    config = config or DEFAULT_RESILIENCE
    report = RunReport()
    injector = get_injector()
    attempts: dict[str, int] = {}

    pending: list[UnitTask] = []
    for task in tasks:
        payload = journal.completed.get(task.label) if journal is not None else None
        if payload is not None and decode is not None:
            report.results[task.key] = decode(payload)
            report.events.append(ResilienceEvent("resume", task.label))
        else:
            pending.append(task)
            attempts[task.label] = 0

    def commit(task: UnitTask, result) -> None:
        report.results[task.key] = result
        if journal is not None and encode is not None:
            journal.commit(task.label, encode(result))
        # Test hook: a simulated kill *after* the commit, i.e. at a unit
        # boundary — exactly what the resume path must survive.
        injector.abort("run.abort", task.label)

    def requeue(failures: list[tuple[UnitTask, str]]) -> list[UnitTask]:
        """Failed units either go into the next wave or quarantine."""
        wave: list[UnitTask] = []
        max_sleep = 0.0
        for task, message in failures:
            attempts[task.label] += 1
            if attempts[task.label] >= config.retry.max_attempts:
                if not config.quarantine:
                    raise UnitFailedError(
                        f"unit {task.label} failed after "
                        f"{attempts[task.label]} attempt(s): {message}"
                    )
                report.events.append(
                    ResilienceEvent("quarantine", task.label, message)
                )
            else:
                report.events.append(ResilienceEvent("retry", task.label, message))
                max_sleep = max(
                    max_sleep, config.retry.backoff_s(attempts[task.label], task.seed)
                )
                wave.append(task)
        if max_sleep > 0.0:
            time.sleep(max_sleep)
        return wave

    serial_tasks: list[UnitTask] = []
    if jobs > 1 and pending:
        pool = ProcessPoolExecutor(
            max_workers=jobs, initializer=_pool_init, initargs=(initializer,)
        )
        hung_workers = False
        try:
            wave = pending
            while wave:
                futures = [
                    (
                        task,
                        pool.submit(
                            _run_unit,
                            task.fn,
                            task.args,
                            task.label,
                            attempts[task.label],
                        ),
                    )
                    for task in wave
                ]
                failures: list[tuple[UnitTask, str]] = []
                for task, future in futures:
                    try:
                        commit(task, future.result(timeout=config.unit_timeout_s))
                    except FuturesTimeout as error:
                        # On 3.11+ this alias also catches a TimeoutError
                        # raised *inside* the unit; only an undone future
                        # under an actual deadline is a pool-level timeout.
                        if config.unit_timeout_s is None or future.done():
                            failures.append(
                                (task, f"{type(error).__name__}: {error}")
                            )
                            continue
                        future.cancel()
                        hung_workers = True
                        report.events.append(
                            ResilienceEvent(
                                "timeout",
                                task.label,
                                f"no result within {config.unit_timeout_s}s",
                            )
                        )
                        failures.append(
                            (task, f"timed out after {config.unit_timeout_s}s")
                        )
                    except (AbortRun, BrokenProcessPool):
                        raise
                    except Exception as error:
                        failures.append((task, f"{type(error).__name__}: {error}"))
                wave = requeue(failures)
        except BrokenProcessPool as error:
            # A worker died out from under the pool.  Everything already
            # committed is kept; everything else re-executes serially in
            # this process, where nothing can kill a worker.
            report.events.append(
                ResilienceEvent("broken-pool", "", f"{error}; falling back to serial")
            )
            quarantined = {event.key for event in report.quarantined}
            serial_tasks = [
                task
                for task in pending
                if task.key not in report.results and task.label not in quarantined
            ]
        finally:
            if hung_workers:
                # A timed-out unit may still be wedged in a worker; a
                # waiting shutdown would block the run on it forever.
                # Snapshot the workers first — shutdown() drops the pool's
                # reference to them — then kill whoever is left, so neither
                # the run nor interpreter exit can block on a hung unit.
                processes = list((getattr(pool, "_processes", None) or {}).values())
                pool.shutdown(wait=False, cancel_futures=True)
                for process in processes:
                    process.terminate()
            else:
                pool.shutdown(wait=True)
    else:
        serial_tasks = pending

    wave = serial_tasks
    while wave:
        failures = []
        for task in wave:
            try:
                result = _call_serial(task, attempts[task.label])
            except AbortRun:
                raise
            except Exception as error:
                failures.append((task, f"{type(error).__name__}: {error}"))
            else:
                commit(task, result)
        wave = requeue(failures)

    return report
