"""Retry policy: exponential backoff with deterministic jitter.

Jitter is drawn from a :class:`numpy.random.SeedSequence` derived from the
*work unit's own seed child* — never from wall clock or a shared generator —
so a retried run sleeps the same schedule every time and, more importantly,
never perturbs the unit's measurement RNG: the backoff generator is keyed
off the unit seed's ``spawn_key`` with a reserved suffix, which leaves the
generator :func:`numpy.random.default_rng` builds from that same seed
untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Reserved spawn-key suffix for backoff jitter streams.  Offset far above
#: anything the pipeline spawns per unit, so the jitter stream can never
#: collide with a measurement stream.
_JITTER_KEY = 0x5EED


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for failed work units.

    ``max_attempts`` counts *total* tries: 1 means fail fast, 3 (the
    default) means one initial try plus two retries.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5  # +/- fraction of the base delay

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(
        self, attempt: int, seed: np.random.SeedSequence | None = None
    ) -> float:
        """Sleep before retry ``attempt`` (1-based: the delay preceding the
        second try is ``backoff_s(1)``).  Deterministic given ``seed``."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)
        if base <= 0.0 or self.jitter == 0.0 or seed is None:
            return base
        jitter_seed = np.random.SeedSequence(
            entropy=seed.entropy,
            spawn_key=tuple(seed.spawn_key) + (_JITTER_KEY + attempt,),
        )
        unit = np.random.default_rng(jitter_seed).random()
        return base * (1.0 + self.jitter * (2.0 * unit - 1.0))
