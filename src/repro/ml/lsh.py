"""Approximate near-neighbor lookup via locality-sensitive hashing.

The paper's Section 5.1 notes that the linear database scan is already fast
at 2,500 examples (under 5 ms) and that "advances in the area of
approximate near neighbor lookup permit fast access (sublinear in the size
of the database) to databases on the order of hundreds of thousands of
examples" — citing Gionis, Indyk, and Motwani's hashing scheme — "so we
expect the NN method to scale well with database size".

This module makes that expectation concrete: random-projection LSH
(p-stable, Datar et al.'s E2LSH family, the Euclidean successor to the
cited scheme) wrapped in the same radius-vote/1-NN-fallback interface as
the exact classifier, so a bench can measure the accuracy/candidates
trade-off directly.
"""

from __future__ import annotations

import numpy as np

from repro.features.normalize import fit_minmax
from repro.ml.near_neighbor import DEFAULT_RADIUS, NNPrediction


class LSHNearNeighbor:
    """Approximate radius-vote classifier over LSH buckets.

    Args:
        radius: neighborhood radius in the normalised feature space.
        n_tables: independent hash tables (more tables -> higher recall).
        n_bits: hash functions concatenated per table (more bits -> smaller
            buckets, fewer candidates).
        bucket_width: quantisation width of each projection, in units of
            the radius.
        seed: RNG seed for the projections.
    """

    def __init__(
        self,
        radius: float = DEFAULT_RADIUS,
        n_tables: int = 8,
        n_bits: int = 6,
        bucket_width: float = 4.0,
        seed: int = 0,
    ):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.radius = radius
        self.n_tables = n_tables
        self.n_bits = n_bits
        self.bucket_width = bucket_width * radius
        self.seed = seed
        self._X = None
        self._y = None
        self._normalizer = None
        self._tables: list[dict[tuple, list[int]]] = []
        self._projections = None
        self._offsets = None
        self.last_candidate_count = 0

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LSHNearNeighbor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(X) == 0:
            raise ValueError("empty database")
        self._normalizer = fit_minmax(X)
        Z = self._normalizer.transform(X)
        self._X, self._y = Z, y

        rng = np.random.default_rng(self.seed)
        d = Z.shape[1]
        self._projections = rng.normal(size=(self.n_tables, self.n_bits, d))
        self._offsets = rng.uniform(0.0, self.bucket_width, size=(self.n_tables, self.n_bits))

        self._tables = [dict() for _ in range(self.n_tables)]
        for table_id in range(self.n_tables):
            keys = self._hash(Z, table_id)
            table = self._tables[table_id]
            for row, key in enumerate(keys):
                table.setdefault(key, []).append(row)
        return self

    def _hash(self, Z: np.ndarray, table_id: int):
        """Bucket keys of rows ``Z`` under one table's hash family."""
        proj = Z @ self._projections[table_id].T  # (n, n_bits)
        cells = np.floor((proj + self._offsets[table_id]) / self.bucket_width)
        return [tuple(row) for row in cells.astype(np.int64)]

    # ------------------------------------------------------------------

    def _candidates(self, z: np.ndarray) -> np.ndarray:
        found: set[int] = set()
        for table_id in range(self.n_tables):
            key = self._hash(z[None, :], table_id)[0]
            found.update(self._tables[table_id].get(key, ()))
        return np.fromiter(found, dtype=np.int64, count=len(found))

    def predict_one(self, x: np.ndarray) -> NNPrediction:
        if self._X is None:
            raise RuntimeError("classifier is not fitted")
        z = self._normalizer.transform(np.asarray(x, dtype=np.float64))
        candidates = self._candidates(z)
        self.last_candidate_count = len(candidates)
        if len(candidates) == 0:
            # Hash miss: degrade to a full scan for this query (rare).
            candidates = np.arange(len(self._X))
        distances = np.sqrt(((self._X[candidates] - z) ** 2).sum(axis=1))
        in_radius = distances <= self.radius
        n_in = int(in_radius.sum())
        if n_in == 0:
            nearest = candidates[int(np.argmin(distances))]
            return NNPrediction(int(self._y[nearest]), 0.0, 0, True)
        votes = np.bincount(self._y[candidates[in_radius]])
        top = votes.max()
        winners = np.flatnonzero(votes == top)
        if len(winners) > 1:
            nearest = candidates[int(np.argmin(distances))]
            return NNPrediction(int(self._y[nearest]), top / n_in, n_in, True)
        return NNPrediction(int(winners[0]), top / n_in, n_in, False)

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.array([self.predict_one(x).label for x in X], dtype=np.int64)

    def mean_candidate_fraction(self, X: np.ndarray) -> float:
        """Average fraction of the database inspected per query — the
        sublinearity the paper's scaling argument relies on."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        counts = []
        for x in X:
            self.predict_one(x)
            counts.append(self.last_candidate_count)
        return float(np.mean(counts)) / len(self._X)
