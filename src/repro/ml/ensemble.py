"""Confidence-calibrated ensemble over the four predictor families.

The paper fields two classifiers (near neighbor and LS-SVM) and reports
65%/62% accuracy; the ROADMAP's "Beyond NN/SVM" item asks for modern
families on the same 38 features.  This module combines all four — NN,
pairwise LS-SVM, the NumPy MLP, and the bagged random forest — into one
calibrated predictor:

* every family exposes a per-class probability distribution
  (``predict_proba`` over its ``classes_``), aligned here onto the global
  class set;
* each family's distribution is **temperature-calibrated**: a single
  scalar ``T`` per family, fit by minimising held-out negative
  log-likelihood on cross-validation folds (Platt-style post-hoc
  calibration, power form ``p ** (1/T)`` renormalised);
* calibrated distributions are combined by weights derived from each
  family's out-of-fold accuracy (a sharp softmax, so a clearly better
  family dominates while near-ties blend);
* the prediction reports a **confidence** (the combined probability of
  the chosen class) and a per-family **vote breakdown**.

Two exact contracts matter to the test tier:

* an ensemble restricted to a *single* family delegates the label to that
  family's own ``predict`` — agreement is exact by construction, including
  each family's private tie-breaking (NN's 1-NN fallback, the SVM's
  margin tie-break);
* fitted state splits into the members (serialised once each by the
  registry) and a small :meth:`CalibratedEnsemble.head_state` (classes,
  temperatures, weights), so restoring never duplicates arrays and never
  refits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.mlp import MLPClassifier
from repro.ml.near_neighbor import NearNeighborClassifier
from repro.ml.pairwise import PairwiseLSSVM, make_tuned_pairwise_svm
from repro.ml.trees import RandomForest
from repro.ml.tuning import kfold_indices

#: The four predictor families, in canonical order.
FAMILY_NAMES = ("nn", "svm", "mlp", "forest")

#: Temperatures searched during calibration (geometric grid around 1).
_TEMPERATURE_GRID = np.geomspace(0.25, 4.0, 25)

#: Softmax sharpness for accuracy-derived combination weights.  Small
#: enough that a family 5 points better takes most of the mass; large
#: enough that near-tied families still blend.
_WEIGHT_SHARPNESS = 0.05

_PROBA_EPS = 1e-12


def family_factories(seed: int = 0) -> dict:
    """Fresh unfitted classifiers per family (fold refits + final fits)."""
    return {
        "nn": lambda: NearNeighborClassifier(),
        "svm": make_tuned_pairwise_svm,
        "mlp": lambda: MLPClassifier(seed=seed),
        "forest": lambda: RandomForest(seed=seed),
    }


def aligned_proba(classifier, X: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """A member's ``predict_proba`` mapped onto the global class columns
    (zero probability for classes the member never saw)."""
    member_classes = np.asarray(classifier.classes_)
    proba = np.asarray(classifier.predict_proba(X), dtype=np.float64)
    if len(member_classes) == len(classes) and np.array_equal(member_classes, classes):
        return proba
    out = np.zeros((len(proba), len(classes)))
    out[:, np.searchsorted(classes, member_classes)] = proba
    return out


def calibrate_proba(proba: np.ndarray, temperature: float) -> np.ndarray:
    """Temperature calibration: ``p ** (1/T)`` renormalised row-wise.
    ``T = 1`` is the identity; ``T > 1`` softens over-confident
    distributions, ``T < 1`` sharpens under-confident ones."""
    scaled = np.clip(proba, _PROBA_EPS, None) ** (1.0 / float(temperature))
    return scaled / scaled.sum(axis=1, keepdims=True)


def fit_temperature(proba: np.ndarray, label_index: np.ndarray) -> float:
    """The grid temperature minimising held-out NLL (first minimum wins,
    so the fit is deterministic)."""
    best_t, best_nll = 1.0, np.inf
    rows = np.arange(len(proba))
    for t in _TEMPERATURE_GRID:
        calibrated = calibrate_proba(proba, float(t))
        nll = float(-np.log(np.clip(calibrated[rows, label_index], _PROBA_EPS, None)).mean())
        if nll < best_nll - 1e-12:
            best_t, best_nll = float(t), nll
    return best_t


@dataclass(frozen=True)
class EnsemblePrediction:
    """One batch of ensemble answers with their evidence."""

    labels: np.ndarray  # (n,) chosen unroll factors
    confidence: np.ndarray  # (n,) combined probability of the chosen label
    proba: np.ndarray  # (n, k) combined calibrated distribution
    votes: dict  # family -> (n,) that family's own labels


class CalibratedEnsemble:
    """Weighted combination of calibrated per-family distributions."""

    def __init__(
        self,
        members: dict,
        temperatures: dict,
        weights: dict,
        classes: np.ndarray,
        families: tuple[str, ...] = FAMILY_NAMES,
    ):
        families = tuple(families)
        if not families:
            raise ValueError("ensemble needs at least one family")
        missing = [f for f in families if f not in members]
        if missing:
            raise ValueError(f"members missing for families: {missing}")
        self.families = families
        self.members = dict(members)
        self.temperatures = {f: float(temperatures.get(f, 1.0)) for f in members}
        self.weights = {f: float(weights.get(f, 1.0)) for f in members}
        self.classes = np.asarray(classes, dtype=np.int64)

    # ------------------------------------------------------------------

    def restrict(self, families) -> "CalibratedEnsemble":
        """The same fitted ensemble with only ``families`` enabled —
        members and calibration are shared, nothing refits."""
        families = tuple(families)
        unknown = [f for f in families if f not in self.members]
        if unknown:
            raise ValueError(f"unknown families: {unknown}")
        return CalibratedEnsemble(
            members=self.members,
            temperatures=self.temperatures,
            weights=self.weights,
            classes=self.classes,
            families=families,
        )

    # ------------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """The combined calibrated distribution over :attr:`classes`."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        total = np.zeros((len(X), len(self.classes)))
        weight_sum = 0.0
        for family in self.families:
            weight = self.weights[family]
            proba = aligned_proba(self.members[family], X, self.classes)
            total += weight * calibrate_proba(proba, self.temperatures[family])
            weight_sum += weight
        return total / weight_sum

    def predict_detail(self, X: np.ndarray) -> EnsemblePrediction:
        """Labels, confidence, combined distribution, per-family votes.

        With a single enabled family the label is exactly that family's
        ``predict`` output (private tie-breaks included); with several,
        the combined distribution's argmax decides (first class wins
        ties).  Confidence is always the combined probability mass of the
        chosen label.
        """
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        votes = {
            family: np.asarray(self.members[family].predict(X), dtype=np.int64)
            for family in self.families
        }
        proba = self.predict_proba(X)
        if len(self.families) == 1:
            labels = votes[self.families[0]]
        else:
            labels = self.classes[np.argmax(proba, axis=1)]
        columns = np.searchsorted(self.classes, labels)
        confidence = proba[np.arange(len(labels)), columns]
        return EnsemblePrediction(
            labels=labels, confidence=confidence, proba=proba, votes=votes
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_detail(X).labels

    # ------------------------------------------------------------------
    # Persistence (the registry stores members once; the head is small).
    # ------------------------------------------------------------------

    def head_state(self) -> dict:
        """Calibration head only — classes, per-family temperature and
        weight.  Member states are serialised separately (once) by the
        registry; see :meth:`from_members`."""
        return {
            "families": list(self.families),
            "classes": self.classes,
            "temperatures": {f: float(self.temperatures[f]) for f in self.members},
            "weights": {f: float(self.weights[f]) for f in self.members},
        }

    @classmethod
    def from_members(cls, members: dict, head: dict) -> "CalibratedEnsemble":
        """Rebuild from restored members plus :meth:`head_state` output;
        predictions are bit-identical to the serialised ensemble."""
        return cls(
            members=members,
            temperatures=dict(head["temperatures"]),
            weights=dict(head["weights"]),
            classes=np.asarray(head["classes"], dtype=np.int64),
            families=tuple(str(f) for f in head["families"]),
        )


def train_calibrated_ensemble(
    X: np.ndarray,
    y: np.ndarray,
    members: dict | None = None,
    seed: int = 0,
    n_folds: int = 3,
    families: tuple[str, ...] = FAMILY_NAMES,
) -> CalibratedEnsemble:
    """Fit the calibrated ensemble on a labelled matrix.

    Calibration (one temperature per family, accuracy-derived weights) is
    fit on seeded k-fold *out-of-fold* predictions — fold models are
    trained fresh so the calibration never sees its own training rows.
    Final members are the provided pre-fitted ``members`` (so the registry
    path fits each family exactly once) or fresh fits on all rows.
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    classes = np.unique(y)
    factories = family_factories(seed=seed)
    unknown = [f for f in families if f not in factories]
    if unknown:
        raise ValueError(f"unknown families: {unknown}")

    temperatures = {f: 1.0 for f in families}
    weights = {f: 1.0 for f in families}
    n = len(y)
    k = min(n_folds, n // 2)
    if len(classes) > 1 and k >= 2:
        label_index = np.searchsorted(classes, y)
        folds = kfold_indices(n, k, seed=seed)
        oof_proba = {f: np.zeros((n, len(classes))) for f in families}
        oof_labels = {f: np.zeros(n, dtype=np.int64) for f in families}
        for test_rows in folds:
            mask = np.ones(n, dtype=bool)
            mask[test_rows] = False
            for family in families:
                model = factories[family]()
                model.fit(X[mask], y[mask])
                oof_proba[family][test_rows] = aligned_proba(
                    model, X[test_rows], classes
                )
                oof_labels[family][test_rows] = np.asarray(
                    model.predict(X[test_rows]), dtype=np.int64
                )
        accuracy = {
            f: float((oof_labels[f] == y).mean()) for f in families
        }
        temperatures = {
            f: fit_temperature(oof_proba[f], label_index) for f in families
        }
        # Sharp softmax over out-of-fold accuracy: the best family anchors
        # the combination, near-ties blend.
        accs = np.array([accuracy[f] for f in families])
        raw = np.exp((accs - accs.max()) / _WEIGHT_SHARPNESS)
        weights = {f: float(w / raw.sum()) for f, w in zip(families, raw)}

    if members is None:
        members = {}
        for family in families:
            model = factories[family]()
            model.fit(X, y)
            members[family] = model
    return CalibratedEnsemble(
        members=members,
        temperatures=temperatures,
        weights=weights,
        classes=classes,
        families=families,
    )
