"""Machine learning: classifiers, cross-validation, metrics, selection."""

from repro.ml.crossval import (
    leave_one_benchmark_out,
    loocv_naive,
    loocv_nn,
    loocv_svm,
    loocv_tuned_svm,
)
from repro.ml.pairwise import PairwiseLSSVM, make_tuned_pairwise_svm
from repro.ml.dataset import LoopDataset, concatenate
from repro.ml.feature_selection import (
    ScoredFeature,
    greedy_forward_selection,
    mutual_information_score,
    mutual_information_score_reference,
    rank_by_mutual_information,
    selected_feature_union,
)
from repro.ml.lda import LDAProjection, fit_lda
from repro.ml.metrics import (
    RankDistribution,
    accuracy,
    mean_cost_ratio,
    near_optimal_accuracy,
    prediction_ranks,
    rank_distribution,
)
from repro.ml.multiclass import (
    OutputCodeClassifier,
    code_targets,
    decode_output_codes,
    exhaustive_code,
    identity_code,
    random_code,
)
from repro.ml.ensemble import (
    FAMILY_NAMES,
    CalibratedEnsemble,
    EnsemblePrediction,
    train_calibrated_ensemble,
)
from repro.ml.mlp import MLPClassifier
from repro.ml.near_neighbor import DEFAULT_RADIUS, NearNeighborClassifier, NNPrediction
from repro.ml.lsh import LSHNearNeighbor
from repro.ml.regression import KernelRidgeRegressor, loocv_regression_predictions
from repro.ml.svm import LSSVM, TUNED_SVM_PARAMS, multiscale_rbf_kernel, rbf_kernel
from repro.ml.trees import BoostedTrees, DecisionTree, RandomForest, binary_unroll_labels
from repro.ml.tuning import (
    TuningResult,
    cross_val_accuracy,
    grid_search,
    kfold_indices,
    tune_nn_radius,
    tune_svm,
)

__all__ = [
    "DEFAULT_RADIUS",
    "FAMILY_NAMES",
    "CalibratedEnsemble",
    "EnsemblePrediction",
    "LDAProjection",
    "LSSVM",
    "BoostedTrees",
    "DecisionTree",
    "MLPClassifier",
    "RandomForest",
    "train_calibrated_ensemble",
    "KernelRidgeRegressor",
    "LSHNearNeighbor",
    "LoopDataset",
    "NNPrediction",
    "NearNeighborClassifier",
    "OutputCodeClassifier",
    "RankDistribution",
    "ScoredFeature",
    "accuracy",
    "concatenate",
    "exhaustive_code",
    "fit_lda",
    "greedy_forward_selection",
    "identity_code",
    "binary_unroll_labels",
    "leave_one_benchmark_out",
    "loocv_regression_predictions",
    "loocv_naive",
    "loocv_nn",
    "loocv_svm",
    "loocv_tuned_svm",
    "make_tuned_pairwise_svm",
    "multiscale_rbf_kernel",
    "PairwiseLSSVM",
    "TUNED_SVM_PARAMS",
    "TuningResult",
    "cross_val_accuracy",
    "grid_search",
    "kfold_indices",
    "tune_nn_radius",
    "tune_svm",
    "code_targets",
    "decode_output_codes",
    "mean_cost_ratio",
    "mutual_information_score",
    "mutual_information_score_reference",
    "near_optimal_accuracy",
    "prediction_ranks",
    "random_code",
    "rank_by_mutual_information",
    "rank_distribution",
    "rbf_kernel",
    "selected_feature_union",
]
