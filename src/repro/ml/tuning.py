"""Hyperparameter search for the classifiers.

The paper notes its SVM toolkit "contains functions for tuning, training,
and testing the accuracy of an SVM" and that its NN radius was "determined
experimentally".  This module is that tooling for the reproduction: a small
grid search scored by k-fold cross-validation (LOOCV on every candidate
would leak the model-selection choice into the reported LOOCV numbers, so
selection uses folds and only the final configuration is LOOCV-scored).

`TUNED_SVM_PARAMS` in :mod:`repro.ml.svm` records the configuration this
search produced on the default dataset; the search itself stays available
so retargeted datasets (new machines, new noise) can be retuned the same
way.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class TuningResult:
    """Outcome of a grid search."""

    best_params: dict
    best_score: float
    trials: tuple[tuple[dict, float], ...]

    def top(self, n: int = 5) -> list[tuple[dict, float]]:
        """The ``n`` best configurations, best first."""
        return sorted(self.trials, key=lambda kv: -kv[1])[:n]


def kfold_indices(n: int, k: int, seed: int = 0) -> list[np.ndarray]:
    """Shuffled k-fold test-index splits covering ``range(n)`` exactly."""
    if not (2 <= k <= n):
        raise ValueError("need 2 <= k <= n folds")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    return [order[i::k] for i in range(k)]


def cross_val_accuracy(
    factory: Callable[[], object],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    seed: int = 0,
) -> float:
    """Mean k-fold accuracy of ``factory()`` classifiers on ``(X, y)``."""
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    folds = kfold_indices(len(y), k, seed)
    correct = 0
    for test_rows in folds:
        mask = np.ones(len(y), dtype=bool)
        mask[test_rows] = False
        model = factory()
        model.fit(X[mask], y[mask])
        predictions = np.asarray(model.predict(X[test_rows]))
        correct += int((predictions == y[test_rows]).sum())
    return correct / len(y)


def grid_search(
    make_classifier: Callable[..., object],
    grid: Mapping[str, Sequence],
    X: np.ndarray,
    y: np.ndarray,
    k: int = 5,
    seed: int = 0,
    subsample: int | None = None,
) -> TuningResult:
    """Exhaustive grid search scored by k-fold accuracy.

    Args:
        make_classifier: called with one keyword set per grid point; must
            return an unfitted classifier with ``fit``/``predict``.
        grid: parameter name -> candidate values.
        subsample: optionally bound the rows used for selection (grid
            points multiply quickly).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if subsample is not None and subsample < len(y):
        rng = np.random.default_rng(seed)
        rows = rng.choice(len(y), size=subsample, replace=False)
        X, y = X[rows], y[rows]

    names = list(grid)
    trials: list[tuple[dict, float]] = []
    best_params: dict = {}
    best_score = -1.0
    for values in product(*(grid[name] for name in names)):
        params = dict(zip(names, values))
        score = cross_val_accuracy(lambda p=params: make_classifier(**p), X, y, k, seed)
        trials.append((params, score))
        if score > best_score:
            best_score = score
            best_params = params
    return TuningResult(best_params=best_params, best_score=best_score, trials=tuple(trials))


def tune_nn_radius(
    X: np.ndarray,
    y: np.ndarray,
    radii: Iterable[float] = (0.05, 0.1, 0.2, 0.3, 0.5, 0.8),
    k: int = 5,
    seed: int = 0,
) -> TuningResult:
    """The paper's radius experiment, done as a proper search."""
    from repro.ml.near_neighbor import NearNeighborClassifier

    return grid_search(
        lambda radius: NearNeighborClassifier(radius=radius),
        {"radius": list(radii)},
        X, y, k=k, seed=seed,
    )


def tune_svm(
    X: np.ndarray,
    y: np.ndarray,
    C_values: Iterable[float] = (100.0, 1000.0),
    sigmas: Iterable[float] = (0.008, 0.012, 0.02),
    scale_ratios: Iterable[float] = (15.0, 30.0),
    k: int = 4,
    seed: int = 0,
    subsample: int | None = 700,
) -> TuningResult:
    """Grid search over the pairwise multiscale LS-SVM's hyperparameters."""
    from repro.ml.pairwise import PairwiseLSSVM

    return grid_search(
        lambda C, sigma, scale_ratio: PairwiseLSSVM(
            C=C, sigma=sigma, kernel="multiscale", scale_ratio=scale_ratio
        ),
        {"C": list(C_values), "sigma": list(sigmas), "scale_ratio": list(scale_ratios)},
        X, y, k=k, seed=seed, subsample=subsample,
    )
