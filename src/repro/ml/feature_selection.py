"""Feature selection (the paper's Section 7).

Two methods, exactly as the paper applies them:

* **Mutual information score (MIS)** — for each feature, the reduction in
  uncertainty about the best unroll factor from knowing the feature's
  (binned) value.  Continuous features are binned before estimating the
  probability mass functions.  (Table 3: the top-five features.)
* **Greedy forward selection** — iteratively add the feature that, jointly
  with those already chosen, minimises a classifier's training error.  The
  result depends on the classifier (Table 4 shows different lists for NN
  and the SVM).  Per the paper, the NN variant used here scores with the
  *single nearest neighbor* rather than the radius vote, and the reported
  errors are training errors (self-excluded for NN, refit for the SVM),
  hence the low values.

The paper then trains its Section 6 classifiers on the union of the MIS and
greedy winners; :func:`selected_feature_union` reproduces that recipe.

**Incremental subset scoring.**  Greedy selection evaluates hundreds of
feature subsets that differ by a single column.  Because min-max
normalisation is per-column, normalising the full matrix once and
restricting to a subset gives exactly the subset fit, and both scorers
consume the subset only through its pairwise squared distances — which are
a *sum over features* of per-feature squared differences.  The fast engine
therefore precomputes one ``(n, n)`` squared-difference matrix per feature
(for the SVM, its elementwise RBF factor ``exp(-d2 / (2 sigma^2))``) and
builds each candidate's distance/Gram matrix by a single elementwise
update of the running base.  The SVM refit solves the SPD Schur complement
of the bordered LS-SVM system with one Cholesky factorisation shared by
all output-code bits.  The ``engine="reference"`` path scores every subset
from scratch with the original formulas; it is the equivalence oracle and
the bench baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.features.catalog import FEATURE_NAMES
from repro.ml.multiclass import (
    OutputCodeClassifier,
    code_targets,
    decode_output_codes,
    identity_code,
)
from repro.ml.near_neighbor import NearNeighborClassifier

#: Per-feature distance matrices take ``n_features * n^2 * 8`` bytes; past
#: this budget the fast greedy engine falls back to from-scratch scoring.
WORKSPACE_BUDGET_BYTES = 256 * 1024 * 1024


@dataclass(frozen=True)
class ScoredFeature:
    """One feature with its selection score."""

    index: int
    name: str
    score: float


# ----------------------------------------------------------------------
# Mutual information.
# ----------------------------------------------------------------------


def _bin_feature(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Quantile-bin a feature column; low-cardinality columns keep their
    raw values as categories."""
    unique = np.unique(values)
    if len(unique) <= n_bins:
        return np.searchsorted(unique, values)
    quantiles = np.quantile(values, np.linspace(0.0, 1.0, n_bins + 1)[1:-1])
    return np.searchsorted(quantiles, values)


def mutual_information_score(
    feature_values: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> float:
    """MIS of one feature against the labels (bits).

    ``I(f; u) = sum_{phi, y} P(phi, y) log2( P(phi, y) / (P(phi) P(y)) )``

    The joint distribution is a contingency table built in one vectorised
    pass; the probabilities are integer counts over ``n``, matching
    :func:`mutual_information_score_reference` term by term.
    """
    binned = _bin_feature(np.asarray(feature_values, dtype=np.float64), n_bins)
    labels = np.asarray(labels)
    n = len(labels)
    phi_values, phi_index = np.unique(binned, return_inverse=True)
    y_values, y_index = np.unique(labels, return_inverse=True)
    counts = np.zeros((len(phi_values), len(y_values)), dtype=np.int64)
    np.add.at(counts, (phi_index, y_index), 1)
    joint = counts / n
    p_phi = counts.sum(axis=1) / n
    p_y = counts.sum(axis=0) / n
    occupied = counts > 0
    ratio = joint[occupied] / np.outer(p_phi, p_y)[occupied]
    return float(np.sum(joint[occupied] * np.log2(ratio)))


def mutual_information_score_reference(
    feature_values: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> float:
    """Per-cell loop over the joint distribution — the original scorer,
    kept as the oracle for :func:`mutual_information_score`."""
    binned = _bin_feature(np.asarray(feature_values, dtype=np.float64), n_bins)
    labels = np.asarray(labels)
    n = len(labels)
    score = 0.0
    for phi in np.unique(binned):
        mask_phi = binned == phi
        p_phi = mask_phi.sum() / n
        for y in np.unique(labels):
            joint = np.sum(mask_phi & (labels == y)) / n
            if joint == 0.0:
                continue
            p_y = np.sum(labels == y) / n
            score += joint * np.log2(joint / (p_phi * p_y))
    return float(score)


def rank_by_mutual_information(
    X: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> list[ScoredFeature]:
    """All features ranked by MIS, best first (Table 3 prints the top 5)."""
    X = np.asarray(X, dtype=np.float64)
    scored = [
        ScoredFeature(j, FEATURE_NAMES[j], mutual_information_score(X[:, j], labels, n_bins))
        for j in range(X.shape[1])
    ]
    return sorted(scored, key=lambda s: -s.score)


# ----------------------------------------------------------------------
# Greedy forward selection.
# ----------------------------------------------------------------------


def _nn_training_error(X: np.ndarray, y: np.ndarray, include_self: bool = False) -> float:
    """1-NN training error (the paper's modified NN scorer).

    With ``include_self`` (the paper's Table 4 convention) each example may
    match itself, so the error only counts *duplicate feature vectors with
    conflicting labels* — which is why the paper's training errors plunge
    toward zero as features make examples unique.  Without it (the default,
    used for the Section 6 feature-subset selection) the score is the
    leave-one-out error, a better generalisation proxy.
    """
    from repro.features.normalize import fit_minmax

    norm = fit_minmax(X)
    Z = norm.transform(X)
    # Accumulate squared distances one column at a time, in column order.
    # Unlike the expanded form ``sq_i + sq_j - 2 z_i.z_j``, this is exact
    # for duplicate rows (distance identically zero, never rounding noise),
    # so nearest-neighbor ties break by index deterministically — and it is
    # bit-identical to the incremental engine's per-feature accumulation.
    d2 = np.zeros((Z.shape[0], Z.shape[0]))
    for j in range(Z.shape[1]):
        diff = Z[:, j, None] - Z[None, :, j]
        d2 += diff * diff
    if not include_self:
        np.fill_diagonal(d2, np.inf)
    nearest = np.argmin(d2, axis=1)
    return float(np.mean(y[nearest] != y))


def _svm_training_error(X: np.ndarray, y: np.ndarray, C: float, sigma: float) -> float:
    """Refit training error of the output-code LS-SVM."""
    model = OutputCodeClassifier(C=C, sigma=sigma)
    model.fit(X, y)
    return float(np.mean(model.predict(X) != y))


class _GreedyWorkspace:
    """Incremental subset scorer shared by the NN and SVM greedy runs.

    Holds one per-feature ``(n, n)`` matrix — squared differences for the
    NN scorer, elementwise RBF kernel factors for the SVM — plus the
    running base for the chosen subset, so scoring a candidate is one
    elementwise update instead of a from-scratch distance/Gram build.
    """

    #: Past this unique-row fraction the Woodbury collapse stops paying
    #: for its gathers and the scorer solves the dense system directly.
    DEDUP_THRESHOLD = 0.9

    def __init__(
        self,
        X: np.ndarray,
        y: np.ndarray,
        classifier: str,
        C: float,
        sigma: float,
        include_self: bool,
    ):
        from repro.features.normalize import fit_minmax

        self.y = y
        self.classifier = classifier
        self.include_self = include_self
        Z = fit_minmax(X).transform(X)
        n, d = Z.shape
        self.n = n
        self.per_feature = np.empty((d, n, n))
        for j in range(d):
            column = Z[:, j]
            diff = column[:, None] - column[None, :]
            np.multiply(diff, diff, out=self.per_feature[j])
        if classifier == "svm":
            # exp(-d2_j / (2 sigma^2)); the subset kernel is the product.
            np.multiply(self.per_feature, -1.0 / (2.0 * sigma * sigma), out=self.per_feature)
            np.exp(self.per_feature, out=self.per_feature)
            self.base = np.ones((n, n))
            self.classes = np.arange(1, 9, dtype=np.int64)
            self.code = identity_code(len(self.classes))
            self._targets = code_targets(y, self.code, self.classes)
            self._rhs = np.column_stack([self._targets, np.ones(n)])
            self._c = C
            self._inv_c = 1.0 / C
            self._system = np.empty((n, n))
            # Row-pattern bookkeeping for the Woodbury collapse: per-feature
            # value ranks refine the chosen subset's pattern ids one
            # candidate at a time.
            self._value_rank = np.empty((d, n), dtype=np.int64)
            self._n_values = np.empty(d, dtype=np.int64)
            for j in range(d):
                values, self._value_rank[j] = np.unique(Z[:, j], return_inverse=True)
                self._n_values[j] = len(values)
            self._base_pattern = np.zeros(n, dtype=np.int64)
        else:
            self.base = np.zeros((n, n))
            self._distances = np.empty((n, n))

    def candidate_error(self, j: int) -> float:
        """Training error of the chosen subset plus feature ``j``."""
        if self.classifier == "nn":
            np.add(self.base, self.per_feature[j], out=self._distances)
            if not self.include_self:
                np.fill_diagonal(self._distances, np.inf)
            nearest = np.argmin(self._distances, axis=1)
            return float(np.mean(self.y[nearest] != self.y))
        return self._svm_error(self._candidate_solve(j))

    def commit(self, j: int) -> None:
        """Fold feature ``j`` into the chosen-subset base."""
        if self.classifier == "nn":
            self.base += self.per_feature[j]
        else:
            self.base *= self.per_feature[j]
            refined = self._base_pattern * self._n_values[j] + self._value_rank[j]
            self._base_pattern = np.unique(refined, return_inverse=True)[1]

    def _candidate_solve(self, j: int) -> np.ndarray:
        """``H^-1 [Y, 1]`` for candidate ``j``, where ``H = K + I/C``.

        Feature subsets of a few mostly small-integer loop features leave
        many duplicate rows, and the kernel only sees the ``u`` distinct
        patterns: ``H = I/C + P K_u P'`` with ``P`` the one-hot pattern
        map.  The Woodbury identity collapses the solve onto the patterns,

            ``H^-1 R = C R - C^2 P (K_u^-1 + C D)^-1 P' R``,

        with ``D = P'P = diag(counts)``; the inner inverse is applied via
        the SPD system ``(I + C W K_u W) G^ = W K_u P'R`` (``W = D^1/2``,
        ``G = W^-1 G^``), a ``u x u`` Cholesky instead of ``n x n``.  Past
        :data:`DEDUP_THRESHOLD` unique rows the dense solve wins.
        """
        pattern = self._base_pattern * self._n_values[j] + self._value_rank[j]
        _, first, inverse = np.unique(pattern, return_index=True, return_inverse=True)
        u = len(first)
        n = self.n
        if u > self.DEDUP_THRESHOLD * n:
            np.multiply(self.base, self.per_feature[j], out=self._system)
            self._system.flat[:: n + 1] += self._inv_c
            factor = cho_factor(
                self._system, lower=True, overwrite_a=True, check_finite=False
            )
            return cho_solve(factor, self._rhs, check_finite=False)
        gather = np.ix_(first, first)
        kernel_u = self.base[gather] * self.per_feature[j][gather]
        counts = np.bincount(inverse, minlength=u)
        n_rhs = self._rhs.shape[1]
        folded = np.empty((u, n_rhs))
        for column in range(n_rhs):
            folded[:, column] = np.bincount(
                inverse, weights=self._rhs[:, column], minlength=u
            )
        weights = np.sqrt(counts)
        system = (self._c * weights[:, None]) * kernel_u * weights[None, :]
        system.flat[:: u + 1] += 1.0
        factor = cho_factor(system, lower=True, overwrite_a=True, check_finite=False)
        scaled = cho_solve(
            factor, weights[:, None] * (kernel_u @ folded), check_finite=False
        )
        inner = scaled / weights[:, None]
        return self._c * self._rhs - (self._c * self._c) * inner[inverse]

    def _svm_error(self, solved: np.ndarray) -> float:
        """Refit training error from ``H^-1 [Y, 1]``.

        The bordered LS-SVM system reduces to its Schur complement: the
        bias is ``b = (1' H^-1 Y) / (1' H^-1 1)``, ``alpha = H^-1 (Y - 1 b)``,
        and the training decision values collapse to the residual identity
        ``f = K alpha + b = Y - alpha / C`` — no kernel product needed.
        """
        h_inv_ones = solved[:, -1]
        h_inv_targets = solved[:, :-1]
        bias = h_inv_targets.sum(axis=0) / h_inv_ones.sum()
        alpha = h_inv_targets - h_inv_ones[:, None] * bias[None, :]
        values = self._targets - alpha * self._inv_c
        predicted = decode_output_codes(values, self.code, self.classes)
        return float(np.mean(predicted != self.y))


def _greedy_loop(n_candidates, n_features, score, commit) -> list[ScoredFeature]:
    """The shared greedy driver: first strict improvement wins each round."""
    result: list[ScoredFeature] = []
    remaining = list(range(n_candidates))
    for _ in range(min(n_features, n_candidates)):
        best_feature = None
        best_error = np.inf
        for j in remaining:
            error = score(j)
            if error < best_error - 1e-12:
                best_error = error
                best_feature = j
        remaining.remove(best_feature)
        commit(best_feature)
        result.append(ScoredFeature(best_feature, FEATURE_NAMES[best_feature], best_error))
    return result


def greedy_forward_selection(
    X: np.ndarray,
    y: np.ndarray,
    classifier: str,
    n_features: int = 5,
    subsample: int | None = None,
    seed: int = 0,
    C: float = 10.0,
    sigma: float = 0.65,
    include_self: bool = False,
    engine: str = "fast",
) -> list[ScoredFeature]:
    """Greedy forward selection; returns the chosen features in pick order,
    each carrying the training error *after* adding it (Table 4's columns).

    ``classifier`` is ``"nn"`` or ``"svm"``.  ``subsample`` optionally
    bounds the rows scored per step (the SVM refits once per candidate per
    step, so the full dataset is expensive).  ``engine="fast"`` scores
    subsets incrementally through :class:`_GreedyWorkspace`;
    ``engine="reference"`` rebuilds every subset from scratch.  Both walk
    the identical candidate order with the identical improvement rule.
    """
    if classifier not in ("nn", "svm"):
        raise ValueError("classifier must be 'nn' or 'svm'")
    if engine not in ("fast", "reference"):
        raise ValueError("engine must be 'fast' or 'reference'")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if subsample is not None and subsample < len(y):
        rng = np.random.default_rng(seed)
        rows = rng.choice(len(y), size=subsample, replace=False)
        X, y = X[rows], y[rows]

    n, d = X.shape
    if engine == "fast" and d * n * n * 8 <= WORKSPACE_BUDGET_BYTES:
        workspace = _GreedyWorkspace(X, y, classifier, C, sigma, include_self)
        return _greedy_loop(d, n_features, workspace.candidate_error, workspace.commit)

    chosen: list[int] = []

    def score(j: int) -> float:
        sub = X[:, chosen + [j]]
        if classifier == "nn":
            return _nn_training_error(sub, y, include_self=include_self)
        return _svm_training_error(sub, y, C, sigma)

    return _greedy_loop(d, n_features, score, chosen.append)


def selected_feature_union(
    X: np.ndarray,
    y: np.ndarray,
    n_mis: int = 5,
    n_greedy: int = 5,
    subsample: int | None = 600,
    seed: int = 0,
) -> np.ndarray:
    """The paper's Section 6 feature set: the union of the MIS top-``n``
    and the greedy top-``n`` for both classifiers, as sorted indices."""
    mis = rank_by_mutual_information(X, y)[:n_mis]
    greedy_nn = greedy_forward_selection(X, y, "nn", n_greedy, subsample, seed)
    greedy_svm = greedy_forward_selection(X, y, "svm", n_greedy, subsample, seed)
    indices = sorted(
        {s.index for s in mis}
        | {s.index for s in greedy_nn}
        | {s.index for s in greedy_svm}
    )
    return np.array(indices, dtype=np.int64)
