"""Feature selection (the paper's Section 7).

Two methods, exactly as the paper applies them:

* **Mutual information score (MIS)** — for each feature, the reduction in
  uncertainty about the best unroll factor from knowing the feature's
  (binned) value.  Continuous features are binned before estimating the
  probability mass functions.  (Table 3: the top-five features.)
* **Greedy forward selection** — iteratively add the feature that, jointly
  with those already chosen, minimises a classifier's training error.  The
  result depends on the classifier (Table 4 shows different lists for NN
  and the SVM).  Per the paper, the NN variant used here scores with the
  *single nearest neighbor* rather than the radius vote, and the reported
  errors are training errors (self-excluded for NN, refit for the SVM),
  hence the low values.

The paper then trains its Section 6 classifiers on the union of the MIS and
greedy winners; :func:`selected_feature_union` reproduces that recipe.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.catalog import FEATURE_NAMES
from repro.ml.multiclass import OutputCodeClassifier
from repro.ml.near_neighbor import NearNeighborClassifier


@dataclass(frozen=True)
class ScoredFeature:
    """One feature with its selection score."""

    index: int
    name: str
    score: float


# ----------------------------------------------------------------------
# Mutual information.
# ----------------------------------------------------------------------


def _bin_feature(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Quantile-bin a feature column; low-cardinality columns keep their
    raw values as categories."""
    unique = np.unique(values)
    if len(unique) <= n_bins:
        return np.searchsorted(unique, values)
    quantiles = np.quantile(values, np.linspace(0.0, 1.0, n_bins + 1)[1:-1])
    return np.searchsorted(quantiles, values)


def mutual_information_score(
    feature_values: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> float:
    """MIS of one feature against the labels (bits).

    ``I(f; u) = sum_{phi, y} P(phi, y) log2( P(phi, y) / (P(phi) P(y)) )``
    """
    binned = _bin_feature(np.asarray(feature_values, dtype=np.float64), n_bins)
    labels = np.asarray(labels)
    n = len(labels)
    score = 0.0
    for phi in np.unique(binned):
        mask_phi = binned == phi
        p_phi = mask_phi.sum() / n
        for y in np.unique(labels):
            joint = np.sum(mask_phi & (labels == y)) / n
            if joint == 0.0:
                continue
            p_y = np.sum(labels == y) / n
            score += joint * np.log2(joint / (p_phi * p_y))
    return float(score)


def rank_by_mutual_information(
    X: np.ndarray, labels: np.ndarray, n_bins: int = 10
) -> list[ScoredFeature]:
    """All features ranked by MIS, best first (Table 3 prints the top 5)."""
    X = np.asarray(X, dtype=np.float64)
    scored = [
        ScoredFeature(j, FEATURE_NAMES[j], mutual_information_score(X[:, j], labels, n_bins))
        for j in range(X.shape[1])
    ]
    return sorted(scored, key=lambda s: -s.score)


# ----------------------------------------------------------------------
# Greedy forward selection.
# ----------------------------------------------------------------------


def _nn_training_error(X: np.ndarray, y: np.ndarray, include_self: bool = False) -> float:
    """1-NN training error (the paper's modified NN scorer).

    With ``include_self`` (the paper's Table 4 convention) each example may
    match itself, so the error only counts *duplicate feature vectors with
    conflicting labels* — which is why the paper's training errors plunge
    toward zero as features make examples unique.  Without it (the default,
    used for the Section 6 feature-subset selection) the score is the
    leave-one-out error, a better generalisation proxy.
    """
    from repro.features.normalize import fit_minmax

    norm = fit_minmax(X)
    Z = norm.transform(X)
    sq = (Z**2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (Z @ Z.T)
    if not include_self:
        np.fill_diagonal(d2, np.inf)
    nearest = np.argmin(d2, axis=1)
    return float(np.mean(y[nearest] != y))


def _svm_training_error(X: np.ndarray, y: np.ndarray, C: float, sigma: float) -> float:
    """Refit training error of the output-code LS-SVM."""
    model = OutputCodeClassifier(C=C, sigma=sigma)
    model.fit(X, y)
    return float(np.mean(model.predict(X) != y))


def greedy_forward_selection(
    X: np.ndarray,
    y: np.ndarray,
    classifier: str,
    n_features: int = 5,
    subsample: int | None = None,
    seed: int = 0,
    C: float = 10.0,
    sigma: float = 0.65,
    include_self: bool = False,
) -> list[ScoredFeature]:
    """Greedy forward selection; returns the chosen features in pick order,
    each carrying the training error *after* adding it (Table 4's columns).

    ``classifier`` is ``"nn"`` or ``"svm"``.  ``subsample`` optionally
    bounds the rows scored per step (the SVM refits once per candidate per
    step, so the full dataset is expensive).
    """
    if classifier not in ("nn", "svm"):
        raise ValueError("classifier must be 'nn' or 'svm'")
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if subsample is not None and subsample < len(y):
        rng = np.random.default_rng(seed)
        rows = rng.choice(len(y), size=subsample, replace=False)
        X, y = X[rows], y[rows]

    chosen: list[int] = []
    result: list[ScoredFeature] = []
    remaining = list(range(X.shape[1]))
    for _ in range(min(n_features, X.shape[1])):
        best_feature = None
        best_error = np.inf
        for j in remaining:
            columns = chosen + [j]
            sub = X[:, columns]
            if classifier == "nn":
                error = _nn_training_error(sub, y, include_self=include_self)
            else:
                error = _svm_training_error(sub, y, C, sigma)
            if error < best_error - 1e-12:
                best_error = error
                best_feature = j
        chosen.append(best_feature)
        remaining.remove(best_feature)
        result.append(ScoredFeature(best_feature, FEATURE_NAMES[best_feature], best_error))
    return result


def selected_feature_union(
    X: np.ndarray,
    y: np.ndarray,
    n_mis: int = 5,
    n_greedy: int = 5,
    subsample: int | None = 600,
    seed: int = 0,
) -> np.ndarray:
    """The paper's Section 6 feature set: the union of the MIS top-``n``
    and the greedy top-``n`` for both classifiers, as sorted indices."""
    mis = rank_by_mutual_information(X, y)[:n_mis]
    greedy_nn = greedy_forward_selection(X, y, "nn", n_greedy, subsample, seed)
    greedy_svm = greedy_forward_selection(X, y, "svm", n_greedy, subsample, seed)
    indices = sorted(
        {s.index for s in mis}
        | {s.index for s in greedy_nn}
        | {s.index for s in greedy_svm}
    )
    return np.array(indices, dtype=np.int64)
