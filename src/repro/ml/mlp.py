"""A from-scratch NumPy multi-layer perceptron classifier.

The paper's classifiers are 2005-era (near neighbor, LS-SVM); related work
(Balamane et al.'s DNN unroll-factor estimator, NeuroVectorizer) shows the
same 38-feature decision space supports stronger learned predictors.  This
module supplies the smallest credible deep model: a fully-connected network
with one or two tanh hidden layers and a softmax head, trained by
full-batch gradient descent with momentum.

Design constraints (shared with every classifier the registry serialises):

* **Deterministic** — all randomness (weight init, the held-out
  early-stopping fold) flows from one ``numpy`` seed, so the same data and
  seed always produce the same fitted network.
* **Early stopping on a held-out fold** — a seeded fraction of the
  training rows is carved off as a validation fold; training keeps the
  parameters from the epoch with the lowest validation loss and stops
  after ``patience`` epochs without improvement.  The recorded
  ``validation_curve_`` / ``best_epoch_`` make the stopping rule a testable
  property rather than a side effect.
* **Bit-identical restore** — :meth:`get_state` captures the fitted
  parameters (weights, normaliser, class list), never the optimiser; a
  restored network predicts bit-identically without refitting.
"""

from __future__ import annotations

import numpy as np

from repro.features.normalize import Normalizer, fit_normalizer


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stable (max-shifted)."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class MLPClassifier:
    """Small fully-connected softmax classifier with early stopping.

    Args:
        hidden: widths of the hidden layers (one or two entries).
        seed: drives weight init and the held-out validation split.
        learning_rate / momentum: full-batch gradient-descent step.
        max_epochs: hard cap on training epochs.
        patience: epochs without validation improvement before stopping.
        val_fraction: fraction of rows carved off as the held-out fold
            (skipped when the dataset is too small to split).
        l2: ridge penalty on the weight matrices.
        normalization: input scaling method (``"minmax"``/``"zscore"``).
    """

    def __init__(
        self,
        hidden: tuple[int, ...] = (32,),
        seed: int = 0,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        max_epochs: int = 400,
        patience: int = 25,
        val_fraction: float = 0.2,
        l2: float = 1e-4,
        normalization: str = "minmax",
    ):
        hidden = tuple(int(h) for h in hidden)
        if not 1 <= len(hidden) <= 2:
            raise ValueError("hidden must have one or two layers")
        if any(h < 1 for h in hidden):
            raise ValueError("hidden widths must be >= 1")
        if not 0.0 < val_fraction < 0.5:
            raise ValueError("val_fraction must be in (0, 0.5)")
        self.hidden = hidden
        self.seed = int(seed)
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.max_epochs = int(max_epochs)
        self.patience = int(patience)
        self.val_fraction = float(val_fraction)
        self.l2 = float(l2)
        self.normalization = normalization
        self._weights: list[np.ndarray] | None = None
        self._biases: list[np.ndarray] | None = None
        self._classes: np.ndarray | None = None
        self._normalizer: Normalizer | None = None
        #: Validation loss per trained epoch (the early-stopping record).
        self.validation_curve_: np.ndarray | None = None
        #: Epoch whose parameters were kept (argmin of the curve).
        self.best_epoch_: int | None = None

    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._weights is not None

    @property
    def classes_(self) -> np.ndarray:
        self._require_fitted()
        return self._classes

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("classifier is not fitted")

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or len(X) != len(y) or len(X) == 0:
            raise ValueError("X and y must be non-empty and aligned")
        rng = np.random.default_rng(self.seed)
        self._normalizer = fit_normalizer(X, self.normalization)
        Z = self._normalizer.transform(X)
        self._classes = np.unique(y)
        k = len(self._classes)
        targets = np.zeros((len(y), k))
        targets[np.arange(len(y)), np.searchsorted(self._classes, y)] = 1.0

        # Held-out early-stopping fold (seeded).  Tiny datasets cannot
        # afford one; they validate on the training rows instead, which
        # degrades early stopping to plain loss monitoring.
        n = len(Z)
        n_val = int(round(self.val_fraction * n))
        if n_val >= 1 and n - n_val >= max(2, k):
            order = rng.permutation(n)
            val_rows, train_rows = order[:n_val], order[n_val:]
        else:
            val_rows = train_rows = np.arange(n)
        Z_train, T_train = Z[train_rows], targets[train_rows]
        Z_val, T_val = Z[val_rows], targets[val_rows]

        # Glorot-style init, one rng stream end to end.
        sizes = (Z.shape[1], *self.hidden, k)
        weights = [
            rng.standard_normal((fan_in, fan_out)) * np.sqrt(2.0 / (fan_in + fan_out))
            for fan_in, fan_out in zip(sizes[:-1], sizes[1:])
        ]
        biases = [np.zeros(fan_out) for fan_out in sizes[1:]]
        velocity_w = [np.zeros_like(w) for w in weights]
        velocity_b = [np.zeros_like(b) for b in biases]

        best_loss = np.inf
        best_epoch = -1
        best_weights = [w.copy() for w in weights]
        best_biases = [b.copy() for b in biases]
        curve: list[float] = []
        for epoch in range(self.max_epochs):
            # Forward with cached activations.
            activations = [Z_train]
            for w, b in zip(weights[:-1], biases[:-1]):
                activations.append(np.tanh(activations[-1] @ w + b))
            probs = softmax(activations[-1] @ weights[-1] + biases[-1])

            # Backward: softmax cross-entropy delta, then tanh chain.
            delta = (probs - T_train) / len(Z_train)
            grads_w, grads_b = [], []
            for layer in range(len(weights) - 1, -1, -1):
                grads_w.append(activations[layer].T @ delta + self.l2 * weights[layer])
                grads_b.append(delta.sum(axis=0))
                if layer > 0:
                    delta = (delta @ weights[layer].T) * (1.0 - activations[layer] ** 2)
            grads_w.reverse()
            grads_b.reverse()
            for layer in range(len(weights)):
                velocity_w[layer] = (
                    self.momentum * velocity_w[layer] - self.learning_rate * grads_w[layer]
                )
                velocity_b[layer] = (
                    self.momentum * velocity_b[layer] - self.learning_rate * grads_b[layer]
                )
                weights[layer] = weights[layer] + velocity_w[layer]
                biases[layer] = biases[layer] + velocity_b[layer]

            val_loss = self._loss(Z_val, T_val, weights, biases)
            curve.append(val_loss)
            if val_loss < best_loss - 1e-12:
                best_loss = val_loss
                best_epoch = epoch
                best_weights = [w.copy() for w in weights]
                best_biases = [b.copy() for b in biases]
            elif epoch - best_epoch >= self.patience:
                break

        self._weights = best_weights
        self._biases = best_biases
        self.validation_curve_ = np.asarray(curve, dtype=np.float64)
        self.best_epoch_ = int(best_epoch)
        return self

    def _loss(self, Z, targets, weights, biases) -> float:
        h = Z
        for w, b in zip(weights[:-1], biases[:-1]):
            h = np.tanh(h @ w + b)
        probs = softmax(h @ weights[-1] + biases[-1])
        nll = -np.log(np.clip((probs * targets).sum(axis=1), 1e-12, None)).mean()
        ridge = sum(float((w**2).sum()) for w in weights)
        return float(nll + 0.5 * self.l2 * ridge)

    # ------------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Row-wise class distribution over :attr:`classes_`.

        Inference avoids ``@``: BLAS picks different accumulation kernels
        for different row counts (gemv vs gemm blocking), which moves the
        last ulp of a row's probabilities with the *batch size* it arrived
        in.  The serve tier's contract is that a batched prediction is
        bit-identical to the same row served alone, so the forward pass
        uses ``einsum`` (fixed-order per-element reduction, row-count
        invariant) instead.  Training keeps BLAS — only inference needs
        shape-stable bytes.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        h = self._normalizer.transform(X)
        for w, b in zip(self._weights[:-1], self._biases[:-1]):
            h = np.tanh(np.einsum("ij,jk->ik", h, w) + b)
        return softmax(np.einsum("ij,jk->ik", h, self._weights[-1]) + self._biases[-1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Most probable class per row (first class wins ties)."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    # ------------------------------------------------------------------
    # Persistence (consumed by repro.registry model artifacts).
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """Fitted parameters as plain arrays/scalars — never the
        optimiser state, so restore cannot drift."""
        self._require_fitted()
        return {
            "hidden": list(self.hidden),
            "seed": self.seed,
            "learning_rate": self.learning_rate,
            "momentum": self.momentum,
            "max_epochs": self.max_epochs,
            "patience": self.patience,
            "val_fraction": self.val_fraction,
            "l2": self.l2,
            "normalization": self.normalization,
            "classes": self._classes,
            "weights": list(self._weights),
            "biases": list(self._biases),
            "normalizer": self._normalizer.get_state(),
            "validation_curve": self.validation_curve_,
            "best_epoch": self.best_epoch_,
        }

    @classmethod
    def from_state(cls, state: dict) -> "MLPClassifier":
        """Rebuild a fitted network; predictions are bit-identical to the
        instance :meth:`get_state` was read from."""
        clf = cls(
            hidden=tuple(int(h) for h in state["hidden"]),
            seed=int(state["seed"]),
            learning_rate=float(state["learning_rate"]),
            momentum=float(state["momentum"]),
            max_epochs=int(state["max_epochs"]),
            patience=int(state["patience"]),
            val_fraction=float(state["val_fraction"]),
            l2=float(state["l2"]),
            normalization=str(state["normalization"]),
        )
        clf._classes = np.asarray(state["classes"], dtype=np.int64)
        clf._weights = [np.asarray(w, dtype=np.float64) for w in state["weights"]]
        clf._biases = [np.asarray(b, dtype=np.float64) for b in state["biases"]]
        clf._normalizer = Normalizer.from_state(state["normalizer"])
        clf.validation_curve_ = np.asarray(state["validation_curve"], dtype=np.float64)
        clf.best_epoch_ = int(state["best_epoch"])
        return clf
