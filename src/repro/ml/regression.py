"""Kernel ridge regression on unroll factors — the paper's future work.

Section 8: "learned heuristic predictions are confined to the limits of the
labels with which they were trained (e.g., our learned classifiers will
never predict unroll factors greater than eight). ... That said, future
work will consider regression, which can predict values outside the range
of the labels with which the learning algorithm is trained."

This module is that future work: kernel ridge regression (the natural
regression twin of the LS-SVM — same system matrix, real-valued targets)
trained on the measured best factors.  Predictions are continuous; the
deployment path rounds and clamps them into the legal factor range, but the
raw values are exposed so the extrapolation behaviour the paper anticipates
is observable (see the regression ablation bench).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.features.normalize import fit_minmax
from repro.ml.svm import multiscale_rbf_kernel, rbf_kernel


class KernelRidgeRegressor:
    """Kernel ridge regression: ``(K + lambda I) alpha = y``."""

    def __init__(
        self,
        ridge: float = 1e-2,
        sigma: float = 0.1,
        kernel: str = "multiscale",
        scale_ratio: float = 30.0,
        mix: float = 0.5,
    ):
        if ridge <= 0 or sigma <= 0:
            raise ValueError("ridge and sigma must be positive")
        if kernel not in ("rbf", "multiscale"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.ridge = ridge
        self.sigma = sigma
        self.kernel = kernel
        self.scale_ratio = scale_ratio
        self.mix = mix
        self._X = None
        self._alpha = None
        self._mean = 0.0
        self._normalizer = None

    def _kernel(self, A, B):
        if self.kernel == "multiscale":
            return multiscale_rbf_kernel(A, B, self.sigma, self.scale_ratio, self.mix)
        return rbf_kernel(A, B, self.sigma)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelRidgeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if len(X) == 0 or len(X) != len(y):
            raise ValueError("X and y must be non-empty and aligned")
        self._normalizer = fit_minmax(X)
        Z = self._normalizer.transform(X)
        self._mean = float(y.mean())
        K = self._kernel(Z, Z)
        system = K + self.ridge * np.eye(len(Z))
        self._alpha = scipy.linalg.solve(system, y - self._mean, assume_a="pos")
        self._X = Z
        return self

    def predict_value(self, X: np.ndarray) -> np.ndarray:
        """Raw continuous predictions (may leave the trained label range)."""
        if self._alpha is None:
            raise RuntimeError("regressor is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        K = self._kernel(self._normalizer.transform(X), self._X)
        return K @ self._alpha + self._mean

    def predict(self, X: np.ndarray, lo: int = 1, hi: int = 8) -> np.ndarray:
        """Deployment form: rounded and clamped into the legal factor set."""
        values = self.predict_value(X)
        return np.clip(np.round(values), lo, hi).astype(np.int64)


def loocv_regression_predictions(
    X: np.ndarray,
    y: np.ndarray,
    regressor: KernelRidgeRegressor | None = None,
) -> np.ndarray:
    """Exact LOOCV factor predictions of the regressor.

    Kernel ridge has the same closed-form LOO identity as LS-SVM:
    ``y_i - f_{-i}(x_i) = alpha_i / (A^{-1})_ii`` with ``A = K + ridge I``.
    """
    reg = regressor or KernelRidgeRegressor()
    reg.fit(X, y.astype(np.float64))
    A = reg._kernel(reg._X, reg._X) + reg.ridge * np.eye(len(reg._X))
    inv_diag = np.diag(np.linalg.inv(A))
    residual = reg._alpha / inv_diag
    loo_values = np.asarray(y, dtype=np.float64) - residual
    return np.clip(np.round(loo_values), 1, 8).astype(np.int64)
