"""Least-squares support vector machine (binary), from scratch.

The paper's SVM is the Matlab LS-SVMlab toolkit (its reference [13]); the
least-squares formulation replaces the hinge loss with a squared loss, so
training reduces to one symmetric linear system instead of a QP::

    [ 0      1^T        ] [ b     ]   [ 0 ]
    [ 1      K + I / C  ] [ alpha ] = [ y ]

with an RBF kernel ``K_ij = exp(-||x_i - x_j||^2 / (2 sigma^2))``.  The
decision function is ``f(x) = sum_i alpha_i k(x_i, x) + b``.

Two extras matter for the experiments:

* :meth:`LSSVM.loo_decision_values` — exact leave-one-out decision values
  from a single factorisation, via the classic identity ``f_loo_i = f_i -
  alpha_i / (A^{-1})_ii``; this is what makes LOOCV over 2,500 loops cheap.
* multi-RHS training: the multi-class wrapper trains one binary machine per
  output-code bit, and all bits share the same system matrix, so one
  factorisation serves every bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg


def rbf_kernel(A: np.ndarray, B: np.ndarray, sigma: float) -> np.ndarray:
    """The RBF (Gaussian) kernel matrix between row sets ``A`` and ``B``."""
    sq_a = (A**2).sum(axis=1)[:, None]
    sq_b = (B**2).sum(axis=1)[None, :]
    d2 = sq_a + sq_b - 2.0 * (A @ B.T)
    np.maximum(d2, 0.0, out=d2)
    return np.exp(-d2 / (2.0 * sigma * sigma))


def multiscale_rbf_kernel(
    A: np.ndarray,
    B: np.ndarray,
    sigma: float,
    scale_ratio: float = 30.0,
    mix: float = 0.5,
) -> np.ndarray:
    """A two-bandwidth RBF mixture: ``mix * K(sigma) + (1-mix) *
    K(sigma * scale_ratio)``.

    Unroll-factor boundaries are *crisp* (a register-file or code-size
    threshold flips the label at an exact body size), yet broad trends
    matter too (bigger bodies want smaller factors).  A single bandwidth
    must choose between the two; mixing a sharp and a smooth component
    captures both, and is what lifts the LS-SVM past the near-neighbor
    classifier on this problem.  (Sums of valid kernels are valid kernels.)
    """
    return mix * rbf_kernel(A, B, sigma) + (1.0 - mix) * rbf_kernel(
        A, B, sigma * scale_ratio
    )


#: Tuned hyperparameters used by the paper-reproduction experiments (found
#: by the LOOCV sweep recorded in EXPERIMENTS.md).
TUNED_SVM_PARAMS = {
    "C": 1000.0,
    "sigma": 0.012,
    "kernel": "multiscale",
    "scale_ratio": 30.0,
    "mix": 0.5,
}


@dataclass
class LSSVMSolution:
    """Dual solution of one (or several stacked) binary LS-SVM problems."""

    alpha: np.ndarray  # (n,) or (n, m) dual coefficients
    bias: np.ndarray  # scalar per problem, shape () or (m,)
    targets: np.ndarray  # the training targets Y
    lu_factors: tuple | None  # LU factorisation (None on a restored model)
    inv_diag: np.ndarray | None = None  # diag(A^{-1}) over the alpha block (lazy)


class LSSVM:
    """Binary (or multi-RHS) least-squares SVM with an RBF kernel.

    Args:
        C: regularisation weight (larger fits the training set harder).
        sigma: RBF bandwidth, in units of the (normalised) feature space.
        kernel: ``"rbf"`` or ``"multiscale"`` (see
            :func:`multiscale_rbf_kernel`).
        scale_ratio, mix: multiscale-kernel parameters (ignored for plain
            RBF).
    """

    def __init__(
        self,
        C: float = 10.0,
        sigma: float = 0.65,
        kernel: str = "rbf",
        scale_ratio: float = 30.0,
        mix: float = 0.5,
    ):
        if C <= 0 or sigma <= 0:
            raise ValueError("C and sigma must be positive")
        if kernel not in ("rbf", "multiscale"):
            raise ValueError(f"unknown kernel {kernel!r}")
        self.C = C
        self.sigma = sigma
        self.kernel = kernel
        self.scale_ratio = scale_ratio
        self.mix = mix
        self._X: np.ndarray | None = None
        self._solution: LSSVMSolution | None = None

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "multiscale":
            return multiscale_rbf_kernel(A, B, self.sigma, self.scale_ratio, self.mix)
        return rbf_kernel(A, B, self.sigma)

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, Y: np.ndarray) -> "LSSVM":
        """Solve the LS-SVM system for targets ``Y`` (``(n,)`` with values
        in {-1, +1}, or ``(n, m)`` to train ``m`` machines sharing ``X``)."""
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        n = len(X)
        if n == 0 or Y.shape[0] != n:
            raise ValueError("X and Y must be non-empty and aligned")
        K = self._kernel(X, X)
        A = np.zeros((n + 1, n + 1))
        A[0, 1:] = 1.0
        A[1:, 0] = 1.0
        A[1:, 1:] = K + np.eye(n) / self.C

        rhs = np.zeros((n + 1,) + Y.shape[1:])
        rhs[1:] = Y
        # The system is symmetric indefinite; LU is robust and lets us
        # recover diag(A^{-1}) for the leave-one-out shortcut when asked.
        lu, piv = scipy.linalg.lu_factor(A)
        solution = scipy.linalg.lu_solve((lu, piv), rhs)
        self._X = X
        self._solution = LSSVMSolution(
            alpha=solution[1:],
            bias=solution[0],
            targets=Y,
            lu_factors=(lu, piv),
        )
        return self

    @property
    def is_fitted(self) -> bool:
        return self._solution is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("LS-SVM is not fitted")

    # ------------------------------------------------------------------
    # Persistence (consumed by repro.registry model artifacts).
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """The dual solution and training rows, as plain arrays/scalars.

        The LU factorisation is deliberately excluded: it is only needed
        for the leave-one-out shortcut, which deployment never uses.
        """
        self._require_fitted()
        return {
            "C": float(self.C),
            "sigma": float(self.sigma),
            "kernel": self.kernel,
            "scale_ratio": float(self.scale_ratio),
            "mix": float(self.mix),
            "X": self._X,
            "alpha": np.asarray(self._solution.alpha, dtype=np.float64),
            "bias": np.asarray(self._solution.bias, dtype=np.float64),
            "targets": np.asarray(self._solution.targets, dtype=np.float64),
        }

    @classmethod
    def from_state(cls, state: dict) -> "LSSVM":
        """Rebuild a fitted machine with bit-identical decision values.

        The restored machine predicts exactly (same kernel inputs, same
        dual coefficients) but cannot compute leave-one-out values — that
        requires the training factorisation, which artifacts do not carry.
        """
        machine = cls(
            C=float(state["C"]),
            sigma=float(state["sigma"]),
            kernel=str(state["kernel"]),
            scale_ratio=float(state["scale_ratio"]),
            mix=float(state["mix"]),
        )
        bias = np.asarray(state["bias"], dtype=np.float64)
        machine._X = np.asarray(state["X"], dtype=np.float64)
        machine._solution = LSSVMSolution(
            alpha=np.asarray(state["alpha"], dtype=np.float64),
            bias=bias[()] if bias.ndim == 0 else bias,
            targets=np.asarray(state["targets"], dtype=np.float64),
            lu_factors=None,
        )
        return machine

    # ------------------------------------------------------------------

    def decision_values(self, X: np.ndarray) -> np.ndarray:
        """``f(x)`` for query rows (one column per trained machine)."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        K = self._kernel(X, self._X)
        return K @ self._solution.alpha + self._solution.bias

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Signs of the decision values."""
        return np.where(self.decision_values(X) >= 0.0, 1, -1)

    def training_decision_values(self) -> np.ndarray:
        """``f(x_i)`` on the training set (no kernel recomputation)."""
        self._require_fitted()
        K = self._kernel(self._X, self._X)
        return K @ self._solution.alpha + self._solution.bias

    def loo_decision_values(self) -> np.ndarray:
        """Exact leave-one-out decision values on the training set.

        The Cawley-Talbot identity gives the LOO *residual* in closed form:
        ``y_i - f_{-i}(x_i) = alpha_i / (A^{-1})_ii``, so the left-out
        decision value is ``y_i`` minus that — no retraining required.  The
        ``A^{-1}`` diagonal is computed lazily on the stored factorisation
        (plain fits for deployment never pay for it).
        """
        self._require_fitted()
        if self._solution.inv_diag is None:
            if self._solution.lu_factors is None:
                raise RuntimeError(
                    "leave-one-out values are unavailable on a model restored "
                    "from an artifact (no training factorisation)"
                )
            n = len(self._X)
            inverse = scipy.linalg.lu_solve(self._solution.lu_factors, np.eye(n + 1))
            self._solution.inv_diag = np.diag(inverse)[1:].copy()
        residual = (self._solution.alpha.T / self._solution.inv_diag).T
        return self._solution.targets - residual
