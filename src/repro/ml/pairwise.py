"""Pairwise (one-vs-one) LS-SVM multi-class coupling.

The output-code construction in :mod:`repro.ml.multiclass` is the paper's
described scheme; LSSVMlab (the toolkit the paper used) also ships pairwise
coupling, which trains one binary machine per *pair* of classes on just
those two classes' examples and predicts by voting.  Pairwise coupling is
usually stronger on hard multi-class problems — each binary problem is
smaller and cleaner — at the cost of ``k(k-1)/2`` machines.

Leave-one-out stays exact and cheap: leaving out example ``i`` only
perturbs the machines whose training set contains ``i`` (the ``k-1`` pairs
involving ``i``'s class); for those, the closed-form LS-SVM LOO identity
applies within the pair's own solve, and every other machine's decision
value for ``i`` is unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.features.normalize import Normalizer, fit_normalizer
from repro.ml.svm import LSSVM


class PairwiseLSSVM:
    """One-vs-one LS-SVM with margin-weighted voting."""

    def __init__(
        self,
        classes=tuple(range(1, 9)),
        C: float = 10.0,
        sigma: float = 0.65,
        feature_weights: np.ndarray | None = None,
        normalization: str = "minmax",
        kernel: str = "rbf",
        scale_ratio: float = 30.0,
        mix: float = 0.5,
    ):
        self.classes = np.asarray(classes, dtype=np.int64)
        self.C = C
        self.sigma = sigma
        self.feature_weights = (
            None if feature_weights is None else np.asarray(feature_weights, dtype=np.float64)
        )
        self.normalization = normalization
        self.kernel = kernel
        self.scale_ratio = scale_ratio
        self.mix = mix
        self._machines: dict[tuple[int, int], LSSVM] = {}
        self._rows: dict[tuple[int, int], np.ndarray] = {}
        self._normalizer = None
        self._y: np.ndarray | None = None

    def _prepare(self, X: np.ndarray) -> np.ndarray:
        """Normalise, then stretch axes by the (optional) feature weights —
        a diagonal-metric RBF, i.e. per-feature bandwidths."""
        Z = self._normalizer.transform(X)
        if self.feature_weights is not None:
            Z = Z * self.feature_weights
        return Z

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "PairwiseLSSVM":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._normalizer = fit_normalizer(X, self.normalization)
        Z = self._prepare(X)
        self._Z_cache = Z
        self._y = y
        self._machines.clear()
        self._rows.clear()
        present = [c for c in self.classes if np.any(y == c)]
        for ai in range(len(present)):
            for bi in range(ai + 1, len(present)):
                a, b = int(present[ai]), int(present[bi])
                rows = np.flatnonzero((y == a) | (y == b))
                targets = np.where(y[rows] == a, 1.0, -1.0)
                machine = LSSVM(
                    C=self.C,
                    sigma=self.sigma,
                    kernel=self.kernel,
                    scale_ratio=self.scale_ratio,
                    mix=self.mix,
                )
                machine.fit(Z[rows], targets)
                self._machines[(a, b)] = machine
                self._rows[(a, b)] = rows
        return self

    def _require_fitted(self) -> None:
        if self._normalizer is None:
            raise RuntimeError("classifier is not fitted")

    # ------------------------------------------------------------------
    # Persistence (consumed by repro.registry model artifacts).
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """The fitted ensemble as plain arrays/scalars.

        The prepared (normalised, weighted) training matrix is stored once;
        each pair machine contributes only its row indices and dual
        solution, so the artifact stays compact and reconstruction is an
        exact slice — no refitting, no drift.
        """
        self._require_fitted()
        pairs = []
        for (a, b), machine in sorted(self._machines.items()):
            solution = machine._solution
            pairs.append(
                {
                    "a": int(a),
                    "b": int(b),
                    "rows": np.asarray(self._rows[(a, b)], dtype=np.int64),
                    "alpha": np.asarray(solution.alpha, dtype=np.float64),
                    "bias": np.asarray(solution.bias, dtype=np.float64),
                }
            )
        return {
            "classes": np.asarray(self.classes, dtype=np.int64),
            "C": float(self.C),
            "sigma": float(self.sigma),
            "feature_weights": (
                None
                if self.feature_weights is None
                else np.asarray(self.feature_weights, dtype=np.float64)
            ),
            "normalization": self.normalization,
            "kernel": self.kernel,
            "scale_ratio": float(self.scale_ratio),
            "mix": float(self.mix),
            "Z": self._Z_cache,
            "y": self._y,
            "normalizer": self._normalizer.get_state(),
            "pairs": pairs,
        }

    @classmethod
    def from_state(cls, state: dict) -> "PairwiseLSSVM":
        """Rebuild a fitted ensemble with bit-identical predictions."""
        clf = cls(
            classes=tuple(int(c) for c in state["classes"]),
            C=float(state["C"]),
            sigma=float(state["sigma"]),
            feature_weights=state["feature_weights"],
            normalization=str(state["normalization"]),
            kernel=str(state["kernel"]),
            scale_ratio=float(state["scale_ratio"]),
            mix=float(state["mix"]),
        )
        clf._normalizer = Normalizer.from_state(state["normalizer"])
        Z = np.asarray(state["Z"], dtype=np.float64)
        y = np.asarray(state["y"], dtype=np.int64)
        clf._Z_cache = Z
        clf._y = y
        for pair in state["pairs"]:
            a, b = int(pair["a"]), int(pair["b"])
            rows = np.asarray(pair["rows"], dtype=np.int64)
            clf._machines[(a, b)] = LSSVM.from_state(
                {
                    "C": clf.C,
                    "sigma": clf.sigma,
                    "kernel": clf.kernel,
                    "scale_ratio": clf.scale_ratio,
                    "mix": clf.mix,
                    "X": Z[rows],
                    "alpha": pair["alpha"],
                    "bias": pair["bias"],
                    "targets": np.where(y[rows] == a, 1.0, -1.0),
                }
            )
            clf._rows[(a, b)] = rows
        return clf

    # ------------------------------------------------------------------

    def _vote(self, decision_columns: dict[tuple[int, int], np.ndarray], n: int) -> np.ndarray:
        """Aggregate pair decisions into labels (votes, margin tie-break)."""
        class_pos = {int(c): k for k, c in enumerate(self.classes)}
        votes = np.zeros((n, len(self.classes)))
        margins = np.zeros((n, len(self.classes)))
        for (a, b), values in decision_columns.items():
            winner_a = values >= 0.0
            votes[winner_a, class_pos[a]] += 1.0
            votes[~winner_a, class_pos[b]] += 1.0
            margins[:, class_pos[a]] += values
            margins[:, class_pos[b]] -= values
        # Lexicographic: votes first, accumulated margin as tie-break.
        score = votes + 1e-6 * np.tanh(margins)
        return self.classes[np.argmax(score, axis=1)]

    def predict(self, X: np.ndarray) -> np.ndarray:
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        Z = self._prepare(X)
        decisions = {
            pair: np.asarray(machine.decision_values(Z), dtype=np.float64).ravel()
            for pair, machine in self._machines.items()
        }
        return self._vote(decisions, len(Z))

    @property
    def classes_(self) -> np.ndarray:
        """Distinct training labels, ascending (the proba column order)."""
        self._require_fitted()
        return np.unique(self._y)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-query class distribution over :attr:`classes_`: each pair
        machine casts one vote, so the vote shares form a distribution
        (every row sums to the machine count, normalised to 1).  Vote ties
        that :meth:`predict` breaks by accumulated margin keep their tied
        shares here; consumers needing exact ``predict`` agreement use the
        label from ``predict`` and this distribution for confidence only.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        Z = self._prepare(X)
        present = self.classes_
        column = {int(c): k for k, c in enumerate(present)}
        votes = np.zeros((len(Z), len(present)))
        for (a, b), machine in self._machines.items():
            values = np.asarray(machine.decision_values(Z), dtype=np.float64).ravel()
            winner_a = values >= 0.0
            votes[winner_a, column[a]] += 1.0
            votes[~winner_a, column[b]] += 1.0
        totals = votes.sum(axis=1, keepdims=True)
        if not self._machines:  # degenerate single-class fit
            return np.ones((len(Z), len(present))) / len(present)
        return votes / totals

    def loocv_predictions(self) -> np.ndarray:
        """Exact LOO labels over the training set."""
        self._require_fitted()
        n = len(self._y)
        decisions: dict[tuple[int, int], np.ndarray] = {}
        for pair, machine in self._machines.items():
            rows = self._rows[pair]
            # Decision values for everyone from the machine as trained...
            full = np.asarray(machine.decision_values(self._all_Z()), dtype=np.float64).ravel()
            # ...then patch the training rows with their exact LOO values.
            loo = np.asarray(machine.loo_decision_values(), dtype=np.float64).ravel()
            full[rows] = loo
            decisions[pair] = full
        return self._vote(decisions, n)

    def _all_Z(self) -> np.ndarray:
        # The normalised training matrix, reconstructed from pair rows is
        # not possible in general; keep a cached copy instead.
        if not hasattr(self, "_Z_cache"):
            raise RuntimeError("internal: training matrix missing")
        return self._Z_cache


def make_tuned_pairwise_svm() -> "PairwiseLSSVM":
    """The SVM configuration the reproduction experiments use (LOOCV-tuned;
    see ``TUNED_SVM_PARAMS`` and EXPERIMENTS.md)."""
    from repro.ml.svm import TUNED_SVM_PARAMS

    return PairwiseLSSVM(**TUNED_SVM_PARAMS)
