"""The labelled dataset: features, labels, and per-factor cycle counts.

One row per surviving loop.  Besides the feature matrix and the best-factor
label, the dataset keeps the full per-factor *measured* cycle vector (the
paper's Table 2 "Cost" column and oracle need it) and the *noise-free* cycle
vector (the evaluation's ground truth — the paper's equivalent is running
the chosen binaries uninstrumented).

Datasets persist to ``.npz`` and restore exactly, which is what lets the
expensive labelling pipeline cache its output.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.features.catalog import FEATURE_NAMES, N_FEATURES
from repro.ir.types import MAX_UNROLL


@dataclass(frozen=True)
class LoopDataset:
    """Immutable labelled dataset.

    Attributes:
        X: ``(n, 38)`` feature matrix (catalog order, unnormalised).
        labels: ``(n,)`` best measured unroll factor per loop (1..8).
        cycles: ``(n, 8)`` measured median cycles per factor.
        true_cycles: ``(n, 8)`` noise-free cycles per factor.
        loop_names / benchmarks / suites / languages: provenance per row.
        swp: whether the measurements were taken with software pipelining.
    """

    X: np.ndarray
    labels: np.ndarray
    cycles: np.ndarray
    true_cycles: np.ndarray
    loop_names: np.ndarray
    benchmarks: np.ndarray
    suites: np.ndarray
    languages: np.ndarray
    swp: bool

    def __post_init__(self) -> None:
        n = len(self.labels)
        if self.X.shape != (n, N_FEATURES):
            raise ValueError(f"feature matrix must be ({n}, {N_FEATURES})")
        for name in ("cycles", "true_cycles"):
            if getattr(self, name).shape != (n, MAX_UNROLL):
                raise ValueError(f"{name} must be ({n}, {MAX_UNROLL})")
        for name in ("loop_names", "benchmarks", "suites", "languages"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} must have {n} entries")
        if not np.all((self.labels >= 1) & (self.labels <= MAX_UNROLL)):
            raise ValueError("labels must be unroll factors in [1, 8]")

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def feature_names(self) -> tuple[str, ...]:
        return FEATURE_NAMES

    def subset(self, mask: np.ndarray) -> "LoopDataset":
        """Rows selected by a boolean mask or index array."""
        return replace(
            self,
            X=self.X[mask],
            labels=self.labels[mask],
            cycles=self.cycles[mask],
            true_cycles=self.true_cycles[mask],
            loop_names=self.loop_names[mask],
            benchmarks=self.benchmarks[mask],
            suites=self.suites[mask],
            languages=self.languages[mask],
        )

    def exclude_benchmark(self, name: str) -> "LoopDataset":
        """All rows except those from ``name`` — the paper's protocol when
        compiling a benchmark with a learned heuristic (Section 6.1)."""
        return self.subset(self.benchmarks != name)

    def only_benchmark(self, name: str) -> "LoopDataset":
        return self.subset(self.benchmarks == name)

    def benchmark_names(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for bench in self.benchmarks:
            seen.setdefault(str(bench))
        return tuple(seen)

    # ------------------------------------------------------------------
    # Derived quantities the experiments use.
    # ------------------------------------------------------------------

    def rank_of_prediction(self, row: int, factor: int) -> int:
        """1 when ``factor`` is the loop's best measured factor, 2 when
        second-best, ..., 8 when worst (the paper's Table 2 rows)."""
        order = np.argsort(self.cycles[row], kind="stable")
        return int(np.where(order == factor - 1)[0][0]) + 1

    def cost_ratio(self, row: int, factor: int) -> float:
        """Measured cycles at ``factor`` relative to the loop's best — the
        runtime penalty of a (mis)prediction."""
        best = float(self.cycles[row].min())
        return float(self.cycles[row, factor - 1]) / best

    def label_histogram(self) -> np.ndarray:
        """Fraction of loops whose optimal factor is 1..8 (Figure 3)."""
        counts = np.bincount(self.labels, minlength=MAX_UNROLL + 1)[1:]
        return counts / max(len(self), 1)

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            X=self.X,
            labels=self.labels,
            cycles=self.cycles,
            true_cycles=self.true_cycles,
            loop_names=self.loop_names.astype(str),
            benchmarks=self.benchmarks.astype(str),
            suites=self.suites.astype(str),
            languages=self.languages.astype(str),
            swp=np.array([self.swp]),
        )

    @classmethod
    def load(cls, path: str | Path) -> "LoopDataset":
        with np.load(Path(path), allow_pickle=False) as data:
            return cls(
                X=data["X"],
                labels=data["labels"],
                cycles=data["cycles"],
                true_cycles=data["true_cycles"],
                loop_names=data["loop_names"],
                benchmarks=data["benchmarks"],
                suites=data["suites"],
                languages=data["languages"],
                swp=bool(data["swp"][0]),
            )


def concatenate(parts: list[LoopDataset]) -> LoopDataset:
    """Stack several datasets (same regime) into one."""
    if not parts:
        raise ValueError("nothing to concatenate")
    if len({part.swp for part in parts}) != 1:
        raise ValueError("cannot mix SWP regimes in one dataset")
    return LoopDataset(
        X=np.concatenate([p.X for p in parts]),
        labels=np.concatenate([p.labels for p in parts]),
        cycles=np.concatenate([p.cycles for p in parts]),
        true_cycles=np.concatenate([p.true_cycles for p in parts]),
        loop_names=np.concatenate([p.loop_names for p in parts]),
        benchmarks=np.concatenate([p.benchmarks for p in parts]),
        suites=np.concatenate([p.suites for p in parts]),
        languages=np.concatenate([p.languages for p in parts]),
        swp=parts[0].swp,
    )
