"""Cross-validation protocols.

Two protocols from the paper:

* **Leave-one-out (LOOCV, Section 4.2)** — remove one loop, train on the
  rest, classify the removed loop; repeat for every loop.  Used for the
  accuracy numbers (Table 2).  Both classifiers have exact fast paths (a
  masked distance matrix for NN, the closed-form LOO identity for the
  LS-SVM), and a naive refit path exists for testing them against.
* **Leave-one-benchmark-out (Section 6.1)** — when compiling benchmark B,
  train on every loop *not* from B.  Used for the speedup experiments
  (Figures 4/5), so the compiler never sees its own loops at training time.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ml.dataset import LoopDataset
from repro.ml.multiclass import OutputCodeClassifier
from repro.ml.near_neighbor import NearNeighborClassifier
from repro.ml.pairwise import PairwiseLSSVM, make_tuned_pairwise_svm

#: A factory returning a fresh, unfitted classifier.
ClassifierFactory = Callable[[], object]


def loocv_nn(
    dataset: LoopDataset,
    feature_indices: np.ndarray | None = None,
    radius: float | None = None,
) -> np.ndarray:
    """Exact LOOCV predictions of the near-neighbor classifier."""
    X = _select(dataset.X, feature_indices)
    classifier = (
        NearNeighborClassifier() if radius is None else NearNeighborClassifier(radius=radius)
    )
    classifier.fit(X, dataset.labels)
    return classifier.loocv_predictions()


def loocv_svm(
    dataset: LoopDataset,
    feature_indices: np.ndarray | None = None,
    C: float = 10.0,
    sigma: float = 0.65,
    decode: str = "hamming",
) -> np.ndarray:
    """Exact LOOCV predictions of the output-code LS-SVM."""
    X = _select(dataset.X, feature_indices)
    classifier = OutputCodeClassifier(C=C, sigma=sigma, decode=decode)
    classifier.fit(X, dataset.labels)
    return classifier.loocv_predictions()


def loocv_tuned_svm(
    dataset: LoopDataset,
    feature_indices: np.ndarray | None = None,
) -> np.ndarray:
    """Exact LOOCV predictions of the tuned pairwise multiscale LS-SVM —
    the configuration the reproduction's Table 2 reports as "SVM"."""
    X = _select(dataset.X, feature_indices)
    classifier = make_tuned_pairwise_svm()
    classifier.fit(X, dataset.labels)
    return classifier.loocv_predictions()


def loocv_naive(
    dataset: LoopDataset,
    factory: ClassifierFactory,
    feature_indices: np.ndarray | None = None,
    limit: int | None = None,
) -> np.ndarray:
    """Reference LOOCV by explicit refitting (slow; used to validate the
    fast paths).  ``limit`` restricts to the first N rows."""
    X = _select(dataset.X, feature_indices)
    y = dataset.labels
    n = len(y) if limit is None else min(limit, len(y))
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        mask = np.ones(len(y), dtype=bool)
        mask[i] = False
        model = factory()
        model.fit(X[mask], y[mask])
        out[i] = int(np.asarray(model.predict(X[i : i + 1]))[0])
    return out


def leave_one_benchmark_out(
    dataset: LoopDataset,
    factory: ClassifierFactory,
    feature_indices: np.ndarray | None = None,
) -> np.ndarray:
    """Predictions for every loop, trained without its own benchmark."""
    X = _select(dataset.X, feature_indices)
    y = dataset.labels
    predictions = np.empty(len(y), dtype=np.int64)
    for bench in dataset.benchmark_names():
        test_mask = dataset.benchmarks == bench
        train_mask = ~test_mask
        model = factory()
        model.fit(X[train_mask], y[train_mask])
        predictions[test_mask] = np.asarray(model.predict(X[test_mask]))
    return predictions


def _select(X: np.ndarray, feature_indices) -> np.ndarray:
    if feature_indices is None:
        return X
    return X[:, np.asarray(feature_indices, dtype=np.int64)]
