"""Decision trees and boosting — the related-work baseline.

The paper's Section 9 contrasts its multi-class approach with Monsifrot,
Bodin, and Quiniou's *binary* "boosted decision tree" classifier, which
only decides unroll-or-not and leaves the factor to the compiler: "their
learned classifier correctly predicts 86% of the loops in their benchmark
suite. Judging by the histogram in Figure 3, simply unrolling all the time
will achieve 77% accuracy, and while unrolling may be better than not
unrolling for a given example, Table 2 shows that choosing the wrong unroll
factor can severely limit performance."

This module implements that baseline from scratch — CART-style trees with
Gini impurity and AdaBoost (discrete SAMME for the binary case) — so the
ablation bench can quantify the paper's argument on our data: high binary
accuracy, mediocre realized performance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves carry a class distribution."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    distribution: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.distribution is not None


class DecisionTree:
    """CART classifier: axis-aligned splits minimising weighted Gini.

    Supports sample weights (required by boosting) and any integer label
    set; prediction returns the majority class of the reached leaf.
    """

    def __init__(self, max_depth: int = 4, min_leaf: int = 5):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self._root: _Node | None = None
        self._classes: np.ndarray | None = None

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray, sample_weight=None) -> "DecisionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if sample_weight is None:
            sample_weight = np.full(len(y), 1.0 / len(y))
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        self._classes = np.unique(y)
        class_index = np.searchsorted(self._classes, y)
        self._root = self._grow(X, class_index, sample_weight, depth=0)
        return self

    def _distribution(self, class_index, weight) -> np.ndarray:
        dist = np.bincount(class_index, weights=weight, minlength=len(self._classes))
        total = dist.sum()
        return dist / total if total > 0 else np.full_like(dist, 1.0 / len(dist))

    def _grow(self, X, class_index, weight, depth) -> _Node:
        dist = self._distribution(class_index, weight)
        if (
            depth >= self.max_depth
            or len(class_index) < 2 * self.min_leaf
            or dist.max() >= 1.0 - 1e-12
        ):
            return _Node(distribution=dist)
        feature, threshold, gain = self._best_split(X, class_index, weight)
        if feature < 0 or gain <= 1e-12:
            return _Node(distribution=dist)
        goes_left = X[:, feature] <= threshold
        left = self._grow(X[goes_left], class_index[goes_left], weight[goes_left], depth + 1)
        right = self._grow(X[~goes_left], class_index[~goes_left], weight[~goes_left], depth + 1)
        return _Node(feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, X, class_index, weight):
        n, d = X.shape
        k = len(self._classes)
        parent = self._distribution(class_index, weight)
        total_weight = weight.sum()
        parent_gini = 1.0 - (parent**2).sum()
        best = (-1, 0.0, 0.0)
        for feature in range(d):
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            w = weight[order]
            onehot = np.zeros((n, k))
            onehot[np.arange(n), class_index[order]] = w
            left_counts = np.cumsum(onehot, axis=0)
            left_weight = np.cumsum(w)
            # Candidate split after position i (between distinct values).
            for i in range(self.min_leaf - 1, n - self.min_leaf):
                if values[i] == values[i + 1]:
                    continue
                wl = left_weight[i]
                wr = total_weight - wl
                if wl <= 0 or wr <= 0:
                    continue
                pl = left_counts[i] / wl
                pr = (left_counts[-1] - left_counts[i]) / wr
                gini = (wl * (1 - (pl**2).sum()) + wr * (1 - (pr**2).sum())) / total_weight
                gain = parent_gini - gini
                if gain > best[2]:
                    best = (feature, 0.5 * (values[i] + values[i + 1]), gain)
        return best

    # ------------------------------------------------------------------

    def _leaf_for(self, x) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        picks = [int(np.argmax(self._leaf_for(x).distribution)) for x in X]
        return self._classes[picks]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.vstack([self._leaf_for(x).distribution for x in X])


class BoostedTrees:
    """AdaBoost (discrete SAMME) over shallow CART trees.

    With binary labels this is the classic boosted-decision-tree setup of
    the Monsifrot et al. baseline; it also handles the multi-class case via
    the SAMME correction term.
    """

    def __init__(self, n_rounds: int = 25, max_depth: int = 2, min_leaf: int = 5):
        self.n_rounds = n_rounds
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self._stages: list[tuple[float, DecisionTree]] = []
        self._classes: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._classes = np.unique(y)
        k = len(self._classes)
        if k < 2:
            raise ValueError("boosting needs at least two classes")
        weight = np.full(len(y), 1.0 / len(y))
        self._stages = []
        for _ in range(self.n_rounds):
            tree = DecisionTree(max_depth=self.max_depth, min_leaf=self.min_leaf)
            tree.fit(X, y, sample_weight=weight)
            predictions = tree.predict(X)
            wrong = predictions != y
            error = float(weight[wrong].sum())
            if error >= 1.0 - 1.0 / k:
                break  # no better than chance: stop
            error = max(error, 1e-12)
            alpha = np.log((1.0 - error) / error) + np.log(k - 1.0)
            self._stages.append((alpha, tree))
            weight = weight * np.exp(alpha * wrong)
            weight /= weight.sum()
            if error <= 1e-12:
                break
        if not self._stages:
            tree = DecisionTree(max_depth=self.max_depth, min_leaf=self.min_leaf)
            tree.fit(X, y)
            self._stages.append((1.0, tree))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._classes is None:
            raise RuntimeError("ensemble is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        scores = np.zeros((len(X), len(self._classes)))
        for alpha, tree in self._stages:
            votes = tree.predict(X)
            for col, cls in enumerate(self._classes):
                scores[:, col] += alpha * (votes == cls)
        return self._classes[np.argmax(scores, axis=1)]

    @property
    def n_stages(self) -> int:
        return len(self._stages)


def binary_unroll_labels(labels: np.ndarray) -> np.ndarray:
    """Collapse unroll factors to the Monsifrot-style binary question:
    1 = leave rolled, 2 = unroll (any factor)."""
    labels = np.asarray(labels, dtype=np.int64)
    return np.where(labels == 1, 1, 2)
