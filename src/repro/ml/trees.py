"""Decision trees and boosting — the related-work baseline.

The paper's Section 9 contrasts its multi-class approach with Monsifrot,
Bodin, and Quiniou's *binary* "boosted decision tree" classifier, which
only decides unroll-or-not and leaves the factor to the compiler: "their
learned classifier correctly predicts 86% of the loops in their benchmark
suite. Judging by the histogram in Figure 3, simply unrolling all the time
will achieve 77% accuracy, and while unrolling may be better than not
unrolling for a given example, Table 2 shows that choosing the wrong unroll
factor can severely limit performance."

This module implements that baseline from scratch — CART-style trees with
Gini impurity and AdaBoost (discrete SAMME for the binary case) — so the
ablation bench can quantify the paper's argument on our data: high binary
accuracy, mediocre realized performance.

It also supplies :class:`RandomForest`, the bagged multi-class predictor
the calibrated ensemble (:mod:`repro.ml.ensemble`) uses: seeded bootstrap
resampling, per-split feature subsampling, and order-invariant averaging of
per-tree leaf class distributions.  Both the tree and the forest serialise
their fitted structure (:meth:`DecisionTree.get_state`) so the registry can
restore them bit-identically without refitting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _Node:
    """One tree node; leaves carry a class distribution."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    distribution: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.distribution is not None


class DecisionTree:
    """CART classifier: axis-aligned splits minimising weighted Gini.

    Supports sample weights (required by boosting) and any integer label
    set; prediction returns the majority class of the reached leaf.
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_leaf: int = 5,
        max_features: int | None = None,
        rng: np.random.Generator | None = None,
    ):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if max_features is not None and max_features < 1:
            raise ValueError("max_features must be >= 1")
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self.max_features = max_features
        self._rng = rng
        self._root: _Node | None = None
        self._classes: np.ndarray | None = None

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray, sample_weight=None) -> "DecisionTree":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if sample_weight is None:
            sample_weight = np.full(len(y), 1.0 / len(y))
        sample_weight = np.asarray(sample_weight, dtype=np.float64)
        self._classes = np.unique(y)
        class_index = np.searchsorted(self._classes, y)
        self._root = self._grow(X, class_index, sample_weight, depth=0)
        return self

    def _distribution(self, class_index, weight) -> np.ndarray:
        dist = np.bincount(class_index, weights=weight, minlength=len(self._classes))
        total = dist.sum()
        return dist / total if total > 0 else np.full_like(dist, 1.0 / len(dist))

    def _grow(self, X, class_index, weight, depth) -> _Node:
        dist = self._distribution(class_index, weight)
        if (
            depth >= self.max_depth
            or len(class_index) < 2 * self.min_leaf
            or dist.max() >= 1.0 - 1e-12
        ):
            return _Node(distribution=dist)
        feature, threshold, gain = self._best_split(X, class_index, weight)
        if feature < 0 or gain <= 1e-12:
            return _Node(distribution=dist)
        goes_left = X[:, feature] <= threshold
        left = self._grow(X[goes_left], class_index[goes_left], weight[goes_left], depth + 1)
        right = self._grow(X[~goes_left], class_index[~goes_left], weight[~goes_left], depth + 1)
        return _Node(feature=feature, threshold=threshold, left=left, right=right)

    def _candidate_features(self, d: int):
        """Features to consider at one split: all of them, or a seeded
        random subset (the forest's per-split feature subsampling).  The
        subset is sorted so the first-feature-wins tie-break stays
        deterministic."""
        if self.max_features is None or self._rng is None or self.max_features >= d:
            return range(d)
        return np.sort(self._rng.choice(d, size=self.max_features, replace=False))

    def _best_split(self, X, class_index, weight):
        n, d = X.shape
        k = len(self._classes)
        parent = self._distribution(class_index, weight)
        total_weight = weight.sum()
        parent_gini = 1.0 - (parent**2).sum()
        best = (-1, 0.0, 0.0)
        lo, hi = self.min_leaf - 1, n - self.min_leaf
        if hi <= lo:
            return best
        positions = np.arange(lo, hi)
        for feature in self._candidate_features(d):
            order = np.argsort(X[:, feature], kind="stable")
            values = X[order, feature]
            w = weight[order]
            onehot = np.zeros((n, k))
            onehot[np.arange(n), class_index[order]] = w
            left_counts = np.cumsum(onehot, axis=0)
            left_weight = np.cumsum(w)
            # Candidate split after position i (between distinct values);
            # all positions scored in one vectorized sweep.
            wl = left_weight[positions]
            wr = total_weight - wl
            valid = (values[positions] != values[positions + 1]) & (wl > 0) & (wr > 0)
            if not valid.any():
                continue
            idx = positions[valid]
            wlv, wrv = wl[valid], wr[valid]
            pl = left_counts[idx] / wlv[:, None]
            pr = (left_counts[-1] - left_counts[idx]) / wrv[:, None]
            gini = (
                wlv * (1 - (pl**2).sum(axis=1)) + wrv * (1 - (pr**2).sum(axis=1))
            ) / total_weight
            gain = parent_gini - gini
            pick = int(np.argmax(gain))  # first max: lowest threshold wins ties
            if gain[pick] > best[2]:
                best = (
                    int(feature),
                    0.5 * (values[idx[pick]] + values[idx[pick] + 1]),
                    float(gain[pick]),
                )
        return best

    # ------------------------------------------------------------------

    def _leaf_for(self, x) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        picks = [int(np.argmax(self._leaf_for(x).distribution)) for x in X]
        return self._classes[picks]

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.vstack([self._leaf_for(x).distribution for x in X])

    # ------------------------------------------------------------------
    # Persistence (consumed by repro.registry model artifacts).
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """The fitted tree as flat node arrays (preorder): split feature,
        threshold, child indices (-1 for leaves), and per-leaf class
        distributions.  The growth rng is *not* stored — prediction never
        draws from it — so restore cannot drift."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        nodes: list[_Node] = []

        def visit(node: _Node) -> int:
            index = len(nodes)
            nodes.append(node)
            if not node.is_leaf:
                visit(node.left)
                visit(node.right)
            return index

        visit(self._root)
        index_of = {id(node): i for i, node in enumerate(nodes)}
        k = len(self._classes)
        feature = np.full(len(nodes), -1, dtype=np.int64)
        threshold = np.zeros(len(nodes))
        left = np.full(len(nodes), -1, dtype=np.int64)
        right = np.full(len(nodes), -1, dtype=np.int64)
        distribution = np.zeros((len(nodes), k))
        for i, node in enumerate(nodes):
            if node.is_leaf:
                distribution[i] = node.distribution
            else:
                feature[i] = node.feature
                threshold[i] = node.threshold
                left[i] = index_of[id(node.left)]
                right[i] = index_of[id(node.right)]
        return {
            "max_depth": int(self.max_depth),
            "min_leaf": int(self.min_leaf),
            "max_features": None if self.max_features is None else int(self.max_features),
            "classes": self._classes,
            "feature": feature,
            "threshold": threshold,
            "left": left,
            "right": right,
            "distribution": distribution,
        }

    @classmethod
    def from_state(cls, state: dict) -> "DecisionTree":
        """Rebuild a fitted tree with bit-identical predictions."""
        max_features = state["max_features"]
        tree = cls(
            max_depth=int(state["max_depth"]),
            min_leaf=int(state["min_leaf"]),
            max_features=None if max_features is None else int(max_features),
        )
        tree._classes = np.asarray(state["classes"], dtype=np.int64)
        feature = np.asarray(state["feature"], dtype=np.int64)
        threshold = np.asarray(state["threshold"], dtype=np.float64)
        left = np.asarray(state["left"], dtype=np.int64)
        right = np.asarray(state["right"], dtype=np.int64)
        distribution = np.asarray(state["distribution"], dtype=np.float64)

        def build(index: int) -> _Node:
            if left[index] < 0:
                return _Node(distribution=distribution[index])
            return _Node(
                feature=int(feature[index]),
                threshold=float(threshold[index]),
                left=build(int(left[index])),
                right=build(int(right[index])),
            )

        tree._root = build(0)
        return tree


class RandomForest:
    """Bagged CART trees with per-split feature subsampling.

    Every tree trains on a seeded bootstrap resample and restricts each
    split to a random feature subset (default ``sqrt(d)``); prediction
    averages the per-tree leaf class distributions, mapped onto the
    forest's global class set.  The per-tree contributions are sorted
    before summation, so the aggregate is exactly invariant under any
    permutation of the trees — voting has no order dependence, not even in
    the last float ulp.
    """

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 6,
        min_leaf: int = 2,
        max_features: int | str | None = "sqrt",
        seed: int = 0,
    ):
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.min_leaf = int(min_leaf)
        self.max_features = max_features
        self.seed = int(seed)
        self._trees: list[DecisionTree] = []
        self._classes: np.ndarray | None = None

    # ------------------------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        return self._classes is not None

    @property
    def classes_(self) -> np.ndarray:
        self._require_fitted()
        return self._classes

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("classifier is not fitted")

    def _resolve_max_features(self, d: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        return max(1, min(int(self.max_features), d))

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForest":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or len(X) != len(y) or len(X) == 0:
            raise ValueError("X and y must be non-empty and aligned")
        self._classes = np.unique(y)
        n, d = X.shape
        max_features = self._resolve_max_features(d)
        # One SeedSequence child per tree: tree i's bootstrap and split
        # subsets are independent of every other tree, so the fit is
        # reproducible tree-by-tree regardless of n_trees.
        children = np.random.SeedSequence(self.seed).spawn(self.n_trees)
        self._trees = []
        for child in children:
            rng = np.random.default_rng(child)
            rows = rng.integers(0, n, size=n)
            tree = DecisionTree(
                max_depth=self.max_depth,
                min_leaf=self.min_leaf,
                max_features=max_features,
                rng=rng,
            )
            tree.fit(X[rows], y[rows])
            self._trees.append(tree)
        return self

    # ------------------------------------------------------------------

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Average per-tree leaf distributions over the global classes."""
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        stacked = np.zeros((len(self._trees), len(X), len(self._classes)))
        for t, tree in enumerate(self._trees):
            cols = np.searchsorted(self._classes, tree._classes)
            stacked[t][:, cols] = tree.predict_proba(X)
        # Sorting each (row, class) cell's per-tree contributions before
        # summing makes the total a function of the multiset of votes,
        # not the tree order: permutation invariance is exact.
        return np.sort(stacked, axis=0).sum(axis=0) / len(self._trees)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Majority-probability class per row (first class wins ties)."""
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    # ------------------------------------------------------------------
    # Persistence (consumed by repro.registry model artifacts).
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        self._require_fitted()
        return {
            "n_trees": self.n_trees,
            "max_depth": self.max_depth,
            "min_leaf": self.min_leaf,
            "max_features": (
                self.max_features
                if self.max_features is None or isinstance(self.max_features, str)
                else int(self.max_features)
            ),
            "seed": self.seed,
            "classes": self._classes,
            "trees": [tree.get_state() for tree in self._trees],
        }

    @classmethod
    def from_state(cls, state: dict) -> "RandomForest":
        """Rebuild a fitted forest with bit-identical predictions."""
        forest = cls(
            n_trees=int(state["n_trees"]),
            max_depth=int(state["max_depth"]),
            min_leaf=int(state["min_leaf"]),
            max_features=state["max_features"],
            seed=int(state["seed"]),
        )
        forest._classes = np.asarray(state["classes"], dtype=np.int64)
        forest._trees = [DecisionTree.from_state(s) for s in state["trees"]]
        return forest


class BoostedTrees:
    """AdaBoost (discrete SAMME) over shallow CART trees.

    With binary labels this is the classic boosted-decision-tree setup of
    the Monsifrot et al. baseline; it also handles the multi-class case via
    the SAMME correction term.
    """

    def __init__(self, n_rounds: int = 25, max_depth: int = 2, min_leaf: int = 5):
        self.n_rounds = n_rounds
        self.max_depth = max_depth
        self.min_leaf = min_leaf
        self._stages: list[tuple[float, DecisionTree]] = []
        self._classes: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "BoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._classes = np.unique(y)
        k = len(self._classes)
        if k < 2:
            raise ValueError("boosting needs at least two classes")
        weight = np.full(len(y), 1.0 / len(y))
        self._stages = []
        for _ in range(self.n_rounds):
            tree = DecisionTree(max_depth=self.max_depth, min_leaf=self.min_leaf)
            tree.fit(X, y, sample_weight=weight)
            predictions = tree.predict(X)
            wrong = predictions != y
            error = float(weight[wrong].sum())
            if error >= 1.0 - 1.0 / k:
                break  # no better than chance: stop
            error = max(error, 1e-12)
            alpha = np.log((1.0 - error) / error) + np.log(k - 1.0)
            self._stages.append((alpha, tree))
            weight = weight * np.exp(alpha * wrong)
            weight /= weight.sum()
            if error <= 1e-12:
                break
        if not self._stages:
            tree = DecisionTree(max_depth=self.max_depth, min_leaf=self.min_leaf)
            tree.fit(X, y)
            self._stages.append((1.0, tree))
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._classes is None:
            raise RuntimeError("ensemble is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        scores = np.zeros((len(X), len(self._classes)))
        for alpha, tree in self._stages:
            votes = tree.predict(X)
            for col, cls in enumerate(self._classes):
                scores[:, col] += alpha * (votes == cls)
        return self._classes[np.argmax(scores, axis=1)]

    @property
    def n_stages(self) -> int:
        return len(self._stages)


def binary_unroll_labels(labels: np.ndarray) -> np.ndarray:
    """Collapse unroll factors to the Monsifrot-style binary question:
    1 = leave rolled, 2 = unroll (any factor)."""
    labels = np.asarray(labels, dtype=np.int64)
    return np.where(labels == 1, 1, 2)
