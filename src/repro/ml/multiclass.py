"""Multi-class classification via output codes (the paper's Section 5.2).

"Output codes associate a unique binary code to each label. ... Now, the
problem has been transformed into many binary classification problems."  One
binary LS-SVM is trained per code bit on the partition the codewords induce;
a query's code is the concatenated bit predictions, and the predicted class
is the codeword closest in Hamming distance.

The paper uses the plain one-per-class (one-vs-rest) code matrix and
explicitly forgoes error-correcting codes "for simplicity"; we implement
both (plus random codes) so the ablation bench can measure what ECOC would
have bought them.
"""

from __future__ import annotations

import numpy as np

from repro.ml.svm import LSSVM


def identity_code(n_classes: int) -> np.ndarray:
    """One bit per class (one-vs-rest): the paper's choice."""
    return np.eye(n_classes, dtype=np.int8)


def exhaustive_code(n_classes: int) -> np.ndarray:
    """An exhaustive error-correcting code (Dietterich & Bakiri style):
    every non-trivial binary split of the classes, ``2^(k-1) - 1`` bits.

    Class 0's bit is fixed to 0 in every column; the other classes' bits
    enumerate all non-zero patterns, so every column is a distinct,
    non-constant split and every row (codeword) is unique.
    """
    if n_classes < 2:
        raise ValueError("need at least two classes")
    if n_classes > 11:
        raise ValueError("exhaustive codes explode beyond 11 classes")
    n_bits = 2 ** (n_classes - 1) - 1
    matrix = np.zeros((n_classes, n_bits), dtype=np.int8)
    for bit in range(n_bits):
        pattern = bit + 1
        for cls in range(1, n_classes):
            matrix[cls, bit] = (pattern >> (cls - 1)) & 1
    return matrix


def random_code(n_classes: int, n_bits: int, seed: int = 0) -> np.ndarray:
    """A random code with distinct, non-constant columns and distinct rows."""
    rng = np.random.default_rng(seed)
    for _ in range(1000):
        matrix = rng.integers(0, 2, size=(n_classes, n_bits), dtype=np.int8)
        cols_ok = all(0 < matrix[:, b].sum() < n_classes for b in range(n_bits))
        rows_ok = len({tuple(row) for row in matrix}) == n_classes
        if cols_ok and rows_ok:
            return matrix
    raise RuntimeError("failed to sample a valid random code")


def code_targets(y: np.ndarray, code: np.ndarray, classes: np.ndarray) -> np.ndarray:
    """Per-bit ``+/-1`` targets induced by the codewords for labels ``y``."""
    classes = np.asarray(classes, dtype=np.int64)
    class_index = np.searchsorted(classes, y)
    class_index = np.clip(class_index, 0, len(classes) - 1)
    if not np.all(classes[class_index] == y):
        raise ValueError("labels outside the configured class set")
    bits = code[class_index]  # (n, n_bits) in {0, 1}
    return bits.astype(np.float64) * 2.0 - 1.0


def decode_output_codes(
    values: np.ndarray,
    code: np.ndarray,
    classes: np.ndarray,
    decode: str = "hamming",
) -> np.ndarray:
    """Decision values ``(n, n_bits)`` -> class labels."""
    values = np.atleast_2d(values)
    classes = np.asarray(classes, dtype=np.int64)
    signed_code = code.astype(np.float64) * 2.0 - 1.0
    if decode == "hamming":
        bits = (values >= 0.0).astype(np.int8)
        hamming = (bits[:, None, :] != code[None, :, :]).sum(axis=2)
        best = hamming.min(axis=1, keepdims=True)
        # Tie-break among nearest codewords by total margin agreement.
        margin = values @ signed_code.T
        margin_masked = np.where(hamming == best, margin, -np.inf)
        return classes[np.argmax(margin_masked, axis=1)]
    if decode == "margin":
        return classes[np.argmax(values @ signed_code.T, axis=1)]
    raise ValueError(f"unknown decoding {decode!r}")


class OutputCodeClassifier:
    """Multi-class wrapper: one binary LS-SVM per output-code bit.

    Args:
        classes: the label values, in codeword-row order.
        code: ``(n_classes, n_bits)`` binary matrix; defaults to the
            identity (one-vs-rest) code the paper uses.
        C, sigma: LS-SVM hyperparameters shared by all bits.
        decode: ``"hamming"`` (the paper: nearest codeword in Hamming
            distance, margin-summed tie-break) or ``"margin"`` (soft
            decoding over decision values).
    """

    def __init__(
        self,
        classes=tuple(range(1, 9)),
        code: np.ndarray | None = None,
        C: float = 10.0,
        sigma: float = 0.65,
        decode: str = "hamming",
        normalization: str = "minmax",
        kernel: str = "rbf",
        scale_ratio: float = 30.0,
        mix: float = 0.5,
    ):
        self.classes = np.asarray(classes, dtype=np.int64)
        self.code = (
            identity_code(len(self.classes)) if code is None else np.asarray(code, dtype=np.int8)
        )
        if self.code.shape[0] != len(self.classes):
            raise ValueError("code matrix must have one row per class")
        if decode not in ("hamming", "margin"):
            raise ValueError(f"unknown decoding {decode!r}")
        self.decode = decode
        self.normalization = normalization
        self.machine = LSSVM(C=C, sigma=sigma, kernel=kernel, scale_ratio=scale_ratio, mix=mix)
        self._normalizer = None

    # ------------------------------------------------------------------

    def _bit_targets(self, y: np.ndarray) -> np.ndarray:
        """Per-bit +/-1 targets induced by the codewords."""
        return code_targets(y, self.code, self.classes)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OutputCodeClassifier":
        """Train all bit machines (one shared factorisation)."""
        from repro.features.normalize import fit_normalizer

        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        self._normalizer = fit_normalizer(X, self.normalization)
        self.machine.fit(self._normalizer.transform(X), self._bit_targets(y))
        return self

    # ------------------------------------------------------------------

    def _decode(self, values: np.ndarray) -> np.ndarray:
        """Decision values (n, n_bits) -> class labels."""
        return decode_output_codes(values, self.code, self.classes, self.decode)

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._normalizer is None:
            raise RuntimeError("classifier is not fitted")
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        values = self.machine.decision_values(self._normalizer.transform(X))
        return self._decode(np.atleast_2d(values))

    def loocv_predictions(self) -> np.ndarray:
        """Exact leave-one-out predictions over the training set, from the
        per-bit closed-form LOO decision values (no retraining)."""
        values = self.machine.loo_decision_values()
        return self._decode(np.atleast_2d(values))
