"""Fisher linear discriminant analysis.

The paper's Figures 1 and 2 visualise loops by projecting the feature space
"onto a plane" found with "the linear discriminant analysis algorithm
described in [Duda-Hart-Stork]": the axes are linear combinations of the
original features that maximally separate the classes.  This module is that
projection: solve the generalised eigenproblem ``S_b v = lambda S_w v`` and
keep the leading eigenvectors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg


@dataclass(frozen=True)
class LDAProjection:
    """A fitted discriminant projection."""

    mean: np.ndarray
    components: np.ndarray  # (n_features, n_components)
    eigenvalues: np.ndarray

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project rows of ``X`` onto the discriminant plane."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return (X - self.mean) @ self.components

    @property
    def n_components(self) -> int:
        return self.components.shape[1]


def fit_lda(X: np.ndarray, y: np.ndarray, n_components: int = 2) -> LDAProjection:
    """Fit Fisher LDA and keep the ``n_components`` leading directions.

    Within-class scatter is regularised (shrunk toward its diagonal) so the
    solve stays stable when some features are nearly collinear — common for
    loop features (e.g. op counts and operand counts track each other).
    """
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    n, d = X.shape
    classes = np.unique(y)
    if len(classes) < 2:
        raise ValueError("LDA needs at least two classes")
    max_components = min(d, len(classes) - 1)
    if n_components > max_components:
        raise ValueError(
            f"at most {max_components} discriminants exist for this problem"
        )

    overall_mean = X.mean(axis=0)
    s_within = np.zeros((d, d))
    s_between = np.zeros((d, d))
    for cls in classes:
        rows = X[y == cls]
        mean = rows.mean(axis=0)
        centered = rows - mean
        s_within += centered.T @ centered
        gap = (mean - overall_mean)[:, None]
        s_between += len(rows) * (gap @ gap.T)

    # Shrinkage regularisation keeps S_w invertible.
    ridge = 1e-6 * np.trace(s_within) / d + 1e-12
    s_within += ridge * np.eye(d)

    eigenvalues, eigenvectors = scipy.linalg.eigh(s_between, s_within)
    order = np.argsort(eigenvalues)[::-1][:n_components]
    components = eigenvectors[:, order]
    # Normalise component scale for stable plotting.
    norms = np.linalg.norm(components, axis=0)
    norms[norms == 0.0] = 1.0
    components = components / norms
    return LDAProjection(
        mean=overall_mean,
        components=components,
        eigenvalues=eigenvalues[order],
    )
