"""Near neighbor classification (the paper's Section 5.1).

"The idea of the algorithm is to construct a database of all (x_i, y_i)
pairs in the training set" — prediction inspects the labels of all training
examples within a fixed Euclidean radius of the (normalised) query and
returns the most common one.  When no neighbor falls inside the radius, or
when there is no clear winner, the paper "simply assign[s] the unroll factor
based on the label of the single nearest neighbor"; it also notes the
neighbor vote doubles as a *confidence*, enabling outlier-inspection tools.

The paper uses radius 0.3, "determined experimentally"; feature vectors are
normalised "to weigh all features equally" (we default to min-max scaling so
a 0.3 radius is meaningful).  Training is population of the database —
"trivial to train" — and lookup is a linear scan, fast at this dataset size
(their 2,500-example scan took under 5 ms).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.normalize import Normalizer, fit_normalizer

#: The paper's experimentally chosen neighborhood radius.
DEFAULT_RADIUS = 0.3


@dataclass(frozen=True)
class NNPrediction:
    """A prediction with its neighbor evidence."""

    label: int
    confidence: float  # fraction of in-radius neighbors voting for label
    n_neighbors: int  # neighbors within the radius
    used_fallback: bool  # True when the 1-NN fallback decided


class NearNeighborClassifier:
    """Radius-vote near neighbor classifier with a 1-NN fallback."""

    def __init__(self, radius: float = DEFAULT_RADIUS, normalization: str = "minmax"):
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.radius = radius
        self.normalization = normalization
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self._normalizer: Normalizer | None = None

    # ------------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NearNeighborClassifier":
        """Populate the database (this *is* the training)."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if len(X) != len(y) or len(X) == 0:
            raise ValueError("X and y must be non-empty and aligned")
        self._normalizer = fit_normalizer(X, self.normalization)
        self._X = self._normalizer.transform(X)
        self._y = y
        return self

    @property
    def is_fitted(self) -> bool:
        return self._X is not None

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("classifier is not fitted")

    # ------------------------------------------------------------------
    # Persistence (consumed by repro.registry model artifacts).
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """Everything a fitted classifier needs to predict, as plain
        arrays/scalars.  The stored database is the *normalised* matrix, so
        restoring never refits (and cannot drift)."""
        self._require_fitted()
        return {
            "radius": float(self.radius),
            "normalization": self.normalization,
            "X": self._X,
            "y": self._y,
            "normalizer": self._normalizer.get_state(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "NearNeighborClassifier":
        """Rebuild a fitted classifier; predictions are bit-identical to
        the instance :meth:`get_state` was read from."""
        clf = cls(radius=float(state["radius"]), normalization=str(state["normalization"]))
        clf._X = np.asarray(state["X"], dtype=np.float64)
        clf._y = np.asarray(state["y"], dtype=np.int64)
        clf._normalizer = Normalizer.from_state(state["normalizer"])
        return clf

    # ------------------------------------------------------------------

    def predict_one(self, x: np.ndarray) -> NNPrediction:
        """Classify a single loop, reporting neighbor evidence."""
        self._require_fitted()
        q = self._normalizer.transform(np.asarray(x, dtype=np.float64))
        distances = np.sqrt(((self._X - q) ** 2).sum(axis=1))
        in_radius = distances <= self.radius
        n_in = int(in_radius.sum())
        if n_in == 0:
            nearest = int(np.argmin(distances))
            return NNPrediction(int(self._y[nearest]), 0.0, 0, True)
        votes = np.bincount(self._y[in_radius])
        top = votes.max()
        winners = np.flatnonzero(votes == top)
        if len(winners) > 1:
            # No clear winner: fall back to the single nearest neighbor.
            nearest = int(np.argmin(distances))
            return NNPrediction(int(self._y[nearest]), top / n_in, n_in, True)
        return NNPrediction(int(winners[0]), top / n_in, n_in, False)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Classify a batch of loops (labels only)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.array([self.predict_one(x).label for x in X], dtype=np.int64)

    def confidences(self, X: np.ndarray) -> np.ndarray:
        """Per-query confidence — the outlier-detection signal."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        return np.array([self.predict_one(x).confidence for x in X])

    @property
    def classes_(self) -> np.ndarray:
        """Distinct training labels, ascending (the proba column order)."""
        self._require_fitted()
        return np.unique(self._y)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """Per-query class distribution over :attr:`classes_`: the
        in-radius neighbor vote shares (the paper's confidence signal as a
        full distribution).  A query with no in-radius neighbors gets a
        one-hot on its single nearest neighbor's label.

        Note the distribution's argmax can differ from :meth:`predict` on
        vote ties, where prediction falls back to the nearest neighbor;
        consumers that must agree with ``predict`` exactly (the calibrated
        ensemble's single-family mode) use ``predict`` for the label and
        this distribution only for confidence.
        """
        self._require_fitted()
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        classes = self.classes_
        out = np.zeros((len(X), len(classes)))
        for i, x in enumerate(X):
            q = self._normalizer.transform(x)
            distances = np.sqrt(((self._X - q) ** 2).sum(axis=1))
            in_radius = distances <= self.radius
            if in_radius.any():
                votes = np.bincount(
                    np.searchsorted(classes, self._y[in_radius]), minlength=len(classes)
                )
                out[i] = votes / votes.sum()
            else:
                nearest = int(np.argmin(distances))
                out[i, np.searchsorted(classes, self._y[nearest])] = 1.0
        return out

    # ------------------------------------------------------------------

    def loocv_predictions(self) -> np.ndarray:
        """Exact leave-one-out predictions over the training database.

        Computed from one pairwise distance matrix rather than N refits —
        the database *is* the model, so removing a row just means masking
        it out of the vote.
        """
        self._require_fitted()
        X, y = self._X, self._y
        n = len(X)
        sq = (X**2).sum(axis=1)
        d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
        np.maximum(d2, 0.0, out=d2)
        distances = np.sqrt(d2)
        np.fill_diagonal(distances, np.inf)
        out = np.empty(n, dtype=np.int64)
        for i in range(n):
            row = distances[i]
            in_radius = row <= self.radius
            if not in_radius.any():
                out[i] = y[int(np.argmin(row))]
                continue
            votes = np.bincount(y[in_radius])
            top = votes.max()
            winners = np.flatnonzero(votes == top)
            out[i] = y[int(np.argmin(row))] if len(winners) > 1 else winners[0]
        return out
