"""Evaluation metrics for unroll-factor predictors.

The paper's Table 2 reports, for each predictor, the fraction of predictions
that picked the loop's optimal factor, its second-best factor, ..., its
worst factor, together with a "Cost" column: the average runtime penalty of
landing on the N-th best factor.  :func:`rank_distribution` computes the
table; :func:`accuracy` and :func:`near_optimal_accuracy` give the headline
numbers (65% optimal, 79% optimal-or-second-best).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ir.types import MAX_UNROLL
from repro.ml.dataset import LoopDataset


@dataclass(frozen=True)
class RankDistribution:
    """Rank histogram and per-rank misprediction costs for one predictor."""

    fractions: np.ndarray  # (8,), fractions[k] = share of predictions that
    # landed on the (k+1)-th best factor
    costs: np.ndarray  # (8,), mean cycles ratio vs optimal at each rank

    @property
    def optimal(self) -> float:
        """Fraction of predictions that picked the optimal factor."""
        return float(self.fractions[0])

    @property
    def near_optimal(self) -> float:
        """Fraction that picked the optimal or second-best factor."""
        return float(self.fractions[0] + self.fractions[1])

    def row(self, rank: int) -> tuple[float, float]:
        """``(fraction, cost)`` for 1-indexed ``rank``."""
        return float(self.fractions[rank - 1]), float(self.costs[rank - 1])


def prediction_ranks(dataset: LoopDataset, predictions: np.ndarray) -> np.ndarray:
    """Rank (1 = optimal ... 8 = worst) of each prediction under the
    dataset's measured cycles."""
    predictions = np.asarray(predictions, dtype=np.int64)
    if len(predictions) != len(dataset):
        raise ValueError("one prediction per dataset row required")
    order = np.argsort(dataset.cycles, axis=1, kind="stable")
    ranks = np.empty(len(dataset), dtype=np.int64)
    for i in range(len(dataset)):
        ranks[i] = int(np.where(order[i] == predictions[i] - 1)[0][0]) + 1
    return ranks


def rank_distribution(dataset: LoopDataset, predictions: np.ndarray) -> RankDistribution:
    """The paper's Table 2 rows for one predictor.

    The Cost column is a property of the *dataset* (how expensive the N-th
    best factor is on average), computed over all loops exactly as the
    paper describes — "the average runtime penalty for mispredicting (as
    compared to the optimal factor)".
    """
    ranks = prediction_ranks(dataset, predictions)
    fractions = np.bincount(ranks, minlength=MAX_UNROLL + 1)[1:] / len(dataset)

    order = np.argsort(dataset.cycles, axis=1, kind="stable")
    best = dataset.cycles.min(axis=1)
    costs = np.empty(MAX_UNROLL)
    for rank in range(MAX_UNROLL):
        nth_best = dataset.cycles[np.arange(len(dataset)), order[:, rank]]
        costs[rank] = float(np.mean(nth_best / best))
    return RankDistribution(fractions=fractions, costs=costs)


def accuracy(dataset: LoopDataset, predictions: np.ndarray) -> float:
    """Fraction of predictions matching the measured-best factor."""
    predictions = np.asarray(predictions, dtype=np.int64)
    return float(np.mean(predictions == dataset.labels))


def near_optimal_accuracy(dataset: LoopDataset, predictions: np.ndarray) -> float:
    """Fraction of predictions landing on the best or second-best factor."""
    ranks = prediction_ranks(dataset, predictions)
    return float(np.mean(ranks <= 2))


def mean_cost_ratio(dataset: LoopDataset, predictions: np.ndarray) -> float:
    """Average measured-cycles ratio of the predictions vs per-loop optimum
    — 1.0 is a perfect predictor."""
    predictions = np.asarray(predictions, dtype=np.int64)
    chosen = dataset.cycles[np.arange(len(dataset)), predictions - 1]
    return float(np.mean(chosen / dataset.cycles.min(axis=1)))
