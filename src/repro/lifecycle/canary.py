"""Canary gate and post-promotion shadow check.

Both stages answer the same question — *is the candidate at least as good
as what we are serving?* — against a replay of logged traffic, but at
different points in the lifecycle and with different failure actions:

* The **canary** runs *before* promotion.  On the held-out labelled rows
  (ground truth from the measurement queue's cost-model sweeps) the
  candidate must match-or-beat the incumbent's accuracy; across the whole
  replay every predictor family must agree with its incumbent counterpart
  at least ``min_family_agreement`` of the time (a retrain that flips the
  committee wholesale is suspicious regardless of holdout accuracy).  A
  failed canary rejects the candidate — the registry never changes.
* The **shadow check** runs *after* promotion, replaying the most recent
  traffic against the promoted artifact with last-good as the reference.
  A regression (labelled accuracy below the reference's, or ensemble
  agreement with the reference collapsing) triggers automatic rollback.

Verdicts serialise to JSON for the lifecycle journal, so a killed run
resumes with the same decision it already made.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.registry import ARTIFACT_FAMILIES, ModelArtifact

#: Label value meaning "no ground truth for this row".
UNLABELLED = -1


@dataclasses.dataclass(frozen=True)
class CanaryConfig:
    """Gate thresholds (see ``docs/operations.md`` for the runbook)."""

    min_family_agreement: float = 0.75
    min_labelled: int = 1  # fewer labelled rows than this: accuracy gate idles


@dataclasses.dataclass(frozen=True)
class ShadowConfig:
    """Post-promotion regression detector thresholds."""

    recent: int = 256  # newest replayable rows to shadow
    min_agreement: float = 0.5  # promoted-vs-reference ensemble agreement
    max_accuracy_drop: float = 0.0  # tolerated labelled-accuracy loss


@dataclasses.dataclass(frozen=True)
class CanaryVerdict:
    """The gate's decision on a candidate: held-out accuracy vs the
    incumbent, per-family agreement, and the reasons for a rejection.
    JSON round-trips exactly so the journal can replay it on resume."""

    n_rows: int
    n_labelled: int
    candidate_accuracy: float | None
    incumbent_accuracy: float | None
    family_agreement: dict
    min_agreement: float
    accepted: bool
    reasons: tuple[str, ...]

    def to_json(self) -> dict:
        return {
            "n_rows": self.n_rows,
            "n_labelled": self.n_labelled,
            "candidate_accuracy": self.candidate_accuracy,
            "incumbent_accuracy": self.incumbent_accuracy,
            "family_agreement": dict(self.family_agreement),
            "min_agreement": self.min_agreement,
            "accepted": self.accepted,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CanaryVerdict":
        return cls(
            n_rows=int(payload["n_rows"]),
            n_labelled=int(payload["n_labelled"]),
            candidate_accuracy=payload["candidate_accuracy"],
            incumbent_accuracy=payload["incumbent_accuracy"],
            family_agreement=dict(payload["family_agreement"]),
            min_agreement=float(payload["min_agreement"]),
            accepted=bool(payload["accepted"]),
            reasons=tuple(payload["reasons"]),
        )


@dataclasses.dataclass(frozen=True)
class ShadowVerdict:
    """The post-promotion check's decision: did the promoted bytes
    regress on recent traffic (agreement or labelled accuracy)?
    JSON round-trips exactly so the journal can replay it on resume."""

    n_rows: int
    n_labelled: int
    promoted_accuracy: float | None
    reference_accuracy: float | None
    agreement: float | None
    regressed: bool
    reasons: tuple[str, ...]

    def to_json(self) -> dict:
        return {
            "n_rows": self.n_rows,
            "n_labelled": self.n_labelled,
            "promoted_accuracy": self.promoted_accuracy,
            "reference_accuracy": self.reference_accuracy,
            "agreement": self.agreement,
            "regressed": self.regressed,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ShadowVerdict":
        return cls(
            n_rows=int(payload["n_rows"]),
            n_labelled=int(payload["n_labelled"]),
            promoted_accuracy=payload["promoted_accuracy"],
            reference_accuracy=payload["reference_accuracy"],
            agreement=payload["agreement"],
            regressed=bool(payload["regressed"]),
            reasons=tuple(payload["reasons"]),
        )


def _as_replay(X, labels):
    X = np.atleast_2d(np.asarray(X, dtype=np.float64))
    if labels is None:
        labels = np.full(len(X), UNLABELLED, dtype=np.int64)
    else:
        labels = np.asarray(labels, dtype=np.int64)
    if len(labels) != len(X):
        raise ValueError(
            f"labels ({len(labels)}) must align with replay rows ({len(X)})"
        )
    return X, labels


def _accuracy(predicted: np.ndarray, labels: np.ndarray) -> float:
    return float((predicted == labels).mean())


def evaluate_canary(
    incumbent: ModelArtifact,
    candidate: ModelArtifact,
    X,
    labels=None,
    config: CanaryConfig = CanaryConfig(),
) -> CanaryVerdict:
    """Judge the candidate on a held-out replay (rows in full catalog
    order; ``labels`` uses :data:`UNLABELLED` where ground truth is
    unknown)."""
    X, labels = _as_replay(X, labels)
    if len(X) == 0:
        # Nothing to judge against: refuse rather than promote blind.
        return CanaryVerdict(
            n_rows=0,
            n_labelled=0,
            candidate_accuracy=None,
            incumbent_accuracy=None,
            family_agreement={},
            min_agreement=config.min_family_agreement,
            accepted=False,
            reasons=("empty-replay",),
        )
    agreement = {}
    for family in ARTIFACT_FAMILIES:
        ours = np.asarray(candidate.heuristic(family).predict_features(X))
        theirs = np.asarray(incumbent.heuristic(family).predict_features(X))
        agreement[family] = float((ours == theirs).mean())

    labelled = labels != UNLABELLED
    n_labelled = int(labelled.sum())
    candidate_accuracy = incumbent_accuracy = None
    reasons = []
    if n_labelled >= config.min_labelled:
        candidate_accuracy = _accuracy(
            np.asarray(candidate.predict_features(X[labelled], "ensemble")),
            labels[labelled],
        )
        incumbent_accuracy = _accuracy(
            np.asarray(incumbent.predict_features(X[labelled], "ensemble")),
            labels[labelled],
        )
        if candidate_accuracy < incumbent_accuracy:
            reasons.append("accuracy-regression")
    if min(agreement.values()) < config.min_family_agreement:
        reasons.append("family-agreement")
    return CanaryVerdict(
        n_rows=len(X),
        n_labelled=n_labelled,
        candidate_accuracy=candidate_accuracy,
        incumbent_accuracy=incumbent_accuracy,
        family_agreement=agreement,
        min_agreement=config.min_family_agreement,
        accepted=not reasons,
        reasons=tuple(reasons),
    )


def evaluate_shadow(
    promoted: ModelArtifact,
    reference: ModelArtifact,
    X,
    labels=None,
    config: ShadowConfig = ShadowConfig(),
) -> ShadowVerdict:
    """Score the promoted artifact on recent traffic against last-good.

    With no replayable rows the check abstains (``regressed=False``): a
    promotion is not rolled back for lack of traffic.
    """
    X, labels = _as_replay(X, labels)
    if len(X) == 0:
        return ShadowVerdict(
            n_rows=0,
            n_labelled=0,
            promoted_accuracy=None,
            reference_accuracy=None,
            agreement=None,
            regressed=False,
            reasons=(),
        )
    recent = slice(max(0, len(X) - config.recent), len(X))
    X, labels = X[recent], labels[recent]
    ours = np.asarray(promoted.predict_features(X, "ensemble"))
    theirs = np.asarray(reference.predict_features(X, "ensemble"))
    agreement = float((ours == theirs).mean())
    labelled = labels != UNLABELLED
    n_labelled = int(labelled.sum())
    promoted_accuracy = reference_accuracy = None
    reasons = []
    if n_labelled:
        promoted_accuracy = _accuracy(ours[labelled], labels[labelled])
        reference_accuracy = _accuracy(theirs[labelled], labels[labelled])
        if promoted_accuracy < reference_accuracy - config.max_accuracy_drop:
            reasons.append("accuracy-regression")
    if agreement < config.min_agreement:
        reasons.append("ensemble-agreement")
    return ShadowVerdict(
        n_rows=len(X),
        n_labelled=n_labelled,
        promoted_accuracy=promoted_accuracy,
        reference_accuracy=reference_accuracy,
        agreement=agreement,
        regressed=bool(reasons),
        reasons=tuple(reasons),
    )
