"""The lifecycle state machine: replay → drift → measure → retrain →
canary → promote → shadow.

:func:`run_lifecycle` drives one closed-loop cycle as a sequence of
journalled stages.  Every stage commits its outcome to one
:class:`~repro.resilience.journal.CheckpointJournal` *before* the next
stage starts, and the fault injector's ``run.abort`` site fires after
each commit — so ``kill -9`` at any checkpoint boundary leaves a journal
from which ``--resume`` replays the completed stages verbatim and
re-executes only the rest, bit-identically:

* ``replay`` pins the snapshot length: the request log may keep growing
  under a live daemon, but a resumed run replays exactly the records the
  killed run saw.
* ``drift`` pins the scan verdict (:class:`~repro.lifecycle.drift
  .DriftReport` round-trips through JSON).
* ``measure:<sha256>`` — one commit per flagged loop, executed by the
  resilient executor (retries, quarantine, pool fallback all apply).
  Ground truth is the cost model's sweep over the logged loop source.
* ``retrain`` pins the candidate's byte checksum; registry saves are
  deterministic, so a resumed retrain reproduces the identical file.
* ``canary`` pins the gate verdict; ``promote:*`` and ``rollback:*``
  are the two-phase registry writes (:mod:`repro.lifecycle.promote`);
  ``shadow`` pins the post-promotion check.

The journal is discarded once a cycle reaches a terminal outcome
(``no-drift``, ``rejected``, ``promoted``, ``rolled-back``) — a journal
on disk always means an interrupted run.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from pathlib import Path

import numpy as np

from repro.features import extract_features
from repro.lifecycle.canary import (
    UNLABELLED,
    CanaryConfig,
    CanaryVerdict,
    ShadowConfig,
    ShadowVerdict,
    evaluate_canary,
    evaluate_shadow,
)
from repro.lifecycle.drift import DriftConfig, DriftReport, replayable_records, scan_drift
from repro.lifecycle.promote import (
    checkpoint,
    file_checksum,
    lastgood_path,
    promote_artifact,
    rejected_path,
    rollback_artifact,
    staged_path,
)
from repro.machine.itanium2 import ITANIUM2
from repro.registry import (
    ArtifactError,
    ArtifactStore,
    load_artifact,
    save_artifact,
)
from repro.resilience import (
    DEFAULT_RESILIENCE,
    CheckpointJournal,
    ResilienceConfig,
    UnitTask,
    run_units,
)
from repro.serve.requestlog import iter_request_log


@dataclasses.dataclass(frozen=True)
class LifecycleConfig:
    """One cycle's inputs; everything that determines its outcome."""

    log_path: str | Path
    model: str = "base"
    journal_path: str | Path | None = None
    drift: DriftConfig = DriftConfig()
    canary: CanaryConfig = CanaryConfig()
    shadow: ShadowConfig = ShadowConfig()
    force: bool = False  # retrain even when no window drifted
    skip_canary: bool = False  # operator override; the shadow check still guards
    jobs: int = 1
    swp: bool = False
    seed: int = 0
    resilience: ResilienceConfig = DEFAULT_RESILIENCE


@dataclasses.dataclass
class LifecycleResult:
    """What one cycle did, stage by stage."""

    outcome: str  # no-drift | rejected | promoted | rolled-back
    drift: DriftReport
    measured: dict
    canary: CanaryVerdict | None
    promotion: object | None
    shadow: ShadowVerdict | None
    rollback: dict | None
    events: list

    def to_json(self) -> dict:
        return {
            "outcome": self.outcome,
            "drift": self.drift.to_json(),
            "measured": {
                checksum: payload["factor"]
                for checksum, payload in sorted(self.measured.items())
            },
            "canary": self.canary.to_json() if self.canary else None,
            "promotion": self.promotion.to_json() if self.promotion else None,
            "shadow": self.shadow.to_json() if self.shadow else None,
            "rollback": self.rollback,
            "events": [
                {"kind": event.kind, "key": event.key} for event in self.events
            ],
        }


def lifecycle_run_key(config: LifecycleConfig) -> str:
    """The journal binding: every input that determines the cycle's
    results (the replay snapshot itself is pinned by the ``replay``
    commit)."""
    return (
        f"lifecycle:{config.model}:swp={int(config.swp)}:seed={config.seed}"
        f":force={int(config.force)}:skip_canary={int(config.skip_canary)}"
    )


def default_journal_path(store: ArtifactStore, model: str) -> Path:
    """Where a model's lifecycle journal lives: next to the registry
    slots it guards, so `status` and `--resume` find it with no flags."""
    return store.root / f"lifecycle_{model}.journal.jsonl"


def _measure_unit(source: str, swp: bool) -> dict:
    """Ground truth for one logged loop: parse the recorded source, sweep
    the cost model, return the optimal factor plus the loop's extracted
    features (full catalog) for the labelled replay."""
    from repro.frontend import parse_program
    from repro.simulate.executor import CostModel

    entries = parse_program(source)
    if not entries:
        raise ValueError("no loops in logged source")
    loop = entries[0].loop
    sweep = CostModel(swp=swp).sweep(loop)
    best = min(sweep, key=lambda factor: sweep[factor].total_cycles)
    features = extract_features(loop, ITANIUM2)
    return {
        "loop": loop.name,
        "factor": int(best),
        "features": [float(value) for value in features],
        "cycles": [
            float(sweep[factor].total_cycles) for factor in sorted(sweep)
        ],
    }


def augment_dataset(dataset, measured_rows):
    """Extend a pipeline dataset with measured lifecycle loops — the
    retrain-on-traffic half of the closed loop.

    Each row comes from the measurement queue
    (``{"checksum", "loop", "factor", "features", "cycles"}``); the cost
    model is deterministic, so measured cycles double as the noise-free
    truth.  Returns the dataset unchanged when there is nothing to add.
    """
    rows = [row for row in measured_rows if row.get("cycles")]
    if not rows:
        return dataset
    X = np.asarray([row["features"] for row in rows], dtype=np.float64)
    labels = np.asarray([row["factor"] for row in rows], dtype=np.int64)
    cycles = np.asarray([row["cycles"] for row in rows], dtype=np.float64)
    names = np.asarray(
        [f"{row['loop']}@{row['checksum'][:12]}" for row in rows]
    )
    tag = np.asarray(["lifecycle"] * len(rows))
    return dataclasses.replace(
        dataset,
        X=np.vstack([dataset.X, X]),
        labels=np.concatenate([dataset.labels, labels]),
        cycles=np.vstack([dataset.cycles, cycles]),
        true_cycles=np.vstack([dataset.true_cycles, cycles]),
        loop_names=np.concatenate([dataset.loop_names, names]),
        benchmarks=np.concatenate([dataset.benchmarks, tag]),
        suites=np.concatenate([dataset.suites, tag]),
        languages=np.concatenate([dataset.languages, tag]),
    )


def _build_replay(records, measured, holdout):
    """The canary/shadow replay: every replayable feature row
    (unlabelled — agreement evidence) plus the held-out measured loops
    (labelled — accuracy evidence), newest evidence last."""
    X_parts: list[np.ndarray] = []
    labels: list[int] = []
    rows = replayable_records(records)
    if rows:
        X_parts.append(
            np.asarray([record["features"] for record in rows], dtype=np.float64)
        )
        labels.extend([UNLABELLED] * len(rows))
    for checksum in sorted(measured):
        if checksum not in holdout:
            continue
        payload = measured[checksum]
        X_parts.append(np.asarray([payload["features"]], dtype=np.float64))
        labels.append(int(payload["factor"]))
    if not X_parts:
        return np.empty((0, 0)), np.empty((0,), dtype=np.int64)
    return np.vstack(X_parts), np.asarray(labels, dtype=np.int64)


def run_lifecycle(
    config: LifecycleConfig,
    store: ArtifactStore | None = None,
    train_fn=None,
    resume: bool = False,
    machine=ITANIUM2,
) -> LifecycleResult:
    """Run one supervised serve→train→promote cycle (see module docs).

    ``train_fn(measured_rows)`` fits the candidate artifact from the
    training half of the measured loops (each row:
    ``{"checksum", "loop", "factor", "features"}``); it must be
    deterministic — resume relies on retraining reproducing the same
    bytes.  Raises :class:`~repro.resilience.faults.AbortRun` at an
    injected kill point (the CLI maps it to the resumable exit code).
    """
    if train_fn is None:
        raise ValueError("run_lifecycle needs a train_fn")
    store = store or ArtifactStore()
    live = store.path_for(config.model)
    if not live.exists():
        raise ArtifactError(
            f"{live}: no incumbent artifact to run a lifecycle against"
        )
    incumbent = load_artifact(live, machine)
    journal_path = (
        Path(config.journal_path)
        if config.journal_path is not None
        else default_journal_path(store, config.model)
    )
    journal = CheckpointJournal(journal_path, lifecycle_run_key(config))
    if resume:
        journal.load()
    else:
        journal.discard()
    events: list = []

    with journal:
        # -- replay: pin the snapshot length -------------------------------
        records = list(iter_request_log(config.log_path))
        done = journal.completed.get("replay")
        if done is None:
            done = {"n_records": len(records)}
            checkpoint(journal, "replay", done)
        records = records[: done["n_records"]]

        # -- drift scan ----------------------------------------------------
        done = journal.completed.get("drift")
        if done is None:
            drift = scan_drift(records, incumbent, config.drift)
            checkpoint(journal, "drift", drift.to_json())
        else:
            drift = DriftReport.from_json(done)

        if not (drift.drifted or config.force):
            journal.discard()
            return LifecycleResult(
                outcome="no-drift",
                drift=drift,
                measured={},
                canary=None,
                promotion=None,
                shadow=None,
                rollback=None,
                events=events,
            )

        # -- resilient measurement queue ----------------------------------
        by_checksum: dict[str, dict] = {}
        for record in records:
            if not isinstance(record, dict):
                continue
            checksum = record.get("features_sha256")
            if checksum and checksum not in by_checksum:
                by_checksum[checksum] = record
        tasks = []
        for checksum in drift.flagged:
            record = by_checksum.get(checksum)
            if record is None or not isinstance(record.get("source"), str):
                continue  # feature-only rows carry no measurable loop
            tasks.append(
                UnitTask(
                    key=checksum,
                    label=f"measure:{checksum}",
                    fn=_measure_unit,
                    args=(record["source"], config.swp),
                    seed=np.random.SeedSequence(config.seed),
                )
            )
        report = run_units(
            tasks,
            jobs=config.jobs,
            config=config.resilience,
            journal=journal,
            encode=lambda result: result,
            decode=lambda payload: payload,
        )
        events.extend(report.events)
        measured = dict(report.results)

        # Deterministic holdout split: even ranks (by checksum order) are
        # held out for the canary's accuracy gate, odd ranks may feed the
        # retrain.
        ordered = sorted(measured)
        holdout = {cs for rank, cs in enumerate(ordered) if rank % 2 == 0}

        # -- retrain -------------------------------------------------------
        staged = staged_path(store, config.model)
        done = journal.completed.get("retrain")
        candidate = None
        if done is not None:
            if staged.exists() and file_checksum(staged) == done["checksum"]:
                candidate = load_artifact(staged, machine)
            elif live.exists() and file_checksum(live) == done["checksum"]:
                candidate = load_artifact(live, machine)
        if candidate is None:
            train_rows = [
                {"checksum": checksum, **measured[checksum]}
                for checksum in ordered
                if checksum not in holdout
            ]
            candidate = train_fn(train_rows)
            save_artifact(candidate, staged)
            checksum = file_checksum(staged)
            if done is not None and done["checksum"] != checksum:
                raise ArtifactError(
                    "retrain is not deterministic: the resumed candidate "
                    f"({checksum[:12]}…) differs from the journalled one "
                    f"({done['checksum'][:12]}…)"
                )
            if done is None:
                checkpoint(journal, "retrain", {"checksum": checksum})

        # -- canary gate ---------------------------------------------------
        X, labels = _build_replay(records, measured, holdout)
        canary = None
        if not config.skip_canary:
            done = journal.completed.get("canary")
            if done is None:
                canary = evaluate_canary(
                    incumbent, candidate, X, labels, config.canary
                )
                checkpoint(journal, "canary", canary.to_json())
            else:
                canary = CanaryVerdict.from_json(done)
            if not canary.accepted:
                staged.unlink(missing_ok=True)
                journal.discard()
                return LifecycleResult(
                    outcome="rejected",
                    drift=drift,
                    measured=measured,
                    canary=canary,
                    promotion=None,
                    shadow=None,
                    rollback=None,
                    events=events,
                )

        # -- atomic promotion ---------------------------------------------
        promotion = promote_artifact(store, config.model, candidate, journal)

        # -- post-promotion shadow check ----------------------------------
        shadow = None
        rollback = None
        reference = lastgood_path(store, config.model)
        if promotion.previous_checksum is not None and reference.exists():
            done = journal.completed.get("shadow")
            if done is None:
                shadow = evaluate_shadow(
                    load_artifact(live, machine),
                    load_artifact(reference, machine),
                    X,
                    labels,
                    config.shadow,
                )
                checkpoint(journal, "shadow", shadow.to_json())
            else:
                shadow = ShadowVerdict.from_json(done)
            if shadow.regressed:
                rollback = rollback_artifact(store, config.model, journal)
        journal.discard()
        return LifecycleResult(
            outcome="rolled-back" if rollback else "promoted",
            drift=drift,
            measured=measured,
            canary=canary,
            promotion=promotion,
            shadow=shadow,
            rollback=rollback,
            events=events,
        )


def lifecycle_status(
    store: ArtifactStore,
    model: str = "base",
    journal_path: str | Path | None = None,
) -> dict:
    """Observability for ``repro lifecycle status``: registry slots plus
    any interrupted run's journal (read leniently — a foreign or torn
    journal is reported, not raised)."""

    def slot(path: Path) -> dict:
        exists = path.exists()
        return {
            "path": str(path),
            "exists": exists,
            "checksum": file_checksum(path) if exists else None,
        }

    journal_path = (
        Path(journal_path)
        if journal_path is not None
        else default_journal_path(store, model)
    )
    journal: dict | None = None
    if journal_path.exists():
        committed: list[str] = []
        run_key = None
        try:
            lines = journal_path.read_text(encoding="utf-8").splitlines()
            header = json.loads(lines[0]) if lines else {}
            run_key = header.get("run_key") if isinstance(header, dict) else None
            for line in lines[1:]:
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    break  # torn tail
                if isinstance(entry, dict) and "key" in entry:
                    committed.append(entry["key"])
        except OSError:
            pass
        journal = {
            "path": str(journal_path),
            "run_key": run_key,
            "committed": len(committed),
            "stages": [key for key in committed if not key.startswith("measure:")],
            "measured": sum(1 for key in committed if key.startswith("measure:")),
        }
    return {
        "model": model,
        "live": slot(store.path_for(model)),
        "lastgood": slot(lastgood_path(store, model)),
        "staged": slot(staged_path(store, model)),
        "rejected": slot(rejected_path(store, model)),
        "in_progress": journal is not None,
        "journal": journal,
    }


class LifecyclePoller:
    """The daemon-adjacent mode: run one lifecycle cycle every
    ``interval_s`` seconds on a background thread.  Promotions land in
    the registry, where the serve daemon's hot-reload watcher picks them
    up; a crashed cycle's journal is resumed on the next tick.  Errors
    never propagate — they are recorded for ``healthz``-style probing and
    the loop keeps ticking."""

    def __init__(
        self,
        config: LifecycleConfig,
        store: ArtifactStore,
        train_fn,
        interval_s: float,
        machine=ITANIUM2,
    ):
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.config = config
        self.store = store
        self.train_fn = train_fn
        self.interval_s = interval_s
        self.machine = machine
        self.runs = 0
        self.outcomes: list[str] = []
        self.errors: list[str] = []
        self.last_result: LifecycleResult | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "LifecyclePoller":
        self._thread = threading.Thread(
            target=self._loop, name="lifecycle-poller", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                result = run_lifecycle(
                    self.config,
                    self.store,
                    self.train_fn,
                    resume=True,  # pick up a crashed cycle's journal
                    machine=self.machine,
                )
            except Exception as error:  # the poller must outlive one bad cycle
                self.errors.append(f"{type(error).__name__}: {error}")
            else:
                self.runs += 1
                self.outcomes.append(result.outcome)
                self.last_result = result

    def __enter__(self) -> "LifecyclePoller":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.stop()
