"""Drift detection over the served-request log.

The monitor replays logged traffic (``repro.serve.requestlog``) through
the incumbent artifact and computes three per-window signals, exactly the
evidence an operator would want before paying for a retrain:

* **Confidence histogram** — the calibrated ensemble's confidence on each
  replayed vector, bucketed over [0, 1].  A fat low tail means the model
  no longer recognises its traffic.
* **Ensemble vote entropy** — how much the families disagree.  Each
  replayed row gets the per-family votes from
  :meth:`~repro.heuristics.learned.EnsembleHeuristic.predict_detail`;
  the normalised entropy of that vote distribution rises when the
  committee splinters (the PR 8 roadmap note's drift signal).
* **Feature-distribution shift** — the z-score of the window's
  per-feature means against the *training fingerprint* the registry
  stores in artifact provenance (``feature_stats``: full-catalog
  mean/std).  Covariate shift shows up here before accuracy decays.

A window that crosses any threshold is *drifted*; its rows — plus every
low-confidence row anywhere — are flagged by checksum for the resilient
measurement queue.  Reports serialise losslessly to JSON so the lifecycle
journal can pin a scan's outcome across kill/resume.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.registry import ModelArtifact


@dataclasses.dataclass(frozen=True)
class DriftConfig:
    """Thresholds for the drift monitor (see ``docs/operations.md``)."""

    window: int = 64
    confidence_bins: int = 10
    low_confidence: float = 0.5
    max_low_confidence_share: float = 0.25
    max_vote_entropy: float = 0.6
    max_feature_shift: float = 3.0

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.confidence_bins < 1:
            raise ValueError(
                f"confidence_bins must be >= 1, got {self.confidence_bins}"
            )


@dataclasses.dataclass(frozen=True)
class WindowSignals:
    """One replay window's drift evidence."""

    index: int
    n: int
    confidence_histogram: tuple[int, ...]
    mean_confidence: float
    low_confidence_share: float
    vote_entropy: float
    feature_shift: float
    reasons: tuple[str, ...]

    @property
    def drifted(self) -> bool:
        return bool(self.reasons)

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "n": self.n,
            "confidence_histogram": list(self.confidence_histogram),
            "mean_confidence": self.mean_confidence,
            "low_confidence_share": self.low_confidence_share,
            "vote_entropy": self.vote_entropy,
            "feature_shift": self.feature_shift,
            "reasons": list(self.reasons),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "WindowSignals":
        return cls(
            index=int(payload["index"]),
            n=int(payload["n"]),
            confidence_histogram=tuple(payload["confidence_histogram"]),
            mean_confidence=float(payload["mean_confidence"]),
            low_confidence_share=float(payload["low_confidence_share"]),
            vote_entropy=float(payload["vote_entropy"]),
            feature_shift=float(payload["feature_shift"]),
            reasons=tuple(payload["reasons"]),
        )


@dataclasses.dataclass(frozen=True)
class DriftReport:
    """The scan's verdict: per-window signals plus the flagged queue."""

    n_records: int
    n_replayable: int
    has_fingerprint: bool
    windows: tuple[WindowSignals, ...]
    flagged: tuple[str, ...]  # checksums routed to the measurement queue

    @property
    def drifted(self) -> bool:
        return any(window.drifted for window in self.windows)

    def to_json(self) -> dict:
        return {
            "n_records": self.n_records,
            "n_replayable": self.n_replayable,
            "has_fingerprint": self.has_fingerprint,
            "windows": [window.to_json() for window in self.windows],
            "flagged": list(self.flagged),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "DriftReport":
        return cls(
            n_records=int(payload["n_records"]),
            n_replayable=int(payload["n_replayable"]),
            has_fingerprint=bool(payload["has_fingerprint"]),
            windows=tuple(
                WindowSignals.from_json(entry) for entry in payload["windows"]
            ),
            flagged=tuple(payload["flagged"]),
        )


def replayable_records(records) -> list[dict]:
    """The records a scan can re-predict: served OK with a raw feature
    vector (source-only records enter the loop through the measurement
    queue instead — features are re-extracted from the parsed loop)."""
    return [
        record
        for record in records
        if isinstance(record, dict)
        and record.get("ok")
        and isinstance(record.get("features"), list)
        and record.get("features")
    ]


def vote_entropies(votes: dict) -> np.ndarray:
    """Per-row normalised entropy of the family vote distribution.

    ``votes`` maps family name -> (n,) label array (the ensemble detail
    channel).  Entropy is over each row's vote *counts*, normalised by
    ``log(n_families)`` so 0 is unanimity and 1 is a full split.
    """
    families = sorted(votes)
    if len(families) < 2:
        return np.zeros(len(next(iter(votes.values()), ())), dtype=np.float64)
    stacked = np.stack([np.asarray(votes[f], dtype=np.int64) for f in families])
    n_families, n = stacked.shape
    out = np.empty(n, dtype=np.float64)
    norm = np.log(n_families)
    for row in range(n):
        _, counts = np.unique(stacked[:, row], return_counts=True)
        p = counts / n_families
        out[row] = float(-(p * np.log(p)).sum() / norm)
    return out


def scan_drift(
    records,
    artifact: ModelArtifact,
    config: DriftConfig = DriftConfig(),
) -> DriftReport:
    """Replay logged records through the incumbent and score each window.

    The whole replay is re-predicted in one vectorized
    ``predict_detail`` call; windows then slice the shared arrays.  An
    artifact without a ``feature_stats`` training fingerprint (trained
    before the lifecycle existed) degrades gracefully: the shift signal
    reads 0 and the report says so via ``has_fingerprint``.
    """
    records = list(records)
    rows = replayable_records(records)
    stats = (artifact.provenance or {}).get("feature_stats") or {}
    mean = np.asarray(stats.get("mean", ()), dtype=np.float64)
    std = np.asarray(stats.get("std", ()), dtype=np.float64)
    has_fingerprint = mean.size > 0 and std.size == mean.size

    windows: list[WindowSignals] = []
    flagged: list[str] = []
    seen: set[str] = set()

    def flag(record: dict) -> None:
        checksum = record.get("features_sha256")
        if checksum and checksum not in seen:
            seen.add(checksum)
            flagged.append(checksum)

    if rows:
        X = np.asarray([record["features"] for record in rows], dtype=np.float64)
        detail = artifact.ensemble.predict_detail(X)
        confidence = np.asarray(detail.confidence, dtype=np.float64)
        entropy = vote_entropies(detail.votes)
        fingerprint_ok = has_fingerprint and mean.size == X.shape[1]
        for start in range(0, len(rows), config.window):
            stop = min(start + config.window, len(rows))
            conf_w = confidence[start:stop]
            histogram, _ = np.histogram(
                conf_w, bins=config.confidence_bins, range=(0.0, 1.0)
            )
            low_share = float((conf_w < config.low_confidence).mean())
            entropy_w = float(entropy[start:stop].mean())
            if fingerprint_ok:
                diff = np.abs(X[start:stop].mean(axis=0) - mean)
                # A feature constant in training (std 0) only shifts if
                # served traffic actually moves it; the floor keeps the
                # z-score finite while still flagging any real motion.
                z = diff / np.maximum(std, 1e-9)
                z[diff == 0.0] = 0.0
                shift = float(z.max()) if z.size else 0.0
            else:
                shift = 0.0
            reasons = []
            if low_share > config.max_low_confidence_share:
                reasons.append("low-confidence")
            if entropy_w > config.max_vote_entropy:
                reasons.append("vote-entropy")
            if shift > config.max_feature_shift:
                reasons.append("feature-shift")
            window = WindowSignals(
                index=len(windows),
                n=stop - start,
                confidence_histogram=tuple(int(c) for c in histogram),
                mean_confidence=float(conf_w.mean()),
                low_confidence_share=low_share,
                vote_entropy=entropy_w,
                feature_shift=shift,
                reasons=tuple(reasons),
            )
            windows.append(window)
            if window.drifted:
                for record in rows[start:stop]:
                    flag(record)
            else:
                for offset, record in enumerate(rows[start:stop]):
                    if confidence[start + offset] < config.low_confidence:
                        flag(record)

    # Source-only records never reach the vectorized replay but are
    # directly measurable: route the ones served with low confidence (or
    # all of them once any window drifted) into the queue too.
    any_drift = any(window.drifted for window in windows)
    for record in records:
        if not isinstance(record, dict) or not record.get("ok"):
            continue
        if not isinstance(record.get("source"), str):
            continue
        confidence = record.get("confidence")
        low = confidence is not None and confidence < config.low_confidence
        if any_drift or low:
            flag(record)

    return DriftReport(
        n_records=len(records),
        n_replayable=len(rows),
        has_fingerprint=bool(has_fingerprint),
        windows=tuple(windows),
        flagged=tuple(flagged),
    )
