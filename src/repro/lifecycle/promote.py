"""Journal-backed atomic promotion into the model registry.

Promotion is a two-phase write built entirely from primitives that
cannot tear:

1. **Stage** — the candidate is saved to ``model_<name>.rma.staged``.
   The suffix keeps it invisible to :meth:`ArtifactStore.entries` (and
   therefore to every serve daemon's hot-reload watcher) until the flip.
   Registry saves are byte-deterministic, so re-staging on resume
   reproduces the identical file.
2. **Snapshot** — the incumbent's bytes are copied to
   ``model_<name>.rma.lastgood`` (fsync + ``os.replace``), the rollback
   target the runbook's *manual rollback* also uses.
3. **Flip** — a single ``os.replace(staged, live)``.  POSIX rename
   atomicity means any reader — a daemon loading mid-promotion, a crash
   at any instruction — sees either the old bytes or the new bytes,
   never a torn file.

Each phase commits to the lifecycle's
:class:`~repro.resilience.journal.CheckpointJournal` *after* its file
operation and is idempotent on replay, so ``kill -9`` anywhere leaves a
resumable state whose completion is bit-identical to an uninterrupted
run.  After every commit the fault injector's ``run.abort`` site fires —
the same kill-point contract as the measurement executor, so one fault
plan can kill a lifecycle run at any checkpoint boundary.

:func:`rollback_artifact` is the inverse flip: the rejected bytes are
preserved at ``model_<name>.rma.rejected`` and last-good is copied back
over the live path, again through fsync + ``os.replace``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from pathlib import Path

from repro.registry import (
    ArtifactError,
    ArtifactStore,
    ModelArtifact,
    save_artifact,
)
from repro.resilience import CheckpointJournal, get_injector

#: Kill-site op fired after every lifecycle journal commit (shared with
#: the measurement executor so one ``skip=N`` rule addresses the N-th
#: checkpoint of the whole run, whatever stage it lands in).
ABORT_OP = "run.abort"

STAGED_SUFFIX = ".staged"
LASTGOOD_SUFFIX = ".lastgood"
REJECTED_SUFFIX = ".rejected"


def staged_path(store: ArtifactStore, name: str) -> Path:
    """Where a candidate's bytes wait before the flip (never served)."""
    return Path(str(store.path_for(name)) + STAGED_SUFFIX)


def lastgood_path(store: ArtifactStore, name: str) -> Path:
    """Where the incumbent's bytes survive a promotion (the rollback
    source)."""
    return Path(str(store.path_for(name)) + LASTGOOD_SUFFIX)


def rejected_path(store: ArtifactStore, name: str) -> Path:
    """Where a rejected or rolled-back candidate's bytes are kept for
    post-mortems."""
    return Path(str(store.path_for(name)) + REJECTED_SUFFIX)


def file_checksum(path: str | Path) -> str:
    """SHA-256 of a file's bytes — the registry-slot identity used by
    promotion, status, and the tests' never-torn assertions."""
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def checkpoint(journal: CheckpointJournal, key: str, payload: dict) -> None:
    """Durably commit one lifecycle step, then fire the kill site —
    exactly the executor's commit-then-abort contract."""
    journal.commit(key, payload)
    get_injector().abort(ABORT_OP, key)


def _atomic_copy(src: Path, dst: Path) -> str:
    """Copy ``src``'s bytes to ``dst`` through a same-directory temp file
    and ``os.replace`` — readers of ``dst`` never see a partial file.
    Returns the checksum of the copied bytes."""
    data = src.read_bytes()
    tmp = dst.parent / f".{dst.name}.tmp"
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp, dst)
    return hashlib.sha256(data).hexdigest()


@dataclasses.dataclass(frozen=True)
class PromotionResult:
    """What a completed promotion did: the candidate now live, the
    incumbent it replaced, and where the last-good snapshot landed."""

    promoted: bool
    candidate_checksum: str
    previous_checksum: str | None
    live_path: str
    lastgood: str | None

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


def promote_artifact(
    store: ArtifactStore,
    name: str,
    candidate: ModelArtifact,
    journal: CheckpointJournal,
) -> PromotionResult:
    """Two-phase atomic promotion of ``candidate`` to ``name``'s live slot.

    Safe to call again on a resumed run: completed phases are replayed
    from the journal, interrupted ones redo their (idempotent) file
    operation.
    """
    live = store.path_for(name)
    staged = staged_path(store, name)
    lastgood = lastgood_path(store, name)

    done = journal.completed.get("promote:staged")
    if done is None:
        save_artifact(candidate, staged)
        done = {"checksum": file_checksum(staged)}
        checkpoint(journal, "promote:staged", done)
    candidate_checksum = done["checksum"]

    done = journal.completed.get("promote:lastgood")
    if done is None:
        if live.exists():
            done = {"checksum": _atomic_copy(live, lastgood)}
        else:
            done = {"checksum": None}  # first promotion: nothing to keep
        checkpoint(journal, "promote:lastgood", done)
    previous_checksum = done["checksum"]

    done = journal.completed.get("promote:live")
    if done is None:
        if not staged.exists():
            # Crash landed between the flip and its commit: the live file
            # already carries the candidate bytes.  Anything else means
            # the staged file was tampered with — refuse to guess.
            if not live.exists() or file_checksum(live) != candidate_checksum:
                raise ArtifactError(
                    f"{staged}: staged candidate vanished mid-promotion "
                    f"and {live} does not carry its bytes"
                )
        else:
            os.replace(staged, live)
        checkpoint(journal, "promote:live", {"checksum": candidate_checksum})

    return PromotionResult(
        promoted=True,
        candidate_checksum=candidate_checksum,
        previous_checksum=previous_checksum,
        live_path=str(live),
        lastgood=str(lastgood) if previous_checksum is not None else None,
    )


def rollback_artifact(
    store: ArtifactStore,
    name: str,
    journal: CheckpointJournal,
    reason: str = "shadow-regression",
) -> dict:
    """Restore last-good over the live slot, preserving the bad bytes.

    The live file is never absent mid-rollback: the rejected copy and the
    restore are both whole-file ``os.replace`` writes.
    """
    live = store.path_for(name)
    lastgood = lastgood_path(store, name)
    rejected = rejected_path(store, name)
    if not lastgood.exists():
        raise ArtifactError(
            f"{lastgood}: no last-good artifact to roll back to"
        )

    done = journal.completed.get("rollback:rejected")
    if done is None:
        checksum = _atomic_copy(live, rejected) if live.exists() else None
        done = {"checksum": checksum, "reason": reason}
        checkpoint(journal, "rollback:rejected", done)

    restored = journal.completed.get("rollback:restored")
    if restored is None:
        restored = {"checksum": _atomic_copy(lastgood, live)}
        checkpoint(journal, "rollback:restored", restored)

    return {
        "rolled_back": True,
        "reason": done.get("reason", reason),
        "restored_checksum": restored["checksum"],
        "rejected": str(rejected),
        "rejected_checksum": done["checksum"],
    }
