"""The closed loop: serve → drift → measure → retrain → canary → promote.

The paper trains once and predicts forever; the ROADMAP's production
serve tier cannot — traffic drifts away from the training distribution
and the model decays.  This package turns the served-request log
(:mod:`repro.serve.requestlog`) back into training signal as a
supervised, failure-tolerant state machine:

* :mod:`repro.lifecycle.drift` — replay the log, score each window's
  confidence histogram, ensemble vote entropy, and feature-distribution
  shift against the artifact's training fingerprint; flag drifted and
  low-confidence loops.
* :mod:`repro.lifecycle.runner` — the state machine itself: flagged
  loops go through the resilient measurement queue (cost-model ground
  truth, checkpoint journal, retries/quarantine), a candidate is
  retrained, and every stage commits to the journal so ``kill -9``
  anywhere resumes bit-identically.
* :mod:`repro.lifecycle.canary` — the candidate must match-or-beat the
  incumbent on a held-out replay (accuracy on measured loops, per-family
  agreement everywhere) before touching the registry; after promotion a
  shadow check replays recent traffic and triggers rollback on
  regression.
* :mod:`repro.lifecycle.promote` — the two-phase atomic registry write
  (stage → snapshot last-good → ``os.replace`` flip) the serve daemon's
  hot-reload watcher picks up with zero dropped requests, plus the
  rollback inverse.

Surfaced as ``repro lifecycle run|status`` and the serve daemon's
``--lifecycle-poll-s`` mode.
"""

from repro.lifecycle.canary import (
    UNLABELLED,
    CanaryConfig,
    CanaryVerdict,
    ShadowConfig,
    ShadowVerdict,
    evaluate_canary,
    evaluate_shadow,
)
from repro.lifecycle.drift import (
    DriftConfig,
    DriftReport,
    WindowSignals,
    replayable_records,
    scan_drift,
    vote_entropies,
)
from repro.lifecycle.promote import (
    LASTGOOD_SUFFIX,
    REJECTED_SUFFIX,
    STAGED_SUFFIX,
    PromotionResult,
    file_checksum,
    lastgood_path,
    promote_artifact,
    rejected_path,
    rollback_artifact,
    staged_path,
)
from repro.lifecycle.runner import (
    LifecycleConfig,
    LifecyclePoller,
    LifecycleResult,
    augment_dataset,
    default_journal_path,
    lifecycle_run_key,
    lifecycle_status,
    run_lifecycle,
)

__all__ = [
    "LASTGOOD_SUFFIX",
    "REJECTED_SUFFIX",
    "STAGED_SUFFIX",
    "UNLABELLED",
    "CanaryConfig",
    "CanaryVerdict",
    "DriftConfig",
    "DriftReport",
    "LifecycleConfig",
    "LifecyclePoller",
    "LifecycleResult",
    "PromotionResult",
    "ShadowConfig",
    "ShadowVerdict",
    "WindowSignals",
    "augment_dataset",
    "default_journal_path",
    "evaluate_canary",
    "evaluate_shadow",
    "file_checksum",
    "lastgood_path",
    "lifecycle_run_key",
    "lifecycle_status",
    "promote_artifact",
    "rejected_path",
    "replayable_records",
    "rollback_artifact",
    "run_lifecycle",
    "scan_drift",
    "staged_path",
    "vote_entropies",
]
