"""Raw loop-data export/import.

The paper released its instrumentation library *and the raw loop data* "so
other researchers can easily apply their own learning techniques".  This
module is that release format: a line-oriented JSON container with one record
per loop carrying the feature vector, the per-factor median cycle counts,
and provenance (benchmark, suite, language).  Datasets round-trip exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.features.catalog import FEATURE_NAMES

#: Format version written into every export.
FORMAT_VERSION = 1


@dataclass(frozen=True)
class ResilienceEvent:
    """One fault-tolerance action taken during a run.

    ``kind`` is one of ``"retry"``, ``"timeout"``, ``"quarantine"``,
    ``"broken-pool"``, or ``"resume"``; ``key`` names the work unit (or
    subsystem) involved.  The rollup aggregates these so a run's output
    accounts for every recovery, not just its timings.
    """

    kind: str
    key: str
    detail: str = ""


@dataclass(frozen=True)
class DedupStats:
    """What content-addressed dedup did to one measurement run.

    ``n_cost_classes`` counts the strict (cost-key) equivalence classes —
    the classes actually measured, each fanned back out to its members.
    ``n_structural_classes`` counts the looser trip-count-agnostic classes;
    ``class_merges`` (= ``n_loops - n_structural_classes``) is the merge
    statistic the bench reports.  The incremental counters aggregate the
    cross-factor analysis reuse the class sweeps achieved.
    """

    n_loops: int
    n_cost_classes: int
    n_structural_classes: int
    class_merges: int  # n_loops - n_structural_classes
    cost_merges: int  # n_loops - n_cost_classes (rows served by a twin)
    lsh_candidate_pairs: int = 0
    lsh_confirmed_pairs: int = 0
    incremental_hits: int = 0
    incremental_misses: int = 0

    def incremental_hit_rate(self) -> float:
        total = self.incremental_hits + self.incremental_misses
        return self.incremental_hits / total if total else 0.0

    def summary(self) -> str:
        text = (
            f"dedup: {self.n_loops} loops -> {self.n_cost_classes} measured "
            f"class(es) ({self.cost_merges} merged), "
            f"{self.n_structural_classes} structural class(es) "
            f"({self.class_merges} trip-only twins)"
        )
        reuse = self.incremental_hits + self.incremental_misses
        if reuse:
            text += (
                f"; incremental reuse {self.incremental_hits}/{reuse} "
                f"({100.0 * self.incremental_hit_rate():.0f}%)"
            )
        if self.lsh_candidate_pairs:
            text += (
                f"; LSH flagged {self.lsh_candidate_pairs} candidate pair(s), "
                f"{self.lsh_confirmed_pairs} confirmed"
            )
        return text


@dataclass(frozen=True)
class UnitTiming:
    """Wall-clock accounting for one measurement work unit.

    A unit is one (benchmark, unroll factor) configuration — the paper's
    "compile one binary, time all its loops" granularity — executed by one
    worker process.
    """

    benchmark: str
    factor: int
    worker: int  # process id of the worker that ran the unit
    n_loops: int
    seconds: float
    analysis_hits: int = 0  # loop analyses served from the shared cache
    analysis_misses: int = 0  # loop analyses computed from scratch


@dataclass
class MeasurementRollup:
    """Aggregates :class:`UnitTiming` records across a measurement run.

    The parallel pipeline hands every finished unit to the rollup; the CLI
    prints the per-worker summary so load imbalance (one worker stuck on a
    giant benchmark) is visible rather than inferred.
    """

    timings: list[UnitTiming] = field(default_factory=list)
    events: list[ResilienceEvent] = field(default_factory=list)
    dedup: DedupStats | None = None  # set by dedup-enabled measurement runs

    def record(self, timing: UnitTiming) -> None:
        self.timings.append(timing)

    def record_event(self, event: ResilienceEvent) -> None:
        self.events.append(event)

    def count(self, kind: str) -> int:
        """Number of resilience events of one kind (``"retry"``, ...)."""
        return sum(1 for event in self.events if event.kind == kind)

    def quarantined_units(self) -> list[str]:
        """Labels of work units that failed every attempt."""
        return [event.key for event in self.events if event.kind == "quarantine"]

    def resilience_summary(self) -> str | None:
        """One line accounting for every recovery action, or ``None`` when
        the run needed none."""
        if not self.events:
            return None
        parts = [
            f"{self.count(kind)} {label}"
            for kind, label in (
                ("resume", "resumed from journal"),
                ("retry", "retried"),
                ("timeout", "timed out"),
                ("quarantine", "quarantined"),
                ("broken-pool", "broken-pool fallback(s)"),
            )
            if self.count(kind)
        ]
        return "resilience: " + ", ".join(parts)

    @property
    def n_units(self) -> int:
        return len(self.timings)

    def total_seconds(self) -> float:
        """Cumulative busy time across all workers (not wall clock)."""
        return sum(t.seconds for t in self.timings)

    def per_worker(self) -> dict[int, float]:
        """Busy seconds keyed by worker process id."""
        busy: dict[int, float] = {}
        for t in self.timings:
            busy[t.worker] = busy.get(t.worker, 0.0) + t.seconds
        return busy

    def analysis_hits(self) -> int:
        """Loop analyses served from the shared analysis cache."""
        return sum(t.analysis_hits for t in self.timings)

    def analysis_misses(self) -> int:
        """Loop analyses computed from scratch."""
        return sum(t.analysis_misses for t in self.timings)

    def analysis_hit_rate(self) -> float:
        """Fraction of loop analyses served from cache (0.0 when nothing
        was looked up)."""
        total = self.analysis_hits() + self.analysis_misses()
        return self.analysis_hits() / total if total else 0.0

    # ------------------------------------------------------------------
    # Latency/throughput view (used by the serving engine, where each
    # "unit" is one prediction request and ``seconds`` is its latency).
    # ------------------------------------------------------------------

    def latency_percentiles(self, percentiles=(50.0, 95.0, 99.0)) -> dict[float, float]:
        """Per-unit latency percentiles in seconds (empty dict when no
        units were recorded)."""
        if not self.timings:
            return {}
        seconds = np.array([t.seconds for t in self.timings])
        return {p: float(np.percentile(seconds, p)) for p in percentiles}

    def throughput(self, wall_seconds: float) -> float:
        """Units completed per wall-clock second (0.0 for a zero/negative
        wall time, so callers can print it unconditionally)."""
        if wall_seconds <= 0.0:
            return 0.0
        return self.n_units / wall_seconds

    def latency_summary(self, wall_seconds: float | None = None) -> str:
        """One line of request-latency statistics for the serving CLI."""
        if not self.timings:
            return "no requests served"
        pcts = self.latency_percentiles()
        text = (
            f"{self.n_units} request(s) over {len(self.per_worker())} worker(s); "
            f"latency p50 {pcts[50.0] * 1e3:.2f}ms, p95 {pcts[95.0] * 1e3:.2f}ms, "
            f"p99 {pcts[99.0] * 1e3:.2f}ms"
        )
        if wall_seconds is not None and wall_seconds > 0.0:
            text += f"; {self.throughput(wall_seconds):.0f} req/s over {wall_seconds:.2f}s"
        return text

    def summary(self) -> str:
        if not self.timings:
            return "no measurement units executed (cache hit)"
        busy = self.per_worker()
        slowest = max(self.timings, key=lambda t: t.seconds)
        text = (
            f"{self.n_units} units over {len(busy)} worker(s), "
            f"{self.total_seconds():.2f}s busy total; "
            f"slowest unit {slowest.benchmark} u={slowest.factor} "
            f"({slowest.seconds:.2f}s, {slowest.n_loops} loops)"
        )
        lookups = self.analysis_hits() + self.analysis_misses()
        if lookups:
            text += (
                f"; analysis cache {self.analysis_hits()}/{lookups} hits "
                f"({100.0 * self.analysis_hit_rate():.0f}%)"
            )
        if self.dedup is not None:
            text += f"; {self.dedup.summary()}"
        resilience = self.resilience_summary()
        if resilience:
            text += f"; {resilience}"
        return text


@dataclass(frozen=True)
class LoopRecord:
    """One exported loop: provenance, features, and measurements."""

    loop_name: str
    benchmark: str
    suite: str
    language: str
    features: tuple[float, ...]
    median_cycles: tuple[float, ...]  # indexed by unroll factor - 1

    @property
    def best_factor(self) -> int:
        return int(np.argmin(self.median_cycles)) + 1


def write_records(records, path: str | Path) -> int:
    """Write loop records as JSON lines (with a header line); returns the
    number of records written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as handle:
        header = {
            "format_version": FORMAT_VERSION,
            "feature_names": list(FEATURE_NAMES),
        }
        handle.write(json.dumps(header) + "\n")
        for record in records:
            payload = {
                "loop": record.loop_name,
                "benchmark": record.benchmark,
                "suite": record.suite,
                "language": record.language,
                "features": list(record.features),
                "median_cycles": list(record.median_cycles),
            }
            handle.write(json.dumps(payload) + "\n")
            count += 1
    return count


def read_records(path: str | Path) -> list[LoopRecord]:
    """Read loop records written by :func:`write_records`."""
    path = Path(path)
    records: list[LoopRecord] = []
    with path.open() as handle:
        header = json.loads(handle.readline())
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported loop-data format {header.get('format_version')!r}"
            )
        if tuple(header.get("feature_names", ())) != FEATURE_NAMES:
            raise ValueError("feature catalog mismatch; re-export the data")
        for line in handle:
            if not line.strip():
                continue
            payload = json.loads(line)
            records.append(
                LoopRecord(
                    loop_name=payload["loop"],
                    benchmark=payload["benchmark"],
                    suite=payload["suite"],
                    language=payload["language"],
                    features=tuple(payload["features"]),
                    median_cycles=tuple(payload["median_cycles"]),
                )
            )
    return records
