"""Raw loop-data export/import.

The paper released its instrumentation library *and the raw loop data* "so
other researchers can easily apply their own learning techniques".  This
module is that release format: a line-oriented JSON container with one record
per loop carrying the feature vector, the per-factor median cycle counts,
and provenance (benchmark, suite, language).  Datasets round-trip exactly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.features.catalog import FEATURE_NAMES

#: Format version written into every export.
FORMAT_VERSION = 1


@dataclass(frozen=True)
class LoopRecord:
    """One exported loop: provenance, features, and measurements."""

    loop_name: str
    benchmark: str
    suite: str
    language: str
    features: tuple[float, ...]
    median_cycles: tuple[float, ...]  # indexed by unroll factor - 1

    @property
    def best_factor(self) -> int:
        return int(np.argmin(self.median_cycles)) + 1


def write_records(records, path: str | Path) -> int:
    """Write loop records as JSON lines (with a header line); returns the
    number of records written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w") as handle:
        header = {
            "format_version": FORMAT_VERSION,
            "feature_names": list(FEATURE_NAMES),
        }
        handle.write(json.dumps(header) + "\n")
        for record in records:
            payload = {
                "loop": record.loop_name,
                "benchmark": record.benchmark,
                "suite": record.suite,
                "language": record.language,
                "features": list(record.features),
                "median_cycles": list(record.median_cycles),
            }
            handle.write(json.dumps(payload) + "\n")
            count += 1
    return count


def read_records(path: str | Path) -> list[LoopRecord]:
    """Read loop records written by :func:`write_records`."""
    path = Path(path)
    records: list[LoopRecord] = []
    with path.open() as handle:
        header = json.loads(handle.readline())
        if header.get("format_version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported loop-data format {header.get('format_version')!r}"
            )
        if tuple(header.get("feature_names", ())) != FEATURE_NAMES:
            raise ValueError("feature catalog mismatch; re-export the data")
        for line in handle:
            if not line.strip():
                continue
            payload = json.loads(line)
            records.append(
                LoopRecord(
                    loop_name=payload["loop"],
                    benchmark=payload["benchmark"],
                    suite=payload["suite"],
                    language=payload["language"],
                    features=tuple(payload["features"]),
                    median_cycles=tuple(payload["median_cycles"]),
                )
            )
    return records
