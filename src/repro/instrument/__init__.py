"""Loop instrumentation: timers, measurement protocol, raw-data export."""

from repro.instrument.report import (
    FORMAT_VERSION,
    DedupStats,
    LoopRecord,
    MeasurementRollup,
    ResilienceEvent,
    UnitTiming,
    read_records,
    write_records,
)
from repro.instrument.timers import (
    LoopMeasurement,
    LoopTimerBank,
    measure_benchmark,
    measure_loop,
)

__all__ = [
    "DedupStats",
    "FORMAT_VERSION",
    "LoopMeasurement",
    "LoopRecord",
    "LoopTimerBank",
    "MeasurementRollup",
    "ResilienceEvent",
    "UnitTiming",
    "measure_benchmark",
    "measure_loop",
    "read_records",
    "write_records",
]
