"""The loop instrumentation library.

The paper's measurement infrastructure (its Section 4.4) assigns a cycle
counter to every innermost loop: lightweight assembly sequences capture the
processor's cycle counter at loop entry and exit, and an exit hook dumps
cumulative per-loop totals.  The authors released this library alongside
their raw loop data; this module is our equivalent, measuring the *simulated*
processor instead of a real one.

A :class:`LoopTimerBank` accumulates per-loop cycle totals for one program
run; :func:`measure_benchmark` performs the paper's full protocol — compile
each loop at a given unroll factor, run the program ``n_runs`` times, and
report the median cumulative cycles per loop (the counter overhead and the
measurement noise both come from the noise model, exactly the artefacts the
median is there to tame).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ir.loop import Loop
from repro.ir.program import Benchmark
from repro.simulate.executor import CostModel
from repro.simulate.noise import DEFAULT_NOISE, NoiseModel


@dataclass
class LoopTimerBank:
    """Cumulative per-loop cycle counters for one program run."""

    totals: dict[str, float] = field(default_factory=dict)

    def record(self, loop_name: str, cycles: float) -> None:
        """Accumulate cycles observed for one loop entry batch."""
        self.totals[loop_name] = self.totals.get(loop_name, 0.0) + cycles

    def report(self) -> dict[str, float]:
        """The end-of-run dump: cumulative cycles per loop."""
        return dict(self.totals)


@dataclass(frozen=True)
class LoopMeasurement:
    """Median-of-N measurement of one loop at one unroll factor."""

    loop_name: str
    factor: int
    median_cycles: float
    samples: tuple[float, ...]

    @property
    def n_runs(self) -> int:
        return len(self.samples)


def measure_loop(
    loop: Loop,
    factor: int,
    cost_model: CostModel,
    rng: np.random.Generator,
    noise: NoiseModel = DEFAULT_NOISE,
    n_runs: int = 30,
) -> LoopMeasurement:
    """Measure one loop at one unroll factor, median of ``n_runs`` runs."""
    true_cycles = cost_model.loop_cost(loop, factor).total_cycles
    samples = noise.samples(true_cycles, loop.entry_count, rng, n=n_runs)
    return LoopMeasurement(
        loop_name=loop.name,
        factor=factor,
        median_cycles=float(np.median(samples)),
        samples=tuple(float(s) for s in samples),
    )


def measure_benchmark(
    benchmark: Benchmark,
    factor: int,
    cost_model: CostModel,
    rng: np.random.Generator,
    noise: NoiseModel = DEFAULT_NOISE,
    n_runs: int = 30,
) -> dict[str, LoopMeasurement]:
    """The paper's per-factor protocol: compile every loop in the benchmark
    at ``factor`` and collect all loop timers from the same ``n_runs`` runs
    (that's why the paper can measure all loops per binary per factor)."""
    return {
        loop.name: measure_loop(loop, factor, cost_model, rng, noise, n_runs)
        for loop in benchmark.loops
    }
