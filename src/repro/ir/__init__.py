"""Loop IR: types, values, instructions, loops, analyses, and semantics.

This package is the compiler substrate of the reproduction — an executable
three-address IR for innermost loops modelled on what the Open Research
Compiler's loop optimizer manipulates.
"""

from repro.ir.builder import LoopBuilder
from repro.ir.canonical import (
    CanonicalForm,
    canonical_form,
    canonical_key,
    canonicalize,
    cost_key,
    structural_key,
)
from repro.ir.dependence import (
    DepEdge,
    DependenceGraph,
    DepKind,
    analyze_dependences,
    edge_latency,
)
from repro.ir.instruction import Instruction
from repro.ir.interp import (
    InterpreterError,
    MachineState,
    RunResult,
    initial_state,
    run_loop,
    run_unrolled,
)
from repro.ir.loop import Loop, TripInfo
from repro.ir.printer import format_instruction, format_loop
from repro.ir.program import Benchmark, Suite
from repro.ir.types import (
    MAX_UNROLL,
    UNROLL_FACTORS,
    CmpOp,
    DType,
    FUKind,
    Language,
    OpCategory,
    Opcode,
)
from repro.ir.validate import ValidationError, is_valid_loop, validate_loop
from repro.ir.values import AffineIndex, Imm, MemRef, Reg, carried_distance

__all__ = [
    "AffineIndex",
    "Benchmark",
    "CanonicalForm",
    "CmpOp",
    "DepEdge",
    "DepKind",
    "DependenceGraph",
    "DType",
    "FUKind",
    "Imm",
    "Instruction",
    "InterpreterError",
    "Language",
    "Loop",
    "LoopBuilder",
    "MachineState",
    "MAX_UNROLL",
    "MemRef",
    "OpCategory",
    "Opcode",
    "Reg",
    "RunResult",
    "Suite",
    "TripInfo",
    "UNROLL_FACTORS",
    "ValidationError",
    "analyze_dependences",
    "canonical_form",
    "canonical_key",
    "canonicalize",
    "carried_distance",
    "cost_key",
    "edge_latency",
    "format_instruction",
    "format_loop",
    "initial_state",
    "is_valid_loop",
    "run_loop",
    "run_unrolled",
    "structural_key",
    "validate_loop",
]
