"""Reference interpreter for the loop IR.

The interpreter gives the IR *executable semantics*, which is what lets this
repository prove — rather than assume — that the unroller and the post-unroll
memory optimizations are semantics-preserving: tests run a loop rolled and
unrolled on identical initial state and require identical observable results
(final array contents plus final values of loop-carried scalars).

Value model: ``I64`` registers hold Python ints, ``F64`` registers hold
floats, ``PRED`` registers hold bools, and arrays are float64 numpy vectors.
Two deliberate totalizations keep randomized (hypothesis) testing free of
undefined behaviour: integer division by zero yields zero, and indirect
indices wrap modulo the array length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.ir.instruction import Instruction
from repro.ir.loop import Loop
from repro.ir.types import DType, Opcode
from repro.ir.values import Imm, MemRef, Operand, Reg

if TYPE_CHECKING:  # pragma: no cover
    from repro.transforms.unroll import UnrollResult


class InterpreterError(RuntimeError):
    """Raised on semantic violations (e.g. a while-loop that never exits)."""


@dataclass
class MachineState:
    """Registers and memory during interpretation."""

    regs: dict[Reg, object] = field(default_factory=dict)
    arrays: dict[str, np.ndarray] = field(default_factory=dict)

    def copy(self) -> "MachineState":
        """A deep copy — used to run two loop variants on identical inputs."""
        return MachineState(
            regs=dict(self.regs),
            arrays={name: arr.copy() for name, arr in self.arrays.items()},
        )

    def observable(self, loop: Loop) -> dict[str, object]:
        """The loop's observable results: arrays plus carried scalars."""
        result: dict[str, object] = {
            name: self.arrays[name].copy() for name in sorted(loop.arrays)
        }
        for reg in sorted(loop.carried_regs(), key=lambda r: r.name):
            result[f"%{reg.name}"] = self.regs.get(reg)
        return result


@dataclass(frozen=True)
class RunResult:
    """Outcome of one loop execution."""

    iterations: int
    exited_early: bool


def initial_state(
    loop: Loop,
    seed: int = 0,
    carried_inits: dict[Reg, float] | None = None,
) -> MachineState:
    """Build a deterministic initial state for ``loop``.

    Arrays are filled with uniform values; live-in registers get defaults by
    type unless ``carried_inits`` provides explicit preheader values.
    """
    rng = np.random.default_rng(seed)
    state = MachineState()
    for name in sorted(loop.arrays):
        size = loop.arrays[name]
        state.arrays[name] = rng.uniform(-8.0, 8.0, size=size)
    inits = carried_inits or {}
    for reg in sorted(loop.live_in_regs(), key=lambda r: r.name):
        if reg in inits:
            state.regs[reg] = _coerce(inits[reg], reg.dtype)
        elif reg.dtype is DType.F64:
            state.regs[reg] = float(rng.uniform(-2.0, 2.0))
        elif reg.dtype is DType.I64:
            state.regs[reg] = int(rng.integers(1, 5))
        else:
            state.regs[reg] = False
    return state


def _coerce(value: object, dtype: DType) -> object:
    if dtype is DType.F64:
        return float(value)
    if dtype is DType.I64:
        return int(value)
    return bool(value)


def run_loop(loop: Loop, state: MachineState, strict_exit: bool = False) -> RunResult:
    """Execute ``loop`` once (one entry), mutating ``state``.

    A counted loop runs exactly ``trip.runtime`` iterations unless an early
    exit fires.  A while-style loop must exit through its own branch; with
    ``strict_exit`` it is an :class:`InterpreterError` for the safety bound
    to be reached without the exit firing.
    """
    body = loop.body
    trip = loop.trip.runtime
    for iteration in range(trip):
        exited = _run_iteration(body, iteration, state, loop)
        if exited:
            return RunResult(iteration + 1, True)
    if strict_exit and not loop.trip.counted:
        raise InterpreterError(
            f"while-style loop {loop.name!r} reached its bound of {trip} "
            "iterations without taking its exit branch"
        )
    return RunResult(trip, False)


def _run_iteration(
    body: tuple[Instruction, ...], iteration: int, state: MachineState, loop: Loop
) -> bool:
    """Execute one iteration; returns True when an early exit fired."""
    for inst in body:
        if inst.pred is not None and not bool(state.regs.get(inst.pred, False)):
            if inst.op is not Opcode.BR_EXIT:
                # Nullified instruction: destinations keep their old values.
                for dest in inst.reg_dests():
                    state.regs.setdefault(dest, _zero(dest.dtype))
            continue
        if inst.op is Opcode.BR_EXIT:
            return True
        _execute(inst, iteration, state, loop)
    return False


def _zero(dtype: DType) -> object:
    return {DType.I64: 0, DType.F64: 0.0, DType.PRED: False}[dtype]


def _operand(state: MachineState, operand: Operand) -> object:
    if isinstance(operand, Imm):
        return float(operand.value) if operand.dtype is DType.F64 else int(operand.value)
    try:
        return state.regs[operand]
    except KeyError:
        raise InterpreterError(f"read of undefined register {operand}") from None


def _element_index(mem: MemRef, iteration: int, state: MachineState, loop: Loop) -> int:
    if mem.indirect:
        value = _operand(state, mem.index_reg)
        size = loop.arrays[mem.array]
        return int(value) % max(size - (mem.width - 1), 1)
    index = mem.index.at(iteration)
    size = loop.arrays[mem.array]
    if not (0 <= index <= size - mem.width):
        raise InterpreterError(
            f"{mem} out of bounds at iteration {iteration} "
            f"(index {index}, size {size})"
        )
    return index


def _execute(inst: Instruction, iteration: int, state: MachineState, loop: Loop) -> None:
    op = inst.op
    regs = state.regs

    if op in (Opcode.LOAD, Opcode.PREFETCH):
        if op is Opcode.PREFETCH:
            return
        idx = _element_index(inst.mem, iteration, state, loop)
        value = float(state.arrays[inst.mem.array][idx])
        regs[inst.dest] = _coerce(value, inst.dest.dtype)
        return
    if op is Opcode.LOAD_PAIR:
        idx = _element_index(inst.mem, iteration, state, loop)
        arr = state.arrays[inst.mem.array]
        regs[inst.dest] = _coerce(float(arr[idx]), inst.dest.dtype)
        regs[inst.dest2] = _coerce(float(arr[idx + 1]), inst.dest2.dtype)
        return
    if op is Opcode.STORE:
        idx = _element_index(inst.mem, iteration, state, loop)
        state.arrays[inst.mem.array][idx] = float(_operand(state, inst.srcs[0]))
        return

    srcs = [_operand(state, s) for s in inst.srcs]

    if op.is_compare:
        regs[inst.dest] = inst.cmp_op.evaluate(float(srcs[0]), float(srcs[1]))
        return
    if op is Opcode.SELECT:
        regs[inst.dest] = _coerce(srcs[1] if bool(srcs[0]) else srcs[2], inst.dest.dtype)
        return
    if op in (Opcode.MOV, Opcode.SXT):
        regs[inst.dest] = _coerce(srcs[0], inst.dest.dtype)
        return
    if op is Opcode.CVT:
        regs[inst.dest] = _coerce(srcs[0], inst.dest.dtype)
        return

    regs[inst.dest] = _coerce(_arith(op, srcs), inst.dest.dtype)


def _arith(op: Opcode, srcs: list) -> object:
    a = srcs[0]
    b = srcs[1] if len(srcs) > 1 else None
    if op is Opcode.ADD:
        return int(a) + int(b)
    if op is Opcode.SUB:
        return int(a) - int(b)
    if op is Opcode.MUL:
        return int(a) * int(b)
    if op is Opcode.DIV:
        return 0 if int(b) == 0 else int(int(a) / int(b))
    if op is Opcode.REM:
        return 0 if int(b) == 0 else int(a) - int(int(a) / int(b)) * int(b)
    if op is Opcode.SHL:
        return int(a) << _clamp_shift(b)
    if op is Opcode.SHR:
        return int(a) >> _clamp_shift(b)
    if op is Opcode.AND:
        return int(a) & int(b)
    if op is Opcode.OR:
        return int(a) | int(b)
    if op is Opcode.XOR:
        return int(a) ^ int(b)
    if op is Opcode.FADD:
        return float(a) + float(b)
    if op is Opcode.FSUB:
        return float(a) - float(b)
    if op is Opcode.FMUL:
        return float(a) * float(b)
    if op is Opcode.FDIV:
        return 0.0 if float(b) == 0.0 else float(a) / float(b)
    if op is Opcode.FMA:
        return float(a) * float(b) + float(srcs[2])
    if op is Opcode.FNEG:
        return -float(a)
    raise InterpreterError(f"unhandled opcode {op}")


def _clamp_shift(amount: object) -> int:
    return max(0, min(63, int(amount)))


def run_unrolled(result: "UnrollResult", state: MachineState, strict_exit: bool = False) -> RunResult:
    """Execute an unroll result: main loop, then (unless an early exit fired)
    the remainder loop."""
    iterations = 0
    exited = False
    if result.main is not None:
        main_run = run_loop(result.main, state, strict_exit=strict_exit)
        iterations += main_run.iterations * result.main.unroll_factor
        exited = main_run.exited_early
    if result.remainder is not None and not exited:
        rem_run = run_loop(result.remainder, state, strict_exit=strict_exit)
        iterations += rem_run.iterations
        exited = rem_run.exited_early
    return RunResult(iterations, exited)
