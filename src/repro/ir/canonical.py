"""Content-addressed canonical forms for loops.

The measurement pipeline's dedup stage needs to answer one question
exactly: *which loops are guaranteed to cost the same cycles per entry,
at every unroll factor, under every optimization plan?*  This module
answers it with three SHA-256 keys per loop, each a digest of an explicit
serialization (never Python ``hash()``, which varies per process):

* :func:`cost_key` — the strict, order-preserving key.  Two loops with
  equal cost keys produce bit-identical ``per_entry_cycles`` sweeps: the
  serialization walks the body in program order and abstracts exactly the
  things the cost model provably never reads — register names (alpha-
  renamed, dtypes kept), array names (alpha-renamed), immediate *values*
  (``MachineModel.latency`` dispatches on opcode alone), absolute memory
  offsets (shifted per ``(array, stride)`` group by an **even** constant:
  dependence distances depend only on offset differences, cache footprints
  only on stride/width/trips, and the even shift preserves the offset
  parity the load coalescer keys on).  Everything else — opcodes, compare
  kinds, predication, operand wiring, memory strides and widths, trip
  counts, and the element counts of indirectly-indexed arrays (the one
  place ``loop.arrays`` feeds the cost model) — is kept.  ``entry_count``
  is deliberately excluded: total cycles are fanned back out as
  ``per_entry * entry_count``, the exact multiply the cost model performs.
* :func:`structural_key` — the trip-*exclusive*, reorder-invariant key.
  The body is first brought into a canonical order (a deterministic
  topological order of the distance-0 dependence DAG, with ties broken by
  Weisfeiler–Lehman-refined content signatures), so alpha-renaming *and*
  benign (dependence-respecting) statement reordering map to the same
  key.  This key defines the *structural* equivalence classes the bench
  reports as ``class_merges`` — loops that differ only in trip count and
  would be dedupable at equal trips.
* :func:`canonical_key` — the structural serialization plus the trip
  token: invariant under alpha-renaming and benign reordering, changed by
  any semantic perturbation (opcode, stride, width, predication, trip
  count).

:func:`canonicalize` materializes the canonical representative as a
``Loop`` (canonical statement order, ``v<i>`` registers, ``A<i>`` arrays,
normalized offsets); canonicalization is idempotent — the canonical form
of a canonical form is itself, and all three keys are preserved.
"""

from __future__ import annotations

import hashlib
import heapq
from dataclasses import dataclass

from repro.ir.dependence import analyze_dependences
from repro.ir.instruction import Instruction
from repro.ir.loop import Loop
from repro.ir.values import AffineIndex, MemRef, Reg


def _digest(tag: str, lines: list[str]) -> str:
    hasher = hashlib.sha256()
    hasher.update(tag.encode())
    for line in lines:
        hasher.update(b"\n")
        hasher.update(line.encode())
    return hasher.hexdigest()


def _short(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:16]


# ----------------------------------------------------------------------
# Offset normalization.
# ----------------------------------------------------------------------


def _group_deltas(loop: Loop) -> dict[tuple[str, int], int]:
    """Even offset shift per ``(array, stride)`` group.

    Every affine reference in a group is shifted down by the same even
    constant (the group's minimum offset rounded down to even).  Uniform
    per-group shifts preserve all dependence distances (same-stride
    overlap depends only on offset differences; cross-stride overlap is
    offset-independent), and evenness preserves the offset parity that
    decides post-unroll load-pair coalescing.  The minimum — rather than
    the first-seen offset — makes the delta independent of statement
    order, so the same normalization serves both the order-preserving
    cost key and the reorder-invariant structural key.
    """
    mins: dict[tuple[str, int], int] = {}
    for inst in loop.body:
        mem = inst.mem
        if mem is None or mem.indirect:
            continue
        key = (mem.array, mem.index.coeff)
        offset = mem.index.offset
        if key not in mins or offset < mins[key]:
            mins[key] = offset
    return {key: low - (low % 2) for key, low in mins.items()}


def _norm_offset(mem: MemRef, deltas: dict[tuple[str, int], int]) -> int:
    return mem.index.offset - deltas[(mem.array, mem.index.coeff)]


# ----------------------------------------------------------------------
# Alpha maps and the shared serialization.
# ----------------------------------------------------------------------


def _operand_scan(inst: Instruction):
    """Register operands in the fixed order serialization names them."""
    for src in inst.srcs:
        if isinstance(src, Reg):
            yield src
    if inst.pred is not None:
        yield inst.pred
    if inst.mem is not None and inst.mem.indirect and inst.mem.index_reg is not None:
        yield inst.mem.index_reg
    if inst.dest is not None:
        yield inst.dest
    if inst.dest2 is not None:
        yield inst.dest2


def _alpha_maps(
    loop: Loop, order: list[int]
) -> tuple[dict[Reg, Reg], dict[str, str]]:
    """First-occurrence alpha renaming of registers and arrays along
    ``order`` (dtypes are preserved; names become ``v<i>`` / ``A<i>``)."""
    reg_map: dict[Reg, Reg] = {}
    array_map: dict[str, str] = {}
    for index in order:
        inst = loop.body[index]
        if inst.mem is not None and inst.mem.array not in array_map:
            array_map[inst.mem.array] = f"A{len(array_map)}"
        for reg in _operand_scan(inst):
            if reg not in reg_map:
                reg_map[reg] = Reg(f"v{len(reg_map)}", reg.dtype)
    return reg_map, array_map


def _serialize_body(
    loop: Loop,
    order: list[int],
    deltas: dict[tuple[str, int], int],
    reg_map: dict[Reg, Reg],
    array_map: dict[str, str],
) -> list[str]:
    """One line per instruction, immediates abstracted to their dtype."""

    def reg_token(reg: Reg | None) -> str:
        if reg is None:
            return "-"
        named = reg_map[reg]
        return f"%{named.name}:{named.dtype.value}"

    lines = []
    for index in order:
        inst = loop.body[index]
        srcs = ",".join(
            reg_token(src) if isinstance(src, Reg) else f"#{src.dtype.value}"
            for src in inst.srcs
        )
        mem = inst.mem
        if mem is None:
            mem_token = "-"
        elif mem.indirect:
            mem_token = f"{array_map[mem.array]}[{reg_token(mem.index_reg)}]w{mem.width}"
        else:
            mem_token = (
                f"{array_map[mem.array]}"
                f"[{mem.index.coeff}i+{_norm_offset(mem, deltas)}]w{mem.width}"
            )
        lines.append(
            "|".join(
                (
                    inst.op.value,
                    inst.cmp_op.value if inst.cmp_op is not None else "-",
                    srcs,
                    reg_token(inst.pred),
                    mem_token,
                    reg_token(inst.dest),
                    reg_token(inst.dest2),
                    "1" if inst.implicit else "0",
                )
            )
        )
    return lines


def _indirect_size_lines(loop: Loop, array_map: dict[str, str]) -> list[str]:
    """Element counts of indirectly-indexed arrays — the only place
    ``loop.arrays`` reaches the cost model (the data-cache footprint of a
    gather defaults to the trip count when the size is absent)."""
    indirect = {
        inst.mem.array
        for inst in loop.body
        if inst.mem is not None and inst.mem.indirect
    }
    lines = []
    for array in sorted(indirect, key=lambda name: array_map[name]):
        size = loop.arrays.get(array)
        lines.append(f"size:{array_map[array]}:{'trip' if size is None else size}")
    return lines


def _trip_line(loop: Loop) -> str:
    trip = loop.trip
    compile_time = trip.compile_time if trip.compile_time is not None else "?"
    return f"trip:{trip.runtime}:{compile_time}:{int(trip.counted)}:u{loop.unroll_factor}"


# ----------------------------------------------------------------------
# Canonical statement order (reorder-invariant).
# ----------------------------------------------------------------------


def _array_fingerprints(
    loop: Loop, deltas: dict[tuple[str, int], int]
) -> dict[str, str]:
    """Order-invariant fingerprint of each array's full access multiset,
    so content signatures can tell apart same-shaped accesses to
    differently-shared arrays before any names are assigned."""
    shapes: dict[str, list[str]] = {}
    for inst in loop.body:
        mem = inst.mem
        if mem is None:
            continue
        if mem.indirect:
            token = f"{inst.op.value}:ind:w{mem.width}"
        else:
            token = (
                f"{inst.op.value}:{mem.index.coeff}:{_norm_offset(mem, deltas)}"
                f":w{mem.width}"
            )
        shapes.setdefault(mem.array, []).append(token)
    return {
        array: _short("&".join(sorted(tokens))) for array, tokens in shapes.items()
    }


def _local_signature(
    inst: Instruction, deltas: dict[tuple[str, int], int], array_fp: dict[str, str]
) -> str:
    """Name-free content of one instruction (registers reduced to dtypes,
    arrays to their access fingerprints)."""
    mem = inst.mem
    if mem is None:
        mem_token = "-"
    elif mem.indirect:
        mem_token = f"ind:{array_fp[mem.array]}:w{mem.width}"
    else:
        mem_token = (
            f"aff:{array_fp[mem.array]}:{mem.index.coeff}"
            f":{_norm_offset(mem, deltas)}:w{mem.width}"
        )
    srcs = ",".join(
        f"r{src.dtype.value}" if isinstance(src, Reg) else f"i{src.dtype.value}"
        for src in inst.srcs
    )
    return "|".join(
        (
            inst.op.value,
            inst.cmp_op.value if inst.cmp_op is not None else "-",
            srcs,
            "p" if inst.pred is not None else "-",
            mem_token,
            inst.dest.dtype.value if inst.dest is not None else "-",
            inst.dest2.dtype.value if inst.dest2 is not None else "-",
            "1" if inst.implicit else "0",
        )
    )


def _partition(sigs: list[str]) -> list[tuple[int, ...]]:
    groups: dict[str, list[int]] = {}
    for index, sig in enumerate(sigs):
        groups.setdefault(sig, []).append(index)
    return sorted(tuple(group) for group in groups.values())


def _canonical_order(loop: Loop) -> list[int]:
    """A topological order of the distance-0 dependence DAG that depends
    only on loop *content*, not on the input statement order.

    Distance-0 dependence edges are exactly the orderings a benign
    reordering must preserve, so any two benign permutations of the same
    body yield the same DAG.  Node priorities are Weisfeiler–Lehman-
    refined content signatures (local content, then iteratively the
    multiset of ``(direction, kind, distance, neighbor signature)`` over
    *all* dependence edges, carried edges included); Kahn's algorithm
    then picks the smallest-signature ready node first.  Ties after full
    refinement are between indistinguishable statements, where either
    order serializes identically.
    """
    body = loop.body
    n = len(body)
    edges = analyze_dependences(loop).edges
    succs: list[list[int]] = [[] for _ in range(n)]
    indegree = [0] * n
    neighbors: list[list[tuple[int, str, int, int]]] = [[] for _ in range(n)]
    for edge in edges:
        if edge.distance == 0 and edge.src != edge.dst:
            succs[edge.src].append(edge.dst)
            indegree[edge.dst] += 1
        neighbors[edge.src].append((0, edge.kind.name, edge.distance, edge.dst))
        neighbors[edge.dst].append((1, edge.kind.name, edge.distance, edge.src))

    deltas = _group_deltas(loop)
    array_fp = _array_fingerprints(loop, deltas)
    sigs = [_short(_local_signature(inst, deltas, array_fp)) for inst in body]
    grouping = _partition(sigs)
    for _ in range(n):
        refined = []
        for index in range(n):
            env = sorted(
                (direction, kind, distance, sigs[other])
                for direction, kind, distance, other in neighbors[index]
            )
            refined.append(
                _short(
                    sigs[index]
                    + "<"
                    + ";".join(f"{d}{k}{dist}{sig}" for d, k, dist, sig in env)
                )
            )
        regrouped = _partition(refined)
        sigs = refined
        if regrouped == grouping:
            break
        grouping = regrouped

    ready = [(sigs[index], index) for index in range(n) if indegree[index] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        _, index = heapq.heappop(ready)
        order.append(index)
        for succ in succs[index]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (sigs[succ], succ))
    if len(order) != n:  # pragma: no cover - the dep DAG is acyclic by construction
        raise ValueError(f"{loop.name}: dependence DAG has a distance-0 cycle")
    return order


# ----------------------------------------------------------------------
# Public API.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CanonicalForm:
    """All three content keys of one loop."""

    cost_key: str
    structural_key: str
    canonical_key: str


def cost_key(loop: Loop) -> str:
    """Order-preserving content key: equal keys guarantee bit-identical
    ``per_entry_cycles`` at every factor, plan, and scheduling regime."""
    order = list(range(len(loop.body)))
    deltas = _group_deltas(loop)
    reg_map, array_map = _alpha_maps(loop, order)
    lines = _serialize_body(loop, order, deltas, reg_map, array_map)
    lines.extend(_indirect_size_lines(loop, array_map))
    lines.append(_trip_line(loop))
    return _digest("cost", lines)


def _structural_lines(loop: Loop) -> list[str]:
    order = _canonical_order(loop)
    deltas = _group_deltas(loop)
    reg_map, array_map = _alpha_maps(loop, order)
    lines = _serialize_body(loop, order, deltas, reg_map, array_map)
    lines.extend(_indirect_size_lines(loop, array_map))
    return lines


def structural_key(loop: Loop) -> str:
    """Trip-exclusive, reorder-invariant content key (merge statistics)."""
    return _digest("structural", _structural_lines(loop))


def canonical_key(loop: Loop) -> str:
    """Reorder-invariant content key including the trip count."""
    return _digest("canonical", _structural_lines(loop) + [_trip_line(loop)])


def canonical_form(loop: Loop) -> CanonicalForm:
    """All three keys, sharing the canonical-order computation."""
    lines = _structural_lines(loop)
    return CanonicalForm(
        cost_key=cost_key(loop),
        structural_key=_digest("structural", lines),
        canonical_key=_digest("canonical", lines + [_trip_line(loop)]),
    )


def canonicalize(loop: Loop) -> Loop:
    """The canonical representative of ``loop``'s equivalence class.

    Statements in canonical order, registers renamed ``v<i>`` and arrays
    ``A<i>`` in first-occurrence order, offsets normalized per group.
    Idempotent: canonicalizing a canonical loop returns an identical loop
    (fresh instruction uids aside), and every key is preserved.  The
    result is cost-equivalent to the input, not element-for-element
    identical (offsets are shifted), so it feeds keys and dedup decisions,
    never the interpreter.
    """
    order = _canonical_order(loop)
    deltas = _group_deltas(loop)
    reg_map, array_map = _alpha_maps(loop, order)
    body = []
    for index in order:
        inst = loop.body[index]
        mem = inst.mem
        if mem is not None:
            if mem.indirect:
                index_reg = (
                    reg_map[mem.index_reg] if mem.index_reg is not None else None
                )
                mem = MemRef(
                    array_map[mem.array], mem.index, True, index_reg, mem.width
                )
            else:
                mem = MemRef(
                    array_map[mem.array],
                    AffineIndex(mem.index.coeff, _norm_offset(mem, deltas)),
                    False,
                    None,
                    mem.width,
                )
        body.append(
            Instruction(
                op=inst.op,
                dest=reg_map[inst.dest] if inst.dest is not None else None,
                srcs=tuple(
                    reg_map[src] if isinstance(src, Reg) else src
                    for src in inst.srcs
                ),
                mem=mem,
                pred=reg_map[inst.pred] if inst.pred is not None else None,
                cmp_op=inst.cmp_op,
                dest2=reg_map[inst.dest2] if inst.dest2 is not None else None,
                implicit=inst.implicit,
            )
        )
    arrays = {
        array_map[name]: size
        for name, size in loop.arrays.items()
        if name in array_map
    }
    return loop.with_body(tuple(body), arrays=arrays)
