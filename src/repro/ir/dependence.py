"""Dependence analysis for loop bodies.

Builds the dependence graph of a single loop body: register flow/anti
dependences (including loop-carried recurrences), exact affine memory
dependences with integer iteration distances, conservative "may" dependences
for indirect references, and control dependences from early-exit branches to
later side effects.

Edges carry an iteration *distance*: 0 for intra-iteration dependences and
``d >= 1`` for values that flow around the backedge ``d`` iterations later.
Distance-0 edges always point forward in body order, so the intra-iteration
subgraph is a DAG; carried edges may point backward and create the cycles
whose latency/distance ratio bounds the software pipeliner's RecMII.

The graph is stored as plain adjacency lists for speed (it sits on the
labelling pipeline's hot path), with a :func:`DependenceGraph.to_networkx`
view for tests, notebooks, and the feature extractor's reachability queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import networkx as nx

from repro.ir.instruction import Instruction
from repro.ir.loop import Loop
from repro.ir.types import Opcode
from repro.ir.values import MemRef, Reg

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.model import MachineModel


class DepKind(enum.Enum):
    """Dependence edge classification."""

    FLOW = "flow"  # register def -> use
    ANTI = "anti"  # register use -> (next iteration's) def
    MEM_FLOW = "mem_flow"  # store -> load of the same location
    MEM_ANTI = "mem_anti"  # load -> store over the same location
    MEM_OUTPUT = "mem_out"  # store -> store over the same location
    MEM_MAY = "mem_may"  # conservative edge (indirect reference)
    CONTROL = "control"  # exit branch -> later side effect

    @property
    def is_memory(self) -> bool:
        return self in (
            DepKind.MEM_FLOW,
            DepKind.MEM_ANTI,
            DepKind.MEM_OUTPUT,
            DepKind.MEM_MAY,
        )


@dataclass(frozen=True)
class DepEdge:
    """A dependence from body position ``src`` to body position ``dst``.

    ``distance`` counts backedge traversals: the constraint is
    ``start(dst) + II * distance >= start(src) + latency``.
    """

    src: int
    dst: int
    kind: DepKind
    distance: int


def edge_latency(edge: DepEdge, body: tuple[Instruction, ...], machine: "MachineModel") -> int:
    """Scheduling latency of a dependence edge.

    Flow dependences wait for the producer's full latency; anti and control
    dependences only require issue-order (latency 0, i.e. same cycle is
    legal); memory output/may dependences keep a one-cycle separation so the
    memory system observes program order.
    """
    if edge.kind in (DepKind.FLOW, DepKind.MEM_FLOW):
        return machine.latency(body[edge.src])
    if edge.kind in (DepKind.MEM_OUTPUT, DepKind.MEM_MAY):
        return 1
    return 0


class DependenceGraph:
    """Dependence graph over one loop body.

    Node ``i`` is ``body[i]``.  Use :attr:`edges` for the full edge list and
    :attr:`succs` / :attr:`preds` for adjacency (lists of
    ``(neighbor, edge)`` pairs).
    """

    def __init__(self, body: tuple[Instruction, ...], edges: list[DepEdge]):
        self.body = body
        self.edges = edges
        n = len(body)
        self.succs: list[list[tuple[int, DepEdge]]] = [[] for _ in range(n)]
        self.preds: list[list[tuple[int, DepEdge]]] = [[] for _ in range(n)]
        for edge in edges:
            self.succs[edge.src].append((edge.dst, edge))
            self.preds[edge.dst].append((edge.src, edge))

    def __len__(self) -> int:
        return len(self.body)

    # ------------------------------------------------------------------
    # Queries used by features and schedulers.
    # ------------------------------------------------------------------

    def acyclic_edges(self) -> Iterable[DepEdge]:
        """Intra-iteration (distance 0) edges: a DAG in body order."""
        return (e for e in self.edges if e.distance == 0)

    def carried_edges(self) -> Iterable[DepEdge]:
        """Loop-carried (distance >= 1) edges."""
        return (e for e in self.edges if e.distance >= 1)

    def critical_path_length(self, machine: "MachineModel") -> int:
        """Longest latency-weighted path through the intra-iteration DAG,
        including the final node's own latency (the earliest cycle by which
        the whole body's dataflow can complete)."""
        n = len(self.body)
        finish = [0] * n
        for i in range(n):  # body order is a topological order for dist-0 edges
            start = 0
            for j, edge in self.preds[i]:
                if edge.distance == 0:
                    lat = edge_latency(edge, self.body, machine)
                    if finish[j] + lat > start:
                        start = finish[j] + lat
            finish[i] = start
        if n == 0:
            return 0
        return max(finish[i] + machine.latency(self.body[i]) for i in range(n)) if n else 0

    def dependence_heights(self) -> list[int]:
        """Unit-latency height of every node in the intra-iteration DAG
        (length of the longest dependence chain ending at the node)."""
        n = len(self.body)
        height = [1] * n
        for i in range(n):
            for j, edge in self.preds[i]:
                if edge.distance == 0 and height[j] + 1 > height[i]:
                    height[i] = height[j] + 1
        return height

    def memory_chain_height(self) -> int:
        """Longest chain of memory operations linked by memory dependences."""
        return self._chain_height(lambda e: e.kind.is_memory)

    def control_chain_height(self) -> int:
        """Longest chain of control dependences."""
        return self._chain_height(lambda e: e.kind is DepKind.CONTROL)

    def _chain_height(self, keep) -> int:
        n = len(self.body)
        relevant_nodes = {e.src for e in self.edges if keep(e) and e.distance == 0}
        relevant_nodes |= {e.dst for e in self.edges if keep(e) and e.distance == 0}
        if not relevant_nodes:
            return 0
        height = dict.fromkeys(relevant_nodes, 1)
        for i in sorted(relevant_nodes):
            for j, edge in self.preds[i]:
                if edge.distance == 0 and keep(edge) and j in height:
                    height[i] = max(height[i], height[j] + 1)
        return max(height.values())

    def n_components(self) -> int:
        """Weakly connected components of the intra-iteration DAG — the
        paper's "number of parallel computations in the loop"."""
        n = len(self.body)
        parent = list(range(n))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for edge in self.edges:
            if edge.distance == 0:
                ra, rb = find(edge.src), find(edge.dst)
                if ra != rb:
                    parent[ra] = rb
        return len({find(i) for i in range(n)})

    def fan_in_degrees(self) -> list[int]:
        """In-degree of each node in the intra-iteration DAG (the paper's
        "instruction fan-in in DAG" feature averages these)."""
        n = len(self.body)
        degrees = [0] * n
        for edge in self.edges:
            if edge.distance == 0:
                degrees[edge.dst] += 1
        return degrees

    def to_networkx(self) -> nx.MultiDiGraph:
        """A networkx view (nodes are body positions, edges keep metadata)."""
        graph = nx.MultiDiGraph()
        for i, inst in enumerate(self.body):
            graph.add_node(i, op=inst.op.value, uid=inst.uid)
        for edge in self.edges:
            graph.add_edge(
                edge.src, edge.dst, kind=edge.kind.value, distance=edge.distance
            )
        return graph


# ----------------------------------------------------------------------
# Graph construction.
# ----------------------------------------------------------------------


def _mem_overlap_distances(earlier: MemRef, later: MemRef, max_distance: int) -> set[int]:
    """All iteration distances ``0 <= d <= max_distance`` at which ``later``
    (at iteration ``i + d``) touches an element written/read by ``earlier``
    (at iteration ``i``), honoring reference widths."""
    distances: set[int] = set()
    if earlier.array != later.array:
        return distances
    if earlier.indirect or later.indirect:
        return distances
    ce, cl = earlier.index.coeff, later.index.coeff
    oe, ol = earlier.index.offset, later.index.offset
    for d in range(max_distance + 1):
        # Elements covered: earlier at iteration i -> [ce*i+oe, +width);
        # later at iteration i+d -> [cl*(i+d)+ol, +width).  Overlap for some
        # integer i >= 0 iff the interval of (ce-cl)*i values admits it; we
        # check the stride-difference congruence directly.
        if ce == cl:
            delta = (cl * d + ol) - oe
            if -(later.width - 1) <= delta <= earlier.width - 1:
                distances.add(d)
        else:
            # Different strides over one array: rare in our generator, treat
            # any same-array pair as potentially overlapping at distance d=0
            # only (conservative but bounded).
            if d == 0:
                distances.add(0)
    return distances


def analyze_dependences(
    loop: Loop,
    max_carried_distance: int = 8,
    overlap_memo: dict | None = None,
) -> DependenceGraph:
    """Build the dependence graph of ``loop``'s body.

    ``max_carried_distance`` bounds the search for loop-carried memory
    dependences; distances beyond the maximum unroll factor can never affect
    unrolled-body scheduling, so 8 (the label-space maximum) is the default.

    ``overlap_memo``, when given, caches :func:`_mem_overlap_distances`
    results across calls.  The overlap set for a same-array, non-indirect
    pair depends only on ``(coeff_e, coeff_l, offset_l - offset_e, width_e,
    width_l, max_distance)`` — for equal strides the congruence test reads
    ``cl * d + (ol - oe)``, and for unequal strides the result is the
    constant ``{0}`` — so memoizing on that key returns the exact same set
    a fresh computation would build.  Purely a speedup: edge construction
    and :func:`_dedup` are order-insensitive per (src, dst, kind) triple.
    """
    body = loop.body
    n = len(body)
    edges: list[DepEdge] = []
    carried = loop.carried_regs()

    # --- Register dependences -----------------------------------------
    def_site: dict[Reg, int] = {}
    for i, inst in enumerate(body):
        for reg in inst.reg_dests():
            if reg in def_site:
                raise ValueError(
                    f"register {reg} defined twice in {loop.name!r}; bodies must "
                    "be SSA up to loop-carried recurrences"
                )
            def_site[reg] = i

    for i, inst in enumerate(body):
        for reg in inst.reg_srcs():
            d = def_site.get(reg)
            if d is None:
                continue  # loop-invariant live-in
            if d < i:
                edges.append(DepEdge(d, i, DepKind.FLOW, 0))
            else:
                # Read-before-write of a carried register: the value comes
                # from the previous iteration, and this use must precede the
                # (re)definition within an iteration.
                edges.append(DepEdge(d, i, DepKind.FLOW, 1))
                if reg in carried and d != i:
                    edges.append(DepEdge(i, d, DepKind.ANTI, 0))
                elif reg in carried and d == i:
                    # Self-referential update (e.g. acc = acc + x): the flow
                    # edge above already captures the recurrence.
                    pass

    # --- Memory dependences -------------------------------------------
    mem_ops = [
        (i, inst) for i, inst in enumerate(body) if inst.op.is_memory and inst.mem is not None
    ]
    for ai in range(len(mem_ops)):
        a_pos, a = mem_ops[ai]
        for bi in range(len(mem_ops)):
            b_pos, b = mem_ops[bi]
            if a.mem.array != b.mem.array:
                continue
            a_store, b_store = a.op.is_store, b.op.is_store
            if not (a_store or b_store):
                continue  # load-load pairs never constrain
            if a.mem.indirect or b.mem.indirect:
                # Conservative: program order within the iteration, plus a
                # distance-1 may dependence around the backedge.
                if a_pos < b_pos:
                    edges.append(DepEdge(a_pos, b_pos, DepKind.MEM_MAY, 0))
                if ai != bi or a_store:
                    edges.append(DepEdge(a_pos, b_pos, DepKind.MEM_MAY, 1))
                continue
            if overlap_memo is None:
                overlap = _mem_overlap_distances(a.mem, b.mem, max_carried_distance)
            else:
                memo_key = (
                    a.mem.index.coeff,
                    b.mem.index.coeff,
                    b.mem.index.offset - a.mem.index.offset,
                    a.mem.width,
                    b.mem.width,
                    max_carried_distance,
                )
                overlap = overlap_memo.get(memo_key)
                if overlap is None:
                    overlap = _mem_overlap_distances(a.mem, b.mem, max_carried_distance)
                    overlap_memo[memo_key] = overlap
            for d in overlap:
                if d == 0:
                    if a_pos >= b_pos:
                        continue  # handled by the (b, a) iteration
                    kind = _mem_kind(a_store, b_store)
                    edges.append(DepEdge(a_pos, b_pos, kind, 0))
                else:
                    kind = _mem_kind(a_store, b_store)
                    edges.append(DepEdge(a_pos, b_pos, kind, d))

    # --- Control dependences --------------------------------------------
    exit_positions = [i for i, inst in enumerate(body) if inst.op is Opcode.BR_EXIT]
    for e_pos in exit_positions:
        for j in range(e_pos + 1, n):
            inst = body[j]
            if inst.op.is_store or inst.op is Opcode.BR_EXIT:
                edges.append(DepEdge(e_pos, j, DepKind.CONTROL, 0))

    return DependenceGraph(body, _dedup(edges))


def _mem_kind(a_store: bool, b_store: bool) -> DepKind:
    if a_store and b_store:
        return DepKind.MEM_OUTPUT
    if a_store:
        return DepKind.MEM_FLOW
    return DepKind.MEM_ANTI


def _dedup(edges: list[DepEdge]) -> list[DepEdge]:
    """Drop duplicate edges, keeping the strongest (flow over may, shortest
    distance) representative per (src, dst, kind) triple."""
    best: dict[tuple[int, int, DepKind], DepEdge] = {}
    for edge in edges:
        key = (edge.src, edge.dst, edge.kind)
        kept = best.get(key)
        if kept is None or edge.distance < kept.distance:
            best[key] = edge
    return list(best.values())
