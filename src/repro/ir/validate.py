"""IR well-formedness checks.

Passes call :func:`validate_loop` on their outputs in tests; the workload
generator validates everything it emits.  A well-formed loop satisfies:

* the body is SSA up to loop-carried recurrences (every register has at most
  one definition per iteration);
* every register read is either defined earlier in the body, carried around
  the backedge, or a loop-invariant live-in;
* predicate registers have predicate type and are defined by compares;
* memory references name arrays declared in ``loop.arrays`` and stay in
  bounds for the loop's runtime trip count;
* early-exit branches carry a predicate.
"""

from __future__ import annotations

from repro.ir.loop import Loop
from repro.ir.types import DType, Opcode


class ValidationError(ValueError):
    """Raised when a loop violates an IR invariant."""


def validate_loop(loop: Loop) -> None:
    """Raise :class:`ValidationError` if ``loop`` is malformed."""
    defined: set = set()
    for pos, inst in enumerate(loop.body):
        where = f"{loop.name}[{pos}] ({inst.op.value})"
        for reg in inst.reg_dests():
            if reg in defined:
                raise ValidationError(f"{where}: register {reg} redefined")
            defined.add(reg)
        if inst.pred is not None and inst.pred.dtype is not DType.PRED:
            raise ValidationError(f"{where}: predicate {inst.pred} is not PRED-typed")
        if inst.op.is_compare and inst.dest is not None and inst.dest.dtype is not DType.PRED:
            raise ValidationError(f"{where}: compare must define a PRED register")
        if inst.op is Opcode.BR_EXIT and inst.pred is None:
            raise ValidationError(f"{where}: exit branch requires a predicate")
        if inst.mem is not None:
            _check_mem(loop, inst, where)
        if inst.op is Opcode.LOAD_PAIR and inst.dest2 is None:
            raise ValidationError(f"{where}: wide load needs two destinations")

    _check_reads(loop)


def _check_mem(loop: Loop, inst, where: str) -> None:
    mem = inst.mem
    if mem.array not in loop.arrays:
        raise ValidationError(f"{where}: undeclared array {mem.array!r}")
    if mem.indirect:
        if mem.index_reg is None:
            raise ValidationError(f"{where}: indirect reference without index register")
        return
    size = loop.arrays[mem.array]
    last_iter = loop.trip.runtime - 1
    for i in (0, last_iter):
        idx = mem.index.at(i)
        if not (0 <= idx <= size - mem.width):
            raise ValidationError(
                f"{where}: {mem} out of bounds at i={i} "
                f"(index {idx}, array size {size}, width {mem.width})"
            )


def _check_reads(loop: Loop) -> None:
    """Every register read must have a reaching definition."""
    defined = loop.defined_regs()
    carried = loop.carried_regs()
    invariants = loop.invariant_regs()
    written: set = set()
    for pos, inst in enumerate(loop.body):
        for reg in inst.reg_srcs():
            if reg in written or reg in carried or reg in invariants:
                continue
            if reg in defined:
                raise ValidationError(
                    f"{loop.name}[{pos}]: register {reg} read before its only "
                    "definition but not carried (dataflow is broken)"
                )
            raise ValidationError(f"{loop.name}[{pos}]: register {reg} is never defined")
        written.update(inst.reg_dests())


def is_valid_loop(loop: Loop) -> bool:
    """Non-raising convenience wrapper around :func:`validate_loop`."""
    try:
        validate_loop(loop)
    except ValidationError:
        return False
    return True
