"""Core enumerations for the loop IR.

The IR models the innermost-loop fragment of an EPIC-style compiler
(deliberately close to what the Open Research Compiler exposes to its loop
optimizer): three-address instructions over virtual registers, affine memory
references, full predication, and explicit early-exit branches.

Everything downstream — the unroller, the schedulers, the feature extractor,
and the cycle simulator — dispatches on the tables defined here, so this
module is the single source of truth for opcode semantics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class DType(enum.Enum):
    """Value types carried by virtual registers."""

    I64 = "i64"
    F64 = "f64"
    PRED = "pred"

    @property
    def short(self) -> str:
        """One-letter register prefix used by the printer (``r``/``f``/``p``)."""
        return {DType.I64: "r", DType.F64: "f", DType.PRED: "p"}[self]


class FUKind(enum.Enum):
    """Functional-unit classes of the EPIC machine model.

    Mirrors the Itanium 2 unit taxonomy: memory (M), integer (I), floating
    point (F) and branch (B) units.
    """

    MEM = "M"
    INT = "I"
    FP = "F"
    BR = "B"


class Language(enum.Enum):
    """Source language of the benchmark a loop came from.

    The paper's feature set includes the source language (its training suite
    spans C, Fortran 77, and Fortran 90); the distinction is predictive
    because the language correlates with loop style (array strides, aliasing
    discipline, reduction idioms).
    """

    C = 0
    FORTRAN = 1
    FORTRAN90 = 2


class OpCategory(enum.Enum):
    """Coarse opcode classes used by feature extraction and the heuristics."""

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    COMPARE = "compare"
    MISC = "misc"


class Opcode(enum.Enum):
    """Instruction opcodes.

    The set is intentionally small but spans everything the cost model cares
    about: integer/floating arithmetic with distinct latencies, memory
    operations (including the wide ``LOAD_PAIR`` produced by post-unroll
    coalescing), compares that define predicate registers, and branches.
    """

    # Integer arithmetic / logic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    SHL = "shl"
    SHR = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    MOV = "mov"
    SXT = "sxt"
    SELECT = "select"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMA = "fma"
    FNEG = "fneg"
    CVT = "cvt"
    # Compares (define predicate registers).
    CMP = "cmp"
    FCMP = "fcmp"
    # Memory.
    LOAD = "load"
    LOAD_PAIR = "ldpair"
    STORE = "store"
    PREFETCH = "prefetch"
    # Control.
    BR_EXIT = "br.exit"

    # Static metadata accessors (``info``, ``category``, ``fu_kind``,
    # ``is_memory``, ``is_load``, ``is_store``, ``is_branch``, ``is_fp``,
    # ``is_compare``) are installed as plain member attributes right after
    # ``_OPCODE_TABLE`` below: the schedulers and transform passes query
    # them millions of times per labelling sweep, and a property plus a
    # dict lookup (which re-hashes the enum) costs several times more than
    # an instance-dict read.


@dataclass(frozen=True)
class OpInfo:
    """Per-opcode static metadata.

    Attributes:
        category: coarse class used for feature counting.
        fu_kind: functional-unit class the op issues on.
        n_srcs: number of register/immediate source operands (excluding the
            memory reference of loads/stores and the guarding predicate).
        has_dest: whether the op defines a destination register.
        pipelined: non-pipelined ops (divides) block their unit for their
            whole latency.
    """

    category: OpCategory
    fu_kind: FUKind
    n_srcs: int
    has_dest: bool = True
    pipelined: bool = True


_OPCODE_TABLE: dict[Opcode, OpInfo] = {
    Opcode.ADD: OpInfo(OpCategory.INT_ALU, FUKind.INT, 2),
    Opcode.SUB: OpInfo(OpCategory.INT_ALU, FUKind.INT, 2),
    Opcode.MUL: OpInfo(OpCategory.INT_MUL, FUKind.INT, 2),
    Opcode.DIV: OpInfo(OpCategory.INT_DIV, FUKind.INT, 2, pipelined=False),
    Opcode.REM: OpInfo(OpCategory.INT_DIV, FUKind.INT, 2, pipelined=False),
    Opcode.SHL: OpInfo(OpCategory.INT_ALU, FUKind.INT, 2),
    Opcode.SHR: OpInfo(OpCategory.INT_ALU, FUKind.INT, 2),
    Opcode.AND: OpInfo(OpCategory.INT_ALU, FUKind.INT, 2),
    Opcode.OR: OpInfo(OpCategory.INT_ALU, FUKind.INT, 2),
    Opcode.XOR: OpInfo(OpCategory.INT_ALU, FUKind.INT, 2),
    Opcode.MOV: OpInfo(OpCategory.MISC, FUKind.INT, 1),
    Opcode.SXT: OpInfo(OpCategory.MISC, FUKind.INT, 1),
    Opcode.SELECT: OpInfo(OpCategory.MISC, FUKind.INT, 3),
    Opcode.FADD: OpInfo(OpCategory.FP_ALU, FUKind.FP, 2),
    Opcode.FSUB: OpInfo(OpCategory.FP_ALU, FUKind.FP, 2),
    Opcode.FMUL: OpInfo(OpCategory.FP_MUL, FUKind.FP, 2),
    Opcode.FDIV: OpInfo(OpCategory.FP_DIV, FUKind.FP, 2, pipelined=False),
    Opcode.FMA: OpInfo(OpCategory.FP_MUL, FUKind.FP, 3),
    Opcode.FNEG: OpInfo(OpCategory.FP_ALU, FUKind.FP, 1),
    Opcode.CVT: OpInfo(OpCategory.MISC, FUKind.FP, 1),
    Opcode.CMP: OpInfo(OpCategory.COMPARE, FUKind.INT, 2),
    Opcode.FCMP: OpInfo(OpCategory.COMPARE, FUKind.FP, 2),
    Opcode.LOAD: OpInfo(OpCategory.LOAD, FUKind.MEM, 0),
    Opcode.LOAD_PAIR: OpInfo(OpCategory.LOAD, FUKind.MEM, 0),
    Opcode.STORE: OpInfo(OpCategory.STORE, FUKind.MEM, 1, has_dest=False),
    Opcode.PREFETCH: OpInfo(OpCategory.LOAD, FUKind.MEM, 0, has_dest=False),
    Opcode.BR_EXIT: OpInfo(OpCategory.BRANCH, FUKind.BR, 0, has_dest=False),
}

for _op, _info in _OPCODE_TABLE.items():
    _op.info = _info
    _op.category = _info.category
    _op.fu_kind = _info.fu_kind
    _op.is_memory = _info.category in (OpCategory.LOAD, OpCategory.STORE)
    _op.is_load = _info.category is OpCategory.LOAD
    _op.is_store = _info.category is OpCategory.STORE
    _op.is_branch = _info.category is OpCategory.BRANCH
    _op.is_fp = _info.category in (
        OpCategory.FP_ALU,
        OpCategory.FP_MUL,
        OpCategory.FP_DIV,
    )
    _op.is_compare = _info.category is OpCategory.COMPARE
del _op, _info


class CmpOp(enum.Enum):
    """Comparison predicates for :data:`Opcode.CMP` / :data:`Opcode.FCMP`."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"

    def evaluate(self, lhs: float, rhs: float) -> bool:
        """Apply the comparison to two concrete values."""
        if self is CmpOp.EQ:
            return lhs == rhs
        if self is CmpOp.NE:
            return lhs != rhs
        if self is CmpOp.LT:
            return lhs < rhs
        if self is CmpOp.LE:
            return lhs <= rhs
        if self is CmpOp.GT:
            return lhs > rhs
        return lhs >= rhs


#: Maximum unroll factor considered anywhere in the system.  The paper caps
#: unrolling at eight because larger factors miscompiled parts of its
#: training suite; we adopt the same label space {1, ..., 8}.
MAX_UNROLL = 8

#: Unroll factors forming the classification label space.
UNROLL_FACTORS = tuple(range(1, MAX_UNROLL + 1))
