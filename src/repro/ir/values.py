"""Operand values: virtual registers, immediates, and affine memory references.

Memory references are first-class and carry an *affine index expression* in
the innermost induction variable (``coeff * i + offset``).  Keeping the index
symbolic — instead of lowering it to address arithmetic — is what lets the
dependence analyzer compute exact loop-carried distances and lets the
unroller retarget references to ``i + k`` without rebuilding address code.
The address computation the real compiler would emit is accounted for by the
``implicit`` instruction count (a paper feature) and by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.ir.types import DType


@dataclass(frozen=True)
class Reg:
    """A virtual register.

    Registers are identified by ``name`` (unique within a loop body up to
    deliberate reuse by recurrences) and typed by ``dtype``.  Frozen so that
    registers can key dictionaries and sets in the dependence analyzer.
    """

    name: str
    dtype: DType

    def __hash__(self) -> int:
        # Registers key the renaming maps and dependence dicts, so they are
        # hashed millions of times per labelling sweep.  The value is the
        # dataclass-generated hash of the same field tuple — identical, so
        # set iteration order is unchanged — computed once per instance.
        try:
            return self._hash
        except AttributeError:
            value = hash((self.name, self.dtype))
            object.__setattr__(self, "_hash", value)
            return value

    def __str__(self) -> str:
        return f"%{self.name}"

    def renamed(self, new_name: str) -> "Reg":
        """Return a copy of this register with a different name."""
        return Reg(new_name, self.dtype)


@dataclass(frozen=True)
class Imm:
    """An immediate operand (integer or floating constant)."""

    value: float
    dtype: DType = DType.I64

    def __str__(self) -> str:
        if self.dtype is DType.F64:
            return f"{float(self.value):g}"
        return str(int(self.value))


#: A scalar source operand: either a register or an immediate.
Operand = Union[Reg, Imm]


@dataclass(frozen=True)
class AffineIndex:
    """Affine index expression ``coeff * i + offset``.

    ``i`` is the (zero-based) innermost induction variable.  ``coeff`` is the
    per-iteration stride in *elements*; ``offset`` a constant element offset.
    """

    coeff: int = 1
    offset: int = 0

    def shifted(self, k: int) -> "AffineIndex":
        """Index expression after substituting ``i -> i + k`` (unrolling)."""
        return AffineIndex(self.coeff, self.offset + self.coeff * k)

    def unrolled(self, u: int, k: int, base: int = 0) -> "AffineIndex":
        """Index expression of copy ``k`` in a body unrolled by ``u``.

        The unrolled loop's induction variable ``j`` advances once per body
        execution, covering original iterations ``base + j*u + k``; the
        element index is therefore ``coeff*u * j + (coeff*(base + k) +
        offset)``.
        """
        return AffineIndex(self.coeff * u, self.offset + self.coeff * (base + k))

    def at(self, i: int) -> int:
        """Concrete element index for a concrete induction value."""
        return self.coeff * i + self.offset

    def __str__(self) -> str:
        if self.coeff == 0:
            return str(self.offset)
        parts = "i" if self.coeff == 1 else f"{self.coeff}*i"
        if self.offset > 0:
            return f"{parts}+{self.offset}"
        if self.offset < 0:
            return f"{parts}-{-self.offset}"
        return parts


@dataclass(frozen=True)
class MemRef:
    """A reference to an element of a named array.

    Attributes:
        array: name of the array (distinct arrays never alias).
        index: affine index expression, meaningful when ``indirect`` is
            False.
        indirect: when True the element index comes from ``index_reg`` (a
            value computed at run time, e.g. a gather through an index
            array).  Indirect references defeat exact dependence analysis
            and post-unroll coalescing, exactly as in a real compiler.
        index_reg: register holding the runtime index for indirect refs.
        width: number of consecutive elements accessed (2 for the wide
            ``LOAD_PAIR`` produced by memory coalescing).
    """

    array: str
    index: AffineIndex = AffineIndex()
    indirect: bool = False
    index_reg: Reg | None = None
    width: int = 1

    def shifted(self, k: int) -> "MemRef":
        """The reference after substituting ``i -> i + k``."""
        if self.indirect:
            return self
        return MemRef(
            self.array, self.index.shifted(k), self.indirect, self.index_reg, self.width
        )

    def unrolled(self, u: int, k: int, base: int = 0) -> "MemRef":
        """The reference made by copy ``k`` of a body unrolled by ``u``.

        Indirect references are untouched: their runtime index register is
        recomputed by the copy's own (renamed) address chain.
        """
        if self.indirect:
            return self
        return MemRef(
            self.array,
            self.index.unrolled(u, k, base),
            self.indirect,
            self.index_reg,
            self.width,
        )

    def with_index_reg(self, index_reg: Reg | None) -> "MemRef":
        """The reference with its runtime index register replaced."""
        return MemRef(self.array, self.index, self.indirect, index_reg, self.width)

    @property
    def stride(self) -> int:
        """Per-iteration element stride (0 for indirect refs)."""
        return 0 if self.indirect else self.index.coeff

    def __str__(self) -> str:
        if self.indirect:
            reg = self.index_reg if self.index_reg is not None else "?"
            return f"{self.array}[{reg}]"
        suffix = f":{self.width}" if self.width != 1 else ""
        return f"{self.array}[{self.index}]{suffix}"


def carried_distance(earlier: MemRef, later: MemRef) -> int | None:
    """Dependence distance in iterations between two affine references.

    Returns ``d >= 0`` when ``later`` at iteration ``i + d`` touches the same
    element as ``earlier`` at iteration ``i`` (``d == 0`` is an
    intra-iteration dependence).  Returns ``None`` when the two references
    never overlap, or when either reference is indirect / the distance is not
    a non-negative integer constant.
    """
    if earlier.indirect or later.indirect:
        return None
    if earlier.array != later.array:
        return None
    if earlier.index.coeff != later.index.coeff:
        # Different strides over the same array: conservatively unknown
        # unless both are loop-invariant scalars.
        if earlier.index.coeff == 0 and later.index.coeff == 0:
            return 0 if earlier.index.offset == later.index.offset else None
        return None
    coeff = earlier.index.coeff
    delta = earlier.index.offset - later.index.offset
    if coeff == 0:
        return 0 if delta == 0 else None
    if delta % coeff != 0:
        return None
    distance = delta // coeff
    return distance if distance >= 0 else None
