"""Three-address instructions.

An :class:`Instruction` is a small immutable record: opcode, optional
destination register, scalar sources, optional memory reference (loads and
stores), optional guarding predicate, and bookkeeping flags.  Immutability
keeps transformation passes honest — the unroller and coalescer always build
new instructions rather than mutating shared state.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.ir.types import CmpOp, DType, Opcode
from repro.ir.values import Imm, MemRef, Operand, Reg

_uid_counter = itertools.count(1)


def _next_uid() -> int:
    return next(_uid_counter)


@dataclass(frozen=True)
class Instruction:
    """A single IR instruction.

    Attributes:
        op: the opcode.
        dest: destination register, or ``None`` for stores/branches.
        srcs: scalar source operands (registers and immediates).
        mem: memory reference for loads/stores/prefetches.
        pred: guarding predicate register — the instruction only takes
            effect when the predicate holds (Itanium-style predication).
        cmp_op: comparison kind for CMP/FCMP.
        dest2: second destination for ``LOAD_PAIR`` (the odd element).
        implicit: marks compiler-inserted helper operations (address
            arithmetic stand-ins, wide-load extracts).  The paper counts
            implicit instructions as a feature.
        uid: unique id, assigned at construction; identifies the instruction
            in dependence graphs and schedules.
    """

    op: Opcode
    dest: Reg | None = None
    srcs: tuple[Operand, ...] = ()
    mem: MemRef | None = None
    pred: Reg | None = None
    cmp_op: CmpOp | None = None
    dest2: Reg | None = None
    implicit: bool = False
    uid: int = field(default_factory=_next_uid)

    def __hash__(self) -> int:
        # Instructions key schedules, dependence adjacency, and liveness
        # sets; hashing the full field tuple (with nested registers and
        # memory references) dominates those lookups.  The value is the
        # dataclass-generated hash of the same tuple — identical, so set
        # iteration order is unchanged — computed once per instance.
        try:
            return self._hash
        except AttributeError:
            value = hash(
                (
                    self.op,
                    self.dest,
                    self.srcs,
                    self.mem,
                    self.pred,
                    self.cmp_op,
                    self.dest2,
                    self.implicit,
                    self.uid,
                )
            )
            object.__setattr__(self, "_hash", value)
            return value

    def __post_init__(self) -> None:
        info = self.op.info
        if info.has_dest and self.dest is None:
            raise ValueError(f"{self.op.value} requires a destination register")
        if not info.has_dest and self.dest is not None:
            raise ValueError(f"{self.op.value} must not have a destination")
        if self.op.is_memory and self.mem is None:
            raise ValueError(f"{self.op.value} requires a memory reference")
        if self.op.is_compare and self.cmp_op is None:
            raise ValueError(f"{self.op.value} requires a comparison kind")

    # ------------------------------------------------------------------
    # Operand inspection.
    # ------------------------------------------------------------------

    def reg_srcs(self) -> Iterator[Reg]:
        """All registers this instruction reads (sources, predicate, index)."""
        for src in self.srcs:
            if isinstance(src, Reg):
                yield src
        if self.pred is not None:
            yield self.pred
        if self.mem is not None and self.mem.indirect and self.mem.index_reg is not None:
            yield self.mem.index_reg

    def reg_dests(self) -> Iterator[Reg]:
        """All registers this instruction writes."""
        if self.dest is not None:
            yield self.dest
        if self.dest2 is not None:
            yield self.dest2

    @property
    def n_operands(self) -> int:
        """Total operand count (the paper's per-loop operand feature sums this)."""
        count = len(self.srcs)
        if self.dest is not None:
            count += 1
        if self.dest2 is not None:
            count += 1
        if self.pred is not None:
            count += 1
        if self.mem is not None:
            count += 1
        return count

    # ------------------------------------------------------------------
    # Rewriting helpers used by transformation passes.
    # ------------------------------------------------------------------

    def _rebuilt(
        self,
        dest: Reg | None,
        srcs: tuple[Operand, ...],
        mem: MemRef | None,
        pred: Reg | None,
        dest2: Reg | None,
    ) -> "Instruction":
        """A copy with the given operand fields and a fresh ``uid``.

        Rewrites only rename operands or retarget memory, so the
        opcode-shape invariants checked in ``__post_init__`` cannot change;
        the copy is built directly rather than through
        ``dataclasses.replace``, which would re-validate every instruction
        of every unrolled body.
        """
        new = object.__new__(Instruction)
        set_field = object.__setattr__
        set_field(new, "op", self.op)
        set_field(new, "dest", dest)
        set_field(new, "srcs", srcs)
        set_field(new, "mem", mem)
        set_field(new, "pred", pred)
        set_field(new, "cmp_op", self.cmp_op)
        set_field(new, "dest2", dest2)
        set_field(new, "implicit", self.implicit)
        set_field(new, "uid", next(_uid_counter))
        return new

    def with_renamed_regs(self, mapping: dict[Reg, Reg]) -> "Instruction":
        """A copy with every register operand renamed through ``mapping``.

        Registers absent from the mapping are kept; a fresh ``uid`` is
        assigned so dependence graphs never confuse the copy with the
        original.
        """
        new_srcs = tuple(
            mapping.get(s, s) if isinstance(s, Reg) else s for s in self.srcs
        )
        new_mem = self.mem
        if new_mem is not None and new_mem.indirect and new_mem.index_reg is not None:
            new_mem = new_mem.with_index_reg(
                mapping.get(new_mem.index_reg, new_mem.index_reg)
            )
        return self._rebuilt(
            dest=mapping.get(self.dest, self.dest) if self.dest else None,
            srcs=new_srcs,
            mem=new_mem,
            pred=mapping.get(self.pred, self.pred) if self.pred else None,
            dest2=mapping.get(self.dest2, self.dest2) if self.dest2 else None,
        )

    def rewritten(self, src_map: dict[Reg, Reg], dest_map: dict[Reg, Reg]) -> "Instruction":
        """A copy with sources and destinations renamed through *separate*
        maps, always with a fresh ``uid``.

        Unrolling needs the asymmetry: in ``acc = acc + x`` the source
        ``acc`` must take the previous copy's name while the destination
        ``acc`` takes the current copy's name.
        """
        new_srcs = tuple(
            src_map.get(s, s) if isinstance(s, Reg) else s for s in self.srcs
        )
        new_mem = self.mem
        if new_mem is not None and new_mem.indirect and new_mem.index_reg is not None:
            new_mem = new_mem.with_index_reg(
                src_map.get(new_mem.index_reg, new_mem.index_reg)
            )
        return self._rebuilt(
            dest=dest_map.get(self.dest, self.dest) if self.dest else None,
            srcs=new_srcs,
            mem=new_mem,
            pred=src_map.get(self.pred, self.pred) if self.pred else None,
            dest2=dest_map.get(self.dest2, self.dest2) if self.dest2 else None,
        )

    def with_unrolled_mem(self, u: int, k: int, base: int = 0) -> "Instruction":
        """A copy whose memory reference is retargeted for unrolling.

        The reference becomes the one made by copy ``k`` of a body unrolled
        by ``u`` starting at original iteration ``base`` (see
        :meth:`repro.ir.values.AffineIndex.unrolled`).
        """
        if self.mem is None or (u == 1 and k == 0 and base == 0):
            return self
        return self._rebuilt(
            dest=self.dest,
            srcs=self.srcs,
            mem=self.mem.unrolled(u, k, base),
            pred=self.pred,
            dest2=self.dest2,
        )

    def clone(self) -> "Instruction":
        """A structural copy with a fresh ``uid``."""
        return self._rebuilt(
            dest=self.dest, srcs=self.srcs, mem=self.mem, pred=self.pred, dest2=self.dest2
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        from repro.ir.printer import format_instruction

        return format_instruction(self)


# ----------------------------------------------------------------------
# Convenience constructors — keep call sites compact and readable.
# ----------------------------------------------------------------------


def load(dest: Reg, mem: MemRef, pred: Reg | None = None, implicit: bool = False) -> Instruction:
    """Build a LOAD instruction."""
    return Instruction(Opcode.LOAD, dest=dest, mem=mem, pred=pred, implicit=implicit)


def store(value: Operand, mem: MemRef, pred: Reg | None = None) -> Instruction:
    """Build a STORE instruction."""
    return Instruction(Opcode.STORE, srcs=(value,), mem=mem, pred=pred)


def binop(op: Opcode, dest: Reg, lhs: Operand, rhs: Operand, pred: Reg | None = None) -> Instruction:
    """Build a two-source arithmetic instruction."""
    return Instruction(op, dest=dest, srcs=(lhs, rhs), pred=pred)


def fma(dest: Reg, a: Operand, b: Operand, c: Operand, pred: Reg | None = None) -> Instruction:
    """Build a fused multiply-add: ``dest = a * b + c``."""
    return Instruction(Opcode.FMA, dest=dest, srcs=(a, b, c), pred=pred)


def compare(dest: Reg, kind: CmpOp, lhs: Operand, rhs: Operand, fp: bool = False) -> Instruction:
    """Build a compare defining a predicate register."""
    op = Opcode.FCMP if fp else Opcode.CMP
    return Instruction(op, dest=dest, srcs=(lhs, rhs), cmp_op=kind)

def mov(dest: Reg, src: Operand, pred: Reg | None = None, implicit: bool = False) -> Instruction:
    """Build a register/immediate move."""
    return Instruction(Opcode.MOV, dest=dest, srcs=(src,), pred=pred, implicit=implicit)


def exit_branch(pred: Reg) -> Instruction:
    """Build an early-exit branch taken when ``pred`` holds."""
    return Instruction(Opcode.BR_EXIT, pred=pred)


def select(dest: Reg, pred: Reg, if_true: Operand, if_false: Operand) -> Instruction:
    """Build a predicated select: ``dest = pred ? if_true : if_false``."""
    return Instruction(Opcode.SELECT, dest=dest, srcs=(pred, if_true, if_false))


__all__ = [
    "Instruction",
    "load",
    "store",
    "binop",
    "fma",
    "compare",
    "mov",
    "exit_branch",
    "select",
    "Imm",
    "Reg",
]
