"""Textual rendering of IR objects — the dump format used in examples,
error messages, and golden tests."""

from __future__ import annotations

from repro.ir.instruction import Instruction
from repro.ir.loop import Loop
from repro.ir.types import Opcode


def format_instruction(inst: Instruction) -> str:
    """Render one instruction, e.g. ``(%p1) %f2 = fadd %f0, %f1``."""
    parts: list[str] = []
    if inst.pred is not None:
        parts.append(f"({inst.pred})")
    dests = [str(r) for r in inst.reg_dests()]
    if dests:
        parts.append(", ".join(dests))
        parts.append("=")
    op_text = inst.op.value
    if inst.cmp_op is not None:
        op_text = f"{op_text}.{inst.cmp_op.value}"
    parts.append(op_text)
    operands: list[str] = [str(s) for s in inst.srcs]
    if inst.mem is not None:
        if inst.op is Opcode.STORE:
            operands.append(f"-> {inst.mem}")
        else:
            operands.append(str(inst.mem))
    if operands:
        parts.append(", ".join(operands))
    text = " ".join(parts)
    if inst.implicit:
        text += "  ; implicit"
    return text


def format_loop(loop: Loop) -> str:
    """Render a whole loop with its header metadata."""
    trip = loop.trip
    if trip.known:
        bound = str(trip.compile_time)
    elif trip.counted:
        bound = "N (runtime)"
    else:
        bound = "? (while-style)"
    header = (
        f"loop {loop.name} [trip={bound}, nest={loop.nest_level}, "
        f"lang={loop.language.name}, unroll={loop.unroll_factor}]"
    )
    lines = [header, "{"]
    for inst in loop.body:
        lines.append(f"  {format_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)
