"""Benchmarks and suites: containers that group loops into programs.

The paper's unit of evaluation is the *benchmark*: features and labels are
extracted per loop, but speedups (Figures 4 and 5) are whole-program numbers
— the sum of all instrumented loop times plus the time spent outside
innermost loops.  :class:`Benchmark` captures exactly that decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.loop import Loop
from repro.ir.types import Language


@dataclass(frozen=True)
class Benchmark:
    """A program: a bag of innermost loops plus serial (non-loop) work.

    Attributes:
        name: e.g. ``"179.art"``.
        suite: suite tag (``"spec2000-fp"``, ``"mediabench"``, ...).
        language: dominant source language.
        loops: the instrumentable innermost loops.
        serial_cycles: cycles per run spent outside the instrumented loops
            (fixed with respect to unrolling decisions).  When zero, the
            evaluation pipeline derives it from ``loop_fraction``.
        loop_fraction: fraction of total runtime spent inside innermost
            loops under a baseline compilation — high for floating-point
            codes, low for control-heavy integer codes.  This is why the
            paper's SPECfp speedups (9%) dwarf its overall number (5%).
    """

    name: str
    suite: str
    language: Language
    loops: tuple[Loop, ...]
    serial_cycles: int = 0
    loop_fraction: float = 0.6

    def __post_init__(self) -> None:
        if self.serial_cycles < 0:
            raise ValueError("serial cycles must be non-negative")
        if not (0.0 < self.loop_fraction <= 1.0):
            raise ValueError("loop fraction must be in (0, 1]")
        seen: set[str] = set()
        for loop in self.loops:
            if loop.name in seen:
                raise ValueError(f"duplicate loop name {loop.name!r} in {self.name!r}")
            seen.add(loop.name)

    @property
    def n_loops(self) -> int:
        return len(self.loops)

    def loop_by_name(self, name: str) -> Loop:
        """Look up a loop by its unique name."""
        for loop in self.loops:
            if loop.name == name:
                return loop
        raise KeyError(name)

    @property
    def is_floating_point(self) -> bool:
        """Whether this benchmark belongs to a floating-point suite."""
        return self.suite.endswith("-fp") or self.suite in ("perfect", "kernels")


@dataclass(frozen=True)
class Suite:
    """A named collection of benchmarks (SPEC 2000, Mediabench, ...)."""

    name: str
    benchmarks: tuple[Benchmark, ...] = field(default_factory=tuple)

    def all_loops(self) -> tuple[Loop, ...]:
        """Every loop across the suite, in benchmark order."""
        return tuple(loop for bench in self.benchmarks for loop in bench.loops)

    def benchmark_by_name(self, name: str) -> Benchmark:
        for bench in self.benchmarks:
            if bench.name == name:
                return bench
        raise KeyError(name)

    @property
    def n_loops(self) -> int:
        return sum(b.n_loops for b in self.benchmarks)
