"""Loops and their static properties.

A :class:`Loop` is the unit everything in this system operates on: the
unroller transforms it, the feature extractor describes it, the simulator
times it, and the classifiers label it.  It corresponds to what the paper
calls an "unrollable innermost loop": a single-block body (with predication
standing in for internal control flow) plus metadata about trip counts,
nesting, language, and runtime behaviour.

Register conventions
--------------------
The body is *almost* SSA: every register is defined at most once per
iteration, except that loop-carried values (recurrences such as reduction
accumulators) are read before being written.  A register that is read before
any write and also written later in the body is a **carried register** — its
incoming value on iteration ``i`` is the value left by iteration ``i - 1``
(or the preheader value on the first iteration).  A register read but never
written is a **loop-invariant live-in**.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

from repro.ir.instruction import Instruction
from repro.ir.types import Language, Opcode
from repro.ir.values import Reg


@dataclass(frozen=True)
class TripInfo:
    """Trip-count knowledge about a loop.

    Attributes:
        compile_time: trip count when it is a compile-time constant, else
            ``None`` (the common case for Fortran-style ``DO`` loops over a
            runtime bound).
        runtime: the *actual* average iteration count per entry, used by the
            simulator.  Always known to the simulation even when the
            compiler can't see it.
        counted: True when the trip count is computable at loop entry at run
            time (a counted ``for``/``DO`` loop).  Counted loops unroll with
            a preconditioning remainder; non-counted (``while``-style) loops
            need an exit test per unrolled copy.
    """

    runtime: int
    compile_time: int | None = None
    counted: bool = True

    def __post_init__(self) -> None:
        if self.runtime < 1:
            raise ValueError("runtime trip count must be >= 1")
        if self.compile_time is not None and self.compile_time != self.runtime:
            raise ValueError("compile-time trip count must match runtime value")
        if self.compile_time is not None and not self.counted:
            raise ValueError("a compile-time-known loop is necessarily counted")

    @property
    def known(self) -> bool:
        """Whether the compiler knows the trip count exactly."""
        return self.compile_time is not None


@dataclass(frozen=True)
class Loop:
    """An innermost loop.

    Attributes:
        name: unique id such as ``"176.gcc/loop_041"``.
        body: the loop body, one straight-line predicated block.  The
            induction-variable update, trip-count compare, and backedge are
            *implicit* (modelled by the machine's loop-overhead parameters),
            matching how EPIC hardware loop branches work.
        trip: trip-count knowledge (see :class:`TripInfo`).
        nest_level: 1 for an outermost loop, higher for deeper nests.
        language: source language of the enclosing benchmark.
        entry_count: how many times the program enters this loop per run
            (e.g. the outer-loop trip count for a nested inner loop).
        arrays: element count of each array the body references, used by the
            interpreter and the data-cache footprint model.
        unroll_factor: how many original iterations one body execution
            covers; 1 for a rolled loop.  Set by the unroller.
        benchmark: name of the owning benchmark, if any.
    """

    name: str
    body: tuple[Instruction, ...]
    trip: TripInfo
    nest_level: int = 1
    language: Language = Language.C
    entry_count: int = 1
    arrays: dict[str, int] = field(default_factory=dict)
    unroll_factor: int = 1
    benchmark: str = ""

    def __post_init__(self) -> None:
        if not self.body:
            raise ValueError("loop body must not be empty")
        if self.nest_level < 1:
            raise ValueError("nest level must be >= 1")
        if self.entry_count < 1:
            raise ValueError("entry count must be >= 1")
        if self.unroll_factor < 1:
            raise ValueError("unroll factor must be >= 1")

    # ------------------------------------------------------------------
    # Register classification.
    # ------------------------------------------------------------------

    def defined_regs(self) -> set[Reg]:
        """Registers written anywhere in the body."""
        return {reg for inst in self.body for reg in inst.reg_dests()}

    def used_regs(self) -> set[Reg]:
        """Registers read anywhere in the body."""
        return {reg for inst in self.body for reg in inst.reg_srcs()}

    def live_in_regs(self) -> set[Reg]:
        """Registers whose value flows into the body from outside or from
        the previous iteration (read before any write in body order)."""
        written: set[Reg] = set()
        live_in: set[Reg] = set()
        for inst in self.body:
            for reg in inst.reg_srcs():
                if reg not in written:
                    live_in.add(reg)
            written.update(inst.reg_dests())
        return live_in

    def carried_regs(self) -> set[Reg]:
        """Registers carried around the backedge (read-before-write *and*
        written) — the loop's scalar recurrences."""
        return self.live_in_regs() & self.defined_regs()

    def invariant_regs(self) -> set[Reg]:
        """Loop-invariant live-ins (read but never written)."""
        return self.live_in_regs() - self.defined_regs()

    # ------------------------------------------------------------------
    # Structural queries used throughout the system.
    # ------------------------------------------------------------------

    @property
    def has_early_exit(self) -> bool:
        """Whether the body contains a data-dependent exit branch."""
        return any(inst.op is Opcode.BR_EXIT for inst in self.body)

    @property
    def swp_eligible(self) -> bool:
        """Whether the software pipeliner will accept this loop.

        Mirrors ORC: loops with early exits cannot be modulo scheduled and
        fall back to acyclic scheduling even when SWP is enabled.
        """
        return not self.has_early_exit

    def memory_refs(self) -> Iterator[tuple[Instruction, bool]]:
        """Yield ``(instruction, is_store)`` for every memory operation."""
        for inst in self.body:
            if inst.op.is_memory and inst.mem is not None:
                yield inst, inst.op.is_store

    def referenced_arrays(self) -> set[str]:
        """Names of arrays touched by the body."""
        return {inst.mem.array for inst in self.body if inst.mem is not None}

    @property
    def size(self) -> int:
        """Number of instructions in the body."""
        return len(self.body)

    def with_body(self, body: tuple[Instruction, ...], **changes) -> "Loop":
        """A copy of this loop with a replacement body (and other fields)."""
        return replace(self, body=tuple(body), **changes)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        from repro.ir.printer import format_loop

        return format_loop(self)
