"""A small construction DSL for loop bodies.

:class:`LoopBuilder` issues fresh typed registers, appends instructions, and
assembles a validated :class:`~repro.ir.loop.Loop`.  It exists so that
kernels, tests, and the workload generator can describe loops at the level of
*computation* rather than hand-managing register names::

    b = LoopBuilder("daxpy", trip=TripInfo(runtime=1000))
    b.array("x", 1000)
    b.array("y", 1000)
    xv = b.load("x", stride=1)
    prod = b.fp(Opcode.FMUL, xv, b.fconst(3.0))
    yv = b.load("y", stride=1)
    acc = b.fp(Opcode.FADD, prod, yv)
    b.store(acc, "y", stride=1)
    loop = b.build()
"""

from __future__ import annotations

import itertools

from repro.ir import instruction as ins
from repro.ir.instruction import Instruction
from repro.ir.loop import Loop, TripInfo
from repro.ir.types import CmpOp, DType, Language, Opcode
from repro.ir.validate import validate_loop
from repro.ir.values import AffineIndex, Imm, MemRef, Operand, Reg


class LoopBuilder:
    """Incrementally builds one innermost loop."""

    def __init__(
        self,
        name: str,
        trip: TripInfo,
        nest_level: int = 1,
        language: Language = Language.C,
        entry_count: int = 1,
        benchmark: str = "",
    ):
        self.name = name
        self.trip = trip
        self.nest_level = nest_level
        self.language = language
        self.entry_count = entry_count
        self.benchmark = benchmark
        self._body: list[Instruction] = []
        self._arrays: dict[str, int] = {}
        self._counters = {dtype: itertools.count() for dtype in DType}
        self._carried_inits: dict[Reg, float] = {}

    # ------------------------------------------------------------------
    # Registers, constants, arrays.
    # ------------------------------------------------------------------

    def reg(self, dtype: DType = DType.F64) -> Reg:
        """A fresh virtual register of the given type."""
        index = next(self._counters[dtype])
        return Reg(f"{dtype.short}{index}", dtype)

    def carried(self, dtype: DType = DType.F64, init: float = 0.0) -> Reg:
        """A fresh register intended as a loop-carried recurrence.

        ``init`` is the preheader value the interpreter seeds it with.
        """
        reg = self.reg(dtype)
        self._carried_inits[reg] = init
        return reg

    @staticmethod
    def iconst(value: int) -> Imm:
        return Imm(int(value), DType.I64)

    @staticmethod
    def fconst(value: float) -> Imm:
        return Imm(float(value), DType.F64)

    def array(self, name: str, size: int | None = None) -> str:
        """Declare an array; the default size covers the whole iteration
        space at unit stride plus unroll-factor padding."""
        from repro.ir.types import MAX_UNROLL

        if size is None:
            size = self.trip.runtime + MAX_UNROLL
        self._arrays[name] = size
        return name

    def mem(self, array: str, stride: int = 1, offset: int = 0, width: int = 1) -> MemRef:
        """An affine reference ``array[stride*i + offset]``.

        Auto-declares (and grows) the array so the reference stays in bounds
        across the whole iteration space *including* the over-run padding an
        unrolled while-style loop needs (up to ``MAX_UNROLL - 1`` extra
        iterations of speculative addressing).
        """
        from repro.ir.types import MAX_UNROLL

        if stride >= 0:
            needed = stride * (self.trip.runtime - 1 + MAX_UNROLL) + offset + width
        else:
            needed = offset + width  # maximal index is at i == 0
        needed = max(needed, 1)
        if self._arrays.get(array, 0) < needed:
            self._arrays[array] = needed
        return MemRef(array, AffineIndex(stride, offset), width=width)

    # ------------------------------------------------------------------
    # Instruction emission.  Each helper appends and returns the dest reg.
    # ------------------------------------------------------------------

    def emit(self, inst: Instruction) -> Instruction:
        """Append a pre-built instruction."""
        self._body.append(inst)
        return inst

    def load(
        self,
        array: str,
        stride: int = 1,
        offset: int = 0,
        dtype: DType = DType.F64,
        pred: Reg | None = None,
    ) -> Reg:
        dest = self.reg(dtype)
        self.emit(ins.load(dest, self.mem(array, stride, offset), pred=pred))
        return dest

    def load_indirect(self, array: str, index_reg: Reg, dtype: DType = DType.F64) -> Reg:
        """A gather: ``dest = array[index_reg]``."""
        if array not in self._arrays:
            self.array(array)
        dest = self.reg(dtype)
        mem = MemRef(array, indirect=True, index_reg=index_reg)
        self.emit(ins.load(dest, mem))
        return dest

    def store(
        self,
        value: Operand,
        array: str,
        stride: int = 1,
        offset: int = 0,
        pred: Reg | None = None,
    ) -> None:
        self.emit(ins.store(value, self.mem(array, stride, offset), pred=pred))

    def store_indirect(self, value: Operand, array: str, index_reg: Reg) -> None:
        if array not in self._arrays:
            self.array(array)
        mem = MemRef(array, indirect=True, index_reg=index_reg)
        self.emit(ins.store(value, mem))

    def fp(self, op: Opcode, *srcs: Operand, dest: Reg | None = None, pred: Reg | None = None) -> Reg:
        """A floating-point arithmetic instruction."""
        dest = dest if dest is not None else self.reg(DType.F64)
        self.emit(Instruction(op, dest=dest, srcs=tuple(srcs), pred=pred))
        return dest

    def intop(self, op: Opcode, *srcs: Operand, dest: Reg | None = None, pred: Reg | None = None) -> Reg:
        """An integer arithmetic/logic instruction."""
        dest = dest if dest is not None else self.reg(DType.I64)
        self.emit(Instruction(op, dest=dest, srcs=tuple(srcs), pred=pred))
        return dest

    def cmp(self, kind: CmpOp, lhs: Operand, rhs: Operand, fp: bool = False) -> Reg:
        dest = self.reg(DType.PRED)
        self.emit(ins.compare(dest, kind, lhs, rhs, fp=fp))
        return dest

    def select(self, pred: Reg, if_true: Operand, if_false: Operand, dtype: DType = DType.F64) -> Reg:
        dest = self.reg(dtype)
        self.emit(ins.select(dest, pred, if_true, if_false))
        return dest

    def mov(self, src: Operand, dtype: DType | None = None, dest: Reg | None = None) -> Reg:
        if dest is None:
            if dtype is None:
                dtype = src.dtype if isinstance(src, (Reg, Imm)) else DType.F64
            dest = self.reg(dtype)
        self.emit(ins.mov(dest, src))
        return dest

    def exit_if(self, pred: Reg) -> None:
        """Emit an early-exit branch on ``pred``."""
        self.emit(ins.exit_branch(pred))

    # ------------------------------------------------------------------
    # Assembly.
    # ------------------------------------------------------------------

    @property
    def carried_inits(self) -> dict[Reg, float]:
        """Preheader values for carried registers (consumed by the
        interpreter's initial state)."""
        return dict(self._carried_inits)

    def build(self, validate: bool = True) -> Loop:
        """Assemble the loop (validating by default)."""
        loop = Loop(
            name=self.name,
            body=tuple(self._body),
            trip=self.trip,
            nest_level=self.nest_level,
            language=self.language,
            entry_count=self.entry_count,
            arrays=dict(self._arrays),
            benchmark=self.benchmark,
        )
        if validate:
            validate_loop(loop)
        return loop
