"""The oracle predictor.

The paper's Figures 4 and 5 include "the speedup that an 'oracle' would
attain": for each loop, pick the factor its *measured* data says is best.
Because the measurements are noisy (and assume per-loop independence), the
oracle is imperfect — the paper notes it is "slightly outperformed in a
couple of cases" and that three benchmarks' training sets are visibly
noisy because of it.  Our oracle has exactly the same character: it reads
the measured (noisy) medians, not the noise-free truth.
"""

from __future__ import annotations

import numpy as np

from repro.ir.loop import Loop
from repro.ml.dataset import LoopDataset


class OracleHeuristic:
    """Per-loop argmin over *measured* cycles; rolled for unmeasured loops.

    Loops that never made it into the measured set (filtered out or simply
    absent) fall back to ``default_factor`` — the oracle only knows what
    was measured, like the paper's.
    """

    name = "oracle"

    def __init__(self, measured_best: dict[str, int], default_factor: int = 1):
        self.measured_best = dict(measured_best)
        self.default_factor = default_factor

    @classmethod
    def from_dataset(cls, dataset: LoopDataset, default_factor: int = 1) -> "OracleHeuristic":
        best = {
            str(name): int(label)
            for name, label in zip(dataset.loop_names, dataset.labels)
        }
        return cls(best, default_factor)

    def predict_loop(self, loop: Loop) -> int:
        return self.measured_best.get(loop.name, self.default_factor)


class FixedFactorHeuristic:
    """Always the same factor — the 'always unroll by N' strawman used by
    the paper's related-work discussion (unrolling all the time would be
    'right' 77% of the time as a binary decision, yet badly suboptimal)."""

    def __init__(self, factor: int):
        if not (1 <= factor <= 8):
            raise ValueError("factor must be in [1, 8]")
        self.factor = factor
        self.name = f"fixed-{factor}"

    def predict_loop(self, loop: Loop) -> int:
        return self.factor
