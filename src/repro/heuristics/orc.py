"""Hand-written unrolling heuristics in the style of ORC.

The Open Research Compiler ships two unrolling heuristics, and the paper
benchmarks against both:

* with software pipelining **disabled**, a classic body-size-budget rule:
  fully unroll short compile-time-known loops, otherwise pick the largest
  power-of-two factor that keeps the unrolled body under a size budget;
* with software pipelining **enabled**, the (much-rewritten, ~200-line)
  heuristic that unrolls to recover a *fractional initiation interval* —
  pick the factor whose per-iteration resource bound is closest to
  integral — clamped by register-pressure and code-size estimates.

Both are *models*, and deliberately so: they consult cheap proxies (op
counts, a naive pressure estimate, ResMII) rather than measuring, exactly
like their namesakes.  Their blind spots — cache behaviour, bandwidth
floors, the actual schedule — are the reason the paper's Table 2 has them
picking the optimal factor only 16% of the time.
"""

from __future__ import annotations

from repro.ir.dependence import analyze_dependences
from repro.ir.loop import Loop
from repro.ir.types import MAX_UNROLL
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.sched.modulo import resource_mii


def _largest_pow2_at_most(value: int) -> int:
    power = 1
    while power * 2 <= value:
        power *= 2
    return power


def orc_unroll_factor_no_swp(
    loop: Loop,
    machine: MachineModel = ITANIUM2,
    body_budget_ops: int = 150,
) -> int:
    """ORC-style factor with software pipelining disabled.

    Rules, in order (mirroring the shape of ORC's ``Unrolling_factor``):

    1. never unroll loops with early exits — multi-exit bodies defeat the
       unroller's CFG surgery, so ORC refuses them outright;
    2. fully unroll compile-time-known trip counts up to the maximum;
    3. for larger known trip counts, prefer the largest factor that
       *divides* the trip count (no remainder loop to emit), subject to
       the body-size budget;
    4. for unknown trip counts, fill the size budget exactly:
       ``budget // size``, not rounded to a power of two — ORC's unroller
       handles any factor and its model sees no reason to prefer powers
       of two (the machine, as the measurements show, disagrees);
    5. cap at 2 when the body has indirect references (unanalyzable
       memory).

    Like its namesake, this is a *model*: it knows nothing of register
    pressure, caches, bandwidth floors, or alignment — the blind spots
    that hold it to the bottom row of Table 2.  The generous size budget
    reflects the paper's observation that ORC "is tuned with software
    pipelining in mind": without SWP's rotating registers the same
    aggressiveness routinely overshoots the register file.
    """
    trip = loop.trip
    if loop.has_early_exit:
        return 2  # ORC duplicates at most one exit before giving up
    if trip.known and trip.compile_time <= MAX_UNROLL:
        return trip.compile_time

    size = loop.size
    if size >= body_budget_ops:
        return 1
    by_budget = min(MAX_UNROLL, max(1, body_budget_ops // size))

    if trip.known:
        for factor in range(by_budget, 1, -1):
            if trip.compile_time % factor == 0:
                return factor
        return 1
    factor = by_budget
    has_indirect = any(
        inst.mem is not None and inst.mem.indirect for inst in loop.body
    )
    if has_indirect:
        factor = min(factor, 2)
    return max(factor, 1)


def orc_unroll_factor_swp(
    loop: Loop,
    machine: MachineModel = ITANIUM2,
    body_budget_ops: int = 96,
) -> int:
    """ORC-style factor with software pipelining enabled.

    The fractional-II rule: the rolled loop's ResMII may be fractional
    (say 2.5), but a kernel's II must be an integer; unrolling by ``u``
    schedules ``u`` iterations in ``ceil(u * ResMII)`` cycles, so the
    heuristic picks the smallest ``u`` minimising ``ceil(u * ResMII) / u``,
    subject to a register-pressure proxy and the code-size budget.  Loops
    the pipeliner will reject (early exits) fall back to the no-SWP rule.
    """
    if not loop.swp_eligible:
        return orc_unroll_factor_no_swp(loop, machine)
    trip = loop.trip
    if trip.known and trip.compile_time <= MAX_UNROLL:
        return trip.compile_time

    deps = analyze_dependences(loop)
    res = max(resource_mii(deps, machine), 1e-9)

    # Pressure proxy: values live per iteration ~ defs + live-ins; the
    # rotating file must hold roughly u * values_per_iter copies.
    values_per_iter = len(loop.defined_regs()) + len(loop.live_in_regs())
    max_by_pressure = max(1, machine.rotating_regs // max(values_per_iter, 1))
    max_by_size = max(1, body_budget_ops // loop.size)
    ceiling = min(MAX_UNROLL, max_by_pressure, max_by_size)
    if trip.known:
        ceiling = min(ceiling, trip.compile_time)

    best_factor = 1
    best_rate = float("inf")
    for factor in range(1, ceiling + 1):
        per_iteration = -(-factor * res // 1) / factor  # ceil(u*res)/u
        if per_iteration < best_rate - 1e-9:
            best_rate = per_iteration
            best_factor = factor
    return best_factor


class ORCHeuristic:
    """The hand heuristic wrapped with the common predictor interface."""

    name = "orc"

    def __init__(self, machine: MachineModel = ITANIUM2, swp: bool = False):
        self.machine = machine
        self.swp = swp

    def predict_loop(self, loop: Loop) -> int:
        if self.swp:
            return orc_unroll_factor_swp(loop, self.machine)
        return orc_unroll_factor_no_swp(loop, self.machine)
