"""Unroll-factor heuristics: hand-written, learned, and oracle."""

from repro.heuristics.learned import (
    EnsembleHeuristic,
    LearnedHeuristic,
    restore_ensemble_heuristic,
    train_ensemble_heuristic,
    train_forest_heuristic,
    train_mlp_heuristic,
    train_nn_heuristic,
    train_output_code_svm_heuristic,
    train_svm_heuristic,
)
from repro.heuristics.oracle import FixedFactorHeuristic, OracleHeuristic
from repro.heuristics.orc import (
    ORCHeuristic,
    orc_unroll_factor_no_swp,
    orc_unroll_factor_swp,
)

__all__ = [
    "EnsembleHeuristic",
    "FixedFactorHeuristic",
    "LearnedHeuristic",
    "ORCHeuristic",
    "OracleHeuristic",
    "orc_unroll_factor_no_swp",
    "orc_unroll_factor_swp",
    "restore_ensemble_heuristic",
    "train_ensemble_heuristic",
    "train_forest_heuristic",
    "train_mlp_heuristic",
    "train_nn_heuristic",
    "train_output_code_svm_heuristic",
    "train_svm_heuristic",
]
