"""Learned classifiers wrapped as compiler heuristics.

This is the deployment story of the paper's Section 4.1: "While supervised
learning is trained offline, the learned classifier can easily be
incorporated into a compiler."  A :class:`LearnedHeuristic` owns a fitted
classifier (and the feature subset it was trained on) and answers the only
question the compiler asks: *what factor for this loop?* — by extracting
the loop's static features and classifying them.
"""

from __future__ import annotations

import numpy as np

from repro.features.extract import extract_features
from repro.ir.loop import Loop
from repro.machine.itanium2 import ITANIUM2
from repro.machine.model import MachineModel
from repro.ml.dataset import LoopDataset
from repro.ml.ensemble import CalibratedEnsemble, train_calibrated_ensemble
from repro.ml.mlp import MLPClassifier
from repro.ml.multiclass import OutputCodeClassifier
from repro.ml.near_neighbor import NearNeighborClassifier
from repro.ml.pairwise import PairwiseLSSVM
from repro.ml.trees import RandomForest

#: Classifier types a :class:`LearnedHeuristic` can round-trip through a
#: model artifact (see :mod:`repro.registry`).  The calibrated ensemble is
#: deliberately absent: its members are serialised once under their own
#: family keys and only its small head rides along (see
#: :meth:`~repro.ml.ensemble.CalibratedEnsemble.head_state`).
_CLASSIFIER_KINDS = {
    NearNeighborClassifier: "near-neighbor",
    PairwiseLSSVM: "pairwise-lssvm",
    MLPClassifier: "mlp",
    RandomForest: "random-forest",
}
_CLASSIFIER_TYPES = {kind: cls for cls, kind in _CLASSIFIER_KINDS.items()}


class LearnedHeuristic:
    """A trained classifier speaking the compiler's heuristic interface."""

    def __init__(
        self,
        classifier,
        feature_indices: np.ndarray | None = None,
        machine: MachineModel = ITANIUM2,
        name: str = "learned",
    ):
        self.classifier = classifier
        self.feature_indices = (
            None if feature_indices is None else np.asarray(feature_indices, dtype=np.int64)
        )
        self.machine = machine
        self.name = name

    def predict_loop(self, loop: Loop) -> int:
        """The unroll factor for one loop, from its static features."""
        vector = extract_features(loop, self.machine)
        if self.feature_indices is not None:
            vector = vector[self.feature_indices]
        return int(np.asarray(self.classifier.predict(vector[None, :]))[0])

    def predict_features(self, X: np.ndarray) -> np.ndarray:
        """Batch prediction on pre-extracted feature rows (full catalog
        order; the subset is applied here)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if self.feature_indices is not None:
            X = X[:, self.feature_indices]
        return np.asarray(self.classifier.predict(X))

    # ------------------------------------------------------------------
    # Persistence (consumed by repro.registry model artifacts).
    # ------------------------------------------------------------------

    def get_state(self) -> dict:
        """The heuristic's classifier state plus its feature subset."""
        kind = _CLASSIFIER_KINDS.get(type(self.classifier))
        if kind is None:
            raise TypeError(
                f"cannot serialise a {type(self.classifier).__name__} heuristic"
            )
        return {
            "kind": kind,
            "name": self.name,
            "feature_indices": self.feature_indices,
            "classifier": self.classifier.get_state(),
        }

    @classmethod
    def from_state(cls, state: dict, machine: MachineModel = ITANIUM2) -> "LearnedHeuristic":
        """Rebuild a heuristic from :meth:`get_state` output; predictions
        are bit-identical to the serialised instance."""
        kind = str(state["kind"])
        try:
            classifier_cls = _CLASSIFIER_TYPES[kind]
        except KeyError:
            raise ValueError(f"unknown classifier kind {kind!r}") from None
        return cls(
            classifier_cls.from_state(state["classifier"]),
            feature_indices=state["feature_indices"],
            machine=machine,
            name=str(state["name"]),
        )


def train_nn_heuristic(
    dataset: LoopDataset,
    feature_indices: np.ndarray | None = None,
    radius: float | None = None,
    machine: MachineModel = ITANIUM2,
) -> LearnedHeuristic:
    """Fit a near-neighbor heuristic on a labelled dataset."""
    X = dataset.X if feature_indices is None else dataset.X[:, feature_indices]
    nn = NearNeighborClassifier() if radius is None else NearNeighborClassifier(radius=radius)
    nn.fit(X, dataset.labels)
    return LearnedHeuristic(nn, feature_indices, machine, name="nn")


def train_svm_heuristic(
    dataset: LoopDataset,
    feature_indices: np.ndarray | None = None,
    machine: MachineModel = ITANIUM2,
) -> LearnedHeuristic:
    """Fit the tuned pairwise multiscale LS-SVM heuristic (the
    configuration the experiments report as "SVM")."""
    from repro.ml.pairwise import make_tuned_pairwise_svm

    X = dataset.X if feature_indices is None else dataset.X[:, feature_indices]
    svm = make_tuned_pairwise_svm()
    svm.fit(X, dataset.labels)
    return LearnedHeuristic(svm, feature_indices, machine, name="svm")


def train_mlp_heuristic(
    dataset: LoopDataset,
    feature_indices: np.ndarray | None = None,
    seed: int = 0,
    machine: MachineModel = ITANIUM2,
) -> LearnedHeuristic:
    """Fit the NumPy MLP heuristic (seeded deterministic init, early
    stopping on a held-out fold)."""
    X = dataset.X if feature_indices is None else dataset.X[:, feature_indices]
    mlp = MLPClassifier(seed=seed)
    mlp.fit(X, dataset.labels)
    return LearnedHeuristic(mlp, feature_indices, machine, name="mlp")


def train_forest_heuristic(
    dataset: LoopDataset,
    feature_indices: np.ndarray | None = None,
    seed: int = 0,
    machine: MachineModel = ITANIUM2,
) -> LearnedHeuristic:
    """Fit the bagged random-forest heuristic (seeded bootstrap, per-split
    feature subsampling)."""
    X = dataset.X if feature_indices is None else dataset.X[:, feature_indices]
    forest = RandomForest(seed=seed)
    forest.fit(X, dataset.labels)
    return LearnedHeuristic(forest, feature_indices, machine, name="forest")


class EnsembleHeuristic(LearnedHeuristic):
    """The calibrated ensemble speaking the heuristic interface, plus the
    detail channel (confidence + per-family votes) the serve layer
    surfaces.  Serialisation goes through the registry's head + members
    scheme, never through :meth:`LearnedHeuristic.get_state`."""

    def predict_detail(self, X: np.ndarray):
        """Batch :meth:`~repro.ml.ensemble.CalibratedEnsemble.predict_detail`
        on full-catalog feature rows (the subset is applied here)."""
        X = np.atleast_2d(np.asarray(X, dtype=np.float64))
        if self.feature_indices is not None:
            X = X[:, self.feature_indices]
        return self.classifier.predict_detail(X)

    def predict_loop_detail(self, loop: Loop):
        """``(factor, confidence)`` for one loop."""
        vector = extract_features(loop, self.machine)
        if self.feature_indices is not None:
            vector = vector[self.feature_indices]
        detail = self.classifier.predict_detail(vector[None, :])
        return int(detail.labels[0]), float(detail.confidence[0])

    def get_state(self) -> dict:
        raise TypeError(
            "the ensemble serialises as head + member states via the "
            "registry, not through LearnedHeuristic.get_state"
        )


def train_ensemble_heuristic(
    dataset: LoopDataset,
    members: dict[str, LearnedHeuristic],
    feature_indices: np.ndarray | None = None,
    seed: int = 0,
    n_folds: int = 3,
    machine: MachineModel = ITANIUM2,
) -> EnsembleHeuristic:
    """Fit the calibrated ensemble head over pre-fitted family heuristics.

    ``members`` maps family name -> trained :class:`LearnedHeuristic`
    (each family is fitted exactly once, by its own trainer); calibration
    temperatures and weights come from seeded cross-val folds refit inside
    :func:`~repro.ml.ensemble.train_calibrated_ensemble`.
    """
    X = dataset.X if feature_indices is None else dataset.X[:, feature_indices]
    ensemble = train_calibrated_ensemble(
        X,
        dataset.labels,
        members={name: heuristic.classifier for name, heuristic in members.items()},
        seed=seed,
        n_folds=n_folds,
    )
    return EnsembleHeuristic(ensemble, feature_indices, machine, name="ensemble")


def restore_ensemble_heuristic(
    members: dict[str, LearnedHeuristic],
    head: dict,
    feature_indices: np.ndarray | None = None,
    machine: MachineModel = ITANIUM2,
) -> EnsembleHeuristic:
    """Rebuild the ensemble heuristic from restored family heuristics plus
    the serialised calibration head; predictions are bit-identical."""
    ensemble = CalibratedEnsemble.from_members(
        {name: heuristic.classifier for name, heuristic in members.items()}, head
    )
    return EnsembleHeuristic(ensemble, feature_indices, machine, name="ensemble")


def train_output_code_svm_heuristic(
    dataset: LoopDataset,
    feature_indices: np.ndarray | None = None,
    C: float = 10.0,
    sigma: float = 0.65,
    machine: MachineModel = ITANIUM2,
) -> LearnedHeuristic:
    """Fit the paper-literal output-code LS-SVM heuristic (used by the
    output-code ablation)."""
    X = dataset.X if feature_indices is None else dataset.X[:, feature_indices]
    svm = OutputCodeClassifier(C=C, sigma=sigma)
    svm.fit(X, dataset.labels)
    return LearnedHeuristic(svm, feature_indices, machine, name="svm-ovr")
